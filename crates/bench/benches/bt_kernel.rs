//! The Table I experiment as a criterion bench: wall-clock of the BT-like
//! kernel sweep per compiler/flag combination (the *simulated* runtimes in
//! the table come from the cost model; this measures the harness itself).

use bench::bt::{bt_inputs, bt_program};
use criterion::{criterion_group, criterion_main, Criterion};
use difftest::campaign::TestMode;
use difftest::metadata::build_side;
use gpucc::interp::execute;
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use std::hint::black_box;

fn bench_bt(c: &mut Criterion) {
    let program = bt_program();
    let inputs = bt_inputs(8);
    let mut g = c.benchmark_group("bt_kernel_table1");
    for (tc, opt, label) in [
        (Toolchain::Nvcc, OptLevel::O0, "nvcc_O0"),
        (Toolchain::Nvcc, OptLevel::O3Fm, "nvcc_O3_FM"),
        (Toolchain::Hipcc, OptLevel::O0, "hipcc_O0"),
        (Toolchain::Hipcc, OptLevel::O3Fm, "hipcc_O3_FM"),
    ] {
        let device = Device::new(match tc {
            Toolchain::Nvcc => DeviceKind::NvidiaLike,
            Toolchain::Hipcc => DeviceKind::AmdLike,
        });
        let ir = build_side(&program, tc, opt, TestMode::Direct);
        g.bench_function(label, |b| {
            b.iter(|| {
                for input in &inputs {
                    black_box(execute(&ir, &device, input).unwrap());
                }
            })
        });
    }
    g.finish();

    // full Table I regeneration (cost model + error sweep)
    let mut g = c.benchmark_group("table1_regeneration");
    g.sample_size(10);
    g.bench_function("run_table1_50_inputs", |b| b.iter(|| black_box(bench::bt::run_table1(50))));
    g.finish();
}

criterion_group!(benches, bench_bt);
criterion_main!(benches);
