//! End-to-end campaign benchmarks: the cost of regenerating each of the
//! paper's result tables at a fixed small scale. Campaign wall-clock
//! scales linearly in programs × inputs, so these numbers extrapolate to
//! the paper-scale (`--full`) runs of the `tables` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use difftest::campaign::{run_campaign, CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use gpucc::pipeline::{OptLevel, Toolchain};
use progen::Precision;
use std::hint::black_box;

fn bench_campaigns(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_25_programs");
    g.sample_size(10);
    for (name, precision, mode) in [
        ("fp64_direct_tables_v_vi", Precision::F64, TestMode::Direct),
        ("fp64_hipify_tables_vii_viii", Precision::F64, TestMode::Hipified),
        ("fp32_direct_tables_ix_x", Precision::F32, TestMode::Direct),
    ] {
        let cfg = CampaignConfig::default_for(precision, mode).with_programs(25);
        g.bench_function(name, |b| b.iter(|| black_box(run_campaign(&cfg))));
    }
    g.finish();
}

fn bench_campaign_per_level(c: &mut Criterion) {
    // one level at a time: shows O0's interpretive overhead vs O3's leaner IR
    let mut g = c.benchmark_group("campaign_single_level");
    g.sample_size(10);
    for level in [OptLevel::O0, OptLevel::O3, OptLevel::O3Fm] {
        let mut cfg =
            CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(25);
        cfg.levels = vec![level];
        g.bench_with_input(BenchmarkId::from_parameter(level.label()), &cfg, |b, cfg| {
            b.iter(|| black_box(run_campaign(cfg)))
        });
    }
    g.finish();
}

fn bench_reference_side(c: &mut Criterion) {
    // the double-double ground-truth side next to one vendor side over
    // the same population. The vendor side executes 5 levels per input,
    // the reference one strict evaluation per input, so divide its time
    // by (inputs × programs) for the per-unit overhead the EXPERIMENTS
    // entry reports (the `reference.nsperop` telemetry counter measures
    // the same thing in-process).
    let mut g = c.benchmark_group("reference_side_25_programs");
    g.sample_size(10);
    let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(25);
    g.bench_function("nvcc_vendor_side_5_levels", |b| {
        b.iter(|| {
            let mut meta = CampaignMeta::generate(&cfg);
            meta.run_side(Toolchain::Nvcc);
            black_box(meta)
        })
    });
    g.bench_function("reference_truth_side", |b| {
        b.iter(|| {
            let mut meta = CampaignMeta::generate(&cfg);
            meta.run_reference();
            black_box(meta)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_campaigns, bench_campaign_per_level, bench_reference_side);
criterion_main!(benches);
