//! Vendor math-library benchmarks: throughput of the contrasted kernels
//! (exact vs chunked fmod, from-scratch vs host transcendentals, fast
//! intrinsics) — the per-function ablation data behind DESIGN.md §4
//! mechanisms 1–5.

use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::mathlib::shared::{fmod_chunked_f64, fmod_exact_f64};
use gpusim::mathlib::MathFunc;
use gpusim::{Device, DeviceKind};
use std::hint::black_box;

fn bench_fmod_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmod");
    // mundane ratio: both algorithms take the one-chunk path
    g.bench_function("exact/mundane", |b| {
        b.iter(|| black_box(fmod_exact_f64(black_box(1e10), black_box(3.7))))
    });
    g.bench_function("chunked/mundane", |b| {
        b.iter(|| black_box(fmod_chunked_f64(black_box(1e10), black_box(3.7))))
    });
    // extreme ratio (the case-study regime): the bit-level loop runs ~2000
    // iterations; the chunked path runs ~65
    g.bench_function("exact/extreme", |b| {
        b.iter(|| black_box(fmod_exact_f64(black_box(1.59e289), black_box(1.5793e-307))))
    });
    g.bench_function("chunked/extreme", |b| {
        b.iter(|| black_box(fmod_chunked_f64(black_box(1.59e289), black_box(1.5793e-307))))
    });
    g.finish();
}

fn bench_transcendentals(c: &mut Criterion) {
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    let mut g = c.benchmark_group("transcendental_f64");
    for f in [MathFunc::Exp, MathFunc::Log, MathFunc::Pow, MathFunc::Cosh] {
        g.bench_function(format!("nv/{f}"), |b| {
            b.iter(|| black_box(nv.mathlib().call_f64(f, black_box(1.7), black_box(2.3))))
        });
        g.bench_function(format!("amd/{f}"), |b| {
            b.iter(|| black_box(amd.mathlib().call_f64(f, black_box(1.7), black_box(2.3))))
        });
    }
    g.finish();
}

fn bench_fast_intrinsics(c: &mut Criterion) {
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    let mut g = c.benchmark_group("fast_f32");
    for f in [MathFunc::Sin, MathFunc::Exp, MathFunc::Log] {
        g.bench_function(format!("nv_accurate/{f}"), |b| {
            b.iter(|| black_box(nv.mathlib().call_f32(f, black_box(1.3f32), 0.0)))
        });
        g.bench_function(format!("nv_fast/{f}"), |b| {
            b.iter(|| black_box(nv.mathlib().call_fast_f32(f, black_box(1.3f32), 0.0)))
        });
        g.bench_function(format!("amd_fast/{f}"), |b| {
            b.iter(|| black_box(amd.mathlib().call_fast_f32(f, black_box(1.3f32), 0.0)))
        });
    }
    g.finish();
}

/// Not a timing benchmark: measure and print the ULP-divergence profile
/// between the two vendor libraries over a moderate-argument sweep (the
/// quantitative basis for mechanism 3).
fn report_ulp_divergence(c: &mut Criterion) {
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    for f in [MathFunc::Exp, MathFunc::Log, MathFunc::Cosh, MathFunc::Sin] {
        let mut diffs = 0u64;
        let mut max_ulp = 0u64;
        let n = 10_000;
        for i in 0..n {
            let x = 0.001 + (i as f64) * 0.07;
            let a = nv.mathlib().call_f64(f, x, 0.0);
            let b = amd.mathlib().call_f64(f, x, 0.0);
            if let Some(d) = fpcore::ulp::ulp_diff_f64(a, b) {
                if d > 0 {
                    diffs += 1;
                    max_ulp = max_ulp.max(d);
                }
            }
        }
        println!("ulp-divergence {f}: {diffs}/{n} args differ, max {max_ulp} ulp");
    }
    // keep criterion happy with a trivial measurement
    c.bench_function("ulp_divergence_probe", |b| {
        b.iter(|| black_box(nv.mathlib().call_f64(MathFunc::Exp, 1.0, 0.0)))
    });
}

criterion_group!(
    benches,
    bench_fmod_variants,
    bench_transcendentals,
    bench_fast_intrinsics,
    report_ulp_divergence
);
criterion_main!(benches);
