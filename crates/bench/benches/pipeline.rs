//! Throughput of the individual pipeline stages: generation, source
//! emission, parsing, compilation (per level), execution. These bound the
//! campaign rate that the paper's 652,600-run study requires.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use difftest::campaign::TestMode;
use difftest::metadata::build_side;
use gpucc::interp::execute;
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use progen::emit::{emit, Dialect};
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_input;
use progen::parser::parse_kernel;
use progen::Precision;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let cfg = GenConfig::varity_default(Precision::F64);
    let mut i = 0u64;
    c.bench_function("generate_program_fp64", |b| {
        b.iter(|| {
            i += 1;
            black_box(generate_program(&cfg, 42, i))
        })
    });
}

fn bench_emit_parse(c: &mut Criterion) {
    let cfg = GenConfig::varity_default(Precision::F64);
    let p = generate_program(&cfg, 42, 1);
    c.bench_function("emit_cuda", |b| b.iter(|| black_box(emit(&p, Dialect::Cuda))));
    let src = emit(&p, Dialect::Cuda);
    c.bench_function("parse_kernel", |b| {
        b.iter(|| black_box(parse_kernel(&src, "bench").unwrap()))
    });
    c.bench_function("hipify_translate", |b| b.iter(|| black_box(hipify::hipify(&src))));
}

fn bench_compile(c: &mut Criterion) {
    let cfg = GenConfig::varity_default(Precision::F64);
    let p = generate_program(&cfg, 42, 1);
    let mut g = c.benchmark_group("compile");
    for level in OptLevel::ALL {
        g.bench_function(level.label(), |b| {
            b.iter(|| black_box(compile(&p, Toolchain::Nvcc, level, false)))
        });
    }
    g.finish();
}

fn bench_execute(c: &mut Criterion) {
    let cfg = GenConfig::varity_default(Precision::F64);
    let p = generate_program(&cfg, 42, 1);
    let input = generate_input(&p, 42, 0);
    let dev = Device::new(DeviceKind::NvidiaLike);
    let mut g = c.benchmark_group("execute");
    for level in [OptLevel::O0, OptLevel::O3, OptLevel::O3Fm] {
        let ir = compile(&p, Toolchain::Nvcc, level, false);
        g.bench_function(level.label(), |b| {
            b.iter(|| black_box(execute(&ir, &dev, &input).unwrap()))
        });
    }
    g.finish();
}

fn bench_one_differential_test(c: &mut Criterion) {
    // a full "one row of the campaign": build both sides, run both, compare
    let cfg = GenConfig::varity_default(Precision::F64);
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    let mut i = 0u64;
    c.bench_function("full_differential_test", |b| {
        b.iter_batched(
            || {
                i += 1;
                let p = generate_program(&cfg, 7, i);
                let input = generate_input(&p, 7, 0);
                (p, input)
            },
            |(p, input)| {
                let a = build_side(&p, Toolchain::Nvcc, OptLevel::O3, TestMode::Direct);
                let b2 = build_side(&p, Toolchain::Hipcc, OptLevel::O3, TestMode::Direct);
                let ra = execute(&a, &nv, &input).unwrap();
                let rb = execute(&b2, &amd, &input).unwrap();
                black_box(difftest::compare_runs(&ra.value, &rb.value))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_emit_parse,
    bench_compile,
    bench_execute,
    bench_one_differential_test
);
criterion_main!(benches);
