//! Mechanism-attribution ablation: run the same campaign with each
//! divergence mechanism enabled *alone*, and with each disabled from the
//! full set, attributing discrepancy counts to DESIGN.md §4's mechanisms.
//!
//! Usage: `ablation [--programs N] [--fp32] [--seed S]`

use difftest::campaign::{run_campaign, CampaignConfig, TestMode};
use gpusim::QuirkSet;
use progen::ast::Precision;

struct Mechanism {
    name: &'static str,
    set: fn(&mut QuirkSet, bool),
}

const MECHANISMS: &[Mechanism] = &[
    Mechanism { name: "fmod algorithms (exact vs chunked)", set: |q, v| q.fmod_algorithms = v },
    Mechanism { name: "ceil tiny-positive quirk", set: |q, v| q.ceil_tiny = v },
    Mechanism {
        name: "transcendental kernels (exp/log/pow/...)",
        set: |q, v| q.transcendental_kernels = v,
    },
    Mechanism { name: "fast-math intrinsics (__sinf vs V_SIN)", set: |q, v| q.fast_intrinsics = v },
    Mechanism { name: "fast-math FTZ asymmetry", set: |q, v| q.ftz_fast_math = v },
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fp32 = args.iter().any(|a| a == "--fp32");
    let programs = args
        .iter()
        .position(|a| a == "--programs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let precision = if fp32 { Precision::F32 } else { Precision::F64 };
    let base = {
        let mut c =
            CampaignConfig::default_for(precision, TestMode::Direct).with_programs(programs);
        c.seed = seed;
        c
    };

    let run_with = |quirks: QuirkSet| {
        let mut cfg = base.clone();
        cfg.quirks = quirks;
        run_campaign(&cfg).total_discrepancies()
    };

    eprintln!(
        "ablating {} {} programs × {} inputs × 5 levels …",
        programs,
        precision.label(),
        base.inputs_per_program
    );
    let full = run_with(QuirkSet::all());
    let none = run_with(QuirkSet::none());

    println!("MECHANISM ATTRIBUTION ({} programs, {}, seed {seed})\n", programs, precision.label());
    println!("{:<44}{:>12}{:>14}", "mechanism", "alone", "full minus it");
    for m in MECHANISMS {
        // enabled alone
        let mut only = QuirkSet::none();
        (m.set)(&mut only, true);
        let alone = run_with(only);
        // disabled from the full set
        let mut without = QuirkSet::all();
        (m.set)(&mut without, false);
        let drop = full.saturating_sub(run_with(without));
        println!("{:<44}{alone:>12}{drop:>14}", m.name);
    }
    println!("{:<44}{full:>12}{:>14}", "ALL mechanisms", "-");
    println!("{:<44}{none:>12}{:>14}", "none (pipeline-only baseline)", "-");
    println!(
        "\n(`alone` = discrepancies with only that mechanism active;\n\
         `full minus it` = discrepancies the full configuration loses when\n\
         it is turned off. The pipeline-only baseline captures contraction/\n\
         reassociation divergence that needs no device quirk at all.)"
    );
}
