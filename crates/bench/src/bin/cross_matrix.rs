//! Cross-configuration decomposition: split the paper's compound
//! nvcc@NVIDIA-vs-hipcc@AMD comparison into its compiler-only and
//! library-only components — an experiment real clusters cannot run (an
//! nvcc binary will not execute on an AMD GPU) but the simulator can.
//!
//! Usage: `cross_matrix [--programs N] [--fp32] [--seed S]`

use difftest::cross::{render_cross, run_cross_matrix};
use gpucc::pipeline::OptLevel;
use gpusim::QuirkSet;
use progen::ast::Precision;
use progen::grammar::GenConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fp32 = args.iter().any(|a| a == "--fp32");
    let programs = args
        .iter()
        .position(|a| a == "--programs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let precision = if fp32 { Precision::F32 } else { Precision::F64 };
    let gen = GenConfig::varity_default(precision);

    for level in [OptLevel::O0, OptLevel::O3, OptLevel::O3Fm] {
        let m = run_cross_matrix(&gen, seed, programs, 5, level, QuirkSet::all());
        println!("{}", render_cross(&m, level));
    }
    println!(
        "(pairs are symmetric; at O0 the compiler effect is zero by\n\
         construction — the pipelines only split at O1+ and under fast math)"
    );
}
