//! Exception-flag divergence between the platforms (GPU-FPX-style):
//! which IEEE events one platform raises and the other does not, including
//! the *silent* cases where the printed values agree bit-for-bit but the
//! exception behaviour differs — invisible to the paper's comparison.
//!
//! Usage: `exceptions_diff [--programs N] [--fp32] [--seed S]`

use difftest::campaign::{CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::stats::exception_diff;
use gpucc::pipeline::Toolchain;
use progen::ast::Precision;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fp32 = args.iter().any(|a| a == "--fp32");
    let programs = args
        .iter()
        .position(|a| a == "--programs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let precision = if fp32 { Precision::F32 } else { Precision::F64 };
    let mut cfg = CampaignConfig::default_for(precision, TestMode::Direct).with_programs(programs);
    cfg.seed = seed;

    eprintln!("running {} {} programs …", programs, precision.label());
    let mut meta = CampaignMeta::generate(&cfg);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);

    let rows = exception_diff::analyze(&meta);
    println!("{}", exception_diff::render(&rows));
    println!(
        "('silent' runs print bit-identical values but raised different\n\
         exception events along the way — only exception-level tooling like\n\
         GPU-FPX can see them; value-comparing campaigns cannot)"
    );
}
