//! Input-feature attribution: which input characteristics correlate with
//! discrepancies. The paper's case study 1 noted only one of ten inputs
//! triggered the `fmod` divergence; this quantifies the phenomenon
//! campaign-wide.
//!
//! Usage: `input_analysis [--programs N] [--fp32] [--seed S]`

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::stats::input_features;
use gpucc::pipeline::Toolchain;
use progen::ast::Precision;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fp32 = args.iter().any(|a| a == "--fp32");
    let programs = args
        .iter()
        .position(|a| a == "--programs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let precision = if fp32 { Precision::F32 } else { Precision::F64 };
    let mut cfg = CampaignConfig::default_for(precision, TestMode::Direct).with_programs(programs);
    cfg.seed = seed;

    eprintln!("running {} {} programs …", programs, precision.label());
    let mut meta = CampaignMeta::generate(&cfg);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    let campaign = analyze(&meta);
    let features = input_features::analyze(&meta);
    println!("{}", input_features::render(&features, &campaign));
    println!(
        "(an input is 'discrepant' if any optimization level diverged on it;\n\
         features are not exclusive — an input can appear in several rows)"
    );
}
