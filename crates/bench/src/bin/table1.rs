//! Regenerate the paper's Table I: runtime vs maximum relative error for
//! a BT-like structured-grid kernel across compiler/flag combinations.
//!
//! Usage: `table1 [--inputs N]`

use bench::bt::{render_table1, run_table1};

fn main() {
    let n = std::env::args()
        .skip_while(|a| a != "--inputs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let rows = run_table1(n);
    println!("{}", render_table1(&rows));
    println!(
        "(simulated cost-model runtimes over {n} input sweeps; error is the\n\
         maximum relative deviation from the nvcc -O0 reference — compare\n\
         the *shape* with the paper's Table I: fast math roughly halves the\n\
         runtime while growing the error, and the second toolchain's error\n\
         profile differs from the first's)"
    );
}
