//! Regenerate the paper's Table II: the five IEEE-754 exception events,
//! each demonstrated by a minimal kernel whose execution raises it on the
//! simulated device (the detection machinery GPUs famously lack — §II-B).

use difftest::campaign::TestMode;
use difftest::metadata::build_side;
use fpcore::exceptions::FpException;
use gpucc::interp::execute;
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use progen::inputs::{InputSet, InputValue};
use progen::parser::parse_kernel;

fn main() {
    println!("TABLE II — IEEE 754 STANDARD EXCEPTIONS (raised on the simulated GPU)\n");
    println!("{:<14}{:<46}demonstrating kernel expression", "Event", "Description");

    let demos: [(&str, FpException, f64, f64); 5] = [
        // (expression, event, var_2, var_3)
        ("comp = var_2 + var_3;", FpException::Inexact, 1.0, 1e-30),
        ("comp = var_2 * var_3;", FpException::Underflow, 1e-300, 1e-20),
        ("comp = var_2 * var_3;", FpException::Overflow, 1e300, 1e20),
        ("comp = var_2 / var_3;", FpException::DivideByZero, 1.0, 0.0),
        ("comp = var_2 / var_3;", FpException::Invalid, 0.0, 0.0),
    ];

    let device = Device::new(DeviceKind::NvidiaLike);
    for (expr, event, a, b) in demos {
        let src = format!(
            "__global__ void compute(double comp, double var_2, double var_3) {{ {expr} }}"
        );
        let program = parse_kernel(&src, "table2").expect("demo kernel parses");
        let ir = build_side(&program, Toolchain::Nvcc, OptLevel::O0, TestMode::Direct);
        let input = InputSet {
            values: vec![InputValue::Float(0.0), InputValue::Float(a), InputValue::Float(b)],
        };
        let r = execute(&ir, &device, &input).expect("demo runs");
        assert!(
            r.exceptions.is_set(event),
            "{event} not raised by {expr} with ({a}, {b}); got {}",
            r.exceptions
        );
        println!(
            "{:<14}{:<46}{expr}  [{a:e}, {b:e}] -> flags {}",
            event.to_string(),
            event.description(),
            r.exceptions
        );
    }
    println!("\nall five events detected by the interpreter's flag tracking");
}
