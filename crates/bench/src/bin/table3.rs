//! Regenerate the paper's Table III: the characteristics of the random
//! programs — measured over an actual generated corpus rather than merely
//! asserted.
//!
//! Usage: `table3 [--programs N]`

use difftest::stats::{census, grammar_coverage_ok, render_table3};
use progen::gen::generate_batch;
use progen::grammar::GenConfig;
use progen::Precision;

fn main() {
    let n = std::env::args()
        .skip_while(|a| a != "--programs")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);

    for precision in [Precision::F64, Precision::F32] {
        let cfg = GenConfig::varity_default(precision);
        let corpus = generate_batch(&cfg, 2024, n);
        let stats = census(&corpus);
        println!("=== {} corpus ===", precision.label());
        println!("{}", render_table3(&stats));
        assert!(grammar_coverage_ok(&stats), "grammar coverage regression: {stats:?}");
    }
}
