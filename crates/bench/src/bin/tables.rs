//! Regenerate the paper's Tables IV–X: the three campaigns (FP64 direct,
//! FP64 HIPIFY-converted, FP32 direct) with per-level discrepancy
//! breakdowns and adjacency matrices.
//!
//! Usage: `tables [--programs N] [--full] [--seed S]`
//!
//! `--full` scales to the paper's 3,540/2,840-program campaigns (minutes);
//! the default is a few hundred programs (seconds) — counts shrink
//! proportionally but every *shape* claim of §IV holds.

use difftest::campaign::{run_campaign, CampaignConfig, TestMode};
use difftest::report::{render_adjacency, render_per_level, render_summary};
use progen::ast::Precision;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut programs: Option<usize> = None;
    let mut seed = 2024u64;
    let mut full = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--programs" => {
                i += 1;
                programs = Some(args[i].parse().expect("--programs N"));
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed S");
            }
            "--full" => full = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut fp64 = CampaignConfig::default_for(Precision::F64, TestMode::Direct);
    let mut fp64_hipify = CampaignConfig::default_for(Precision::F64, TestMode::Hipified);
    let mut fp32 = CampaignConfig::default_for(Precision::F32, TestMode::Direct);
    if full {
        fp64.n_programs = 3540;
        fp64_hipify.n_programs = 3540;
        fp32.n_programs = 2840;
    }
    if let Some(n) = programs {
        fp64.n_programs = n;
        fp64_hipify.n_programs = n;
        fp32.n_programs = n;
    }
    for cfg in [&mut fp64, &mut fp64_hipify, &mut fp32] {
        cfg.seed = seed;
    }

    eprintln!(
        "running campaigns: FP64 {}p, FP64-HIPIFY {}p, FP32 {}p ...",
        fp64.n_programs, fp64_hipify.n_programs, fp32.n_programs
    );
    let t0 = std::time::Instant::now();
    let r64 = run_campaign(&fp64);
    eprintln!("FP64 done in {:.1?}", t0.elapsed());
    let t1 = std::time::Instant::now();
    let r64h = run_campaign(&fp64_hipify);
    eprintln!("FP64-HIPIFY done in {:.1?}", t1.elapsed());
    let t2 = std::time::Instant::now();
    let r32 = run_campaign(&fp32);
    eprintln!("FP32 done in {:.1?}", t2.elapsed());

    println!("{}", render_summary(&[&r64, &r64h, &r32]));
    println!(
        "{}",
        render_per_level(&r64, "TABLE V — DISCREPANCIES PER OPTIMIZATION OPTION (FP64)")
    );
    println!("{}", render_adjacency(&r64, "TABLE VI — ADJACENCY MATRICES (FP64)"));
    println!(
        "{}",
        render_per_level(
            &r64h,
            "TABLE VII — DISCREPANCIES PER OPTIMIZATION OPTION (HIPIFY-CONVERTED FP64)"
        )
    );
    println!(
        "{}",
        render_adjacency(&r64h, "TABLE VIII — ADJACENCY MATRICES (HIPIFY-CONVERTED FP64)")
    );
    println!(
        "{}",
        render_per_level(&r32, "TABLE IX — DISCREPANCIES PER OPTIMIZATION OPTION (FP32)")
    );
    println!("{}", render_adjacency(&r32, "TABLE X — ADJACENCY MATRICES (FP32)"));
}
