//! Tolerance sweep: how many of the campaign's `Num, Num` discrepancies
//! are last-ULP noise vs gross divergence? Runs one campaign, stores the
//! exact result bits, then re-analyzes under increasingly permissive
//! relative tolerances — quantifying the "small numerical difference …
//! magnified with each loop iteration" spectrum of the paper's case
//! study 1 without re-executing anything.
//!
//! Usage: `tolerance [--programs N] [--fp32] [--seed S]`

use difftest::campaign::{analyze_with_tolerance, CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::outcome::DiscrepancyClass;
use gpucc::pipeline::Toolchain;
use progen::ast::Precision;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fp32 = args.iter().any(|a| a == "--fp32");
    let programs = args
        .iter()
        .position(|a| a == "--programs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let precision = if fp32 { Precision::F32 } else { Precision::F64 };
    let mut cfg = CampaignConfig::default_for(precision, TestMode::Direct).with_programs(programs);
    cfg.seed = seed;

    eprintln!("running {} {} programs once …", programs, precision.label());
    let mut meta = CampaignMeta::generate(&cfg);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);

    println!(
        "DISCREPANCIES vs RELATIVE TOLERANCE ({} programs, {}, seed {seed})\n",
        programs,
        precision.label()
    );
    println!("{:>12}{:>16}{:>12}{:>18}", "rel tol", "discrepancies", "Num,Num", "cross-class");
    let tolerances = [0.0, 1e-15, 1e-12, 1e-9, 1e-6, 1e-3, 1e-1];
    let mut prev = u64::MAX;
    for tol in tolerances {
        let report = analyze_with_tolerance(&meta, tol);
        let total = report.total_discrepancies();
        let numnum = report.class_totals()[DiscrepancyClass::NumNum.index()];
        println!(
            "{:>12}{:>16}{:>12}{:>18}",
            if tol == 0.0 { "bitwise".to_string() } else { format!("{tol:e}") },
            total,
            numnum,
            total - numnum
        );
        assert!(total <= prev, "tolerance must be monotone");
        prev = total;
    }
    println!(
        "\n(cross-class discrepancies — NaN/Inf/Zero flips — are immune to\n\
         tolerance by definition; the Num,Num column shows how much of the\n\
         campaign's signal is last-ULP noise vs structural divergence)"
    );
}
