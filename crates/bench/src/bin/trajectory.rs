//! Emit (or validate) `BENCH_campaign.json`, the fixed-seed
//! perf-trajectory baseline (see `bench::trajectory`).
//!
//! Usage:
//!   trajectory [--programs N] [--inputs K] [--seed S] [--fp32]
//!              [--out FILE]     write the document (default: stdout)
//!   trajectory --check FILE     validate an existing document against
//!                               the current schema; exit 1 on drift

use bench::trajectory::{check, run, TrajectoryConfig};
use progen::Precision;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TrajectoryConfig::default();
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;

    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let mut value = |name: &str| -> Option<String> {
            i += 1;
            match argv.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    eprintln!("{name} needs a value");
                    None
                }
            }
        };
        match arg {
            "--programs" => match value(arg).and_then(|v| v.parse().ok()) {
                Some(n) => cfg.programs = n,
                None => return 2,
            },
            "--inputs" => match value(arg).and_then(|v| v.parse().ok()) {
                Some(n) => cfg.inputs = n,
                None => return 2,
            },
            "--seed" => match value(arg).and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return 2,
            },
            "--fp32" => cfg.precision = Precision::F32,
            "--out" => match value(arg) {
                Some(p) => out = Some(p),
                None => return 2,
            },
            "--check" => match value(arg) {
                Some(p) => check_path = Some(p),
                None => return 2,
            },
            other => {
                eprintln!("unknown flag `{other}`; see the module docs for usage");
                return 2;
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        };
        let doc: serde_json::Value = match serde_json::from_str(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path} is not valid JSON: {e}");
                return 1;
            }
        };
        return match check(&doc) {
            Ok(()) => {
                eprintln!("{path}: schema ok");
                0
            }
            Err(problems) => {
                eprintln!("{path}: schema drift ({} problem(s)):", problems.len());
                for p in &problems {
                    eprintln!("  - {p}");
                }
                1
            }
        };
    }

    eprintln!(
        "[trajectory] programs={} inputs={} seed={} precision={}",
        cfg.programs,
        cfg.inputs,
        cfg.seed,
        cfg.precision.label()
    );
    let doc = run(&cfg);
    let rendered = serde_json::to_string_pretty(&doc).expect("trajectory document serializes");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered + "\n") {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("[trajectory] written to {path}");
        }
        None => println!("{rendered}"),
    }
    0
}
