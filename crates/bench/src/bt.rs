//! The BT-like structured-grid kernel behind Table I.
//!
//! The paper's Table I (taken from its ref \[2\]) shows the NAS BT.S
//! benchmark compiled four ways — `{nvcc, clang} × {O0, O3 fast-math}` —
//! with runtime and maximum relative error. Our substrate has two GPU
//! toolchains instead of a GPU/CPU pair, so the reproduction runs a
//! BT-flavoured kernel (Gauss–Seidel-ish sweep: FMA-heavy flux sums,
//! divisions by linear combinations, a square root and a cosine) through
//! `{nvcc-sim, hipcc-sim} × {O0, O3_FM}`, reporting the cost-model runtime
//! and the maximum relative error against the `nvcc -O0` result.

use difftest::campaign::TestMode;
use difftest::metadata::build_side;
use gpucc::cost::{scaled_cost, slots_to_seconds};
use gpucc::interp::execute;
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::mathlib::MathFunc;
use gpusim::{Device, DeviceKind};
use progen::ast::*;
use progen::inputs::{InputSet, InputValue};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Build the BT-like kernel.
pub fn bt_program() -> Program {
    let v = |n: &str| Expr::Var(n.into());
    let lit = Expr::Lit;
    let add = |a, b| Expr::bin(BinOp::Add, a, b);
    let mul = |a, b| Expr::bin(BinOp::Mul, a, b);
    let div = |a, b| Expr::bin(BinOp::Div, a, b);
    let sub = |a, b| Expr::bin(BinOp::Sub, a, b);

    // flux = (u*v + v*w - w*u) / (u + v + w + 1)
    // (reassociation- and contraction-sensitive: the subtraction is a
    // hipcc-only fusion site)
    let flux = div(
        sub(
            add(mul(v("var_2"), v("var_3")), mul(v("var_3"), v("var_4"))),
            mul(v("var_4"), v("var_2")),
        ),
        add(add(add(v("var_2"), v("var_3")), v("var_4")), lit(1.0)),
    );
    // visc = u / (v + 0.5) + sqrt(u*u + w*w) * exp(-2u)
    // (recip/fma sensitive; exp uses different vendor kernels even at O0)
    let visc = add(
        div(v("var_2"), add(v("var_3"), lit(0.5))),
        mul(
            Expr::Call(
                MathFunc::Sqrt,
                vec![add(mul(v("var_2"), v("var_2")), mul(v("var_4"), v("var_4")))],
            ),
            Expr::Call(MathFunc::Exp, vec![Expr::Neg(Box::new(mul(v("var_2"), lit(2.0))))]),
        ),
    );

    Program {
        id: "bt_like".into(),
        precision: Precision::F64,
        params: vec![
            Param { name: "comp".into(), ty: ParamType::Float },
            Param { name: "var_1".into(), ty: ParamType::Int },
            Param { name: "var_2".into(), ty: ParamType::Float },
            Param { name: "var_3".into(), ty: ParamType::Float },
            Param { name: "var_4".into(), ty: ParamType::Float },
            Param { name: "var_5".into(), ty: ParamType::FloatArray },
        ],
        body: vec![
            Stmt::For {
                var: "i".into(),
                bound: "var_1".into(),
                body: vec![
                    Stmt::Assign {
                        target: LValue::Index("var_5".into(), "i".into()),
                        op: AssignOp::Set,
                        value: flux.clone(),
                    },
                    Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::AddAssign,
                        value: mul(Expr::Index("var_5".into(), "i".into()), visc.clone()),
                    },
                    Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::SubAssign,
                        value: add(
                            mul(v("comp"), lit(1.0e-3)),
                            mul(Expr::Index("var_5".into(), "i".into()), lit(2.0e-3)),
                        ),
                    },
                ],
            },
            Stmt::For {
                var: "i".into(),
                bound: "var_1".into(),
                body: vec![Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: mul(
                        Expr::Call(
                            MathFunc::Cos,
                            vec![add(v("var_3"), mul(v("comp"), lit(1.0e-6)))],
                        ),
                        lit(1.0e-2),
                    ),
                }],
            },
        ],
    }
}

/// Moderate-valued inputs (a solver state, not Varity extreme values).
pub fn bt_inputs(n: usize) -> Vec<InputSet> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB7);
    (0..n)
        .map(|_| InputSet {
            values: vec![
                InputValue::Float(rng.gen_range(-1.0..1.0)),
                InputValue::Int(16),
                InputValue::Float(rng.gen_range(0.1..3.0)),
                InputValue::Float(rng.gen_range(0.1..3.0)),
                InputValue::Float(rng.gen_range(0.1..3.0)),
                InputValue::ArrayFill(rng.gen_range(-0.5..0.5)),
            ],
        })
        .collect()
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone)]
pub struct BtRow {
    /// Compiler + flags label.
    pub config: String,
    /// Simulated runtime over the input sweep, in seconds.
    pub runtime_s: f64,
    /// Maximum relative error against the `nvcc -O0` reference.
    pub max_rel_error: f64,
}

/// Run the Table I experiment.
pub fn run_table1(n_inputs: usize) -> Vec<BtRow> {
    let program = bt_program();
    let inputs = bt_inputs(n_inputs);
    let combos = [
        (Toolchain::Nvcc, OptLevel::O0, "nvcc -O0"),
        (Toolchain::Nvcc, OptLevel::O3Fm, "nvcc -O3 -use_fast_math"),
        (Toolchain::Hipcc, OptLevel::O0, "hipcc -O0"),
        (Toolchain::Hipcc, OptLevel::O3Fm, "hipcc -O3 -DHIP_FAST_MATH"),
    ];

    // reference: nvcc -O0
    let ref_device = Device::new(DeviceKind::NvidiaLike);
    let ref_ir = build_side(&program, Toolchain::Nvcc, OptLevel::O0, TestMode::Direct);
    let reference: Vec<f64> = inputs
        .iter()
        .map(|i| execute(&ref_ir, &ref_device, i).expect("bt runs").value.to_f64())
        .collect();

    combos
        .iter()
        .map(|(tc, opt, label)| {
            let device = Device::new(match tc {
                Toolchain::Nvcc => DeviceKind::NvidiaLike,
                Toolchain::Hipcc => DeviceKind::AmdLike,
            });
            let ir = build_side(&program, *tc, *opt, TestMode::Direct);
            let mut slots = 0u64;
            let mut max_err: f64 = 0.0;
            for (input, refv) in inputs.iter().zip(&reference) {
                let r = execute(&ir, &device, input).expect("bt runs");
                slots += scaled_cost(r.cost_slots, opt.index() as u8);
                let err = ((r.value.to_f64() - refv) / refv).abs();
                max_err = max_err.max(err);
            }
            BtRow {
                config: label.to_string(),
                runtime_s: slots_to_seconds(slots),
                max_rel_error: max_err,
            }
        })
        .collect()
}

/// Render the Table I reproduction.
pub fn render_table1(rows: &[BtRow]) -> String {
    let mut out = String::new();
    out.push_str("TABLE I — INCONSISTENCIES IN BT-LIKE KERNEL (simulated)\n");
    out.push_str(&format!("{:<28}{:>14}{:>16}\n", "Compiler Options", "Runtime", "Error"));
    for r in rows {
        out.push_str(&format!(
            "{:<28}{:>12.6}s{:>16.5E}\n",
            r.config, r.runtime_s, r.max_rel_error
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_row_has_zero_error() {
        let rows = run_table1(20);
        assert_eq!(rows[0].config, "nvcc -O0");
        assert_eq!(rows[0].max_rel_error, 0.0);
    }

    #[test]
    fn fast_math_is_faster_and_less_accurate() {
        let rows = run_table1(30);
        let o0 = &rows[0];
        let fm = &rows[1];
        assert!(
            fm.runtime_s < o0.runtime_s * 0.6,
            "fast math should be >1.6x faster: {} vs {}",
            fm.runtime_s,
            o0.runtime_s
        );
        assert!(fm.max_rel_error > 0.0, "fast math must perturb the result");
        assert!(fm.max_rel_error < 1e-6, "but not catastrophically");
    }

    #[test]
    fn hipcc_diverges_from_nvcc_reference() {
        let rows = run_table1(30);
        let hip_o0 = &rows[2];
        // different fmod/exp kernels do not fire here, but contraction and
        // the math library differences may; error stays tiny at O0
        assert!(hip_o0.max_rel_error < 1e-10);
        let hip_fm = &rows[3];
        assert!(hip_fm.max_rel_error > 0.0);
    }

    #[test]
    fn table_renders_four_rows() {
        let rows = run_table1(5);
        let t = render_table1(&rows);
        assert_eq!(t.lines().count(), 6);
        assert!(t.contains("nvcc -O3 -use_fast_math"));
        assert!(t.contains("hipcc -O3 -DHIP_FAST_MATH"));
    }

    #[test]
    fn bt_program_is_loop_heavy() {
        let p = bt_program();
        assert_eq!(p.loop_depth(), 1);
        assert!(p.uses_arrays());
        assert!(p.math_calls().contains(&MathFunc::Sqrt));
        assert!(p.math_calls().contains(&MathFunc::Cos));
    }
}
