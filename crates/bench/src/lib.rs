//! # bench — benchmark harness and table-reproduction binaries
//!
//! One binary / bench per paper table or figure (see DESIGN.md §5):
//!
//! * `table1` — BT-like kernel runtime vs error across compiler/flag
//!   combinations (paper Table I).
//! * `table2` — raises and reports all five IEEE exception events
//!   (paper Table II).
//! * `table3` — program-characteristics census (paper Table III).
//! * `tables` — the main campaign: regenerates Tables IV–X.
//! * Criterion benches: generation / compilation / execution / math-library
//!   throughput, plus the end-to-end campaign.
//!
//! The [`bt`] module hosts the BT-like structured-grid kernel used by
//! Table I. The [`trajectory`] module (and the `trajectory` binary)
//! emits `BENCH_campaign.json`, the fixed-seed perf-trajectory baseline.

#![deny(missing_docs)]

pub mod bt;
pub mod trajectory;
