//! The perf-trajectory emitter: run a fixed-seed campaign once per
//! execution tier, read the telemetry back out of `obs`, and write
//! `BENCH_campaign.json` — the baseline curve the hot-path optimization
//! work (ROADMAP item 1) is measured against.
//!
//! Schema v2 splits the document by execution tier: the same campaign
//! runs through the reference interpreter and through the compiled
//! bytecode vm, side by side, and the document records each tier's
//! throughput (units/sec, runs/sec), compile-vs-exec wall split, and
//! ns-per-op percentiles (bucket-resolution estimates from the log2
//! histograms, each at most 2x the true value), plus the vm-over-interp
//! `tier_speedup` and the byte-identity verdict `reports_identical` —
//! the tier contract, re-proven on every emission. [`check`] validates
//! a document against the schema — the CI `bench-smoke` job runs it on
//! both the freshly emitted file and the committed baseline so schema
//! drift fails loudly instead of silently orphaning the trajectory.

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::report::throughput_per_sec;
use gpucc::pipeline::Toolchain;
use gpucc::ExecTier;
use progen::Precision;
use std::time::Instant;

/// Schema tag stamped into every emitted document; bump on any
/// structural change and update [`REQUIRED_NUMBERS`] to match.
pub const SCHEMA: &str = "varity-gpu/bench-campaign/v2";

/// Dotted paths of fields that must exist and be numbers.
pub const REQUIRED_NUMBERS: &[&str] = &[
    "config.programs",
    "config.inputs_per_program",
    "config.seed",
    "config.levels",
    "config.sides",
    "tiers.interp.wall_ms",
    "tiers.interp.units",
    "tiers.interp.units_per_sec",
    "tiers.interp.runs",
    "tiers.interp.runs_per_sec",
    "tiers.interp.compile.total_ms",
    "tiers.interp.exec.total_ms",
    "tiers.interp.ns_per_op.count",
    "tiers.interp.ns_per_op.mean",
    "tiers.interp.ns_per_op.p50",
    "tiers.interp.ns_per_op.p90",
    "tiers.interp.ns_per_op.p95",
    "tiers.interp.ns_per_op.p99",
    "tiers.vm.wall_ms",
    "tiers.vm.units",
    "tiers.vm.units_per_sec",
    "tiers.vm.runs",
    "tiers.vm.runs_per_sec",
    "tiers.vm.compile.total_ms",
    "tiers.vm.exec.total_ms",
    "tiers.vm.ns_per_op.count",
    "tiers.vm.ns_per_op.mean",
    "tiers.vm.ns_per_op.p50",
    "tiers.vm.ns_per_op.p90",
    "tiers.vm.ns_per_op.p95",
    "tiers.vm.ns_per_op.p99",
    "tier_speedup",
    "discrepancies",
];

/// The tiers a trajectory point measures, in emission order.
pub const MEASURED_TIERS: [ExecTier; 2] = [ExecTier::Interp, ExecTier::Vm];

/// What to run: a small, deterministic campaign.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// Number of generated programs.
    pub programs: usize,
    /// Inputs per program.
    pub inputs: usize,
    /// Campaign seed (fixed seed = comparable trajectory points).
    pub seed: u64,
    /// FP precision under test.
    pub precision: Precision,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig { programs: 60, inputs: 2, seed: 2024, precision: Precision::F64 }
    }
}

/// One tier's measured slice of the trajectory document, plus the
/// serialized analysis report used for the cross-tier identity verdict.
fn run_tier(campaign: &CampaignConfig, tier: ExecTier) -> (serde_json::Value, String, u64, f64) {
    obs::reset();
    let started = Instant::now();
    let mut meta = CampaignMeta::generate(campaign);
    for tc in Toolchain::ALL {
        meta.run_side_tier(tc, tier);
    }
    let wall_ms = started.elapsed().as_millis() as u64;
    let snap = obs::snapshot();

    let hist = |name: &str| snap.hists.get(name).cloned().unwrap_or_default();
    let units_h = hist("span.campaign.unit");
    let compile_h = hist("span.gpucc.compile");
    let exec_h = hist(&format!("{}.execns", tier.label()));
    let nsperop = hist(&format!("{}.nsperop", tier.label()));

    let wall_s = (wall_ms as f64 / 1e3).max(1e-9);
    let units_per_sec = units_h.count as f64 / wall_s;
    let report = serde_json::to_string(&analyze(&meta)).unwrap_or_default();
    let doc = serde_json::json!({
        "wall_ms": wall_ms,
        // one unit = one (program, toolchain, level) work item; one run
        // = one input execution within a unit
        "units": units_h.count,
        "units_per_sec": units_per_sec,
        "runs": snap.counter("campaign.runs_done"),
        "runs_per_sec": throughput_per_sec(&snap).unwrap_or(0.0),
        "compile": { "total_ms": compile_h.sum as f64 / 1e6 },
        "exec": { "total_ms": exec_h.sum as f64 / 1e6 },
        "ns_per_op": {
            "count": nsperop.count,
            "mean": nsperop.mean(),
            "p50": nsperop.quantile(0.50),
            "p90": nsperop.quantile(0.90),
            "p95": nsperop.quantile(0.95),
            "p99": nsperop.quantile(0.99),
        },
    });
    (doc, report, snap.counter("campaign.discrepancies"), units_per_sec)
}

/// Run the campaign once per tier and emit the trajectory document.
///
/// Resets the global `obs` registry per tier run: each tier's slice
/// describes exactly its own run.
pub fn run(cfg: &TrajectoryConfig) -> serde_json::Value {
    obs::set_enabled(true);
    let mut campaign =
        CampaignConfig::default_for(cfg.precision, TestMode::Direct).with_programs(cfg.programs);
    campaign.seed = cfg.seed;
    campaign.inputs_per_program = cfg.inputs;

    let mut tiers = serde_json::Map::new();
    let mut reports = Vec::new();
    let mut discrepancies = 0;
    let mut rates = Vec::new();
    for tier in MEASURED_TIERS {
        let (doc, report, disc, rate) = run_tier(&campaign, tier);
        tiers.insert(tier.label().to_string(), doc);
        reports.push(report);
        discrepancies = disc;
        rates.push(rate);
    }

    serde_json::json!({
        "schema": SCHEMA,
        "config": {
            "programs": campaign.n_programs,
            "inputs_per_program": campaign.inputs_per_program,
            "seed": campaign.seed,
            "precision": campaign.precision.label(),
            "levels": campaign.levels.len(),
            "sides": Toolchain::ALL.len(),
        },
        "tiers": tiers,
        // vm-over-interp throughput ratio — the headline the compiled
        // tier is accountable for
        "tier_speedup": rates[1] / rates[0].max(1e-9),
        // the tier contract, re-proven on every emission: every tier's
        // analysis report serializes byte-identically
        "reports_identical": reports.windows(2).all(|w| w[0] == w[1]),
        "discrepancies": discrepancies,
        "provenance": {
            "command": format!(
                "cargo run --release -p bench --bin trajectory -- --programs {} --inputs {} --seed {}{}",
                campaign.n_programs,
                campaign.inputs_per_program,
                campaign.seed,
                if cfg.precision == Precision::F32 { " --fp32" } else { "" },
            ),
        },
    })
}

/// Validate a trajectory document against [`SCHEMA`]: the schema tag
/// must match, every [`REQUIRED_NUMBERS`] path must resolve to a JSON
/// number, and `reports_identical` must be `true` (the tiers' reports
/// are bit-identical by contract; a trajectory point that broke that
/// contract must not pass as a baseline). Returns the list of problems
/// (empty = valid).
pub fn check(doc: &serde_json::Value) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => problems.push(format!("schema is {s:?}, expected {SCHEMA:?}")),
        None => problems.push("missing \"schema\" tag".to_string()),
    }
    for path in REQUIRED_NUMBERS {
        let mut cur = doc;
        let mut ok = true;
        for seg in path.split('.') {
            match cur.get(seg) {
                Some(v) => cur = v,
                None => {
                    problems.push(format!("missing field {path}"));
                    ok = false;
                    break;
                }
            }
        }
        if ok && !cur.is_number() {
            problems.push(format!("field {path} is not a number: {cur}"));
        }
    }
    match doc.get("reports_identical").and_then(|v| v.as_bool()) {
        Some(true) => {}
        Some(false) => problems.push(
            "reports_identical is false: the tiers diverged; this document \
             must not be a baseline"
                .to_string(),
        ),
        None => problems.push("missing field reports_identical".to_string()),
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`run`] resets the process-global registry; tests that emit
    /// serialize so concurrent emissions don't pollute each other.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn emitted_document_passes_its_own_schema_check() {
        let _gate = lock();
        let cfg = TrajectoryConfig { programs: 6, inputs: 1, ..Default::default() };
        let doc = run(&cfg);
        check(&doc).expect("fresh emission validates");
        assert_eq!(doc["config"]["programs"], 6);
        for tier in ["interp", "vm"] {
            let t = &doc["tiers"][tier];
            assert!(t["units"].as_u64().unwrap() > 0, "{tier}: {doc}");
            assert!(t["runs"].as_u64().unwrap() > 0, "{tier}: {doc}");
            assert!(t["units_per_sec"].as_f64().unwrap() > 0.0, "{tier}: {doc}");
            assert!(t["ns_per_op"]["count"].as_u64().unwrap() > 0, "{tier}: {doc}");
        }
        assert_eq!(doc["reports_identical"], true, "{doc}");
        assert!(doc["tier_speedup"].as_f64().unwrap() > 0.0, "{doc}");
    }

    #[test]
    fn tier_slices_agree_on_work_accounting() {
        let _gate = lock();
        let cfg = TrajectoryConfig { programs: 5, inputs: 2, ..Default::default() };
        let doc = run(&cfg);
        // the tiers run the same campaign: identical unit and run counts,
        // identical discrepancy tallies — only the timings may differ
        for path in ["units", "runs"] {
            assert_eq!(
                doc["tiers"]["interp"][path], doc["tiers"]["vm"][path],
                "{path} must match across tiers"
            );
        }
        assert_eq!(doc["reports_identical"], true);
    }

    #[test]
    fn fixed_seed_reruns_agree_on_work_accounting() {
        let _gate = lock();
        let cfg = TrajectoryConfig { programs: 5, inputs: 2, ..Default::default() };
        let a = run(&cfg);
        let b = run(&cfg);
        // Timing fields differ run to run; the work accounting must not.
        for tier in ["interp", "vm"] {
            for path in ["units", "runs"] {
                assert_eq!(
                    a["tiers"][tier][path], b["tiers"][tier][path],
                    "{tier}.{path} must be deterministic"
                );
            }
        }
        assert_eq!(a["discrepancies"], b["discrepancies"]);
        assert_eq!(a["config"], b["config"]);
    }

    #[test]
    fn check_reports_drift() {
        let mut doc = serde_json::json!({ "schema": SCHEMA });
        let problems = check(&doc).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("tiers.vm.wall_ms")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("reports_identical")), "{problems:?}");
        doc["schema"] = serde_json::json!("varity-gpu/bench-campaign/v1");
        let problems = check(&doc).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("expected")), "{problems:?}");
    }

    #[test]
    fn check_rejects_a_tier_divergent_document() {
        let _gate = lock();
        let cfg = TrajectoryConfig { programs: 3, inputs: 1, ..Default::default() };
        let mut doc = run(&cfg);
        doc["reports_identical"] = serde_json::json!(false);
        let problems = check(&doc).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("diverged")), "{problems:?}");
    }
}
