//! The perf-trajectory emitter: run a fixed-seed campaign, read the
//! telemetry back out of `obs`, and write `BENCH_campaign.json` — the
//! baseline curve the hot-path optimization work (ROADMAP item 1) is
//! measured against.
//!
//! The emitted document (schema [`SCHEMA`]) records throughput
//! (units/sec and runs/sec), the compile-vs-exec wall-time split from
//! the `span.gpucc.compile` and `interp.execns` histograms, and the
//! interpreter's ns-per-op percentiles from the `interp.nsperop` log2
//! histogram (bucket-resolution estimates, each at most 2x the true
//! value). [`check`] validates a document against the schema — the CI
//! `bench-smoke` job runs it on both the freshly emitted file and the
//! committed baseline so schema drift fails loudly instead of silently
//! orphaning the trajectory.

use difftest::campaign::{CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::report::throughput_per_sec;
use gpucc::pipeline::Toolchain;
use progen::Precision;
use std::time::Instant;

/// Schema tag stamped into every emitted document; bump on any
/// structural change and update [`REQUIRED_NUMBERS`] to match.
pub const SCHEMA: &str = "varity-gpu/bench-campaign/v1";

/// Dotted paths of fields that must exist and be numbers.
pub const REQUIRED_NUMBERS: &[&str] = &[
    "config.programs",
    "config.inputs_per_program",
    "config.seed",
    "config.levels",
    "config.sides",
    "wall_ms",
    "units",
    "units_per_sec",
    "runs",
    "runs_per_sec",
    "compile.total_ms",
    "compile.share",
    "exec.total_ms",
    "exec.share",
    "interp_ns_per_op.count",
    "interp_ns_per_op.mean",
    "interp_ns_per_op.p50",
    "interp_ns_per_op.p90",
    "interp_ns_per_op.p95",
    "interp_ns_per_op.p99",
    "discrepancies",
];

/// What to run: a small, deterministic campaign.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// Number of generated programs.
    pub programs: usize,
    /// Inputs per program.
    pub inputs: usize,
    /// Campaign seed (fixed seed = comparable trajectory points).
    pub seed: u64,
    /// FP precision under test.
    pub precision: Precision,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig { programs: 60, inputs: 2, seed: 2024, precision: Precision::F64 }
    }
}

/// Run the campaign and emit the trajectory document.
///
/// Resets the global `obs` registry: the document describes exactly
/// this run.
pub fn run(cfg: &TrajectoryConfig) -> serde_json::Value {
    obs::set_enabled(true);
    obs::reset();
    let campaign =
        CampaignConfig::default_for(cfg.precision, TestMode::Direct).with_programs(cfg.programs);
    let mut campaign = campaign;
    campaign.seed = cfg.seed;
    campaign.inputs_per_program = cfg.inputs;

    let started = Instant::now();
    let mut meta = CampaignMeta::generate(&campaign);
    for tc in Toolchain::ALL {
        meta.run_side(tc);
    }
    let wall_ms = started.elapsed().as_millis() as u64;
    let snap = obs::snapshot();

    let hist = |name: &str| snap.hists.get(name).cloned().unwrap_or_default();
    let units_h = hist("span.campaign.unit");
    let compile_h = hist("span.gpucc.compile");
    let exec_h = hist("interp.execns");
    let nsperop = hist("interp.nsperop");

    let wall_s = (wall_ms as f64 / 1e3).max(1e-9);
    let compile_ms = compile_h.sum as f64 / 1e6;
    let exec_ms = exec_h.sum as f64 / 1e6;
    let measured = (compile_ms + exec_ms).max(1e-9);

    serde_json::json!({
        "schema": SCHEMA,
        "config": {
            "programs": campaign.n_programs,
            "inputs_per_program": campaign.inputs_per_program,
            "seed": campaign.seed,
            "precision": campaign.precision.label(),
            "levels": campaign.levels.len(),
            "sides": Toolchain::ALL.len(),
        },
        "wall_ms": wall_ms,
        // one unit = one (program, toolchain, level) work item; one run
        // = one input execution pair within a unit
        "units": units_h.count,
        "units_per_sec": units_h.count as f64 / wall_s,
        "runs": snap.counter("campaign.runs_done"),
        "runs_per_sec": throughput_per_sec(&snap).unwrap_or(0.0),
        "compile": { "total_ms": compile_ms, "share": compile_ms / measured },
        "exec": { "total_ms": exec_ms, "share": exec_ms / measured },
        "interp_ns_per_op": {
            "count": nsperop.count,
            "mean": nsperop.mean(),
            "p50": nsperop.quantile(0.50),
            "p90": nsperop.quantile(0.90),
            "p95": nsperop.quantile(0.95),
            "p99": nsperop.quantile(0.99),
        },
        "discrepancies": snap.counter("campaign.discrepancies"),
        "provenance": {
            "command": format!(
                "cargo run --release -p bench --bin trajectory -- --programs {} --inputs {} --seed {}{}",
                campaign.n_programs,
                campaign.inputs_per_program,
                campaign.seed,
                if cfg.precision == Precision::F32 { " --fp32" } else { "" },
            ),
        },
    })
}

/// Validate a trajectory document against [`SCHEMA`]: the schema tag
/// must match and every [`REQUIRED_NUMBERS`] path must resolve to a
/// JSON number. Returns the list of problems (empty = valid).
pub fn check(doc: &serde_json::Value) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => problems.push(format!("schema is {s:?}, expected {SCHEMA:?}")),
        None => problems.push("missing \"schema\" tag".to_string()),
    }
    for path in REQUIRED_NUMBERS {
        let mut cur = doc;
        let mut ok = true;
        for seg in path.split('.') {
            match cur.get(seg) {
                Some(v) => cur = v,
                None => {
                    problems.push(format!("missing field {path}"));
                    ok = false;
                    break;
                }
            }
        }
        if ok && !cur.is_number() {
            problems.push(format!("field {path} is not a number: {cur}"));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`run`] resets the process-global registry; tests that emit
    /// serialize so concurrent emissions don't pollute each other.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn emitted_document_passes_its_own_schema_check() {
        let _gate = lock();
        let cfg = TrajectoryConfig { programs: 6, inputs: 1, ..Default::default() };
        let doc = run(&cfg);
        check(&doc).expect("fresh emission validates");
        assert_eq!(doc["config"]["programs"], 6);
        assert!(doc["units"].as_u64().unwrap() > 0, "{doc}");
        assert!(doc["runs"].as_u64().unwrap() > 0, "{doc}");
        assert!(doc["units_per_sec"].as_f64().unwrap() > 0.0, "{doc}");
        assert!(doc["interp_ns_per_op"]["count"].as_u64().unwrap() > 0, "{doc}");
        let share =
            doc["compile"]["share"].as_f64().unwrap() + doc["exec"]["share"].as_f64().unwrap();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to 1: {doc}");
    }

    #[test]
    fn fixed_seed_reruns_agree_on_work_accounting() {
        let _gate = lock();
        let cfg = TrajectoryConfig { programs: 5, inputs: 2, ..Default::default() };
        let a = run(&cfg);
        let b = run(&cfg);
        // Timing fields differ run to run; the work accounting must not.
        for path in ["units", "runs", "discrepancies"] {
            assert_eq!(a[path], b[path], "{path} must be deterministic");
        }
        assert_eq!(a["config"], b["config"]);
    }

    #[test]
    fn check_reports_drift() {
        let mut doc = serde_json::json!({ "schema": SCHEMA });
        let problems = check(&doc).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("wall_ms")), "{problems:?}");
        doc["schema"] = serde_json::json!("varity-gpu/bench-campaign/v0");
        let problems = check(&doc).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("expected")), "{problems:?}");
    }
}
