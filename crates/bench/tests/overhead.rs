//! Telemetry overhead guard.
//!
//! The obs instrumentation must stay cheap enough to leave on by
//! default: this test runs the same small campaign with telemetry off
//! and on, takes the best of three timings each (best-of filters
//! scheduler noise far better than averaging), and fails if the
//! instrumented run costs more than 25% extra wall-clock. The ISSUE
//! budget is ~5%; the looser bound here absorbs CI jitter while still
//! catching an accidental hot-loop regression (per-run registry
//! lookups, per-op counter bumps), which shows up as 2–10×, not 1.25×.

use difftest::campaign::{CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use gpucc::pipeline::Toolchain;
use progen::ast::Precision;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn run_once(config: &CampaignConfig) -> Duration {
    let start = Instant::now();
    let mut meta = CampaignMeta::generate(config);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    black_box(&meta);
    start.elapsed()
}

fn best_of(n: usize, config: &CampaignConfig) -> Duration {
    (0..n).map(|_| run_once(config)).min().unwrap()
}

#[test]
fn telemetry_overhead_stays_within_budget() {
    let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(60);

    // warm up allocators, thread pools, and code paths on both settings
    obs::set_enabled(false);
    run_once(&config);
    obs::set_enabled(true);
    run_once(&config);

    obs::set_enabled(false);
    let off = best_of(3, &config);
    obs::set_enabled(true);
    let on = best_of(3, &config);
    obs::set_enabled(true); // leave the process-global switch as found

    let ratio = on.as_secs_f64() / off.as_secs_f64().max(1e-9);
    assert!(
        ratio <= 1.25,
        "telemetry overhead {:.1}% (on {:?} vs off {:?}) exceeds the budget",
        (ratio - 1.0) * 100.0,
        on,
        off
    );
}
