//! Minimal flag parsing (the workspace deliberately avoids argument-parser
//! dependencies; the flag surface is tiny).

use gpucc::pipeline::OptLevel;
use progen::Precision;

/// A parsed flag set: `--key value` pairs, bare `--switch`es, and
/// positional arguments.
pub struct Args {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

/// Flags that never take a value.
const SWITCHES: &[&str] =
    &["--fp32", "--hipify", "--kernel-only", "--full", "--progress", "--profile", "--reference"];

impl Args {
    /// Parse an argv slice.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if SWITCHES.contains(&a.as_str()) {
                switches.push(a.clone());
            } else if let Some(key) = a.strip_prefix('-').map(|_| a.clone()) {
                i += 1;
                let value = argv.get(i).ok_or_else(|| format!("flag {key} needs a value"))?;
                pairs.push((key, value.clone()));
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args { pairs, switches, positional })
    }

    /// Value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Parsed value of `--key`, with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v:?}")),
        }
    }

    /// Reject any flag this command does not define. `pairs` lists the
    /// valid `--key value` flags, `switches` the valid bare switches.
    pub fn check_known(&self, pairs: &[&str], switches: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !pairs.contains(&k.as_str()) {
                return Err(format!("unknown flag {k} for this command"));
            }
        }
        for s in &self.switches {
            if !switches.contains(&s.as_str()) {
                return Err(format!("unknown flag {s} for this command"));
            }
        }
        Ok(())
    }

    /// True if the bare switch was passed.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The `--fp32` convention: precision defaults to FP64.
    pub fn precision(&self) -> Precision {
        if self.has("--fp32") {
            Precision::F32
        } else {
            Precision::F64
        }
    }

    /// Parse `--level` (`O0`/`O1`/`O2`/`O3`/`O3_FM`).
    pub fn level(&self) -> Result<Option<OptLevel>, String> {
        match self.get("--level") {
            None => Ok(None),
            Some(v) => OptLevel::ALL
                .into_iter()
                .find(|l| l.label().eq_ignore_ascii_case(v))
                .map(Some)
                .ok_or_else(|| format!("unknown level {v:?} (use O0..O3, O3_FM)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_switches_and_positionals() {
        let a = Args::parse(&argv("--seed 42 --fp32 file.cu --index 7")).unwrap();
        assert_eq!(a.get("--seed"), Some("42"));
        assert_eq!(a.get("--index"), Some("7"));
        assert!(a.has("--fp32"));
        assert_eq!(a.positional(), &["file.cu".to_string()]);
    }

    #[test]
    fn get_parse_defaults_and_errors() {
        let a = Args::parse(&argv("--seed 42")).unwrap();
        assert_eq!(a.get_parse("--seed", 0u64).unwrap(), 42);
        assert_eq!(a.get_parse("--index", 9u64).unwrap(), 9);
        let bad = Args::parse(&argv("--seed abc")).unwrap();
        assert!(bad.get_parse("--seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("--seed")).is_err());
    }

    #[test]
    fn check_known_rejects_undeclared_flags() {
        let a = Args::parse(&argv("--seed 1 --fp32")).unwrap();
        assert!(a.check_known(&["--seed"], &["--fp32"]).is_ok());
        assert!(a.check_known(&[], &["--fp32"]).unwrap_err().contains("--seed"));
        assert!(a.check_known(&["--seed"], &[]).unwrap_err().contains("--fp32"));
    }

    #[test]
    fn precision_convention() {
        assert_eq!(Args::parse(&argv("")).unwrap().precision(), Precision::F64);
        assert_eq!(Args::parse(&argv("--fp32")).unwrap().precision(), Precision::F32);
    }

    #[test]
    fn level_parsing() {
        let a = Args::parse(&argv("--level o3_fm")).unwrap();
        assert_eq!(a.level().unwrap(), Some(OptLevel::O3Fm));
        let bad = Args::parse(&argv("--level O9")).unwrap();
        assert!(bad.level().is_err());
        assert_eq!(Args::parse(&argv("")).unwrap().level().unwrap(), None);
    }
}
