//! `varity-gpu analyze` — merge metadata halves and print the tables.
//!
//! When the metadata carries the double-double reference side (campaigns
//! run with `--reference`), a "who drifted" verdict table follows the
//! adjacency matrices, and the `--profile` attribution table gains
//! per-verdict columns.
//!
//! With `--profile`, also print the campaign telemetry profile (span
//! timings, throughput, counters) and the "discrepancies by responsible
//! pass" attribution table.

use super::parse_known;
use difftest::attribution::attribute;
use difftest::campaign::analyze;
use difftest::metadata::CampaignMeta;
use difftest::report::{
    render_adjacency, render_attribution, render_digest, render_per_level, render_profile,
    render_verdicts,
};
use std::path::Path;

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, &[], &["--profile"]) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let files = args.positional();
    if files.is_empty() || files.len() > 2 {
        eprintln!("usage: varity-gpu analyze FILE [FILE2] [--profile]");
        return 2;
    }
    let mut meta = match CampaignMeta::load(Path::new(&files[0])) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot load {}: {e}", files[0]);
            return 1;
        }
    };
    if let Some(second) = files.get(1) {
        let other = match CampaignMeta::load(Path::new(second)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot load {second}: {e}");
                return 1;
            }
        };
        meta = match CampaignMeta::merge(meta, other) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot merge: {e}");
                return 1;
            }
        };
    }
    if !meta.is_complete() {
        eprintln!("metadata only covers sides {:?}; provide the other half too", meta.sides_run);
        return 1;
    }
    let report = analyze(&meta);
    println!("{}", render_digest(&report));
    println!("{}", render_per_level(&report, "discrepancies per optimization option"));
    println!("{}", render_adjacency(&report, "adjacency matrices"));
    // Empty unless the metadata carries the double-double reference side.
    let verdicts = render_verdicts(&report);
    if !verdicts.is_empty() {
        println!("{verdicts}");
    }
    if args.has("--profile") {
        match &meta.metrics {
            Some(snap) => println!("{}", render_profile(snap)),
            None => eprintln!(
                "no telemetry in this metadata (recorded by an older binary?); \
                 skipping the profile table"
            ),
        }
        println!("{}", render_attribution(&attribute(&meta)));
    }
    0
}
