//! `varity-gpu campaign` — run a campaign (or one side of it) and save
//! JSON metadata; the CLI face of the Fig. 3 protocol.
//!
//! Telemetry surface:
//!
//! * `--metrics FILE` streams a JSONL event log (`campaign_start`,
//!   per-phase `phase` lines, the full counter/histogram dump, and a
//!   `campaign_end` trailer);
//! * `--progress` prints a live stderr line — runs done, throughput,
//!   ETA, and discrepancies found so far;
//! * `--trace FILE` collects a hierarchical span trace of the whole run
//!   (per-unit spans, per-pass compile events, per-exec events) and
//!   writes Chrome trace-event JSON loadable in Perfetto /
//!   `chrome://tracing`;
//! * the final [`obs::MetricsSnapshot`] always rides inside the saved
//!   metadata, so `varity-gpu analyze --profile` works on either half of
//!   a between-platform campaign.
//!
//! Fault-tolerance surface:
//!
//! * `--checkpoint DIR` journals every completed work unit, so the
//!   process can be killed at any instant and `--resume DIR` replays the
//!   journal, re-runs only the remaining units, and produces the same
//!   final report as an uninterrupted run (`--resume` takes its
//!   configuration from the checkpoint, ignoring config flags);
//! * `--fuel N` / `--timeout-ms N` bound each execution's instruction
//!   and wall-clock budgets; exhausted tests are quarantined, not fatal;
//! * `--max-faults N` is a circuit breaker: the campaign aborts (exit 3)
//!   once more than `N` tests fault;
//! * `--quarantine FILE` writes the fault log (JSONL: a config header
//!   line, then one `TestFault` per line) for `varity-gpu replay`;
//!   with `--checkpoint`/`--resume` it defaults to
//!   `DIR/quarantine.jsonl`.
//!
//! Scale-out surface (what `varity-gpu farm` workers run):
//!
//! * `--shard K/N` runs only the tests whose generation index ≡ K
//!   (mod N) — the slice `CampaignMeta::merge_shards` reassembles. With
//!   `--checkpoint` the spec is persisted in the directory, so
//!   `--resume` re-runs exactly the same slice with no flag needed;
//! * a `stop` file dropped in the checkpoint directory drains the run
//!   at the next unit boundary (flush + exit 130), signal-free.
//!
//! Execution tiers:
//!
//! * `--exec-tier interp|vm|differential` picks how compiled kernels
//!   execute: the tree-walking reference interpreter, the compiled
//!   bytecode vm (the default — same bits, a fraction of the time), or
//!   both in lockstep with any bit difference quarantined as a vm bug.
//!   Tiers are bit-identical, so reports, checkpoints, and resumes are
//!   interchangeable across them.
//!
//! Ground truth:
//!
//! * `--reference` also runs every test through the double-double
//!   extended-precision executor (one strict O0 evaluation per input,
//!   correctly rounded at the end), recorded as a third side. `analyze`
//!   then scores each vendor against the truth and prints "who drifted"
//!   verdicts. Like the tier, it is runtime-only: pass it again on
//!   `--resume` to keep running the truth side.
//!
//! Result tables go to stdout; everything else goes to stderr.

use super::{flag, parse_known};
use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::checkpoint::{
    run_reference_ft, run_side_ft_tier, Checkpoint, FtSession, FtStatus, ShardSpec,
};
use difftest::fault::{self, TestFault};
use difftest::metadata::CampaignMeta;
use difftest::report::{render_digest, render_per_level, render_verdicts};
use gpucc::pipeline::Toolchain;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAIRS: &[&str] = &[
    "--seed",
    "--programs",
    "--inputs",
    "--side",
    "--out",
    "--metrics",
    "--checkpoint",
    "--resume",
    "--fuel",
    "--timeout-ms",
    "--max-faults",
    "--quarantine",
    "--shard",
    "--trace",
    "--exec-tier",
];
const SWITCHES: &[&str] = &["--fp32", "--hipify", "--full", "--progress", "--reference"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    if args.get("--checkpoint").is_some() && args.get("--resume").is_some() {
        eprintln!("--checkpoint and --resume are mutually exclusive (resume continues its own checkpoint)");
        return 2;
    }

    // The tier is an execution strategy, not campaign configuration: the
    // tiers are bit-identical, so it is deliberately NOT stored in the
    // checkpoint — a vm-tier resume of an interp-tier run (or vice versa)
    // produces the same bytes.
    let exec_tier: gpucc::ExecTier = match args.get("--exec-tier").unwrap_or("vm").parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Like the tier, the reference side is runtime-only: truth records are
    // journaled once run, but whether to (keep) running them is decided by
    // the flag on each invocation — including `--resume`.
    let with_reference = args.has("--reference");

    let max_faults: Option<u64> = match args.get("--max-faults") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("bad value for --max-faults: {v:?}");
                return 2;
            }
        },
    };

    // Configuration + checkpoint session. A resumed campaign must re-run
    // under the exact stored config (determinism is what makes replayed
    // and re-run units interchangeable), so `--resume` loads it from the
    // checkpoint directory and config flags are not consulted.
    let (config, checkpoint_dir, journal, replayed_units, shard) = if let Some(dir) =
        args.get("--resume")
    {
        if args.get("--shard").is_some() {
            eprintln!("--shard is stored in the checkpoint; --resume re-runs the same slice");
            return 2;
        }
        let dir = PathBuf::from(dir);
        match Checkpoint::resume(&dir) {
            Ok((ckpt, config, units)) => {
                let shard = ckpt.shard_spec();
                (config, Some(dir), Some(ckpt.into_journal()), units, shard)
            }
            Err(e) => {
                eprintln!("cannot resume checkpoint: {e}");
                return 1;
            }
        }
    } else {
        let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
        let mut config = CampaignConfig::default_for(args.precision(), mode);
        config.seed = flag!(args, "--seed", config.seed);
        config.n_programs = flag!(args, "--programs", config.n_programs);
        config.inputs_per_program = flag!(args, "--inputs", config.inputs_per_program);
        if args.has("--full") {
            config.n_programs = match args.precision() {
                progen::Precision::F64 => 3540,
                progen::Precision::F32 => 2840,
            };
        }
        config.budget.max_steps = flag!(args, "--fuel", config.budget.max_steps);
        if args.get("--timeout-ms").is_some() {
            config.budget.max_wall_ms = Some(flag!(args, "--timeout-ms", 0u64));
        }
        let shard: Option<ShardSpec> = match args.get("--shard") {
            None => None,
            Some(s) => match s.parse() {
                Ok(spec) => Some(spec),
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            },
        };
        match args.get("--checkpoint") {
            None => (config, None, None, Vec::new(), shard),
            Some(dir) => {
                let dir = PathBuf::from(dir);
                match Checkpoint::create_sharded(&dir, &config, shard) {
                    Ok(ckpt) => (config, Some(dir), Some(ckpt.into_journal()), Vec::new(), shard),
                    Err(e) => {
                        eprintln!("cannot create checkpoint: {e}");
                        return 1;
                    }
                }
            }
        }
    };
    let mode = config.mode;

    let sides: Vec<Toolchain> = match args.get("--side").unwrap_or("both") {
        "nvcc" => vec![Toolchain::Nvcc],
        "hipcc" => vec![Toolchain::Hipcc],
        "both" => vec![Toolchain::Nvcc, Toolchain::Hipcc],
        other => {
            eprintln!("unknown side {other:?} (use nvcc|hipcc|both)");
            return 2;
        }
    };

    let metrics_log = match args.get("--metrics") {
        None => None,
        Some(path) => match obs::JsonlWriter::create(Path::new(path)) {
            Ok(w) => Some((w, path.to_string())),
            Err(e) => {
                eprintln!("cannot create metrics log {path}: {e}");
                return 1;
            }
        },
    };

    if let Some(dir) = &checkpoint_dir {
        // printed up front so the resume command survives any kill -9
        eprintln!(
            "[campaign] checkpointing to {}; resume with `varity-gpu campaign --resume {}`",
            dir.display(),
            dir.display()
        );
    }

    // fresh registry per campaign so metrics describe exactly this run
    // (journal replay below merges the completed units' deltas back in)
    obs::reset();
    let trace_path = args.get("--trace").map(PathBuf::from);
    if trace_path.is_some() {
        obs::trace::start();
    }
    fault::reset_shutdown();
    install_sigint_handler();

    let started = Instant::now();
    if let Some((log, _)) = &metrics_log {
        let _ = log.event(
            "campaign_start",
            serde_json::json!({
                "precision": config.precision.label(),
                "mode": mode.label(),
                "programs": config.n_programs,
                "inputs_per_program": config.inputs_per_program,
                "levels": config.levels.iter().map(|l| l.label()).collect::<Vec<_>>(),
                "seed": config.seed,
                "exec_tier": exec_tier.label(),
                "sides": sides.iter().map(|s| s.name()).collect::<Vec<_>>(),
                "reference": with_reference,
            }),
        );
    }
    let log_phase = |name: &str, since: Instant| {
        if let Some((log, _)) = &metrics_log {
            let _ = log.event(
                "phase",
                serde_json::json!({ "name": name, "ms": since.elapsed().as_millis() as u64 }),
            );
        }
    };

    let t = Instant::now();
    let mut meta = match shard {
        Some(s) => {
            eprintln!(
                "[campaign] shard {s}: running {} of {} tests (index ≡ {} mod {})",
                (config.n_programs + s.count - 1 - s.index) / s.count,
                config.n_programs,
                s.index,
                s.count
            );
            CampaignMeta::generate_shard(&config, s.index, s.count)
        }
        None => CampaignMeta::generate(&config),
    };
    log_phase("generate", t);

    let expected_runs = (meta.tests.len() * config.inputs_per_program * config.levels.len()
        * sides.len()
        + if with_reference { meta.tests.len() * config.inputs_per_program } else { 0 })
        as u64;
    let progress = if args.has("--progress") { Some(Progress::spawn(expected_runs)) } else { None };

    let mut session = FtSession::new(journal, max_faults);
    if let Some(dir) = &checkpoint_dir {
        // A `stop` file in the checkpoint directory drains this run at
        // the next unit boundary — how the farm supervisor winds down
        // workers without signals.
        session = session.with_stop_file(Checkpoint::stop_path(dir));
    }
    if !replayed_units.is_empty() {
        session.apply_replay(&mut meta, replayed_units);
        eprintln!("[campaign] resumed {} completed units from the journal", session.replayed());
    }

    let mut status = FtStatus::Complete;
    for side in &sides {
        let t = Instant::now();
        status = run_side_ft_tier(&mut meta, *side, &session, exec_tier);
        log_phase(&format!("run.{}", side.name()), t);
        if status != FtStatus::Complete {
            break;
        }
    }
    if status == FtStatus::Complete && with_reference {
        let t = Instant::now();
        status = run_reference_ft(&mut meta, &session);
        log_phase("run.reference", t);
    }
    if let Some(p) = progress {
        p.finish();
    }

    let snap = obs::snapshot();
    meta.metrics = Some(snap.clone());
    if let Some((log, path)) = &metrics_log {
        let _ = log.write_snapshot(&snap);
        let _ = log.event(
            "campaign_end",
            serde_json::json!({
                "runs": snap.counter("campaign.runs_done"),
                "discrepancies": snap.counter("campaign.discrepancies"),
                "wall_ms": started.elapsed().as_millis() as u64,
            }),
        );
        eprintln!("metrics log written to {path}");
    }

    // The trace is written even for interrupted / fault-limited runs —
    // a trace of the run that died is exactly the one worth reading.
    if let Some(path) = &trace_path {
        let events = obs::trace::stop();
        match obs::trace::write_chrome(path, &events) {
            Ok(()) => eprintln!(
                "[campaign] trace written to {} ({} events)",
                path.display(),
                events.len()
            ),
            Err(e) => {
                eprintln!("cannot write trace {}: {e}", path.display());
                return 1;
            }
        }
    }

    // quarantine log: derived data, written atomically at the end (the
    // journal remains the source of truth while running)
    let faults = session.faults();
    let quarantine_path = args
        .get("--quarantine")
        .map(PathBuf::from)
        .or_else(|| checkpoint_dir.as_deref().map(Checkpoint::quarantine_path));
    if let Some(path) = &quarantine_path {
        if let Err(e) = write_quarantine(path, &config, &faults) {
            eprintln!("cannot write quarantine log: {e}");
            return 1;
        }
    }
    if !faults.is_empty() {
        match &quarantine_path {
            Some(path) => eprintln!(
                "[campaign] {} test(s) quarantined — inspect with `varity-gpu replay {}`",
                faults.len(),
                path.display()
            ),
            None => eprintln!(
                "[campaign] {} test(s) quarantined (pass --quarantine FILE to save the log)",
                faults.len()
            ),
        }
    }

    // The metadata carries its own quarantine ledger (canonical form:
    // sorted + deduped) so shard result files merge without losing or
    // double-counting faults.
    meta.quarantine = faults.clone();
    meta.quarantine.sort();
    meta.quarantine.dedup();

    if let Some(path) = args.get("--out") {
        if matches!(status, FtStatus::Complete) {
            if let Err(e) = meta.save(Path::new(path)) {
                eprintln!("cannot save metadata: {e}");
                return 1;
            }
            eprintln!("metadata saved to {path} (sides run: {:?})", meta.sides_run);
        } else {
            // A partial save would be indistinguishable from a finished
            // result (the farm folds `--out` files verbatim); the
            // checkpoint journal is the resumable source of truth.
            eprintln!("not saving metadata to {path}: campaign did not complete");
        }
    }

    match status {
        FtStatus::Complete => {}
        FtStatus::FaultLimit => {
            eprintln!(
                "fault limit exceeded ({} faults > {} tolerated); remaining units skipped",
                faults.len(),
                max_faults.unwrap_or(0)
            );
            return 3;
        }
        FtStatus::Interrupted => {
            if let Some(journal) = session.journal() {
                let _ = journal.sync();
            }
            match &checkpoint_dir {
                Some(dir) => eprintln!(
                    "interrupted; checkpoint flushed — resume with `varity-gpu campaign --resume {}`",
                    dir.display()
                ),
                None => eprintln!("interrupted (no --checkpoint; completed work was not saved)"),
            }
            return 130;
        }
        FtStatus::IoError(e) => {
            eprintln!("checkpoint journal I/O error: {e}");
            return 1;
        }
    }

    if meta.is_complete() {
        let report = analyze(&meta);
        println!("{}", render_digest(&report));
        println!("{}", render_per_level(&report, "discrepancies per optimization option"));
        let verdicts = render_verdicts(&report);
        if !verdicts.is_empty() {
            println!("{verdicts}");
        }
    } else {
        eprintln!(
            "half-campaign complete; run the other side against the same \
             metadata config and `varity-gpu analyze` the two files"
        );
    }
    0
}

/// Write the quarantine log: line 1 is a `{"config": ...}` header, then
/// one serialized [`TestFault`] per line — exactly what `varity-gpu
/// replay` consumes. Always written atomically; an empty fault list
/// still writes the header so replaying a clean campaign's log is a
/// clean no-op.
fn write_quarantine(
    path: &Path,
    config: &CampaignConfig,
    faults: &[TestFault],
) -> Result<(), String> {
    let mut out = String::new();
    out.push_str(
        &serde_json::to_string(&serde_json::json!({ "config": config }))
            .map_err(|e| e.to_string())?,
    );
    out.push('\n');
    for f in faults {
        out.push_str(&serde_json::to_string(f).map_err(|e| e.to_string())?);
        out.push('\n');
    }
    difftest::checkpoint::atomic_write(path, out.as_bytes()).map_err(|e| e.to_string())
}

/// Install a real `SIGINT` handler that raises the cooperative shutdown
/// flag (workers stop at the next unit boundary, the checkpoint is
/// flushed, and the campaign exits 130 with the resume command printed).
/// Gated behind the off-by-default `sigint` cargo feature because it
/// needs `libc`; without it, shutdown stays cooperative-only
/// ([`difftest::fault::request_shutdown`]).
#[cfg(feature = "sigint")]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: libc::c_int) {
        // only async-signal-safe work here: one atomic store
        difftest::fault::request_shutdown();
    }
    unsafe {
        libc::signal(libc::SIGINT, on_sigint as libc::sighandler_t);
    }
}

#[cfg(not(feature = "sigint"))]
fn install_sigint_handler() {}

/// Live progress reporter: a background thread that polls the campaign
/// counters and repaints one stderr status line until stopped.
struct Progress {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Progress {
    fn spawn(expected: u64) -> Progress {
        let stop = Arc::new(AtomicBool::new(false));
        let stopped = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let runs = obs::global().counter("campaign.runs_done");
            let discrepancies = obs::global().counter("campaign.discrepancies");
            let started = Instant::now();
            loop {
                let done = runs.value();
                let secs = started.elapsed().as_secs_f64();
                let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
                let eta = if rate > 0.0 && expected > done {
                    format!("{:.0}s", (expected - done) as f64 / rate)
                } else {
                    "--".to_string()
                };
                eprint!(
                    "\r[campaign] {done}/{expected} runs ({:.1}%) | {rate:.0} runs/s | \
                     ETA {eta} | {} discrepancies ",
                    100.0 * done as f64 / expected.max(1) as f64,
                    discrepancies.value()
                );
                if stopped.load(Ordering::Relaxed) {
                    eprintln!();
                    return;
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        });
        Progress { stop, handle }
    }

    /// Stop the reporter after one final repaint with the end-state
    /// counters.
    fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}
