//! `varity-gpu campaign` — run a campaign (or one side of it) and save
//! JSON metadata; the CLI face of the Fig. 3 protocol.

use super::parse_or_usage;
use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::report::{render_digest, render_per_level};
use gpucc::pipeline::Toolchain;
use std::path::Path;

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_or_usage(argv) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
    let mut config = CampaignConfig::default_for(args.precision(), mode);
    config.seed = args.get_parse("--seed", config.seed).unwrap_or(config.seed);
    config.n_programs = args
        .get_parse("--programs", config.n_programs)
        .unwrap_or(config.n_programs);
    config.inputs_per_program = args
        .get_parse("--inputs", config.inputs_per_program)
        .unwrap_or(config.inputs_per_program);
    if args.has("--full") {
        config.n_programs = match args.precision() {
            progen::Precision::F64 => 3540,
            progen::Precision::F32 => 2840,
        };
    }

    let side = args.get("--side").unwrap_or("both");
    let mut meta = CampaignMeta::generate(&config);
    match side {
        "nvcc" => meta.run_side(Toolchain::Nvcc),
        "hipcc" => meta.run_side(Toolchain::Hipcc),
        "both" => {
            meta.run_side(Toolchain::Nvcc);
            meta.run_side(Toolchain::Hipcc);
        }
        other => {
            eprintln!("unknown side {other:?} (use nvcc|hipcc|both)");
            return 2;
        }
    }

    if let Some(path) = args.get("--out") {
        if let Err(e) = meta.save(Path::new(path)) {
            eprintln!("cannot save metadata: {e}");
            return 1;
        }
        eprintln!("metadata saved to {path} (sides run: {:?})", meta.sides_run);
    }

    if meta.is_complete() {
        let report = analyze(&meta);
        println!("{}", render_digest(&report));
        println!("{}", render_per_level(&report, "discrepancies per optimization option"));
    } else {
        eprintln!(
            "half-campaign complete; run the other side against the same \
             metadata config and `varity-gpu analyze` the two files"
        );
    }
    0
}
