//! `varity-gpu campaign` — run a campaign (or one side of it) and save
//! JSON metadata; the CLI face of the Fig. 3 protocol.
//!
//! Telemetry surface:
//!
//! * `--metrics FILE` streams a JSONL event log (`campaign_start`,
//!   per-phase `phase` lines, the full counter/histogram dump, and a
//!   `campaign_end` trailer);
//! * `--progress` prints a live stderr line — runs done, throughput,
//!   ETA, and discrepancies found so far;
//! * the final [`obs::MetricsSnapshot`] always rides inside the saved
//!   metadata, so `varity-gpu analyze --profile` works on either half of
//!   a between-platform campaign.
//!
//! Result tables go to stdout; everything else goes to stderr.

use super::{flag, parse_known};
use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use difftest::report::{render_digest, render_per_level};
use gpucc::pipeline::Toolchain;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAIRS: &[&str] = &["--seed", "--programs", "--inputs", "--side", "--out", "--metrics"];
const SWITCHES: &[&str] = &["--fp32", "--hipify", "--full", "--progress"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
    let mut config = CampaignConfig::default_for(args.precision(), mode);
    config.seed = flag!(args, "--seed", config.seed);
    config.n_programs = flag!(args, "--programs", config.n_programs);
    config.inputs_per_program = flag!(args, "--inputs", config.inputs_per_program);
    if args.has("--full") {
        config.n_programs = match args.precision() {
            progen::Precision::F64 => 3540,
            progen::Precision::F32 => 2840,
        };
    }

    let sides: Vec<Toolchain> = match args.get("--side").unwrap_or("both") {
        "nvcc" => vec![Toolchain::Nvcc],
        "hipcc" => vec![Toolchain::Hipcc],
        "both" => vec![Toolchain::Nvcc, Toolchain::Hipcc],
        other => {
            eprintln!("unknown side {other:?} (use nvcc|hipcc|both)");
            return 2;
        }
    };

    let metrics_log = match args.get("--metrics") {
        None => None,
        Some(path) => match obs::JsonlWriter::create(Path::new(path)) {
            Ok(w) => Some((w, path.to_string())),
            Err(e) => {
                eprintln!("cannot create metrics log {path}: {e}");
                return 1;
            }
        },
    };

    // fresh registry per campaign so metrics describe exactly this run
    obs::reset();
    let started = Instant::now();
    if let Some((log, _)) = &metrics_log {
        let _ = log.event(
            "campaign_start",
            serde_json::json!({
                "precision": config.precision.label(),
                "mode": mode.label(),
                "programs": config.n_programs,
                "inputs_per_program": config.inputs_per_program,
                "levels": config.levels.iter().map(|l| l.label()).collect::<Vec<_>>(),
                "seed": config.seed,
                "sides": sides.iter().map(|s| s.name()).collect::<Vec<_>>(),
            }),
        );
    }
    let log_phase = |name: &str, since: Instant| {
        if let Some((log, _)) = &metrics_log {
            let _ = log.event(
                "phase",
                serde_json::json!({ "name": name, "ms": since.elapsed().as_millis() as u64 }),
            );
        }
    };

    let expected_runs =
        (config.n_programs * config.inputs_per_program * config.levels.len() * sides.len()) as u64;
    let progress = if args.has("--progress") { Some(Progress::spawn(expected_runs)) } else { None };

    let t = Instant::now();
    let mut meta = CampaignMeta::generate(&config);
    log_phase("generate", t);
    for side in &sides {
        let t = Instant::now();
        meta.run_side(*side);
        log_phase(&format!("run.{}", side.name()), t);
    }
    if let Some(p) = progress {
        p.finish();
    }

    let snap = obs::snapshot();
    meta.metrics = Some(snap.clone());
    if let Some((log, path)) = &metrics_log {
        let _ = log.write_snapshot(&snap);
        let _ = log.event(
            "campaign_end",
            serde_json::json!({
                "runs": snap.counter("campaign.runs_done"),
                "discrepancies": snap.counter("campaign.discrepancies"),
                "wall_ms": started.elapsed().as_millis() as u64,
            }),
        );
        eprintln!("metrics log written to {path}");
    }

    if let Some(path) = args.get("--out") {
        if let Err(e) = meta.save(Path::new(path)) {
            eprintln!("cannot save metadata: {e}");
            return 1;
        }
        eprintln!("metadata saved to {path} (sides run: {:?})", meta.sides_run);
    }

    if meta.is_complete() {
        let report = analyze(&meta);
        println!("{}", render_digest(&report));
        println!("{}", render_per_level(&report, "discrepancies per optimization option"));
    } else {
        eprintln!(
            "half-campaign complete; run the other side against the same \
             metadata config and `varity-gpu analyze` the two files"
        );
    }
    0
}

/// Live progress reporter: a background thread that polls the campaign
/// counters and repaints one stderr status line until stopped.
struct Progress {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Progress {
    fn spawn(expected: u64) -> Progress {
        let stop = Arc::new(AtomicBool::new(false));
        let stopped = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let runs = obs::global().counter("campaign.runs_done");
            let discrepancies = obs::global().counter("campaign.discrepancies");
            let started = Instant::now();
            loop {
                let done = runs.value();
                let secs = started.elapsed().as_secs_f64();
                let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
                let eta = if rate > 0.0 && expected > done {
                    format!("{:.0}s", (expected - done) as f64 / rate)
                } else {
                    "--".to_string()
                };
                eprint!(
                    "\r[campaign] {done}/{expected} runs ({:.1}%) | {rate:.0} runs/s | \
                     ETA {eta} | {} discrepancies ",
                    100.0 * done as f64 / expected.max(1) as f64,
                    discrepancies.value()
                );
                if stopped.load(Ordering::Relaxed) {
                    eprintln!();
                    return;
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        });
        Progress { stop, handle }
    }

    /// Stop the reporter after one final repaint with the end-state
    /// counters.
    fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}
