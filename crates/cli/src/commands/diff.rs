//! `varity-gpu diff` — differential-test one program across all levels.

use super::{flag, parse_known};
use difftest::campaign::TestMode;
use difftest::compare_runs;
use difftest::metadata::build_side;
use gpucc::interp::execute;
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_inputs;

const PAIRS: &[&str] = &["--seed", "--index", "-n"];
const SWITCHES: &[&str] = &["--fp32", "--hipify"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = flag!(args, "--seed", 2024u64);
    let index = flag!(args, "--index", 0u64);
    let n = flag!(args, "-n", 7usize);
    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };

    let cfg = GenConfig::varity_default(args.precision());
    let program = generate_program(&cfg, seed, index);
    let inputs = generate_inputs(&program, seed, n);
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);

    // header and summary are status → stderr; discrepancy lines → stdout
    eprintln!("program {} ({} mode)", program.id, mode.label());
    let mut found = 0u32;
    for level in OptLevel::ALL {
        let nv_ir = build_side(&program, Toolchain::Nvcc, level, mode);
        let amd_ir = build_side(&program, Toolchain::Hipcc, level, mode);
        for (k, input) in inputs.iter().enumerate() {
            let (Ok(rn), Ok(ra)) = (execute(&nv_ir, &nv, input), execute(&amd_ir, &amd, input))
            else {
                eprintln!("{level} input {k}: execution error");
                continue;
            };
            if let Some(d) = compare_runs(&rn.value, &ra.value) {
                found += 1;
                println!(
                    "{:>6} input {k}: {:<10} nvcc={} hipcc={}",
                    level.label(),
                    format!("[{}]", d.class),
                    rn.value.format_exact(),
                    ra.value.format_exact()
                );
            }
        }
    }
    eprintln!("{found} discrepancies in {} comparisons", OptLevel::ALL.len() * inputs.len());
    i32::from(found == 0) // exit 0 when a discrepancy was found (grep-able)
}
