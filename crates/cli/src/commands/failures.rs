//! `varity-gpu failures` — list failing runs from campaign metadata.

use super::parse_known;
use difftest::metadata::CampaignMeta;
use difftest::report::render_failures;
use std::path::Path;

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, &[], &[]) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let files = args.positional();
    if files.is_empty() || files.len() > 2 {
        eprintln!("usage: varity-gpu failures FILE [FILE2]");
        return 2;
    }
    let mut meta = match CampaignMeta::load(Path::new(&files[0])) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot load {}: {e}", files[0]);
            return 1;
        }
    };
    if let Some(second) = files.get(1) {
        let other = match CampaignMeta::load(Path::new(second)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot load {second}: {e}");
                return 1;
            }
        };
        meta = match CampaignMeta::merge(meta, other) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot merge: {e}");
                return 1;
            }
        };
    }
    if !meta.is_complete() {
        eprintln!("metadata only covers sides {:?}", meta.sides_run);
        return 1;
    }
    print!("{}", render_failures(&meta));
    0
}
