//! `varity-gpu farm` — run a campaign as a supervised, self-healing
//! multi-worker service.
//!
//! The supervisor (this process) deals the campaign into `--shards`
//! round-robin slices, materializes each as a checkpoint directory
//! under `--dir`, and keeps `--workers` subprocesses in flight, each
//! running `varity-gpu campaign --resume <shard-dir>`. Workers that
//! crash, are killed, or hang past the heartbeat window are respawned
//! with jittered exponential backoff; shards that crash repeatedly
//! without progress are demoted to the poison quarantine
//! (`shard-NNN/poison.json` records the responsible slice). Finished
//! shards fold incrementally into `--dir/merged.json`, and the final
//! merged report is identical to a single-process run of the same
//! campaign — the chaos harness in CI proves it byte-for-byte.
//!
//! Operational surface:
//!
//! * `--status-addr ADDR` serves live progress JSON over HTTP (`GET /`
//!   or `/status`) plus a Prometheus text exposition on `GET /metrics`
//!   that merges the supervisor's `farm_*` series with the rolling
//!   shard merge's `campaign_*` telemetry;
//! * `--trace FILE` writes a Chrome trace-event JSON of supervisor-side
//!   shard lifecycle instants (spawns, deaths, expiries, poisons);
//! * `--chaos-kills N` makes the supervisor itself SIGKILL `N` random
//!   workers mid-progress (fault-tolerance self-test);
//! * `--reference` makes every worker also run the double-double
//!   ground-truth side of its shard, so the merged report carries "who
//!   drifted" verdicts (verdict stats are recomputed from the merged
//!   records at analyze time, so the fold order cannot skew them);
//! * Ctrl-C (with the `sigint` feature) or `touch <dir>/stop` drains:
//!   leasing stops, in-flight workers flush their checkpoints, the
//!   exact resume command is printed, and the farm exits 130. Re-running
//!   the same command resumes: done shards fold back in, the rest
//!   continue from their journals.

use super::{flag, parse_known};
use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::fault;
use difftest::report::{render_digest, render_per_level};
use farm::{run_farm, BackoffPolicy, ChaosConfig, FarmConfig, WorkerSpec};
use std::path::Path;

const PAIRS: &[&str] = &[
    "--seed",
    "--programs",
    "--inputs",
    "--fuel",
    "--timeout-ms",
    "--dir",
    "--workers",
    "--shards",
    "--out",
    "--heartbeat-ms",
    "--grace-ms",
    "--crash-threshold",
    "--status-addr",
    "--chaos-kills",
    "--chaos-seed",
    "--trace",
];
const SWITCHES: &[&str] = &["--fp32", "--hipify", "--reference"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let Some(dir) = args.get("--dir") else {
        eprintln!("farm needs --dir DIR (shard checkpoints and the merged report live there)");
        return 2;
    };

    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
    let mut campaign = CampaignConfig::default_for(args.precision(), mode);
    campaign.seed = flag!(args, "--seed", campaign.seed);
    campaign.n_programs = flag!(args, "--programs", campaign.n_programs);
    campaign.inputs_per_program = flag!(args, "--inputs", campaign.inputs_per_program);
    campaign.budget.max_steps = flag!(args, "--fuel", campaign.budget.max_steps);
    if args.get("--timeout-ms").is_some() {
        campaign.budget.max_wall_ms = Some(flag!(args, "--timeout-ms", 0u64));
    }

    let n_workers: usize = flag!(args, "--workers", 4);
    let n_shards: usize = flag!(args, "--shards", 2 * n_workers);
    if n_workers == 0 || n_shards == 0 {
        eprintln!("--workers and --shards must be at least 1");
        return 2;
    }
    if n_shards > campaign.n_programs {
        eprintln!(
            "--shards {n_shards} exceeds --programs {}; trailing shards would be empty",
            campaign.n_programs
        );
        return 2;
    }

    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary to spawn workers: {e}");
            return 1;
        }
    };
    let mut worker = WorkerSpec::new(program);
    worker.prefix_args = vec!["campaign".to_string()];
    if args.has("--reference") {
        // Runtime-only on the campaign side (not stored in the shard
        // checkpoints), so every worker resume must re-pass the flag.
        worker.prefix_args.push("--reference".to_string());
    }
    // Workers inherit a thread budget so `n_workers` rayon pools don't
    // oversubscribe the machine.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = ((cores + n_workers - 1) / n_workers).max(1);
    worker.env.push(("RAYON_NUM_THREADS".to_string(), threads.to_string()));

    let mut cfg = FarmConfig::new(campaign, n_shards, n_workers, dir, worker);
    cfg.heartbeat_ms = flag!(args, "--heartbeat-ms", cfg.heartbeat_ms);
    cfg.grace_ms = flag!(args, "--grace-ms", cfg.grace_ms);
    cfg.crash_threshold = flag!(args, "--crash-threshold", cfg.crash_threshold);
    cfg.backoff = BackoffPolicy::default();
    cfg.seed = cfg.campaign.seed;
    cfg.status_addr = args.get("--status-addr").map(String::from);
    cfg.chaos = ChaosConfig {
        kills: flag!(args, "--chaos-kills", 0),
        seed: flag!(args, "--chaos-seed", cfg.campaign.seed),
        min_journal_growth: 1,
    };

    eprintln!(
        "[farm] {} shard(s) x {} worker(s) over {} programs; checkpoints in {}",
        n_shards, n_workers, cfg.campaign.n_programs, dir
    );

    obs::reset();
    let trace_path = args.get("--trace").map(std::path::PathBuf::from);
    if trace_path.is_some() {
        obs::trace::start();
    }
    fault::reset_shutdown();
    install_sigint_handler();

    let report = match run_farm(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("farm failed: {e}");
            return 1;
        }
    };

    // Supervisor-side trace only (workers are subprocesses): shard
    // lifecycle instants — spawns, deaths, expiries, poisons, drain.
    if let Some(path) = &trace_path {
        let events = obs::trace::stop();
        match obs::trace::write_chrome(path, &events) {
            Ok(()) => {
                eprintln!("[farm] trace written to {} ({} events)", path.display(), events.len())
            }
            Err(e) => {
                eprintln!("cannot write trace {}: {e}", path.display());
                return 1;
            }
        }
    }

    eprintln!(
        "[farm] done={} poisoned={} spawns={} respawns={} deaths={} expiries={} chaos_kills={}",
        report.shards_done,
        report.shards_poisoned.len(),
        report.spawns,
        report.respawns,
        report.worker_deaths,
        report.lease_expiries,
        report.chaos_kills
    );

    if report.drained {
        if let Some(hint) = &report.resume_hint {
            eprintln!("[farm] drained; {hint}");
        }
        return 130;
    }

    if let Some(merged) = &report.merged {
        if let Some(path) = args.get("--out") {
            if let Err(e) = merged.save(Path::new(path)) {
                eprintln!("cannot save merged metadata: {e}");
                return 1;
            }
            eprintln!("merged metadata saved to {path}");
        }
        if merged.is_complete() && report.shards_poisoned.is_empty() {
            let analysis = analyze(merged);
            println!("{}", render_digest(&analysis));
            println!("{}", render_per_level(&analysis, "discrepancies per optimization option"));
        }
    }

    if !report.shards_poisoned.is_empty() {
        eprintln!(
            "[farm] {} shard(s) poisoned: {:?} — see shard-NNN/poison.json for the \
             responsible seed ranges",
            report.shards_poisoned.len(),
            report.shards_poisoned
        );
        return 3;
    }
    0
}

/// SIGINT drains the farm: the handler raises the cooperative shutdown
/// flag; the supervisor stops leasing, stop-files (and, with the
/// `sigint` feature's process-group plumbing, SIGINTs) its workers, and
/// exits 130 once their checkpoints are flushed. Same gating as the
/// campaign command's handler.
#[cfg(feature = "sigint")]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: libc::c_int) {
        // only async-signal-safe work here: one atomic store
        difftest::fault::request_shutdown();
    }
    unsafe {
        libc::signal(libc::SIGINT, on_sigint as libc::sighandler_t);
    }
}

#[cfg(not(feature = "sigint"))]
fn install_sigint_handler() {}
