//! `varity-gpu farm` — run a campaign as a supervised, self-healing
//! multi-worker service.
//!
//! The supervisor (this process) deals the campaign into `--shards`
//! round-robin slices, materializes each as a checkpoint directory
//! under `--dir`, and keeps `--workers` subprocesses in flight, each
//! running `varity-gpu campaign --resume <shard-dir>`. Workers that
//! crash, are killed, or hang past the heartbeat window are respawned
//! with jittered exponential backoff; shards that crash repeatedly
//! without progress are demoted to the poison quarantine
//! (`shard-NNN/poison.json` records the responsible slice). Finished
//! shards fold incrementally into `--dir/merged.json`, and the final
//! merged report is identical to a single-process run of the same
//! campaign — the chaos harness in CI proves it byte-for-byte.
//!
//! Operational surface:
//!
//! * `--status-addr ADDR` serves live progress JSON over HTTP (`GET /`
//!   or `/status`) plus a Prometheus text exposition on `GET /metrics`
//!   that merges the supervisor's `farm_*` series with the rolling
//!   shard merge's `campaign_*` telemetry;
//! * `--trace FILE` writes a Chrome trace-event JSON of supervisor-side
//!   shard lifecycle instants (spawns, deaths, expiries, poisons);
//! * `--chaos-kills N` makes the supervisor itself SIGKILL `N` random
//!   workers mid-progress (fault-tolerance self-test);
//! * `--reference` makes every worker also run the double-double
//!   ground-truth side of its shard, so the merged report carries "who
//!   drifted" verdicts (verdict stats are recomputed from the merged
//!   records at analyze time, so the fold order cannot skew them);
//! * Ctrl-C (with the `sigint` feature) or `touch <dir>/stop` drains:
//!   leasing stops, in-flight workers flush their checkpoints, the
//!   exact resume command is printed, and the farm exits 130. Re-running
//!   the same command resumes: done shards fold back in, the rest
//!   continue from their journals.
//!
//! The same subcommand also spans machines:
//!
//! * `farm --coordinate ADDR --dir DIR …` runs no workers at all — it
//!   owns the lease queue behind a socket, write-ahead-journals every
//!   grant/heartbeat/complete/release/poison to `DIR/coord.journal`
//!   before replying, and folds shipped shard results into
//!   `DIR/merged.json`. Kill it anytime; re-running the same command
//!   replays the journal under a bumped epoch and fences the dead
//!   process's leases — no shard lost, none double-merged.
//! * `farm --join ADDR --dir DIR` leases shards from a coordinator over
//!   a length-prefixed, CRC-framed TCP protocol and runs workers
//!   exactly as the local farm does (every spawn is `campaign
//!   --resume`). The campaign shape comes from the coordinator's grant,
//!   so agents need no campaign flags. All agent I/O is timeout-guarded
//!   with jittered, reset-on-success retry; `--net-chaos N` arms the
//!   seeded wire adversary for self-tests.

use super::{flag, parse_known};
use crate::args::Args;
use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::fault;
use difftest::report::{render_digest, render_per_level};
use farm::{
    run_agent, run_coordinator, run_farm, AgentConfig, BackoffPolicy, ChaosConfig, CoordConfig,
    FarmConfig, NetChaosConfig, WorkerSpec,
};
use std::path::Path;

const PAIRS: &[&str] = &[
    "--seed",
    "--programs",
    "--inputs",
    "--fuel",
    "--timeout-ms",
    "--dir",
    "--workers",
    "--shards",
    "--out",
    "--heartbeat-ms",
    "--grace-ms",
    "--crash-threshold",
    "--status-addr",
    "--chaos-kills",
    "--chaos-seed",
    "--trace",
    "--coordinate",
    "--join",
    "--agent-name",
    "--max-offline-ms",
    "--io-timeout-ms",
    "--linger-ms",
    "--net-chaos",
    "--net-chaos-seed",
];
const SWITCHES: &[&str] = &["--fp32", "--hipify", "--reference"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    match (args.get("--coordinate"), args.get("--join")) {
        (Some(_), Some(_)) => {
            eprintln!("--coordinate and --join are exclusive roles; pick one per process");
            return 2;
        }
        (Some(bind), None) => return run_coordinate(&args, bind.to_string()),
        (None, Some(addr)) => return run_join(&args, addr.to_string()),
        (None, None) => {}
    }
    let Some(dir) = args.get("--dir") else {
        eprintln!("farm needs --dir DIR (shard checkpoints and the merged report live there)");
        return 2;
    };

    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
    let mut campaign = CampaignConfig::default_for(args.precision(), mode);
    campaign.seed = flag!(args, "--seed", campaign.seed);
    campaign.n_programs = flag!(args, "--programs", campaign.n_programs);
    campaign.inputs_per_program = flag!(args, "--inputs", campaign.inputs_per_program);
    campaign.budget.max_steps = flag!(args, "--fuel", campaign.budget.max_steps);
    if args.get("--timeout-ms").is_some() {
        campaign.budget.max_wall_ms = Some(flag!(args, "--timeout-ms", 0u64));
    }

    let n_workers: usize = flag!(args, "--workers", 4);
    let n_shards: usize = flag!(args, "--shards", 2 * n_workers);
    if n_workers == 0 || n_shards == 0 {
        eprintln!("--workers and --shards must be at least 1");
        return 2;
    }
    if n_shards > campaign.n_programs {
        eprintln!(
            "--shards {n_shards} exceeds --programs {}; trailing shards would be empty",
            campaign.n_programs
        );
        return 2;
    }

    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary to spawn workers: {e}");
            return 1;
        }
    };
    let mut worker = WorkerSpec::new(program);
    worker.prefix_args = vec!["campaign".to_string()];
    if args.has("--reference") {
        // Runtime-only on the campaign side (not stored in the shard
        // checkpoints), so every worker resume must re-pass the flag.
        worker.prefix_args.push("--reference".to_string());
    }
    // Workers inherit a thread budget so `n_workers` rayon pools don't
    // oversubscribe the machine.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = ((cores + n_workers - 1) / n_workers).max(1);
    worker.env.push(("RAYON_NUM_THREADS".to_string(), threads.to_string()));

    let mut cfg = FarmConfig::new(campaign, n_shards, n_workers, dir, worker);
    cfg.heartbeat_ms = flag!(args, "--heartbeat-ms", cfg.heartbeat_ms);
    cfg.grace_ms = flag!(args, "--grace-ms", cfg.grace_ms);
    cfg.crash_threshold = flag!(args, "--crash-threshold", cfg.crash_threshold);
    cfg.backoff = BackoffPolicy::default();
    cfg.seed = cfg.campaign.seed;
    cfg.status_addr = args.get("--status-addr").map(String::from);
    cfg.chaos = ChaosConfig {
        kills: flag!(args, "--chaos-kills", 0),
        seed: flag!(args, "--chaos-seed", cfg.campaign.seed),
        min_journal_growth: 1,
    };

    eprintln!(
        "[farm] {} shard(s) x {} worker(s) over {} programs; checkpoints in {}",
        n_shards, n_workers, cfg.campaign.n_programs, dir
    );

    obs::reset();
    let trace_path = args.get("--trace").map(std::path::PathBuf::from);
    if trace_path.is_some() {
        obs::trace::start();
    }
    fault::reset_shutdown();
    install_sigint_handler();

    let report = match run_farm(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("farm failed: {e}");
            return 1;
        }
    };

    // Supervisor-side trace only (workers are subprocesses): shard
    // lifecycle instants — spawns, deaths, expiries, poisons, drain.
    if let Some(path) = &trace_path {
        let events = obs::trace::stop();
        match obs::trace::write_chrome(path, &events) {
            Ok(()) => {
                eprintln!("[farm] trace written to {} ({} events)", path.display(), events.len())
            }
            Err(e) => {
                eprintln!("cannot write trace {}: {e}", path.display());
                return 1;
            }
        }
    }

    eprintln!(
        "[farm] done={} poisoned={} spawns={} respawns={} deaths={} expiries={} chaos_kills={}",
        report.shards_done,
        report.shards_poisoned.len(),
        report.spawns,
        report.respawns,
        report.worker_deaths,
        report.lease_expiries,
        report.chaos_kills
    );

    if report.drained {
        if let Some(hint) = &report.resume_hint {
            eprintln!("[farm] drained; {hint}");
        }
        return 130;
    }

    if let Some(merged) = &report.merged {
        if let Some(path) = args.get("--out") {
            if let Err(e) = merged.save(Path::new(path)) {
                eprintln!("cannot save merged metadata: {e}");
                return 1;
            }
            eprintln!("merged metadata saved to {path}");
        }
        if merged.is_complete() && report.shards_poisoned.is_empty() {
            let analysis = analyze(merged);
            println!("{}", render_digest(&analysis));
            println!("{}", render_per_level(&analysis, "discrepancies per optimization option"));
        }
    }

    if !report.shards_poisoned.is_empty() {
        eprintln!(
            "[farm] {} shard(s) poisoned: {:?} — see shard-NNN/poison.json for the \
             responsible seed ranges",
            report.shards_poisoned.len(),
            report.shards_poisoned
        );
        return 3;
    }
    0
}

/// `farm --coordinate ADDR`: own the lease queue behind a socket. No
/// workers run here; agents `--join` and ship shard results back.
fn run_coordinate(args: &Args, bind: String) -> i32 {
    let Some(dir) = args.get("--dir") else {
        eprintln!(
            "farm --coordinate needs --dir DIR (coord.journal, coord.addr, and merged.json \
             live there)"
        );
        return 2;
    };

    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
    let mut campaign = CampaignConfig::default_for(args.precision(), mode);
    campaign.seed = flag!(args, "--seed", campaign.seed);
    campaign.n_programs = flag!(args, "--programs", campaign.n_programs);
    campaign.inputs_per_program = flag!(args, "--inputs", campaign.inputs_per_program);
    campaign.budget.max_steps = flag!(args, "--fuel", campaign.budget.max_steps);
    if args.get("--timeout-ms").is_some() {
        campaign.budget.max_wall_ms = Some(flag!(args, "--timeout-ms", 0u64));
    }

    let n_shards: usize = flag!(args, "--shards", 8);
    if n_shards == 0 {
        eprintln!("--shards must be at least 1");
        return 2;
    }
    if n_shards > campaign.n_programs {
        eprintln!(
            "--shards {n_shards} exceeds --programs {}; trailing shards would be empty",
            campaign.n_programs
        );
        return 2;
    }

    let mut cfg = CoordConfig::new(campaign, n_shards, bind, dir);
    cfg.heartbeat_ms = flag!(args, "--heartbeat-ms", cfg.heartbeat_ms);
    cfg.grace_ms = flag!(args, "--grace-ms", cfg.grace_ms);
    cfg.linger_ms = flag!(args, "--linger-ms", cfg.linger_ms);
    cfg.reference = args.has("--reference");
    cfg.status_addr = args.get("--status-addr").map(String::from);

    eprintln!(
        "[fleet-coord] dealing {} shard(s) over {} programs on {}; journal in {dir}",
        cfg.n_shards, cfg.campaign.n_programs, cfg.bind
    );

    obs::reset();
    fault::reset_shutdown();
    install_sigint_handler();

    let report = match run_coordinator(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet coordinator failed: {e}");
            return 1;
        }
    };

    eprintln!(
        "[fleet-coord] done={} poisoned={} epoch={} grants={} fenced={} dup_completes={} \
         expiries={} drained={}",
        report.shards_done,
        report.shards_poisoned.len(),
        report.epoch,
        report.grants,
        report.fence_rejections,
        report.dup_completes,
        report.lease_expiries,
        report.drained
    );

    if report.drained {
        if let Some(hint) = &report.resume_hint {
            eprintln!("[fleet-coord] drained; {hint}");
        }
        return 130;
    }

    if let Some(merged) = &report.merged {
        if let Some(path) = args.get("--out") {
            if let Err(e) = merged.save(Path::new(path)) {
                eprintln!("cannot save merged metadata: {e}");
                return 1;
            }
            eprintln!("merged metadata saved to {path}");
        }
        if merged.is_complete() && report.shards_poisoned.is_empty() {
            let analysis = analyze(merged);
            println!("{}", render_digest(&analysis));
            println!("{}", render_per_level(&analysis, "discrepancies per optimization option"));
        }
    }

    if !report.shards_poisoned.is_empty() {
        eprintln!(
            "[fleet-coord] {} shard(s) poisoned: {:?} — the reporting agent's \
             shard-NNN/poison.json records the responsible slice",
            report.shards_poisoned.len(),
            report.shards_poisoned
        );
        return 3;
    }
    0
}

/// `farm --join ADDR`: lease shards from a coordinator and run workers
/// exactly as the local farm does. The campaign shape rides in on the
/// grant, so no campaign flags are needed (or honored) here.
fn run_join(args: &Args, coordinator: String) -> i32 {
    let Some(dir) = args.get("--dir") else {
        eprintln!("farm --join needs --dir DIR (shard checkpoints live there)");
        return 2;
    };
    let n_workers: usize = flag!(args, "--workers", 4);
    if n_workers == 0 {
        eprintln!("--workers must be at least 1");
        return 2;
    }

    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary to spawn workers: {e}");
            return 1;
        }
    };
    let mut worker = WorkerSpec::new(program);
    // `--reference` is appended per-lease when the grant demands it, so
    // a fleet's verdict policy is set once, on the coordinator.
    worker.prefix_args = vec!["campaign".to_string()];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = ((cores + n_workers - 1) / n_workers).max(1);
    worker.env.push(("RAYON_NUM_THREADS".to_string(), threads.to_string()));

    let mut cfg = AgentConfig::new(coordinator, dir, n_workers, worker);
    if let Some(name) = args.get("--agent-name") {
        cfg.name = name.to_string();
    }
    cfg.crash_threshold = flag!(args, "--crash-threshold", cfg.crash_threshold);
    cfg.grace_ms = flag!(args, "--grace-ms", cfg.grace_ms);
    cfg.max_offline_ms = flag!(args, "--max-offline-ms", cfg.max_offline_ms);
    cfg.io_timeout_ms = flag!(args, "--io-timeout-ms", cfg.io_timeout_ms);
    cfg.seed = flag!(args, "--seed", u64::from(std::process::id()));
    cfg.backoff = BackoffPolicy::default();
    cfg.net_chaos = NetChaosConfig {
        budget: flag!(args, "--net-chaos", 0),
        seed: flag!(args, "--net-chaos-seed", cfg.seed),
        ..NetChaosConfig::default()
    };

    eprintln!(
        "[fleet-agent {}] joining {} with {n_workers} worker(s); checkpoints in {dir}",
        cfg.name, cfg.coordinator
    );

    obs::reset();
    fault::reset_shutdown();
    install_sigint_handler();

    let report = match run_agent(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet agent failed: {e}");
            return 1;
        }
    };

    eprintln!(
        "[fleet-agent {}] completed={} poisoned={} fenced={} spawns={} deaths={} \
         faults_injected={} all_done={} drained={} gave_up={}",
        cfg.name,
        report.shards_completed,
        report.shards_poisoned,
        report.fenced,
        report.spawns,
        report.worker_deaths,
        report.faults_injected,
        report.all_done,
        report.drained,
        report.gave_up
    );

    if report.drained {
        eprintln!("[fleet-agent] drained; re-run the same command to rejoin and resume");
        return 130;
    }
    if report.gave_up {
        eprintln!(
            "[fleet-agent] coordinator unreachable past --max-offline-ms; checkpoints kept — \
             re-run the same command to rejoin and resume"
        );
        return 1;
    }
    0
}

/// SIGINT drains the farm: the handler raises the cooperative shutdown
/// flag; the supervisor stops leasing, stop-files (and, with the
/// `sigint` feature's process-group plumbing, SIGINTs) its workers, and
/// exits 130 once their checkpoints are flushed. Same gating as the
/// campaign command's handler.
#[cfg(feature = "sigint")]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: libc::c_int) {
        // only async-signal-safe work here: one atomic store
        difftest::fault::request_shutdown();
    }
    unsafe {
        libc::signal(libc::SIGINT, on_sigint as libc::sighandler_t);
    }
}

#[cfg(not(feature = "sigint"))]
fn install_sigint_handler() {}
