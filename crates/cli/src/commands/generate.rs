//! `varity-gpu generate` — emit one random test as source.

use super::parse_or_usage;
use gpucc::display::render_ir;
use gpucc::pipeline::{compile, Toolchain};
use progen::emit::{emit, emit_kernel, Dialect};
use progen::gen::generate_program;
use progen::grammar::GenConfig;

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_or_usage(argv) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = args.get_parse("--seed", 2024u64).unwrap_or(2024);
    let index = args.get_parse("--index", 0u64).unwrap_or(0);
    let dialect = match args.get("--dialect") {
        None | Some("cuda") => Dialect::Cuda,
        Some("hip") => Dialect::Hip,
        Some(other) => {
            eprintln!("unknown dialect {other:?} (use cuda|hip)");
            return 2;
        }
    };
    let cfg = GenConfig::varity_default(args.precision());
    let program = generate_program(&cfg, seed, index);
    if let Ok(Some(level)) = args.level() {
        // --level selects the IR-listing view instead of source emission
        let tc = if dialect == Dialect::Hip { Toolchain::Hipcc } else { Toolchain::Nvcc };
        let ir = compile(&program, tc, level, false);
        print!("{}", render_ir(&ir));
        return 0;
    }
    let source = if args.has("--kernel-only") {
        emit_kernel(&program)
    } else {
        emit(&program, dialect)
    };
    match args.get("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, source) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {} ({})", path, program.id);
        }
        None => print!("{source}"),
    }
    0
}
