//! `varity-gpu generate` — emit one random test as source.

use super::{flag, parse_known};
use gpucc::display::render_ir;
use gpucc::pipeline::{compile, Toolchain};
use progen::emit::{emit, emit_kernel, Dialect};
use progen::gen::generate_program;
use progen::grammar::GenConfig;

const PAIRS: &[&str] = &["--seed", "--index", "--dialect", "--level", "--out"];
const SWITCHES: &[&str] = &["--fp32", "--kernel-only"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = flag!(args, "--seed", 2024u64);
    let index = flag!(args, "--index", 0u64);
    let dialect = match args.get("--dialect") {
        None | Some("cuda") => Dialect::Cuda,
        Some("hip") => Dialect::Hip,
        Some(other) => {
            eprintln!("unknown dialect {other:?} (use cuda|hip)");
            return 2;
        }
    };
    let cfg = GenConfig::varity_default(args.precision());
    let program = generate_program(&cfg, seed, index);
    let level = match args.level() {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if let Some(level) = level {
        // --level selects the IR-listing view instead of source emission
        let tc = if dialect == Dialect::Hip { Toolchain::Hipcc } else { Toolchain::Nvcc };
        let ir = compile(&program, tc, level, false);
        print!("{}", render_ir(&ir));
        return 0;
    }
    let source =
        if args.has("--kernel-only") { emit_kernel(&program) } else { emit(&program, dialect) };
    match args.get("--out") {
        Some(path) => {
            // atomic: a crash mid-write never leaves a torn output file
            if let Err(e) =
                difftest::checkpoint::atomic_write(std::path::Path::new(path), source.as_bytes())
            {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {} ({})", path, program.id);
        }
        None => print!("{source}"),
    }
    0
}
