//! `varity-gpu hipify` — translate CUDA source text to HIP.

use super::parse_known;
use hipify::hipify;

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, &["--out"], &[]) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let Some(path) = args.positional().first() else {
        eprintln!("usage: varity-gpu hipify FILE [--out FILE]");
        return 2;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let out = hipify(&source);
    for w in &out.warnings {
        eprintln!("warning: {w}");
    }
    eprintln!(
        "{} substitutions, {} kernel launches rewritten",
        out.substitutions, out.launches_rewritten
    );
    match args.get("--out") {
        Some(dest) => {
            // atomic: a crash mid-write never leaves a torn output file
            if let Err(e) = difftest::checkpoint::atomic_write(
                std::path::Path::new(dest),
                out.source.as_bytes(),
            ) {
                eprintln!("cannot write {dest}: {e}");
                return 1;
            }
        }
        None => print!("{}", out.source),
    }
    i32::from(!out.warnings.is_empty())
}
