//! `varity-gpu inputs` — print the random inputs for a test.

use super::parse_or_usage;
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_inputs;

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_or_usage(argv) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = args.get_parse("--seed", 2024u64).unwrap_or(2024);
    let index = args.get_parse("--index", 0u64).unwrap_or(0);
    let n = args.get_parse("-n", 7usize).unwrap_or(7);
    let cfg = GenConfig::varity_default(args.precision());
    let program = generate_program(&cfg, seed, index);
    for input in generate_inputs(&program, seed, n) {
        println!("{}", input.render(program.precision));
    }
    0
}
