//! `varity-gpu inputs` — print the random inputs for a test.

use super::{flag, parse_known};
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_inputs;

const PAIRS: &[&str] = &["--seed", "--index", "-n"];
const SWITCHES: &[&str] = &["--fp32"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = flag!(args, "--seed", 2024u64);
    let index = flag!(args, "--index", 0u64);
    let n = flag!(args, "-n", 7usize);
    let cfg = GenConfig::varity_default(args.precision());
    let program = generate_program(&cfg, seed, index);
    for input in generate_inputs(&program, seed, n) {
        println!("{}", input.render(program.precision));
    }
    0
}
