//! `varity-gpu isolate` — first-diverging-statement localization.

use super::{flag, parse_known};
use difftest::campaign::TestMode;
use difftest::isolate::isolate;
use gpucc::pipeline::OptLevel;
use gpusim::QuirkSet;
use progen::emit::emit_kernel;
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_input;

const PAIRS: &[&str] = &["--seed", "--index", "--input", "--level"];
const SWITCHES: &[&str] = &["--fp32", "--hipify"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = flag!(args, "--seed", 2024u64);
    let index = flag!(args, "--index", 0u64);
    let k = flag!(args, "--input", 0u64);
    let level = match args.level() {
        Ok(l) => l.unwrap_or(OptLevel::O0),
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };

    let cfg = GenConfig::varity_default(args.precision());
    let program = generate_program(&cfg, seed, index);
    let input = generate_input(&program, seed, k);
    match isolate(&program, &input, level, mode, QuirkSet::all()) {
        Ok(report) => {
            println!("{}", emit_kernel(&program));
            println!("input: {}", input.render(program.precision));
            println!("level: {}", level.label());
            println!(
                "stores: nvcc {} / hipcc {}{}",
                report.nvcc_events,
                report.hipcc_events,
                if report.control_flow_diverged { " (control flow diverged)" } else { "" }
            );
            println!("{}", report.digest());
            if let Some(u) = report.final_ulp {
                println!("final outputs are {u} ulp apart");
            }
            0
        }
        Err(e) => {
            eprintln!("execution error: {e}");
            1
        }
    }
}
