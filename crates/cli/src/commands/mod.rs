//! Subcommand implementations. Each returns a process exit code.
//!
//! Stream and exit-code conventions (shared by every command):
//!
//! * stdout carries the command's *result* — source text, tables,
//!   discrepancy lines — so output can be piped or redirected cleanly;
//! * stderr carries status, progress, and diagnostics;
//! * exit 0 = success, 1 = runtime failure (I/O, incomplete metadata,
//!   nothing found), 2 = usage error (unknown flag, malformed value),
//!   3 = `campaign` fault-limit circuit breaker tripped, 130 =
//!   `campaign` interrupted gracefully (checkpoint flushed, resumable).

pub mod analyze;
pub mod campaign;
pub mod diff;
pub mod failures;
pub mod farm_cmd;
pub mod generate;
pub mod hipify_cmd;
pub mod inputs;
pub mod isolate;
pub mod oracle_cmd;
pub mod reduce;
pub mod replay;

use crate::args::Args;

/// Parse argv and reject flags the command does not define; on error
/// print it and return exit code 2.
pub fn parse_known(argv: &[String], pairs: &[&str], switches: &[&str]) -> Result<Args, i32> {
    let args = Args::parse(argv).map_err(usage_error)?;
    args.check_known(pairs, switches).map_err(usage_error)?;
    Ok(args)
}

fn usage_error(e: String) -> i32 {
    eprintln!("{e}");
    2
}

/// Strictly parse a numeric `--flag value`, defaulting when absent. A
/// malformed value prints the error and exits the command with code 2 —
/// never silently falls back to the default.
macro_rules! flag {
    ($args:expr, $key:expr, $default:expr) => {
        match $args.get_parse($key, $default) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    };
}
pub(crate) use flag;
