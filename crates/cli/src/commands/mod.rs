//! Subcommand implementations. Each returns a process exit code.

pub mod analyze;
pub mod campaign;
pub mod diff;
pub mod failures;
pub mod generate;
pub mod hipify_cmd;
pub mod inputs;
pub mod isolate;
pub mod reduce;

use crate::args::Args;

/// Parse argv or print the error and return exit code 2.
pub fn parse_or_usage(argv: &[String]) -> Result<Args, i32> {
    Args::parse(argv).map_err(|e| {
        eprintln!("{e}");
        2
    })
}
