//! `varity-gpu oracle` — self-validate the simulated toolchains.
//!
//! Runs the translation-validation, ground-truth, and metamorphic
//! oracles (`crates/oracle`) over a seeded budget of generated programs
//! — the campaign's own population. A violation is a toolchain bug by
//! construction (each toolchain is compared against *its own* reference
//! semantics; the double-double truth executor against its required
//! invariants), so a clean run is the precondition for trusting the
//! campaign tables.
//!
//! Telemetry surface mirrors `campaign`:
//!
//! * `--findings FILE` streams a JSONL log: an `oracle_start` header,
//!   one `finding` event per (shrunk) violation, the counter/histogram
//!   snapshot, and an `oracle_end` trailer;
//! * `--trace FILE` writes a Chrome trace-event JSON of the run's span
//!   tree (compile passes, executions), loadable in Perfetto;
//! * the human-readable summary goes to stdout (greppable
//!   `violations: N` line); status goes to stderr.
//!
//! `--exec-tier interp|vm|differential` picks the execution tier the
//! checks run through (default `vm`). The tiers are bit-identical, so
//! the report cannot depend on the choice; `differential` runs vm and
//! interpreter in lockstep and reports any divergence as a contained
//! per-program fault — the oracle oracle-ing the vm.
//!
//! Exit codes: 0 = clean, 1 = violations found (or I/O failure),
//! 2 = usage error.

use super::{flag, parse_known};
use oracle::{run_oracle, OracleConfig};
use std::path::Path;
use std::time::Instant;

const PAIRS: &[&str] = &["--budget", "--seed", "--inputs", "--findings", "--trace", "--exec-tier"];
const SWITCHES: &[&str] = &["--fp32"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let mut config = OracleConfig::new(args.precision(), 1000, 2024);
    config.budget = flag!(args, "--budget", config.budget);
    config.seed = flag!(args, "--seed", config.seed);
    config.inputs_per_program = flag!(args, "--inputs", config.inputs_per_program);
    config.exec_tier = match args.get("--exec-tier").unwrap_or("vm").parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let findings_log = match args.get("--findings") {
        None => None,
        Some(path) => match obs::JsonlWriter::create(Path::new(path)) {
            Ok(w) => Some((w, path.to_string())),
            Err(e) => {
                eprintln!("cannot create findings log {path}: {e}");
                return 1;
            }
        },
    };

    // fresh registry so the snapshot describes exactly this run
    obs::reset();
    let trace_path = args.get("--trace").map(std::path::PathBuf::from);
    if trace_path.is_some() {
        obs::trace::start();
    }
    let started = Instant::now();
    if let Some((log, _)) = &findings_log {
        let _ = log.event(
            "oracle_start",
            serde_json::json!({
                "precision": config.precision.label(),
                "budget": config.budget,
                "inputs_per_program": config.inputs_per_program,
                "seed": config.seed,
                "exec_tier": config.exec_tier.label(),
            }),
        );
    }

    eprintln!(
        "[oracle] checking {} {} programs (seed {}, {} tier)",
        config.budget,
        config.precision.label(),
        config.seed,
        config.exec_tier.label()
    );
    let report = run_oracle(&config);

    if let Some(path) = &trace_path {
        let events = obs::trace::stop();
        match obs::trace::write_chrome(path, &events) {
            Ok(()) => {
                eprintln!("[oracle] trace written to {} ({} events)", path.display(), events.len())
            }
            Err(e) => {
                eprintln!("cannot write trace {}: {e}", path.display());
                return 1;
            }
        }
    }

    if let Some((log, path)) = &findings_log {
        let _ = oracle::findings::write_findings(log, &report.violations);
        let _ = log.write_snapshot(&obs::snapshot());
        let _ = log.event(
            "oracle_end",
            serde_json::json!({
                "programs": report.programs_checked,
                "checks": report.total_checks(),
                "violations": report.violations.len(),
                "wall_ms": started.elapsed().as_millis() as u64,
            }),
        );
        eprintln!("findings log written to {path}");
    }

    // result summary on stdout
    println!(
        "oracle: {} | budget {} | seed {} | tier {}",
        report.precision, report.budget, report.seed, report.exec_tier
    );
    println!("programs checked: {}", report.programs_checked);
    println!(
        "checks: transval {} | truth {} | metamorphic {} | roundtrip {}",
        report.transval_checks,
        report.truth_checks,
        report.metamorphic_checks,
        report.roundtrip_checks
    );
    println!(
        "verdicts: consistent {} | explained {} | skipped {}",
        report.consistent, report.explained, report.skipped
    );
    if report.faulted > 0 {
        println!("faulted: {} program(s) panicked (contained by isolation)", report.faulted);
    }
    if !report.explained_by_pass.is_empty() {
        let mut parts: Vec<String> = Vec::new();
        for (pass, n) in &report.explained_by_pass {
            parts.push(format!("{pass} {n}"));
        }
        println!("explained by pass: {}", parts.join(", "));
    }
    println!(
        "metamorphic coverage: {}/10 toolchain x level cells",
        report.metamorphic_coverage.len()
    );
    println!("violations: {}", report.violations.len());
    for f in &report.violations {
        println!("{}", f.summary_line());
    }

    if report.is_clean() {
        0
    } else {
        1
    }
}
