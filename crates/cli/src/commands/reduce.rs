//! `varity-gpu reduce` — scan for a failure and shrink it.

use super::{flag, parse_known};
use difftest::campaign::TestMode;
use difftest::compare_runs;
use difftest::metadata::build_side;
use difftest::reduce::{discrepancy_check, reduce_program};
use gpucc::interp::execute;
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::emit::emit_kernel;
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_inputs;

const PAIRS: &[&str] = &["--seed", "--max-index"];
const SWITCHES: &[&str] = &["--fp32", "--hipify"];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let seed = flag!(args, "--seed", 2024u64);
    let max_index = flag!(args, "--max-index", 2000u64);
    let mode = if args.has("--hipify") { TestMode::Hipified } else { TestMode::Direct };
    let cfg = GenConfig::varity_default(args.precision());
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);

    for index in 0..max_index {
        let program = generate_program(&cfg, seed, index);
        let inputs = generate_inputs(&program, seed, 7);
        for level in OptLevel::ALL {
            let nv_ir = build_side(&program, Toolchain::Nvcc, level, mode);
            let amd_ir = build_side(&program, Toolchain::Hipcc, level, mode);
            for input in &inputs {
                let (Ok(rn), Ok(ra)) = (execute(&nv_ir, &nv, input), execute(&amd_ir, &amd, input))
                else {
                    continue;
                };
                let Some(d) = compare_runs(&rn.value, &ra.value) else {
                    continue;
                };
                eprintln!(
                    "found {} in {} at {} (nvcc={}, hipcc={})",
                    d.class,
                    program.id,
                    level.label(),
                    rn.value.format_exact(),
                    ra.value.format_exact()
                );
                let check = discrepancy_check(input.clone(), level, mode, QuirkSet::all());
                let red = reduce_program(&program, check);
                eprintln!(
                    "reduced {} → {} statements in {} steps",
                    red.original_stmts, red.final_stmts, red.steps
                );
                println!("{}", emit_kernel(&red.program));
                println!("// failure-inducing input: {}", input.render(program.precision));
                println!("// level: {}", level.label());
                return 0;
            }
        }
    }
    eprintln!("no discrepancy found in {max_index} programs (seed {seed})");
    1
}
