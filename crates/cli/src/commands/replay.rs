//! `varity-gpu replay` — re-run quarantined tests from a campaign's
//! quarantine log.
//!
//! The log (written by `campaign --quarantine` / `--checkpoint`) is
//! JSONL: line 1 is a `{"config": ...}` header with the full
//! [`CampaignConfig`], each following line one [`TestFault`]. Campaigns
//! are deterministic in their config, so `(seed, index)` regenerates the
//! exact faulting program and inputs; replay rebuilds the faulted side
//! and runs every input under the same budget, reporting whether the
//! fault reproduces.
//!
//! Faults replay inside the same isolation the campaign uses
//! ([`difftest::fault::catch_isolated`]), so replaying a panicking test
//! prints the contained panic instead of crashing the tool.
//!
//! Exit codes: 0 = replay ran (whether or not faults reproduced),
//! 1 = I/O or malformed log, 2 = usage error.

use super::parse_known;
use difftest::campaign::CampaignConfig;
use difftest::fault::{catch_isolated, TestFault};
use difftest::metadata::build_side;
use gpucc::interp::{execute_prepared_budgeted, prepare};
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use progen::gen::generate_program;
use progen::inputs::generate_inputs;

const PAIRS: &[&str] = &["--index"];
const SWITCHES: &[&str] = &[];

pub fn run(argv: &[String]) -> i32 {
    let args = match parse_known(argv, PAIRS, SWITCHES) {
        Ok(a) => a,
        Err(c) => return c,
    };
    let [path] = args.positional() else {
        eprintln!("usage: varity-gpu replay FILE [--index N]");
        return 2;
    };
    let only_index: Option<u64> = match args.get("--index") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("bad value for --index: {v:?}");
                return 2;
            }
        },
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read quarantine log {path}: {e}");
            return 1;
        }
    };
    let (config, faults) = match parse_quarantine(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("malformed quarantine log {path}: {e}");
            return 1;
        }
    };

    let selected: Vec<&TestFault> = match only_index {
        None => faults.iter().collect(),
        Some(i) => faults.iter().filter(|f| f.index == i).collect(),
    };
    if selected.is_empty() {
        println!("nothing to replay ({} fault(s) in log)", faults.len());
        return 0;
    }

    eprintln!("[replay] {} quarantined test(s) from {path}", selected.len());
    for fault in selected {
        replay_one(&config, fault);
    }
    0
}

/// Parse the quarantine JSONL: config header line + fault lines.
fn parse_quarantine(text: &str) -> Result<(CampaignConfig, Vec<TestFault>), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty file")?;
    #[derive(serde::Deserialize)]
    struct Header {
        config: CampaignConfig,
    }
    let header: Header =
        serde_json::from_str(header).map_err(|e| format!("bad config header: {e}"))?;
    let mut faults = Vec::new();
    for (i, line) in lines.enumerate() {
        let fault: TestFault =
            serde_json::from_str(line).map_err(|e| format!("bad fault on line {}: {e}", i + 2))?;
        faults.push(fault);
    }
    Ok((header.config, faults))
}

/// Parse a `"{toolchain}:{level}"` side key back into its parts.
fn parse_side_key(side: &str) -> Option<(Toolchain, OptLevel)> {
    let (tc, level) = side.split_once(':')?;
    let tc = match tc {
        "nvcc" => Toolchain::Nvcc,
        "hipcc" => Toolchain::Hipcc,
        _ => return None,
    };
    let level = OptLevel::ALL.into_iter().find(|l| l.label() == level)?;
    Some((tc, level))
}

fn replay_one(config: &CampaignConfig, fault: &TestFault) {
    println!(
        "replay index {} ({}) side {} — quarantined as {}: {}",
        fault.index, fault.program_id, fault.side, fault.kind, fault.detail
    );
    let Some((toolchain, level)) = parse_side_key(&fault.side) else {
        println!("  cannot parse side key {:?}; skipping", fault.side);
        return;
    };
    let program = generate_program(&config.gen, fault.seed, fault.index);
    if program.id != fault.program_id {
        println!(
            "  regenerated id {} != recorded {}; config/log mismatch, skipping",
            program.id, fault.program_id
        );
        return;
    }
    let inputs = generate_inputs(&program, fault.seed, config.inputs_per_program);
    let device = Device::with_quirks(
        match toolchain {
            Toolchain::Nvcc => DeviceKind::NvidiaLike,
            Toolchain::Hipcc => DeviceKind::AmdLike,
        },
        config.quirks,
    );
    let outcome = catch_isolated(|| {
        let ir = build_side(&program, toolchain, level, config.mode);
        let kernel = prepare(&ir).expect("generated kernels resolve");
        inputs
            .iter()
            .map(|input| match execute_prepared_budgeted(&kernel, &device, input, config.budget) {
                Ok(r) => format!("ok {}", r.value.format_exact()),
                Err(e) => format!("error: {e}"),
            })
            .collect::<Vec<String>>()
    });
    match outcome {
        Ok(results) => {
            for (i, r) in results.iter().enumerate() {
                println!("  input {i}: {r}");
            }
            let reproduced = results.iter().any(|r| r.starts_with("error:"));
            // an injected (chaos) panic won't reproduce in a binary
            // built without the chaos feature — that's a "no" here
            println!("  fault reproduced: {}", if reproduced { "yes" } else { "no" });
        }
        Err(msg) => {
            println!("  panicked (contained): {msg}");
            println!("  fault reproduced: yes");
        }
    }
}
