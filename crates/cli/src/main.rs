//! `varity-gpu` — the command-line driver for the gpu-numerics framework.
//!
//! Subcommands mirror the workflow of the paper:
//!
//! * `generate` — emit one random test as CUDA or HIP source (Fig. 2)
//! * `inputs`   — print the random inputs for a test
//! * `diff`     — differential-test one program across all levels
//! * `campaign` — run a testing campaign (optionally one side only, for
//!   the Fig. 3 between-platform protocol) and save JSON metadata
//! * `farm`     — run a campaign as a supervised multi-worker service:
//!   sharded checkpoints, crash/hang recovery, incremental merge; with
//!   `--coordinate`/`--join`, the same service spans machines over a
//!   crash-safe, partition-tolerant coordinator protocol
//! * `analyze`  — merge metadata halves and print the result tables
//! * `reduce`   — shrink a failing test to a minimal reproducer
//! * `isolate`  — locate the first diverging statement of a failure
//! * `hipify`   — translate CUDA source text to HIP
//! * `oracle`   — self-validate the simulated toolchains (translation
//!   validation + metamorphic checks) over a seeded program budget
//! * `replay`   — re-run quarantined tests from a campaign's fault log
//!
//! Run `varity-gpu help` for per-command usage.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("generate") => commands::generate::run(&argv[1..]),
        Some("inputs") => commands::inputs::run(&argv[1..]),
        Some("diff") => commands::diff::run(&argv[1..]),
        Some("campaign") => commands::campaign::run(&argv[1..]),
        Some("farm") => commands::farm_cmd::run(&argv[1..]),
        Some("analyze") => commands::analyze::run(&argv[1..]),
        Some("failures") => commands::failures::run(&argv[1..]),
        Some("reduce") => commands::reduce::run(&argv[1..]),
        Some("isolate") => commands::isolate::run(&argv[1..]),
        Some("hipify") => commands::hipify_cmd::run(&argv[1..]),
        Some("oracle") => commands::oracle_cmd::run(&argv[1..]),
        Some("replay") => commands::replay::run(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `varity-gpu help`");
            2
        }
    };
    std::process::exit(code);
}

const HELP: &str = "\
varity-gpu — differential testing of simulated NVIDIA/AMD GPU numerics

USAGE: varity-gpu <COMMAND> [OPTIONS]

COMMANDS:
  generate   emit one random test as CUDA/HIP source (or, with --level,
             the compiled IR listing for that optimization level)
             --seed S --index I [--fp32] [--dialect cuda|hip]
             [--kernel-only] [--level O0|..|O3_FM]
  inputs     print the random inputs for a test
             --seed S --index I [--fp32] [-n K]
  diff       differential-test one program across all optimization levels
             --seed S --index I [--fp32] [--hipify] [-n K]
  campaign   run a campaign and save JSON metadata
             [--fp32] [--hipify] [--programs N] [--inputs K] [--seed S]
             [--side nvcc|hipcc|both] [--out FILE]
             [--metrics FILE]  stream a JSONL telemetry log
             [--progress]      live stderr progress (throughput, ETA,
                               discrepancies so far)
             [--checkpoint DIR] journal completed work (crash-safe)
             [--resume DIR]     replay the journal, run only what's left
             [--fuel N]         per-execution instruction budget
             [--timeout-ms N]   per-execution wall-clock budget
             [--max-faults N]   abort once more than N tests fault
             [--quarantine FILE] save the fault log for `replay`
             [--shard K/N]      run only tests with index ≡ K (mod N);
                                persisted in the checkpoint, so --resume
                                re-runs the same slice
             [--trace FILE]     write a Chrome trace-event JSON of the
                                run (per-unit spans, compile passes,
                                executions) — open in Perfetto
             [--exec-tier interp|vm|differential]  execution tier:
                                reference interpreter, compiled bytecode
                                vm (default; same bits, faster), or both
                                in lockstep (any difference => vm bug,
                                quarantined)
             [--reference]      also run the double-double ground-truth
                                side (one strict O0 evaluation per input,
                                correctly rounded); analyze then prints
                                \"who drifted\" verdicts. Runtime-only:
                                pass it again on --resume
  farm       run a campaign as a supervised multi-worker service
             --dir DIR [--workers N] [--shards M] [--out FILE]
             [--fp32] [--hipify] [--reference]
             [--programs N] [--inputs K] [--seed S]
             [--fuel N] [--timeout-ms N]
             [--heartbeat-ms N]   hang detection window (journal silence)
             [--grace-ms N]       drain grace before hard-kill
             [--crash-threshold N] no-progress crashes before a shard is
                                  poisoned (shard-NNN/poison.json)
             [--status-addr A]    serve live progress JSON over HTTP
                                  (`/status`) and Prometheus text
                                  (`/metrics`)
             [--chaos-kills N] [--chaos-seed S]  self-test: SIGKILL N
                                  random workers mid-progress
             [--trace FILE]       supervisor-side shard lifecycle trace
                                  (Chrome trace-event JSON)
             drain: Ctrl-C or `touch DIR/stop`; re-run to resume
             fleet mode (cross-machine):
             --coordinate ADDR    own the lease queue behind a socket
                                  (no local workers); every grant/
                                  complete is write-ahead journaled to
                                  DIR/coord.journal, so killing and
                                  re-running the coordinator resumes
                                  under a bumped epoch — stale leases
                                  are fenced, no shard lost or merged
                                  twice. [--linger-ms N] keeps serving
                                  AllDone briefly after the last shard
             --join ADDR          lease shards from a coordinator and
                                  run workers exactly as the local farm
                                  does (campaign shape comes from the
                                  grant). [--agent-name NAME]
                                  [--max-offline-ms N] give up (keeping
                                  checkpoints) after N ms unreachable
                                  [--io-timeout-ms N] per-exchange cap
                                  [--net-chaos N] [--net-chaos-seed S]
                                  seeded wire adversary: drop/delay/
                                  duplicate/truncate/partition N
                                  exchanges (self-test)
  analyze    merge metadata files and print the paper-style tables
             FILE [FILE2] [--profile]
             --profile adds the telemetry profile and the discrepancies-
             by-responsible-pass attribution table; metadata carrying the
             --reference side also gets the who-drifted verdict table
  failures   list every failing (program, level, input) triple
             FILE [FILE2]
  reduce     find a failure in a seed range and shrink it
             --seed S [--fp32] [--max-index N]
  isolate    locate the first diverging statement of one failure
             --seed S --index I --input K --level O0|O1|O2|O3|O3_FM [--fp32]
  hipify     translate CUDA source text to HIP
             FILE [--out FILE]
  oracle     self-validate the toolchains: strict modes vs reference,
             metamorphic transforms, emit/parse round trips
             [--fp32] [--budget N] [--seed S] [--inputs K]
             [--findings FILE]  stream shrunk violations as JSONL
             [--trace FILE]     write a Chrome trace-event JSON
             [--exec-tier interp|vm|differential]  execution tier
                                (default vm; tiers are bit-identical)
  replay     re-run quarantined tests from a campaign's fault log
             FILE [--index N]
  help       this message

STREAMS: results (source, tables, discrepancy lines) go to stdout;
status, progress, and diagnostics go to stderr.

EXIT CODES:
  0    success (for `diff`, success means a discrepancy was found)
  1    runtime failure (I/O error, incomplete metadata, nothing found;
       for `oracle`, any confirmed violation)
  2    usage error (unknown flag or subcommand, malformed value)
  3    campaign fault limit exceeded (--max-faults circuit breaker);
       for `farm`, one or more shards were poisoned
  130  campaign interrupted; checkpoint flushed and resumable
       (for `farm`: drained; workers flushed, re-run the command to resume;
       fleet roles drain the same way — a re-run coordinator replays its
       journal, a re-run agent rejoins and resumes its checkpoints)
";
