//! End-to-end CLI tests: drive the `varity-gpu` binary the way a user
//! would and assert on its output and exit codes.

use std::process::{Command, Output};

fn varity(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_varity-gpu")).args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_all_subcommands() {
    let out = varity(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "generate", "inputs", "diff", "campaign", "farm", "analyze", "failures", "reduce",
        "isolate", "hipify", "oracle", "replay",
    ] {
        assert!(text.contains(cmd), "help missing `{cmd}`:\n{text}");
    }
    for flag in [
        "--checkpoint",
        "--resume",
        "--fuel",
        "--max-faults",
        "--quarantine",
        "--shard",
        "--workers",
        "--status-addr",
        "--chaos-kills",
    ] {
        assert!(text.contains(flag), "help missing `{flag}`:\n{text}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage_hint() {
    let out = varity(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn generate_emits_parseable_cuda() {
    let out = varity(&["generate", "--seed", "42", "--index", "3"]);
    assert!(out.status.success());
    let src = stdout(&out);
    assert!(src.contains("__global__"));
    assert!(src.contains("compute<<<1, 1>>>"));
    // the emitted source must parse back
    let p = progen::parser::parse_kernel(&src, "cli").expect("emitted source parses");
    assert_eq!(p.id, "cli");
}

#[test]
fn generate_hip_dialect() {
    let out = varity(&["generate", "--seed", "42", "--index", "3", "--dialect", "hip"]);
    assert!(out.status.success());
    let src = stdout(&out);
    assert!(src.contains("hipLaunchKernelGGL"));
    assert!(!src.contains("<<<"));
}

#[test]
fn inputs_prints_one_line_per_input() {
    let out = varity(&["inputs", "--seed", "42", "--index", "0", "-n", "4"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 4);
}

#[test]
fn diff_reports_discrepancies_for_known_failing_program() {
    // seed 31415 index 34 diverges at O3_FM (used by the quickstart example)
    let out = varity(&["diff", "--seed", "31415", "--index", "34"]);
    assert!(out.status.success(), "exit 0 when a discrepancy is found");
    let text = stdout(&out);
    assert!(text.contains("DISCREPANCY") || text.contains("[NaN") || text.contains("[Num"));
}

#[test]
fn campaign_roundtrip_through_metadata_files() {
    let dir = std::env::temp_dir().join("varity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let c1 = dir.join("c1.json");
    let c2 = dir.join("c2.json");
    let c1s = c1.to_str().unwrap();
    let c2s = c2.to_str().unwrap();

    let out = varity(&["campaign", "--programs", "15", "--side", "nvcc", "--out", c1s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = varity(&["campaign", "--programs", "15", "--side", "hipcc", "--out", c2s]);
    assert!(out.status.success());

    let out = varity(&["analyze", c1s, c2s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("FP64 direct campaign"));
    assert!(text.contains("O3_FM"));

    let out = varity(&["failures", c1s, c2s]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("failing runs"));

    std::fs::remove_file(&c1).ok();
    std::fs::remove_file(&c2).ok();
}

#[test]
fn campaign_metrics_jsonl_is_valid_and_complete() {
    let dir = std::env::temp_dir().join("varity_cli_test_metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let m = dir.join("m.jsonl");
    let ms = m.to_str().unwrap();
    let out = varity(&["campaign", "--programs", "10", "--metrics", ms, "--progress"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[campaign]"), "no progress line:\n{stderr}");
    assert!(stderr.contains("discrepancies"), "{stderr}");

    let text = std::fs::read_to_string(&m).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut counter_names = Vec::new();
    let mut hist_names = Vec::new();
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect(line);
        assert!(v.get("ts_ms").is_some(), "{line}");
        let ev = v["ev"].as_str().expect("ev is a string").to_string();
        match ev.as_str() {
            "counter" => counter_names.push(v["name"].as_str().unwrap().to_string()),
            "hist" => hist_names.push(v["name"].as_str().unwrap().to_string()),
            _ => {}
        }
        kinds.insert(ev);
    }
    for k in ["campaign_start", "phase", "counter", "hist", "campaign_end"] {
        assert!(kinds.contains(k), "missing {k} events:\n{text}");
    }
    // per-pass rewrite counters and per-phase spans made it into the log
    assert!(counter_names.iter().any(|n| n.starts_with("gpucc.rewrites.")), "{counter_names:?}");
    assert!(counter_names.iter().any(|n| n == "campaign.runs_done"));
    assert!(hist_names.iter().any(|n| n == "span.campaign.generate"), "{hist_names:?}");
    assert!(hist_names.iter().any(|n| n == "span.campaign.run.nvcc"), "{hist_names:?}");
    std::fs::remove_file(&m).ok();
}

#[test]
fn malformed_numeric_flag_exits_2() {
    let out = varity(&["campaign", "--programs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--programs"));
}

#[test]
fn unknown_flag_exits_2() {
    let out = varity(&["campaign", "--bogus", "3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
    // a switch that exists globally but not for this command is rejected too
    let out = varity(&["diff", "--kernel-only"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn analyze_profile_renders_profile_and_attribution() {
    let dir = std::env::temp_dir().join("varity_cli_test_profile");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("c.json");
    let path = f.to_str().unwrap();
    let out = varity(&["campaign", "--programs", "15", "--out", path]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = varity(&["analyze", path, "--profile"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("CAMPAIGN PROFILE"), "{text}");
    assert!(text.contains("campaign.run.nvcc"), "{text}");
    assert!(text.contains("DISCREPANCIES BY RESPONSIBLE PASS"), "{text}");
    std::fs::remove_file(&f).ok();
}

#[test]
fn analyze_rejects_half_campaign() {
    let dir = std::env::temp_dir().join("varity_cli_test_half");
    std::fs::create_dir_all(&dir).unwrap();
    let c1 = dir.join("half.json");
    let c1s = c1.to_str().unwrap();
    let out = varity(&["campaign", "--programs", "5", "--side", "nvcc", "--out", c1s]);
    assert!(out.status.success());
    let out = varity(&["analyze", c1s]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sides"));
    std::fs::remove_file(&c1).ok();
}

#[test]
fn hipify_translates_a_file() {
    let dir = std::env::temp_dir().join("varity_cli_test_hipify");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("t.cu");
    std::fs::write(&src, "k<<<1, 2>>>(x); cudaFree(p);").unwrap();
    let out = varity(&["hipify", src.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("hipLaunchKernelGGL(k, dim3(1), dim3(2), 0, 0, x);"));
    assert!(text.contains("hipFree(p);"));
    std::fs::remove_file(&src).ok();
}

#[test]
fn oracle_clean_run_exits_zero() {
    let out = varity(&["oracle", "--budget", "8", "--seed", "2024", "--inputs", "2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("violations: 0"), "{text}");
    assert!(text.contains("programs checked: 8"), "{text}");
    assert!(text.contains("metamorphic coverage: 10/10"), "{text}");
}

#[test]
fn oracle_output_is_deterministic_for_a_seed() {
    let args = ["oracle", "--budget", "6", "--seed", "7", "--inputs", "2"];
    let a = varity(&args);
    let b = varity(&args);
    assert!(a.status.success());
    assert_eq!(stdout(&a), stdout(&b));
}

#[test]
fn oracle_findings_jsonl_brackets_the_run() {
    let dir = std::env::temp_dir().join("varity_cli_test_oracle");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("findings.jsonl");
    let fs = f.to_str().unwrap();
    let out =
        varity(&["oracle", "--budget", "5", "--seed", "2024", "--inputs", "2", "--findings", fs]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("findings log written"));

    let text = std::fs::read_to_string(&f).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut counter_names = Vec::new();
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect(line);
        assert!(v.get("ts_ms").is_some(), "{line}");
        let ev = v["ev"].as_str().expect("ev is a string").to_string();
        if ev == "counter" {
            counter_names.push(v["name"].as_str().unwrap().to_string());
        }
        kinds.insert(ev);
    }
    for k in ["oracle_start", "counter", "oracle_end"] {
        assert!(kinds.contains(k), "missing {k} events:\n{text}");
    }
    assert!(counter_names.iter().any(|n| n == "oracle.checks.transval"), "{counter_names:?}");
    assert!(counter_names.iter().any(|n| n == "oracle.violations"), "{counter_names:?}");
    std::fs::remove_file(&f).ok();
}

#[test]
fn oracle_malformed_and_unknown_flags_exit_2() {
    let out = varity(&["oracle", "--budget", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget"));
    let out = varity(&["oracle", "--bogus", "3"]);
    assert_eq!(out.status.code(), Some(2));
    // campaign-only flags are rejected for oracle
    let out = varity(&["oracle", "--progress"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn campaign_metrics_flag_requires_a_value() {
    // regression: `--metrics` is a pair, so a trailing bare flag is a
    // usage error, not a silently ignored switch
    let out = varity(&["campaign", "--programs", "5", "--metrics"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics"));
}

#[test]
fn campaign_progress_is_a_switch() {
    // regression: `--progress` takes no value and must not swallow the
    // next token
    let out = varity(&["campaign", "--programs", "5", "--progress"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn campaign_checkpoint_then_resume_reproduces_the_report() {
    let dir = std::env::temp_dir().join("varity_cli_test_checkpoint");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("ck");
    let cks = ck.to_str().unwrap();

    let first = varity(&["campaign", "--programs", "8", "--checkpoint", cks]);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("resume with"), "resume command not printed up front:\n{stderr}");
    assert!(ck.join("journal.bin").exists());
    assert!(ck.join("config.json").exists());
    assert!(ck.join("quarantine.jsonl").exists(), "quarantine log (header) always written");

    // resuming a finished campaign replays every unit and re-runs none,
    // producing the identical report
    let second = varity(&["campaign", "--resume", cks]);
    assert!(second.status.success(), "{}", String::from_utf8_lossy(&second.stderr));
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("resumed 80 completed units"), "{stderr}"); // 8 × 5 levels × 2 sides
    assert_eq!(stdout(&first), stdout(&second), "resume must reproduce the report");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_fuel_faults_are_quarantined_and_replayable() {
    let dir = std::env::temp_dir().join("varity_cli_test_faults");
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.jsonl");
    let qs = q.to_str().unwrap();

    // a 1-instruction fuel budget exhausts every test: the campaign must
    // still complete (exit 0) with every unit quarantined
    let out = varity(&[
        "campaign",
        "--programs",
        "3",
        "--inputs",
        "2",
        "--fuel",
        "1",
        "--quarantine",
        qs,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined"), "{stderr}");

    let text = std::fs::read_to_string(&q).unwrap();
    let mut lines = text.lines();
    let header: serde_json::Value = serde_json::from_str(lines.next().unwrap()).unwrap();
    assert!(header.get("config").is_some(), "line 1 must be the config header");
    let faults: Vec<serde_json::Value> = lines.map(|l| serde_json::from_str(l).unwrap()).collect();
    assert_eq!(faults.len(), 3 * 5 * 2, "one fault per (test, side) unit");
    assert!(faults.iter().all(|f| f["kind"] == "StepBudget"), "{faults:?}");

    // every quarantined fault replays and reproduces
    let out = varity(&["replay", qs]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("fault reproduced: yes"), "{text}");
    assert!(!text.contains("fault reproduced: no"), "{text}");

    // --index filters to one test's faults
    let out = varity(&["replay", qs, "--index", "1"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("replay index 1"), "{}", stdout(&out));

    std::fs::remove_file(&q).ok();
}

#[test]
fn campaign_max_faults_circuit_breaker_exits_3() {
    let out = varity(&["campaign", "--programs", "3", "--fuel", "1", "--max-faults", "0"]);
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fault limit"));
}

#[test]
fn campaign_checkpoint_and_resume_are_mutually_exclusive() {
    let out = varity(&["campaign", "--checkpoint", "a", "--resume", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn replay_usage_and_missing_file_errors() {
    let out = varity(&["replay"]);
    assert_eq!(out.status.code(), Some(2));
    let out = varity(&["replay", "/nonexistent/quarantine.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn resume_of_missing_checkpoint_exits_1() {
    let out = varity(&["campaign", "--resume", "/nonexistent/checkpoint-dir"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot resume"));
}

#[test]
fn isolate_reports_divergence_point() {
    // the quickstart program's O3_FM failure on input 1
    let out = varity(&[
        "isolate", "--seed", "31415", "--index", "34", "--input", "1", "--level", "O3_FM",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("stores:"), "{text}");
    assert!(text.contains("first divergence") || text.contains("no divergence"), "{text}");
}

#[test]
fn campaign_report_is_identical_across_exec_tiers() {
    // the acceptance criterion for the compiled tier: byte-identical
    // reports whichever tier (or the lockstep differential) executed
    let run = |tier: &str| {
        let out = varity(&["campaign", "--programs", "8", "--seed", "77", "--exec-tier", tier]);
        assert!(out.status.success(), "{tier}: {}", String::from_utf8_lossy(&out.stderr));
        stdout(&out)
    };
    let vm = run("vm");
    assert_eq!(vm, run("interp"), "vm vs interp report");
    assert_eq!(vm, run("differential"), "vm vs differential report");
}

#[test]
fn campaign_reference_prints_verdicts_and_resume_reproduces_them() {
    let dir = std::env::temp_dir().join("varity_cli_test_reference");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("ck");
    let cks = ck.to_str().unwrap();

    let first = varity(&["campaign", "--programs", "12", "--reference", "--checkpoint", cks]);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let text = stdout(&first);
    assert!(text.contains("WHO DRIFTED"), "no verdict table:\n{text}");
    assert!(text.contains("TruthUndecided"), "{text}");

    // the truth side is journaled like any other: a resume replays all
    // 12 × 5 × 2 vendor units plus 12 reference units and re-runs none
    let second = varity(&["campaign", "--resume", cks, "--reference"]);
    assert!(second.status.success(), "{}", String::from_utf8_lossy(&second.stderr));
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("resumed 132 completed units"), "{stderr}");
    assert_eq!(stdout(&first), stdout(&second), "resume must reproduce the verdicts");

    // the flag is runtime-only: a resume without it replays the vendor
    // units and reports without verdicts (the truth side is not marked
    // as run), exactly like a campaign that never passed --reference
    let third = varity(&["campaign", "--resume", cks]);
    assert!(third.status.success(), "{}", String::from_utf8_lossy(&third.stderr));
    assert!(!stdout(&third).contains("WHO DRIFTED"), "{}", stdout(&third));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_rejects_unknown_exec_tier() {
    let out = varity(&["campaign", "--programs", "2", "--exec-tier", "jit"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("exec tier"));
}

#[test]
fn oracle_exec_tier_is_selectable_and_labeled() {
    let out = varity(&["oracle", "--budget", "5", "--seed", "2024", "--exec-tier", "differential"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("tier differential"), "{text}");
    assert!(text.contains("violations: 0"), "{text}");

    let out = varity(&["oracle", "--budget", "2", "--exec-tier", "hyperspeed"]);
    assert_eq!(out.status.code(), Some(2));
}
