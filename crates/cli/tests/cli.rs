//! End-to-end CLI tests: drive the `varity-gpu` binary the way a user
//! would and assert on its output and exit codes.

use std::process::{Command, Output};

fn varity(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_varity-gpu"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_all_subcommands() {
    let out = varity(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "generate", "inputs", "diff", "campaign", "analyze", "failures", "reduce",
        "isolate", "hipify",
    ] {
        assert!(text.contains(cmd), "help missing `{cmd}`:\n{text}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage_hint() {
    let out = varity(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn generate_emits_parseable_cuda() {
    let out = varity(&["generate", "--seed", "42", "--index", "3"]);
    assert!(out.status.success());
    let src = stdout(&out);
    assert!(src.contains("__global__"));
    assert!(src.contains("compute<<<1, 1>>>"));
    // the emitted source must parse back
    let p = progen::parser::parse_kernel(&src, "cli").expect("emitted source parses");
    assert_eq!(p.id, "cli");
}

#[test]
fn generate_hip_dialect() {
    let out = varity(&["generate", "--seed", "42", "--index", "3", "--dialect", "hip"]);
    assert!(out.status.success());
    let src = stdout(&out);
    assert!(src.contains("hipLaunchKernelGGL"));
    assert!(!src.contains("<<<"));
}

#[test]
fn inputs_prints_one_line_per_input() {
    let out = varity(&["inputs", "--seed", "42", "--index", "0", "-n", "4"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 4);
}

#[test]
fn diff_reports_discrepancies_for_known_failing_program() {
    // seed 31415 index 34 diverges at O3_FM (used by the quickstart example)
    let out = varity(&["diff", "--seed", "31415", "--index", "34"]);
    assert!(out.status.success(), "exit 0 when a discrepancy is found");
    let text = stdout(&out);
    assert!(text.contains("DISCREPANCY") || text.contains("[NaN") || text.contains("[Num"));
}

#[test]
fn campaign_roundtrip_through_metadata_files() {
    let dir = std::env::temp_dir().join("varity_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let c1 = dir.join("c1.json");
    let c2 = dir.join("c2.json");
    let c1s = c1.to_str().unwrap();
    let c2s = c2.to_str().unwrap();

    let out = varity(&["campaign", "--programs", "15", "--side", "nvcc", "--out", c1s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = varity(&["campaign", "--programs", "15", "--side", "hipcc", "--out", c2s]);
    assert!(out.status.success());

    let out = varity(&["analyze", c1s, c2s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("FP64 direct campaign"));
    assert!(text.contains("O3_FM"));

    let out = varity(&["failures", c1s, c2s]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("failing runs"));

    std::fs::remove_file(&c1).ok();
    std::fs::remove_file(&c2).ok();
}

#[test]
fn analyze_rejects_half_campaign() {
    let dir = std::env::temp_dir().join("varity_cli_test_half");
    std::fs::create_dir_all(&dir).unwrap();
    let c1 = dir.join("half.json");
    let c1s = c1.to_str().unwrap();
    let out = varity(&["campaign", "--programs", "5", "--side", "nvcc", "--out", c1s]);
    assert!(out.status.success());
    let out = varity(&["analyze", c1s]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sides"));
    std::fs::remove_file(&c1).ok();
}

#[test]
fn hipify_translates_a_file() {
    let dir = std::env::temp_dir().join("varity_cli_test_hipify");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("t.cu");
    std::fs::write(&src, "k<<<1, 2>>>(x); cudaFree(p);").unwrap();
    let out = varity(&["hipify", src.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("hipLaunchKernelGGL(k, dim3(1), dim3(2), 0, 0, x);"));
    assert!(text.contains("hipFree(p);"));
    std::fs::remove_file(&src).ok();
}

#[test]
fn isolate_reports_divergence_point() {
    // the quickstart program's O3_FM failure on input 1
    let out = varity(&[
        "isolate", "--seed", "31415", "--index", "34", "--input", "1", "--level", "O3_FM",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("stores:"), "{text}");
    assert!(
        text.contains("first divergence") || text.contains("no divergence"),
        "{text}"
    );
}
