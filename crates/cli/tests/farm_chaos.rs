//! End-to-end farm tests: drive `varity-gpu farm` as a real
//! multi-process service, kill workers with the built-in chaos
//! adversary, and prove the merged report is identical to a
//! single-process run — the repo's strongest fault-tolerance statement.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use difftest::campaign::analyze;
use difftest::metadata::CampaignMeta;
use difftest::side::Side;

fn varity(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_varity-gpu")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("varity_farm_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parse `key=value` integers out of the farm's `[farm] done=... ` line.
fn farm_counter(stderr: &str, key: &str) -> u64 {
    let line = stderr
        .lines()
        .rev()
        .find(|l| l.contains("done=") && l.contains("spawns="))
        .unwrap_or_else(|| panic!("no farm summary line in stderr:\n{stderr}"));
    let needle = format!("{key}=");
    let start = line.find(&needle).unwrap_or_else(|| panic!("no {key} in: {line}")) + needle.len();
    line[start..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad {key} in: {line}"))
}

const PROGRAMS: &str = "32";
const INPUTS: &str = "2";
const SEED: &str = "20240807";

fn reference_meta(dir: &Path) -> CampaignMeta {
    let path = dir.join("reference.json");
    let out = varity(&[
        "campaign",
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "reference campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    CampaignMeta::load(&path).expect("reference metadata loads")
}

/// The acceptance bar: a farm of 4 workers with seeded chaos `kill -9`s
/// produces a merged report identical to the single-process run, metric
/// totals match, and every worker death shows up in the counters.
#[test]
fn chaos_farm_merged_report_matches_single_process_run() {
    let dir = temp_dir("chaos");
    let reference = reference_meta(&dir);

    let farm_dir = dir.join("farm");
    let merged_path = dir.join("merged.json");
    let out = varity(&[
        "farm",
        "--dir",
        farm_dir.to_str().unwrap(),
        "--workers",
        "4",
        "--shards",
        "8",
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--chaos-kills",
        "4",
        "--chaos-seed",
        "99",
        "--out",
        merged_path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(0), "farm failed:\n{stderr}");

    // Merged report is byte-identical to the single-process run. (The
    // convention from the difftest chaos tests: the *report* — what the
    // campaign claims about the toolchains — must be unaffected by
    // faults; telemetry like span timings legitimately differs.)
    let merged = CampaignMeta::load(&merged_path).expect("merged metadata loads");
    assert!(merged.is_complete(), "merged campaign ran both sides");
    let ref_report = serde_json::to_vec(&analyze(&reference)).unwrap();
    let farm_report = serde_json::to_vec(&analyze(&merged)).unwrap();
    assert_eq!(ref_report, farm_report, "merged farm report diverges from single-process run");

    // Replay-exact metric totals ride the merged metadata.
    let ref_snap = reference.metrics.as_ref().expect("reference telemetry");
    let farm_snap = merged.metrics.as_ref().expect("merged telemetry");
    for counter in ["campaign.runs_done", "campaign.discrepancies"] {
        assert_eq!(
            farm_snap.counter(counter),
            ref_snap.counter(counter),
            "metric total {counter} diverges"
        );
    }

    // Every chaos kill is a visible worker death, and every death was
    // recovered by a respawn (the farm finished with zero poison).
    let kills = farm_counter(&stderr, "chaos_kills");
    let deaths = farm_counter(&stderr, "deaths");
    let respawns = farm_counter(&stderr, "respawns");
    assert!(kills >= 1, "chaos never got to kill anyone:\n{stderr}");
    assert!(deaths >= kills, "deaths {deaths} < chaos kills {kills}:\n{stderr}");
    assert!(respawns >= kills, "kills were not all recovered by respawns:\n{stderr}");
    assert_eq!(farm_counter(&stderr, "done"), 8, "all shards folded:\n{stderr}");
    assert_eq!(farm_counter(&stderr, "poisoned"), 0, "no shard poisoned:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The three-side acceptance bar: a farm running the double-double
/// ground-truth side next to both vendors (`--reference` is forwarded to
/// every worker spawn *and* respawn, because the flag is runtime-only
/// and never stored in the shard checkpoints), with chaos kills, merges
/// to the same report — pair stats and who-drifted verdicts included —
/// as an uninterrupted single-process three-side run.
#[test]
fn three_side_chaos_farm_matches_single_process_truth_run() {
    let dir = temp_dir("chaos3");

    // single-process reference: both vendors plus the truth side
    let ref_path = dir.join("reference.json");
    let out = varity(&[
        "campaign",
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--reference",
        "--out",
        ref_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "three-side reference campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = CampaignMeta::load(&ref_path).expect("reference metadata loads");
    assert!(reference.sides_run.contains(&Side::Reference));

    let farm_dir = dir.join("farm");
    let merged_path = dir.join("merged.json");
    let out = varity(&[
        "farm",
        "--dir",
        farm_dir.to_str().unwrap(),
        "--workers",
        "4",
        "--shards",
        "8",
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--reference",
        "--chaos-kills",
        "4",
        "--chaos-seed",
        "99",
        "--out",
        merged_path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(0), "three-side farm failed:\n{stderr}");

    // The truth side survives the shard merge (it would be dropped if
    // any worker resume forgot the runtime-only flag) and the merged
    // report — verdicts included — is byte-identical.
    let merged = CampaignMeta::load(&merged_path).expect("merged metadata loads");
    assert!(merged.is_complete(), "merged campaign ran both vendor sides");
    assert!(merged.sides_run.contains(&Side::Reference), "truth side lost in the merge");
    let ref_report = serde_json::to_string(&analyze(&reference)).unwrap();
    let farm_report = serde_json::to_string(&analyze(&merged)).unwrap();
    assert!(ref_report.contains("\"verdicts\""), "truth plane missing from the reference report");
    assert_eq!(ref_report, farm_report, "three-side farm report diverges from single-process run");

    assert!(farm_counter(&stderr, "chaos_kills") >= 1, "chaos never got to kill anyone:\n{stderr}");
    assert_eq!(farm_counter(&stderr, "done"), 8, "all shards folded:\n{stderr}");
    assert_eq!(farm_counter(&stderr, "poisoned"), 0, "no shard poisoned:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Drain (stop file) exits 130 with a resume hint, and re-running the
/// same command finishes the campaign with the same report as an
/// uninterrupted single-process run.
#[test]
fn drained_farm_resumes_to_the_same_report() {
    let dir = temp_dir("drain");
    let reference = reference_meta(&dir);

    let farm_dir = dir.join("farm");
    let merged_path = dir.join("merged.json");
    let farm_args: Vec<String> = [
        "farm",
        "--dir",
        farm_dir.to_str().unwrap(),
        "--workers",
        "2",
        "--shards",
        "4",
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--out",
        merged_path.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Start the farm, then drop the stop file once workers are live.
    let mut child = Command::new(env!("CARGO_BIN_EXE_varity-gpu"))
        .args(&farm_args)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("farm starts");
    // Wait for evidence of progress (a shard journal appears), then drain.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let journals_live =
            (0..4).any(|k| farm_dir.join(format!("shard-{k:03}")).join("journal.bin").exists());
        if journals_live || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    std::fs::write(farm_dir.join("stop"), b"drain").expect("stop file written");
    let out = child.wait_with_output().expect("farm exits");
    let stderr = String::from_utf8_lossy(&out.stderr);

    if out.status.code() == Some(130) {
        // Drained mid-run: the hint names the resume path.
        assert!(stderr.contains("drained"), "no drain notice:\n{stderr}");
        assert!(!merged_path.exists() || CampaignMeta::load(&merged_path).is_ok());
    } else {
        // The farm can legitimately win the race and finish first.
        assert_eq!(out.status.code(), Some(0), "unexpected farm exit:\n{stderr}");
    }

    // Resume (or no-op re-run): same command, must complete cleanly.
    let out = varity(&farm_args.iter().map(String::as_str).collect::<Vec<_>>());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "farm resume failed:\n{stderr}");
    let merged = CampaignMeta::load(&merged_path).expect("merged metadata loads");
    assert!(merged.is_complete());
    let ref_report = serde_json::to_vec(&analyze(&reference)).unwrap();
    let farm_report = serde_json::to_vec(&analyze(&merged)).unwrap();
    assert_eq!(ref_report, farm_report, "resumed farm report diverges");

    std::fs::remove_dir_all(&dir).ok();
}

/// `campaign --shard K/N` runs exactly the round-robin slice, and the
/// slices reassemble into the full campaign via `analyze FILE...`-style
/// merging.
#[test]
fn campaign_shard_flag_runs_only_its_slice() {
    let dir = temp_dir("shardflag");
    let out_path = dir.join("shard1of4.json");
    let out = varity(&[
        "campaign",
        "--programs",
        "8",
        "--inputs",
        "2",
        "--seed",
        SEED,
        "--shard",
        "1/4",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "shard campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let meta = CampaignMeta::load(&out_path).expect("shard metadata loads");
    let indices: Vec<u64> = meta.tests.iter().map(|t| t.index).collect();
    assert_eq!(indices, vec![1, 5], "shard 1/4 of 8 programs owns indices 1 and 5");
    assert!(meta.is_complete(), "the slice itself ran both sides");

    // Malformed specs are usage errors.
    for bad in ["4/4", "x/2", "3", "0/0"] {
        let out = varity(&["campaign", "--programs", "8", "--shard", bad]);
        assert_eq!(out.status.code(), Some(2), "--shard {bad} must be rejected");
    }
    // --shard with --resume is a usage error (the spec lives in the
    // checkpoint).
    let out = varity(&["campaign", "--resume", "/nonexistent", "--shard", "0/2"]);
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn farm_usage_errors() {
    // --dir is mandatory.
    let out = varity(&["farm", "--workers", "2"]);
    assert_eq!(out.status.code(), Some(2));
    // More shards than programs would leave empty shards.
    let out = varity(&["farm", "--dir", "/tmp/x", "--programs", "2", "--shards", "8"]);
    assert_eq!(out.status.code(), Some(2));
    // help mentions the subcommand.
    let out = varity(&["help"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("farm"));
}
