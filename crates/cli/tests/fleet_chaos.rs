//! End-to-end fleet tests: a real `farm --coordinate` process, two real
//! `farm --join` agent processes with seeded network chaos, an agent
//! SIGKILL, and a mid-run coordinator SIGKILL + restart — and the merged
//! report must still be byte-identical to a single-process run, with the
//! fencing rejections that prove the exactly-once machinery actually
//! fired observable in `/metrics`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use difftest::campaign::analyze;
use difftest::metadata::CampaignMeta;

const PROGRAMS: &str = "32";
const INPUTS: &str = "2";
const SEED: &str = "20240807";

fn varity(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_varity-gpu")).args(args).output().expect("binary runs")
}

fn spawn_varity(args: &[String]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_varity-gpu"))
        .args(args)
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("varity_fleet_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserve a port by binding ephemeral and letting it go again, so the
/// coordinator can be killed and restarted on the *same* address.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap().port()
}

/// Parse `key=value` integers out of the `[fleet-coord] done=...` line.
fn fleet_counter(stderr: &str, key: &str) -> u64 {
    let line = stderr
        .lines()
        .rev()
        .find(|l| l.contains("[fleet-coord]") && l.contains("done=") && l.contains("epoch="))
        .unwrap_or_else(|| panic!("no fleet summary line in stderr:\n{stderr}"));
    let needle = format!("{key}=");
    let start = line.find(&needle).unwrap_or_else(|| panic!("no {key} in: {line}")) + needle.len();
    line[start..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad {key} in: {line}"))
}

/// Minimal HTTP GET against the coordinator's status endpoint.
fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n").ok()?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf).ok()?;
    Some(buf)
}

fn reference_meta(dir: &Path) -> CampaignMeta {
    let path = dir.join("reference.json");
    let out = varity(&[
        "campaign",
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "reference campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    CampaignMeta::load(&path).expect("reference metadata loads")
}

fn any_journal_under(agent_dir: &Path) -> bool {
    (0..8).any(|k| agent_dir.join(format!("shard-{k:03}")).join("journal.bin").exists())
}

/// Wait for a child with a deadline; on timeout, kill it and fail with
/// whatever stderr it produced so far.
fn wait_with_deadline(mut child: Child, what: &str, secs: u64) -> Output {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("wait_with_output"),
            None if Instant::now() > deadline => {
                child.kill().ok();
                let out = child.wait_with_output().expect("wait_with_output");
                panic!(
                    "{what} failed to exit within {secs}s:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The fleet acceptance bar: coordinator + 2 chaos-armed agents, a
/// seeded agent SIGKILL, a mid-run coordinator SIGKILL + journal-replay
/// restart — and the merged report is byte-identical to the
/// single-process run, with zero shards lost, zero double-merged, and
/// the fencing rejections visible in both the summary and `/metrics`.
#[test]
fn chaos_fleet_with_kills_and_restart_matches_single_process_run() {
    let dir = temp_dir("chaos");
    let reference = reference_meta(&dir);

    let port = free_port();
    let addr = format!("127.0.0.1:{port}");
    let coord_dir = dir.join("coord");
    let merged_path = dir.join("merged.json");
    let coord_args: Vec<String> = [
        "farm",
        "--coordinate",
        &addr,
        "--dir",
        coord_dir.to_str().unwrap(),
        "--programs",
        PROGRAMS,
        "--inputs",
        INPUTS,
        "--seed",
        SEED,
        "--shards",
        "8",
        "--heartbeat-ms",
        "3000",
        "--linger-ms",
        "5000",
        "--out",
        merged_path.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let coord = spawn_varity(&coord_args);
    // The coordinator publishes its bound address once it is serving.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !coord_dir.join("coord.addr").exists() {
        assert!(Instant::now() < deadline, "coordinator never published coord.addr");
        std::thread::sleep(Duration::from_millis(25));
    }

    let agent_args = |i: usize| -> Vec<String> {
        [
            "farm",
            "--join",
            &addr,
            "--dir",
            dir.join(format!("agent-{i}")).to_str().unwrap(),
            "--workers",
            "2",
            "--agent-name",
            &format!("agent-{i}"),
            "--seed",
            &format!("{i}"),
            "--net-chaos",
            "10",
            "--net-chaos-seed",
            &format!("{}", 7 + i),
            "--io-timeout-ms",
            "1000",
            "--max-offline-ms",
            "60000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };
    let mut agent0 = spawn_varity(&agent_args(0));
    let agent1 = spawn_varity(&agent_args(1));

    // Wait for evidence of real work (a worker journaling in agent 0's
    // checkpoints), then SIGKILL that agent mid-shard.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !any_journal_under(&dir.join("agent-0")) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    agent0.kill().expect("agent SIGKILL");
    agent0.wait().expect("agent reaped");
    // Rejoining with the same dir adopts the surviving checkpoints.
    let agent0b = spawn_varity(&agent_args(0));

    // Now SIGKILL the coordinator mid-run and restart it on the same
    // address: the journal replays, the epoch bumps, and the agents'
    // in-flight leases are fenced — that's the exactly-once machinery
    // the equivalence assert below depends on.
    let mut coord = coord;
    coord.kill().expect("coordinator SIGKILL");
    coord.wait().expect("coordinator reaped");
    let status_addr = format!("127.0.0.1:{}", free_port());
    let mut coord_args2 = coord_args.clone();
    coord_args2.push("--status-addr".to_string());
    coord_args2.push(status_addr.clone());
    let mut coord2 = spawn_varity(&coord_args2);

    // While the restarted coordinator runs, watch /metrics for the
    // fencing counter — the acceptance criterion wants the rejections
    // observable there, not just in the exit summary.
    let mut metrics_fencings = 0u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    let coord2_out = loop {
        if let Some(body) = http_get(&status_addr, "/metrics") {
            if let Some(pos) = body.find("fleet_fence_rejections ") {
                let tail = &body[pos + "fleet_fence_rejections ".len()..];
                if let Some(v) =
                    tail.split(|c: char| !c.is_ascii_digit()).next().and_then(|s| s.parse().ok())
                {
                    metrics_fencings = metrics_fencings.max(v);
                }
            }
        }
        match coord2.try_wait().expect("try_wait") {
            Some(_) => break coord2.wait_with_output().expect("coordinator output"),
            None if Instant::now() > deadline => {
                coord2.kill().ok();
                let out = coord2.wait_with_output().expect("coordinator output");
                panic!(
                    "restarted coordinator never finished:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    let stderr = String::from_utf8_lossy(&coord2_out.stderr).into_owned();
    assert_eq!(coord2_out.status.code(), Some(0), "restarted coordinator failed:\n{stderr}");

    // Both agents (the rejoined one and the survivor) hear AllDone.
    let a0 = wait_with_deadline(agent0b, "rejoined agent 0", 120);
    let a1 = wait_with_deadline(agent1, "agent 1", 120);
    assert_eq!(
        a0.status.code(),
        Some(0),
        "rejoined agent 0 failed:\n{}",
        String::from_utf8_lossy(&a0.stderr)
    );
    assert_eq!(
        a1.status.code(),
        Some(0),
        "agent 1 failed:\n{}",
        String::from_utf8_lossy(&a1.stderr)
    );

    // Exactly-once bookkeeping: all 8 shards folded, none poisoned, the
    // restart really bumped the epoch, and the fences really fired.
    assert_eq!(fleet_counter(&stderr, "done"), 8, "all shards folded:\n{stderr}");
    assert_eq!(fleet_counter(&stderr, "poisoned"), 0, "no shard poisoned:\n{stderr}");
    assert!(fleet_counter(&stderr, "epoch") >= 2, "restart must bump the epoch:\n{stderr}");
    let fenced = fleet_counter(&stderr, "fenced");
    assert!(fenced >= 1, "no fencing rejection despite a coordinator restart:\n{stderr}");
    assert!(
        metrics_fencings >= 1,
        "fence rejections never appeared in /metrics (summary says fenced={fenced}):\n{stderr}"
    );

    // The strongest claim: the chaos-tortured fleet's merged report is
    // byte-identical to the uninterrupted single-process run.
    let merged = CampaignMeta::load(&merged_path).expect("merged metadata loads");
    assert!(merged.is_complete(), "merged campaign ran both sides");
    let ref_report = serde_json::to_vec(&analyze(&reference)).unwrap();
    let fleet_report = serde_json::to_vec(&analyze(&merged)).unwrap();
    assert_eq!(ref_report, fleet_report, "fleet report diverges from single-process run");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_usage_errors() {
    // Roles are exclusive.
    let out = varity(&["farm", "--coordinate", "127.0.0.1:0", "--join", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2));
    // Both roles need --dir.
    let out = varity(&["farm", "--coordinate", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
    let out = varity(&["farm", "--join", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2));
    // More shards than programs is rejected before binding anything.
    let out =
        varity(&["farm", "--coordinate", "127.0.0.1:0", "--dir", "/tmp/x", "--programs", "2", "--shards", "8"]);
    assert_eq!(out.status.code(), Some(2));
    // Help documents the fleet roles.
    let help = varity(&["help"]);
    let text = String::from_utf8_lossy(&help.stdout).into_owned();
    assert!(text.contains("--coordinate"), "help must document --coordinate");
    assert!(text.contains("--join"), "help must document --join");
}
