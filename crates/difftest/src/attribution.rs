//! Pass attribution: which fast-math passes rewrote discrepant kernels.
//!
//! The paper's §V case studies root-caused discrepancies to individual
//! mechanisms (reassociation, finite-math-only, HIPIFY's contraction
//! default) by hand. This module does it as recorded data: for every
//! discrepant (program, level) pair it recompiles both sides — compilation
//! is deterministic, so the recompile reproduces exactly what the campaign
//! did — and attributes the discrepancies to every *semantic* pass that
//! actually rewrote the kernel, aggregated into a "discrepancies by
//! responsible pass" table.
//!
//! Structural passes (`const-fold`, `cse`, `dce`) are excluded: both
//! toolchains run them identically, so they never cause a divergence.
//! Discrepancies where no semantic pass fired on either side (e.g. at O0,
//! where math-library and FTZ differences are the only mechanisms) land in
//! an explicit "(no pass fired)" row rather than being dropped.

use crate::campaign::decode;
use crate::compare::compare_runs;
use crate::metadata::{build_side_with_stats, reference_key, side_key, CampaignMeta};
use crate::outcome::DiscrepancyClass;
use crate::verdict::{judge, Verdict};
use gpucc::pipeline::Toolchain;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Passes whose rewrites change floating-point semantics and can
/// therefore be responsible for a between-compiler discrepancy.
pub const SEMANTIC_PASSES: [&str; 4] = ["reassoc", "finite-math", "recip", "fma-contract"];

/// Row key for discrepancies where no semantic pass fired on either side
/// (math-library / FTZ divergence, the O0 mechanisms).
pub const UNATTRIBUTED: &str = "(no pass fired)";

/// One row of the "discrepancies by responsible pass" table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PassRow {
    /// `"{toolchain}:{pass}"` (e.g. `nvcc:reassoc`), or [`UNATTRIBUTED`].
    pub key: String,
    /// Discrepancies in kernels this pass rewrote. A discrepancy counts
    /// toward every pass that fired on its kernel, so rows can overlap.
    pub discrepancies: u64,
    /// Breakdown per [`DiscrepancyClass`] (in `ALL` order).
    pub by_class: [u64; 7],
    /// Who-drifted breakdown per [`Verdict`] (in `ALL` order), judged
    /// against the double-double ground truth. All-zero — and omitted
    /// from JSON — when the campaign ran without the reference side.
    #[serde(skip_serializing_if = "verdict_tally_is_empty")]
    pub by_verdict: [u64; 4],
    /// Distinct (program, level, discrepancy-class) findings behind
    /// `discrepancies`. The same finding tripped by several inputs — or
    /// shipped twice by overlapping crash-replay shards — counts once
    /// here, so this is the deduplicated "how many different bugs did
    /// this pass expose" figure.
    pub unique_findings: u64,
}

fn verdict_tally_is_empty(t: &[u64; 4]) -> bool {
    t.iter().all(|&v| v == 0)
}

/// The aggregated pass-attribution table for one campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AttributionReport {
    /// Rows sorted by descending discrepancy count (ties by key).
    pub rows: Vec<PassRow>,
    /// Total discrepancies examined (equals the analyze report's total).
    pub total_discrepancies: u64,
    /// Discrepancies with at least one semantic pass fired.
    pub attributed: u64,
    /// Whether rows carry who-drifted tallies (the reference side ran).
    #[serde(skip_serializing_if = "std::ops::Not::not")]
    pub has_verdicts: bool,
}

/// Per-row accumulator: the overlapping tallies plus the set of
/// distinct (program, level-position, class) findings behind them.
#[derive(Default, Clone)]
struct RowAgg {
    n: u64,
    by_class: [u64; 7],
    by_verdict: [u64; 4],
    findings: BTreeSet<(u64, usize, usize)>,
}

#[derive(Default, Clone)]
struct Agg {
    rows: BTreeMap<String, RowAgg>,
    total: u64,
    attributed: u64,
}

impl Agg {
    fn fold(mut self, other: Agg) -> Agg {
        for (k, r) in other.rows {
            let e = self.rows.entry(k).or_default();
            e.n += r.n;
            for (i, v) in r.by_class.iter().enumerate() {
                e.by_class[i] += v;
            }
            for (i, v) in r.by_verdict.iter().enumerate() {
                e.by_verdict[i] += v;
            }
            e.findings.extend(r.findings);
        }
        self.total += other.total;
        self.attributed += other.attributed;
        self
    }
}

/// Build the pass-attribution report for a completed campaign.
///
/// Only discrepant (program, level) pairs are recompiled, so the cost is
/// proportional to the discrepancy count, not the campaign size.
pub fn attribute(meta: &CampaignMeta) -> AttributionReport {
    let _span = obs::span("campaign.attribute");
    let config = &meta.config;
    let has_verdicts = meta.has_reference();
    let agg = meta
        .tests
        .par_iter()
        .map(|test| {
            let mut agg = Agg::default();
            let mut program = None;
            let truth_recs = test.results.get(&reference_key());
            for (level_pos, level) in config.levels.iter().enumerate() {
                let nv = test.results.get(&side_key(Toolchain::Nvcc, *level));
                let amd = test.results.get(&side_key(Toolchain::Hipcc, *level));
                let (Some(nv), Some(amd)) = (nv, amd) else { continue };
                let mut classes: Vec<(DiscrepancyClass, Option<Verdict>)> = Vec::new();
                for (k, (rn, ra)) in nv.iter().zip(amd).enumerate() {
                    if rn.error.is_some() || ra.error.is_some() {
                        continue;
                    }
                    let vn = decode(config.precision, rn.bits);
                    let va = decode(config.precision, ra.bits);
                    if let Some(d) = compare_runs(&vn, &va) {
                        let verdict = has_verdicts.then(|| {
                            let truth = truth_recs
                                .and_then(|rs| rs.get(k))
                                .filter(|r| r.error.is_none())
                                .map(|r| decode(config.precision, r.bits));
                            judge(&vn, &va, truth.as_ref(), level.is_fast_math()).verdict
                        });
                        classes.push((d.class, verdict));
                    }
                }
                if classes.is_empty() {
                    continue;
                }
                agg.total += classes.len() as u64;
                let program = program.get_or_insert_with(|| meta.program_for(test));
                let mut keys: Vec<String> = Vec::new();
                for tc in Toolchain::ALL {
                    let (_, stats) = build_side_with_stats(program, tc, *level, config.mode);
                    for name in stats.fired_passes() {
                        if SEMANTIC_PASSES.contains(&name) {
                            keys.push(format!("{}:{}", tc.name(), name));
                        }
                    }
                }
                if keys.is_empty() {
                    keys.push(UNATTRIBUTED.to_string());
                } else {
                    agg.attributed += classes.len() as u64;
                }
                for key in keys {
                    let e = agg.rows.entry(key).or_default();
                    for (class, verdict) in &classes {
                        e.n += 1;
                        e.by_class[class.index()] += 1;
                        if let Some(v) = verdict {
                            e.by_verdict[v.index()] += 1;
                        }
                        e.findings.insert((test.index, level_pos, class.index()));
                    }
                }
            }
            agg
        })
        .reduce(Agg::default, Agg::fold);

    let mut rows: Vec<PassRow> = agg
        .rows
        .into_iter()
        .map(|(key, r)| PassRow {
            key,
            discrepancies: r.n,
            by_class: r.by_class,
            by_verdict: r.by_verdict,
            unique_findings: r.findings.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| b.discrepancies.cmp(&a.discrepancies).then_with(|| a.key.cmp(&b.key)));
    AttributionReport {
        rows,
        total_discrepancies: agg.total,
        attributed: agg.attributed,
        has_verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{analyze, CampaignConfig, TestMode};
    use gpucc::pipeline::OptLevel;
    use gpusim::QuirkSet;
    use progen::ast::Precision;

    fn completed(n: usize) -> CampaignMeta {
        let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(n);
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        meta
    }

    #[test]
    fn totals_match_the_analyze_report() {
        let meta = completed(80);
        let report = analyze(&meta);
        let attr = attribute(&meta);
        assert_eq!(attr.total_discrepancies, report.total_discrepancies());
        assert!(attr.attributed <= attr.total_discrepancies);
        // every row's class breakdown is internally consistent
        for row in &attr.rows {
            assert_eq!(row.by_class.iter().sum::<u64>(), row.discrepancies, "{}", row.key);
        }
    }

    #[test]
    fn unique_findings_dedupe_repeated_inputs_and_bound_the_rows() {
        let meta = completed(80);
        let attr = attribute(&meta);
        assert!(attr.total_discrepancies > 0, "80-program campaign found nothing");
        for row in &attr.rows {
            assert!(row.unique_findings >= 1, "{}", row.key);
            assert!(row.unique_findings <= row.discrepancies, "{}", row.key);
            // each discrepancy class with hits contributes at least one
            // distinct (program, level, class) finding
            let classes_hit = row.by_class.iter().filter(|&&c| c > 0).count() as u64;
            assert!(row.unique_findings >= classes_hit, "{}", row.key);
        }
    }

    #[test]
    fn overlapping_crash_replay_shards_attribute_identically() {
        // a fleet re-lease shipped one shard twice: after the
        // merge-level dedup, `analyze --profile`'s attribution (counts,
        // classes, unique findings) must match the clean merge exactly
        let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct)
            .with_programs(40);
        let shards: Vec<CampaignMeta> = CampaignMeta::generate(&config)
            .shard(4)
            .into_iter()
            .map(|mut s| {
                s.run_side(Toolchain::Nvcc);
                s.run_side(Toolchain::Hipcc);
                s
            })
            .collect();
        let clean = CampaignMeta::merge_shards(shards.clone()).unwrap();
        let mut overlapping = shards;
        let dup = overlapping[2].clone();
        overlapping.push(dup);
        let merged = CampaignMeta::merge_shards(overlapping).unwrap();
        assert_eq!(attribute(&merged), attribute(&clean));
    }

    #[test]
    fn fast_math_discrepancies_name_nvcc_passes() {
        // O3_FM only: every discrepancy involves a kernel the nvcc
        // fast-math bundle (or contraction) rewrote
        let mut config =
            CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(120);
        config.levels = vec![OptLevel::O3Fm];
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let attr = attribute(&meta);
        assert!(attr.total_discrepancies > 0, "O3_FM campaign found nothing");
        assert!(
            attr.rows.iter().any(|r| r.key.starts_with("nvcc:")),
            "no nvcc fast-math pass attributed: {:?}",
            attr.rows
        );
    }

    #[test]
    fn verdict_tallies_ride_the_rows_when_the_reference_ran() {
        let meta = completed(80);
        let attr = attribute(&meta);
        assert!(!attr.has_verdicts);
        assert!(attr.rows.iter().all(|r| r.by_verdict == [0; 4]));

        let mut meta = completed(80);
        meta.run_reference();
        let attr = attribute(&meta);
        assert!(attr.has_verdicts);
        // every discrepancy in every row received some verdict
        for row in &attr.rows {
            assert_eq!(
                row.by_verdict.iter().sum::<u64>(),
                row.discrepancies,
                "{}",
                row.key
            );
        }
        // fast-math rows (nvcc:* / hipcc:* semantic passes fire at O3_FM)
        // must include undecided tallies when their discrepancies live in
        // fast-math cells
        let undecided: u64 =
            attr.rows.iter().map(|r| r.by_verdict[Verdict::TruthUndecided.index()]).sum();
        assert!(undecided > 0, "an 80-program campaign has fast-math discrepancies");
    }

    #[test]
    fn quirkless_o0_campaign_attributes_nothing() {
        let mut config =
            CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(20);
        config.quirks = QuirkSet::none();
        config.levels = vec![OptLevel::O0];
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let attr = attribute(&meta);
        assert_eq!(attr.total_discrepancies, 0);
        assert!(attr.rows.is_empty());
    }
}
