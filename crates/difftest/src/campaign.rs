//! The testing campaign: configuration, execution, aggregation.

use crate::metadata::{side_key, CampaignMeta, RunRecord};
use crate::outcome::DiscrepancyClass;
use fpcore::classify::Outcome;
use gpucc::interp::{ExecBudget, ExecValue};
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::QuirkSet;
use progen::ast::Precision;
use progen::grammar::GenConfig;
use serde::{Deserialize, Serialize};

/// Which hipcc-side pipeline a campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestMode {
    /// HIP tests generated natively by the extended Varity (Tables V/VI, IX/X).
    Direct,
    /// CUDA tests converted with HIPIFY, then compiled by hipcc with its
    /// `-ffp-contract=fast` ported-app default (Tables VII/VIII).
    Hipified,
}

impl TestMode {
    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            TestMode::Direct => "direct",
            TestMode::Hipified => "HIPIFY",
        }
    }
}

/// Campaign configuration. Fully determines every program, input and
/// compilation in the campaign (the reproducibility property Fig. 3's
/// between-platform protocol needs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// FP32 or FP64 tests.
    pub precision: Precision,
    /// Direct HIP generation or HIPIFY conversion.
    pub mode: TestMode,
    /// Number of random programs.
    pub n_programs: usize,
    /// Number of random inputs per program.
    pub inputs_per_program: usize,
    /// Master seed.
    pub seed: u64,
    /// Grammar configuration.
    pub gen: GenConfig,
    /// Device divergence mechanisms (all on = the paper's reality;
    /// selectively off = ablation).
    pub quirks: QuirkSet,
    /// Optimization levels to test.
    pub levels: Vec<OptLevel>,
    /// Per-execution fuel budget (instruction cap + optional wall-clock
    /// deadline). Defaults to the interpreter's historical step limit,
    /// so configs serialized before budgets existed load — and replay —
    /// identically.
    #[serde(default)]
    pub budget: ExecBudget,
}

impl CampaignConfig {
    /// A paper-shaped campaign scaled to workstation size: the paper ran
    /// 3,540 FP64 programs × ~7 inputs; the default here keeps the same
    /// inputs-per-program and level set with fewer programs.
    pub fn default_for(precision: Precision, mode: TestMode) -> Self {
        let (n_programs, inputs_per_program) = match precision {
            Precision::F64 => (400, 7),
            Precision::F32 => (320, 6),
        };
        CampaignConfig {
            precision,
            mode,
            n_programs,
            inputs_per_program,
            seed: 2024,
            gen: GenConfig::varity_default(precision),
            quirks: QuirkSet::all(),
            levels: OptLevel::ALL.to_vec(),
            budget: ExecBudget::default(),
        }
    }

    /// Scale the number of programs (for quick runs and benches).
    pub fn with_programs(mut self, n: usize) -> Self {
        self.n_programs = n;
        self
    }

    /// Override the per-execution fuel budget.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Total runs counted the way the paper's Table IV counts them:
    /// programs × inputs × levels × 2 compilers.
    pub fn total_runs(&self) -> u64 {
        (self.n_programs * self.inputs_per_program * self.levels.len() * 2) as u64
    }
}

/// Discrepancy statistics for one optimization level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Runs at this level (both compilers).
    pub runs: u64,
    /// Comparisons skipped because one side failed to execute.
    pub errors: u64,
    /// Total discrepancies.
    pub discrepancies: u64,
    /// Count per [`DiscrepancyClass`] (in `ALL` order).
    pub by_class: [u64; 7],
    /// Directional adjacency matrix: `adjacency[nvcc_outcome][hipcc_outcome]`
    /// in [`Outcome::ALL`] order (the paper's Tables VI/VIII/X).
    pub adjacency: [[u64; 4]; 4],
}

impl LevelStats {
    fn record(&mut self, nvcc: Outcome, hipcc: Outcome, class: DiscrepancyClass) {
        self.discrepancies += 1;
        self.by_class[class.index()] += 1;
        self.adjacency[nvcc.index()][hipcc.index()] += 1;
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Per-level statistics, in `config.levels` order.
    pub per_level: Vec<(OptLevel, LevelStats)>,
}

impl CampaignReport {
    /// Total runs across all levels.
    pub fn total_runs(&self) -> u64 {
        self.per_level.iter().map(|(_, s)| s.runs).sum()
    }

    /// Total discrepancies across all levels.
    pub fn total_discrepancies(&self) -> u64 {
        self.per_level.iter().map(|(_, s)| s.discrepancies).sum()
    }

    /// Discrepancy percentage, computed the paper's way
    /// (discrepancies / total runs).
    pub fn discrepancy_pct(&self) -> f64 {
        100.0 * self.total_discrepancies() as f64 / self.total_runs() as f64
    }

    /// Class totals across all levels.
    pub fn class_totals(&self) -> [u64; 7] {
        let mut t = [0u64; 7];
        for (_, s) in &self.per_level {
            for (i, v) in s.by_class.iter().enumerate() {
                t[i] += v;
            }
        }
        t
    }
}

/// Run a complete campaign: generate, run both sides, analyze.
///
/// ```
/// use difftest::campaign::{run_campaign, CampaignConfig, TestMode};
/// use progen::Precision;
///
/// let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct)
///     .with_programs(10);
/// let report = run_campaign(&config);
/// assert_eq!(report.total_runs(), config.total_runs());
/// assert_eq!(report.per_level.len(), 5); // O0..O3_FM
/// ```
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut meta = CampaignMeta::generate(config);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    analyze(&meta)
}

/// Analyze a completed (both sides present) campaign's metadata.
pub fn analyze(meta: &CampaignMeta) -> CampaignReport {
    analyze_with_tolerance(meta, 0.0)
}

/// Re-analyze stored results with a relative tolerance on `Num, Num`
/// pairs (0.0 = the paper's bitwise semantics). Because metadata stores
/// exact result bits, any tolerance can be applied after the fact without
/// re-running anything.
pub fn analyze_with_tolerance(meta: &CampaignMeta, rel_tol: f64) -> CampaignReport {
    let _span = obs::span("campaign.analyze");
    let config = meta.config.clone();
    let mut per_level: Vec<(OptLevel, LevelStats)> =
        config.levels.iter().map(|l| (*l, LevelStats::default())).collect();

    for test in &meta.tests {
        for (level, stats) in per_level.iter_mut() {
            let nv = meta_records(test, Toolchain::Nvcc, *level);
            let amd = meta_records(test, Toolchain::Hipcc, *level);
            let (Some(nv), Some(amd)) = (nv, amd) else { continue };
            for (rn, ra) in nv.iter().zip(amd) {
                stats.runs += 2;
                if rn.error.is_some() || ra.error.is_some() {
                    stats.errors += 1;
                    continue;
                }
                let vn = decode(config.precision, rn.bits);
                let va = decode(config.precision, ra.bits);
                if let Some(d) = crate::compare::compare_runs_with_tolerance(&vn, &va, rel_tol) {
                    stats.record(d.nvcc, d.hipcc, d.class);
                }
            }
        }
    }
    CampaignReport { config, per_level }
}

fn meta_records(
    test: &crate::metadata::TestMeta,
    tc: Toolchain,
    level: OptLevel,
) -> Option<&Vec<RunRecord>> {
    test.results.get(&side_key(tc, level))
}

/// Reconstruct an [`ExecValue`] from stored bits.
pub fn decode(precision: Precision, bits: u64) -> ExecValue {
    match precision {
        Precision::F64 => ExecValue::F64(f64::from_bits(bits)),
        Precision::F32 => ExecValue::F32(f32::from_bits(bits as u32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(precision: Precision, mode: TestMode) -> CampaignConfig {
        CampaignConfig::default_for(precision, mode).with_programs(40)
    }

    #[test]
    fn campaign_runs_and_counts_runs_correctly() {
        let cfg = small(Precision::F64, TestMode::Direct);
        let report = run_campaign(&cfg);
        assert_eq!(report.total_runs(), cfg.total_runs());
        assert_eq!(report.per_level.len(), 5);
        for (_, s) in &report.per_level {
            assert_eq!(s.runs, (cfg.n_programs * cfg.inputs_per_program * 2) as u64);
            assert_eq!(s.errors, 0, "no generated program may fail to execute");
        }
    }

    #[test]
    fn campaign_finds_discrepancies_with_quirks_on() {
        let report = run_campaign(
            &CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(150),
        );
        assert!(
            report.total_discrepancies() > 0,
            "a 150-program FP64 campaign should expose at least one discrepancy"
        );
        // consistency: by_class sums match totals
        for (_, s) in &report.per_level {
            assert_eq!(s.by_class.iter().sum::<u64>(), s.discrepancies);
            let adj: u64 = s.adjacency.iter().flatten().sum();
            assert_eq!(adj, s.discrepancies);
        }
    }

    #[test]
    fn quirkless_devices_produce_zero_discrepancies() {
        let mut cfg = small(Precision::F64, TestMode::Direct);
        cfg.quirks = QuirkSet::none();
        // keep fast-math levels out: FTZ/fast-intrinsics are quirk-gated,
        // but nvcc-side reassociation/finite-math are *compiler* behaviour
        // and legitimately diverge even on identical hardware
        cfg.levels = vec![OptLevel::O0];
        let report = run_campaign(&cfg);
        assert_eq!(
            report.total_discrepancies(),
            0,
            "identical math libraries + identical pipelines must agree at O0"
        );
    }

    #[test]
    fn o1_o2_o3_have_identical_stats() {
        let report = run_campaign(&small(Precision::F64, TestMode::Direct));
        let find = |l: OptLevel| {
            report.per_level.iter().find(|(lv, _)| *lv == l).map(|(_, s)| s.clone()).unwrap()
        };
        assert_eq!(find(OptLevel::O1), find(OptLevel::O2));
        assert_eq!(find(OptLevel::O2), find(OptLevel::O3));
    }

    #[test]
    fn campaigns_are_reproducible() {
        let cfg = small(Precision::F64, TestMode::Direct).with_programs(15);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.per_level, b.per_level);
    }

    #[test]
    fn decode_roundtrips_both_precisions() {
        let v = ExecValue::F64(-1.5e-300);
        assert_eq!(decode(Precision::F64, v.bits()), v);
        let v = ExecValue::F32(3.25);
        assert_eq!(decode(Precision::F32, v.bits()), v);
    }

    #[test]
    fn total_runs_matches_paper_arithmetic() {
        // paper: 3,540 programs, 24,750 runs/option/compiler ⇒ 247,500 total
        let mut cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct);
        cfg.n_programs = 3540;
        cfg.inputs_per_program = 7; // 3540*7 = 24,780 ≈ paper's 24,750
        assert_eq!(cfg.total_runs(), 3540 * 7 * 5 * 2);
    }
}
