//! The testing campaign: configuration, execution, aggregation.

use crate::metadata::{reference_key, side_key, CampaignMeta, RunRecord};
use crate::outcome::DiscrepancyClass;
use crate::side::Side;
use crate::verdict::{judge, VerdictStats};
use fpcore::classify::Outcome;
use gpucc::interp::{ExecBudget, ExecValue};
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::QuirkSet;
use progen::ast::Precision;
use progen::grammar::GenConfig;
use serde::{Deserialize, Serialize};

/// Which hipcc-side pipeline a campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestMode {
    /// HIP tests generated natively by the extended Varity (Tables V/VI, IX/X).
    Direct,
    /// CUDA tests converted with HIPIFY, then compiled by hipcc with its
    /// `-ffp-contract=fast` ported-app default (Tables VII/VIII).
    Hipified,
}

impl TestMode {
    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            TestMode::Direct => "direct",
            TestMode::Hipified => "HIPIFY",
        }
    }
}

/// Campaign configuration. Fully determines every program, input and
/// compilation in the campaign (the reproducibility property Fig. 3's
/// between-platform protocol needs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// FP32 or FP64 tests.
    pub precision: Precision,
    /// Direct HIP generation or HIPIFY conversion.
    pub mode: TestMode,
    /// Number of random programs.
    pub n_programs: usize,
    /// Number of random inputs per program.
    pub inputs_per_program: usize,
    /// Master seed.
    pub seed: u64,
    /// Grammar configuration.
    pub gen: GenConfig,
    /// Device divergence mechanisms (all on = the paper's reality;
    /// selectively off = ablation).
    pub quirks: QuirkSet,
    /// Optimization levels to test.
    pub levels: Vec<OptLevel>,
    /// Per-execution fuel budget (instruction cap + optional wall-clock
    /// deadline). Defaults to the interpreter's historical step limit,
    /// so configs serialized before budgets existed load — and replay —
    /// identically.
    #[serde(default)]
    pub budget: ExecBudget,
}

impl CampaignConfig {
    /// A paper-shaped campaign scaled to workstation size: the paper ran
    /// 3,540 FP64 programs × ~7 inputs; the default here keeps the same
    /// inputs-per-program and level set with fewer programs.
    pub fn default_for(precision: Precision, mode: TestMode) -> Self {
        let (n_programs, inputs_per_program) = match precision {
            Precision::F64 => (400, 7),
            Precision::F32 => (320, 6),
        };
        CampaignConfig {
            precision,
            mode,
            n_programs,
            inputs_per_program,
            seed: 2024,
            gen: GenConfig::varity_default(precision),
            quirks: QuirkSet::all(),
            levels: OptLevel::ALL.to_vec(),
            budget: ExecBudget::default(),
        }
    }

    /// Scale the number of programs (for quick runs and benches).
    pub fn with_programs(mut self, n: usize) -> Self {
        self.n_programs = n;
        self
    }

    /// Override the per-execution fuel budget.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Total runs counted the way the paper's Table IV counts them:
    /// programs × inputs × levels × 2 compilers.
    pub fn total_runs(&self) -> u64 {
        (self.n_programs * self.inputs_per_program * self.levels.len() * 2) as u64
    }
}

/// Discrepancy statistics between one ordered pair of sides at one
/// level — the generalized comparison plane. The legacy flat fields of
/// [`LevelStats`] are exactly the `(nvcc, hipcc)` pair's projection;
/// vendor-versus-reference pairs appear here when the ground-truth side
/// ran.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairStats {
    /// Row side of the adjacency matrix.
    pub a: Side,
    /// Column side of the adjacency matrix.
    pub b: Side,
    /// Comparisons performed (both sides produced a value).
    pub compared: u64,
    /// Comparisons skipped because either side errored or was missing.
    pub errors: u64,
    /// Discrepancies between the pair.
    pub discrepancies: u64,
    /// Count per [`DiscrepancyClass`] (in `ALL` order).
    pub by_class: [u64; 7],
    /// Directional adjacency: `adjacency[a_outcome][b_outcome]`.
    pub adjacency: [[u64; 4]; 4],
}

impl PairStats {
    fn new(a: Side, b: Side) -> PairStats {
        PairStats {
            a,
            b,
            compared: 0,
            errors: 0,
            discrepancies: 0,
            by_class: [0; 7],
            adjacency: [[0; 4]; 4],
        }
    }

    fn record(&mut self, a: Outcome, b: Outcome, class: DiscrepancyClass) {
        self.discrepancies += 1;
        self.by_class[class.index()] += 1;
        self.adjacency[a.index()][b.index()] += 1;
    }
}

/// Discrepancy statistics for one optimization level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Runs at this level (both compilers).
    pub runs: u64,
    /// Comparisons skipped because one side failed to execute.
    pub errors: u64,
    /// Total discrepancies.
    pub discrepancies: u64,
    /// Count per [`DiscrepancyClass`] (in `ALL` order).
    pub by_class: [u64; 7],
    /// Directional adjacency matrix: `adjacency[nvcc_outcome][hipcc_outcome]`
    /// in [`Outcome::ALL`] order (the paper's Tables VI/VIII/X).
    pub adjacency: [[u64; 4]; 4],
    /// Per-side-pair statistics beyond the legacy nvcc–hipcc projection
    /// above: the two vendor-versus-reference pairs, populated only when
    /// the ground-truth side ran. Empty — and omitted from JSON — for
    /// two-side campaigns, whose serialized reports stay byte-identical
    /// to the v1 schema.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub pairs: Vec<PairStats>,
    /// Who-drifted tallies for this level's nvcc–hipcc discrepancies,
    /// judged against the ground truth. `None` (omitted from JSON)
    /// without the reference side. Always recomputed from raw records
    /// here at analyze time, never merged numerically, so farm shard
    /// merges stay order-independent by construction.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub verdicts: Option<VerdictStats>,
}

impl LevelStats {
    fn record(&mut self, nvcc: Outcome, hipcc: Outcome, class: DiscrepancyClass) {
        self.discrepancies += 1;
        self.by_class[class.index()] += 1;
        self.adjacency[nvcc.index()][hipcc.index()] += 1;
    }

    fn pair_mut(&mut self, a: Side, b: Side) -> &mut PairStats {
        if let Some(i) = self.pairs.iter().position(|p| p.a == a && p.b == b) {
            return &mut self.pairs[i];
        }
        self.pairs.push(PairStats::new(a, b));
        self.pairs.last_mut().unwrap()
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Per-level statistics, in `config.levels` order.
    pub per_level: Vec<(OptLevel, LevelStats)>,
}

impl CampaignReport {
    /// Total runs across all levels.
    pub fn total_runs(&self) -> u64 {
        self.per_level.iter().map(|(_, s)| s.runs).sum()
    }

    /// Total discrepancies across all levels.
    pub fn total_discrepancies(&self) -> u64 {
        self.per_level.iter().map(|(_, s)| s.discrepancies).sum()
    }

    /// Discrepancy percentage, computed the paper's way
    /// (discrepancies / total runs).
    pub fn discrepancy_pct(&self) -> f64 {
        100.0 * self.total_discrepancies() as f64 / self.total_runs() as f64
    }

    /// Class totals across all levels.
    pub fn class_totals(&self) -> [u64; 7] {
        let mut t = [0u64; 7];
        for (_, s) in &self.per_level {
            for (i, v) in s.by_class.iter().enumerate() {
                t[i] += v;
            }
        }
        t
    }

    /// Whether the analyzed metadata had the ground-truth side (any
    /// level carries verdict tallies).
    pub fn has_verdicts(&self) -> bool {
        self.per_level.iter().any(|(_, s)| s.verdicts.is_some())
    }

    /// Verdict totals across all levels (display only: shard merges
    /// recompute per-level tallies from raw records instead of summing).
    pub fn verdict_totals(&self) -> Option<VerdictStats> {
        if !self.has_verdicts() {
            return None;
        }
        let mut total = VerdictStats::default();
        for (_, s) in &self.per_level {
            if let Some(v) = &s.verdicts {
                total.absorb(v);
            }
        }
        Some(total)
    }
}

/// Run a complete campaign: generate, run both sides, analyze.
///
/// ```
/// use difftest::campaign::{run_campaign, CampaignConfig, TestMode};
/// use progen::Precision;
///
/// let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct)
///     .with_programs(10);
/// let report = run_campaign(&config);
/// assert_eq!(report.total_runs(), config.total_runs());
/// assert_eq!(report.per_level.len(), 5); // O0..O3_FM
/// ```
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut meta = CampaignMeta::generate(config);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    analyze(&meta)
}

/// Analyze a completed (both sides present) campaign's metadata.
pub fn analyze(meta: &CampaignMeta) -> CampaignReport {
    analyze_with_tolerance(meta, 0.0)
}

/// Re-analyze stored results with a relative tolerance on `Num, Num`
/// pairs (0.0 = the paper's bitwise semantics). Because metadata stores
/// exact result bits, any tolerance can be applied after the fact without
/// re-running anything.
///
/// When the metadata carries the ground-truth side (`campaign
/// --reference`), every level additionally gets the two
/// vendor-versus-reference [`PairStats`] and a [`VerdictStats`] tally
/// judging each nvcc–hipcc discrepancy against the truth. Fast-math
/// levels are judged [`crate::verdict::Verdict::TruthUndecided`] by
/// construction — `-ffast-math` has no single obligated result.
pub fn analyze_with_tolerance(meta: &CampaignMeta, rel_tol: f64) -> CampaignReport {
    let _span = obs::span("campaign.analyze");
    let config = meta.config.clone();
    let has_truth = meta.has_reference();
    let mut per_level: Vec<(OptLevel, LevelStats)> = config
        .levels
        .iter()
        .map(|l| {
            let mut stats = LevelStats::default();
            if has_truth {
                // seed the truth-plane columns so every level serializes
                // them (stably) even when it has no discrepancies
                stats.pair_mut(Side::Nvcc, Side::Reference);
                stats.pair_mut(Side::Hipcc, Side::Reference);
                stats.verdicts = Some(VerdictStats::default());
            }
            (*l, stats)
        })
        .collect();

    for test in &meta.tests {
        let truth_recs = test.results.get(&reference_key());
        for (level, stats) in per_level.iter_mut() {
            let nv = meta_records(test, Toolchain::Nvcc, *level);
            let amd = meta_records(test, Toolchain::Hipcc, *level);
            let (Some(nv), Some(amd)) = (nv, amd) else { continue };
            for (k, (rn, ra)) in nv.iter().zip(amd).enumerate() {
                stats.runs += 2;
                if rn.error.is_some() || ra.error.is_some() {
                    stats.errors += 1;
                    continue;
                }
                let vn = decode(config.precision, rn.bits);
                let va = decode(config.precision, ra.bits);
                let disc = crate::compare::compare_runs_with_tolerance(&vn, &va, rel_tol);
                if let Some(d) = &disc {
                    stats.record(d.nvcc, d.hipcc, d.class);
                }
                if !has_truth {
                    continue;
                }
                // the truth plane: one reference column serves every level
                let truth = truth_recs
                    .and_then(|rs| rs.get(k))
                    .filter(|r| r.error.is_none())
                    .map(|r| decode(config.precision, r.bits));
                for (side, v) in [(Side::Nvcc, &vn), (Side::Hipcc, &va)] {
                    let pair = stats.pair_mut(side, Side::Reference);
                    match &truth {
                        Some(t) => {
                            pair.compared += 1;
                            if let Some(d) =
                                crate::compare::compare_runs_with_tolerance(v, t, rel_tol)
                            {
                                pair.record(d.nvcc, d.hipcc, d.class);
                            }
                        }
                        None => pair.errors += 1,
                    }
                }
                if disc.is_some() {
                    let score = judge(&vn, &va, truth.as_ref(), level.is_fast_math());
                    if let Some(v) = &mut stats.verdicts {
                        v.record(&score);
                    }
                }
            }
        }
    }
    CampaignReport { config, per_level }
}

fn meta_records(
    test: &crate::metadata::TestMeta,
    tc: Toolchain,
    level: OptLevel,
) -> Option<&Vec<RunRecord>> {
    test.results.get(&side_key(tc, level))
}

/// Reconstruct an [`ExecValue`] from stored bits.
pub fn decode(precision: Precision, bits: u64) -> ExecValue {
    match precision {
        Precision::F64 => ExecValue::F64(f64::from_bits(bits)),
        Precision::F32 => ExecValue::F32(f32::from_bits(bits as u32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(precision: Precision, mode: TestMode) -> CampaignConfig {
        CampaignConfig::default_for(precision, mode).with_programs(40)
    }

    #[test]
    fn campaign_runs_and_counts_runs_correctly() {
        let cfg = small(Precision::F64, TestMode::Direct);
        let report = run_campaign(&cfg);
        assert_eq!(report.total_runs(), cfg.total_runs());
        assert_eq!(report.per_level.len(), 5);
        for (_, s) in &report.per_level {
            assert_eq!(s.runs, (cfg.n_programs * cfg.inputs_per_program * 2) as u64);
            assert_eq!(s.errors, 0, "no generated program may fail to execute");
        }
    }

    #[test]
    fn campaign_finds_discrepancies_with_quirks_on() {
        let report = run_campaign(
            &CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(150),
        );
        assert!(
            report.total_discrepancies() > 0,
            "a 150-program FP64 campaign should expose at least one discrepancy"
        );
        // consistency: by_class sums match totals
        for (_, s) in &report.per_level {
            assert_eq!(s.by_class.iter().sum::<u64>(), s.discrepancies);
            let adj: u64 = s.adjacency.iter().flatten().sum();
            assert_eq!(adj, s.discrepancies);
        }
    }

    #[test]
    fn quirkless_devices_produce_zero_discrepancies() {
        let mut cfg = small(Precision::F64, TestMode::Direct);
        cfg.quirks = QuirkSet::none();
        // keep fast-math levels out: FTZ/fast-intrinsics are quirk-gated,
        // but nvcc-side reassociation/finite-math are *compiler* behaviour
        // and legitimately diverge even on identical hardware
        cfg.levels = vec![OptLevel::O0];
        let report = run_campaign(&cfg);
        assert_eq!(
            report.total_discrepancies(),
            0,
            "identical math libraries + identical pipelines must agree at O0"
        );
    }

    #[test]
    fn o1_o2_o3_have_identical_stats() {
        let report = run_campaign(&small(Precision::F64, TestMode::Direct));
        let find = |l: OptLevel| {
            report.per_level.iter().find(|(lv, _)| *lv == l).map(|(_, s)| s.clone()).unwrap()
        };
        assert_eq!(find(OptLevel::O1), find(OptLevel::O2));
        assert_eq!(find(OptLevel::O2), find(OptLevel::O3));
    }

    #[test]
    fn campaigns_are_reproducible() {
        let cfg = small(Precision::F64, TestMode::Direct).with_programs(15);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.per_level, b.per_level);
    }

    #[test]
    fn reference_side_yields_pairs_and_verdicts() {
        let cfg = small(Precision::F64, TestMode::Direct).with_programs(150);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let two_side = analyze(&meta);
        assert!(!two_side.has_verdicts());
        meta.run_reference();
        let report = analyze(&meta);
        assert!(report.has_verdicts());
        for ((level, s), (_, legacy)) in report.per_level.iter().zip(&two_side.per_level) {
            // the truth plane must not perturb the legacy projection
            assert_eq!(s.runs, legacy.runs);
            assert_eq!(s.discrepancies, legacy.discrepancies);
            assert_eq!(s.by_class, legacy.by_class);
            assert_eq!(s.adjacency, legacy.adjacency);
            let v = s.verdicts.as_ref().unwrap();
            assert_eq!(v.judged, s.discrepancies, "every discrepancy is judged");
            if level.is_fast_math() {
                assert_eq!(v.decided(), 0, "fast-math cells are truth-undecided");
            }
            assert_eq!(s.pairs.len(), 2);
            assert!(s.pairs.iter().all(|p| p.b == Side::Reference));
            assert!(s.pairs.iter().all(|p| p.errors == 0), "truth ran for every unit");
        }
    }

    #[test]
    fn forged_fig5_discrepancy_is_blamed_on_nvcc() {
        use crate::verdict::Verdict;
        let cfg = small(Precision::F64, TestMode::Direct).with_programs(5);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        meta.run_reference();
        // forge the paper's Fig. 5 record: nvcc overflowed to Inf while
        // hipcc — matching the strict truth — kept 1.34887e-306
        let truth_bits = 1.34887e-306f64.to_bits();
        let t = &mut meta.tests[0];
        t.results.get_mut(&side_key(Toolchain::Nvcc, OptLevel::O0)).unwrap()[0].bits =
            f64::INFINITY.to_bits();
        t.results.get_mut(&side_key(Toolchain::Hipcc, OptLevel::O0)).unwrap()[0].bits = truth_bits;
        t.results.get_mut(&crate::metadata::reference_key()).unwrap()[0].bits = truth_bits;
        let report = analyze(&meta);
        let (_, s) = report.per_level.iter().find(|(l, _)| *l == OptLevel::O0).unwrap();
        let v = s.verdicts.as_ref().unwrap();
        assert!(v.by_verdict[Verdict::NvccDrifted.index()] >= 1, "{v:?}");
        assert!(v.nvcc_ulps_total > 1 << 52, "Inf is a huge but defined drift: {v:?}");
    }

    #[test]
    fn two_side_reports_serialize_without_truth_fields() {
        let report = run_campaign(&small(Precision::F64, TestMode::Direct).with_programs(10));
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("\"pairs\""), "v1 report schema must be unchanged");
        assert!(!json.contains("\"verdicts\""));
    }

    #[test]
    fn decode_roundtrips_both_precisions() {
        let v = ExecValue::F64(-1.5e-300);
        assert_eq!(decode(Precision::F64, v.bits()), v);
        let v = ExecValue::F32(3.25);
        assert_eq!(decode(Precision::F32, v.bits()), v);
    }

    #[test]
    fn total_runs_matches_paper_arithmetic() {
        // paper: 3,540 programs, 24,750 runs/option/compiler ⇒ 247,500 total
        let mut cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct);
        cfg.n_programs = 3540;
        cfg.inputs_per_program = 7; // 3540*7 = 24,780 ≈ paper's 24,750
        assert_eq!(cfg.total_runs(), 3540 * 7 * 5 * 2);
    }
}
