//! Deliberate journal faults for the fault-tolerance self-tests.
//!
//! Companion to [`gpucc::chaos`] (seeded interpreter panics): this
//! module injects faults into the *persistence* layer — transient
//! ENOSPC-style I/O errors, torn writes, and simulated crashes at a
//! chosen journal append — so `tests/chaos.rs` can prove the checkpoint
//! journal's retry, truncate-and-repair, and kill/resume behaviour
//! in-process.
//!
//! Same two safety layers as `gpucc::inject` / `gpucc::chaos`: the
//! module only exists under the `chaos` cargo feature, and every
//! injection is disarmed by default and must be armed at runtime. Tests
//! that arm injection must serialize themselves (the switches are
//! globals) and disarm in all exit paths.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What the next armed journal write should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// Fail before writing anything (clean transient error).
    IoError,
    /// Write half the frame, then fail (partial write the retry path
    /// must truncate away).
    PartialThenError,
    /// Write the full frame, then panic (simulated crash between
    /// appends: the journal is intact up to and including this record).
    Crash,
    /// Write half the frame, then panic (simulated crash mid-append:
    /// the journal ends in a torn record replay must drop).
    CrashTorn,
}

static IO_ERRORS: AtomicU64 = AtomicU64::new(0);
static PARTIAL_ERRORS: AtomicU64 = AtomicU64::new(0);
static CRASH_COUNTDOWN: AtomicU64 = AtomicU64::new(0);
static CRASH_TORN: AtomicBool = AtomicBool::new(false);

/// Arm `n` clean transient I/O errors: the next `n` journal write
/// attempts fail before writing, then writes succeed again.
pub fn arm_io_errors(n: u64) {
    IO_ERRORS.store(n, Ordering::SeqCst);
}

/// Arm `n` torn transient I/O errors: the next `n` journal write
/// attempts write half a frame and then fail.
pub fn arm_partial_errors(n: u64) {
    PARTIAL_ERRORS.store(n, Ordering::SeqCst);
}

/// Arm a simulated crash on the `nth` journal append from now
/// (1-based). `torn` crashes mid-frame; otherwise the crash lands after
/// the frame is fully written. `n == 0` disarms.
pub fn arm_crash_at_append(n: u64, torn: bool) {
    CRASH_TORN.store(torn, Ordering::SeqCst);
    CRASH_COUNTDOWN.store(n, Ordering::SeqCst);
}

/// Disarm every journal injection.
pub fn disarm() {
    IO_ERRORS.store(0, Ordering::SeqCst);
    PARTIAL_ERRORS.store(0, Ordering::SeqCst);
    CRASH_COUNTDOWN.store(0, Ordering::SeqCst);
    CRASH_TORN.store(false, Ordering::SeqCst);
}

/// Decrement-and-fetch for one armed counter: returns true if this call
/// claimed one of the remaining injections.
fn claim(counter: &AtomicU64) -> bool {
    counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)).is_ok()
}

/// Called by the journal writer before each write attempt: the fault the
/// attempt should simulate, if any is armed.
pub(crate) fn next_journal_fault() -> Option<JournalFault> {
    if claim(&CRASH_COUNTDOWN) {
        if CRASH_COUNTDOWN.load(Ordering::SeqCst) == 0 {
            return Some(if CRASH_TORN.load(Ordering::SeqCst) {
                JournalFault::CrashTorn
            } else {
                JournalFault::Crash
            });
        }
        return None;
    }
    if claim(&IO_ERRORS) {
        return Some(JournalFault::IoError);
    }
    if claim(&PARTIAL_ERRORS) {
        return Some(JournalFault::PartialThenError);
    }
    None
}
