//! Crash-safe campaign persistence and the fault-tolerant runner.
//!
//! A campaign at paper scale (Tables IV–X: tens of thousands of runs) is
//! a long-lived batch job. This module makes it killable at any instant:
//!
//! * [`atomic_write`] — temp file + fsync + rename in the destination
//!   directory, so a reader never observes a half-written file.
//! * [`FramedLog`] — a generic append-only log of [`encode_frame`]d
//!   payloads behind an 8-byte magic: the durability substrate shared
//!   by the checkpoint journal below and `farm`'s coordinator journal
//!   (and, frame-wise, the fleet wire protocol).
//! * [`Journal`] — an append-only checkpoint journal of CRC-framed
//!   [`UnitRecord`]s, one per completed (test, toolchain, level) work
//!   unit. Appends are write-through (no user-space buffering), so a
//!   `SIGKILL` between any two syscalls loses at most the record being
//!   written — and the CRC framing drops that torn tail on replay
//!   instead of failing.
//! * [`FtSession`] + [`run_side_ft`] / [`run_reference_ft`] — the
//!   fault-tolerant runners: skip journal-replayed units, isolate each
//!   unit with [`crate::fault::catch_isolated`], capture the unit's
//!   exact metric deltas (so a resumed campaign's telemetry matches an
//!   uninterrupted run), enforce a `--max-faults` circuit breaker, and
//!   honour the cooperative shutdown flag between units.
//!
//! Work units are keyed by `(test index, [`SideKey`])`, and campaigns
//! are deterministic in their config, so replay + re-run of the
//! remaining units reproduces the uninterrupted campaign byte-for-byte —
//! the resume-equivalence property `tests/chaos.rs` proves under
//! injected crashes.

use crate::campaign::CampaignConfig;
use crate::fault::{self, TestFault};
use crate::metadata::{side_key, CampaignMeta, MetaError, RunRecord};
use crate::side::{Side, SideKey};
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use parking_lot::Mutex;
use progen::gen::generate_program;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Journal file magic written by this version: identifies the format
/// and its semantic version. v2 records may carry the `"reference:O0"`
/// ground-truth side alongside the vendor sides; the framing itself is
/// unchanged from v1.
pub const JOURNAL_MAGIC: &[u8; 8] = b"VGJRNL02";

/// The v1 magic. Journals written before the reference side existed
/// still parse — their side keys are a strict subset of v2's — so a
/// two-side campaign checkpointed under v1 resumes unchanged.
pub const JOURNAL_MAGIC_V1: &[u8; 8] = b"VGJRNL01";

/// Bounded retry count for one journal append (covers transient
/// ENOSPC-style failures; each retry truncates any partial write first).
const MAX_APPEND_ATTEMPTS: u32 = 4;

/// Base backoff between append retries (multiplied by the attempt number).
const APPEND_BACKOFF_MS: u64 = 5;

/// IEEE CRC-32 lookup table (polynomial 0xEDB88320), built at compile
/// time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the checksum framing every journal record).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: a uniquely named temp file in the
/// destination directory, `fsync`, then `rename` over the target (and a
/// best-effort directory fsync so the rename itself is durable). A
/// reader — or a crash at any instant — sees either the old file or the
/// complete new one, never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    let tmp = dir.join(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// One completed work unit: every input of one test, run on one
/// `(toolchain, level)` side. The journal's unit of progress — and of
/// loss: a crash forfeits at most the unit being written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// Generation index of the test.
    pub index: u64,
    /// The side key this unit ran (serialized as the `"{side}:{level}"`
    /// string, wire-identical to the v1 journal's free-form field).
    pub side: SideKey,
    /// Results, one per input (error records for contained faults).
    pub records: Vec<RunRecord>,
    /// Faults contained while running this unit (quarantine source).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<TestFault>,
    /// Exact telemetry deltas this unit produced, captured via
    /// `obs::with_capture`. Replaying them on resume makes a resumed
    /// campaign's metric totals match an uninterrupted run.
    #[serde(default, skip_serializing_if = "obs::MetricsSnapshot::is_empty")]
    pub metrics: obs::MetricsSnapshot,
}

/// Encode one payload as a CRC frame:
/// `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`. The framing
/// shared by checkpoint journals, the farm coordinator's journal, and
/// the fleet wire protocol.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Try to split one frame off the front of `bytes`. Returns the payload
/// and the total frame length consumed, or `None` when the bytes are
/// short, torn, or fail the CRC — callers treat that as "no (more)
/// valid frames here", never as a panic.
pub fn decode_frame(bytes: &[u8]) -> Option<(&[u8], usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let payload = bytes.get(8..8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, 8 + len))
}

struct LogInner {
    file: File,
    offset: u64,
}

/// A generic append-only, CRC-framed byte log: an 8-byte magic, then
/// [`encode_frame`]d payloads. Appends go straight to the OS (no
/// `BufWriter`), so they survive a process kill at any instant; a
/// machine-level crash can lose or tear only the final frame, which
/// replay detects by CRC and drops. [`Journal`] layers campaign
/// [`UnitRecord`]s on top; `farm`'s coordinator journal layers lease
/// state transitions on top — same durability contract, different
/// payloads and magic.
pub struct FramedLog {
    path: PathBuf,
    inner: Mutex<LogInner>,
}

impl FramedLog {
    /// Create (or truncate) a log at `path`, stamped with `magic`.
    pub fn create(path: &Path, magic: &[u8; 8]) -> io::Result<FramedLog> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.write_all(magic)?;
        file.sync_data()?;
        Ok(FramedLog {
            path: path.to_path_buf(),
            inner: Mutex::new(LogInner { file, offset: magic.len() as u64 }),
        })
    }

    /// Open an existing log, replaying its valid payload prefix. The
    /// file must start with one of the `accept`ed magics (a missing or
    /// wrong magic is a real error). Scanning stops at the first short,
    /// torn, or CRC-mismatched frame — or at the first frame `is_valid`
    /// rejects — and that tail is physically truncated away so
    /// subsequent appends extend a clean file. Returns the log
    /// positioned for appending plus the replayed payloads.
    pub fn open_for_resume(
        path: &Path,
        accept: &[&[u8; 8]],
        is_valid: impl Fn(&[u8]) -> bool,
    ) -> io::Result<(FramedLog, Vec<Vec<u8>>)> {
        let bytes = std::fs::read(path)?;
        let magic_len = accept.first().map_or(8, |m| m.len());
        let known_magic =
            bytes.len() >= magic_len && accept.iter().any(|m| bytes[..magic_len] == m[..]);
        if !known_magic {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a checkpoint journal"));
        }
        let mut payloads = Vec::new();
        let mut pos = magic_len;
        while let Some((payload, consumed)) = decode_frame(&bytes[pos..]) {
            if !is_valid(payload) {
                break;
            }
            payloads.push(payload.to_vec());
            pos += consumed;
        }
        let valid_end = pos as u64;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_end)?;
        file.seek(SeekFrom::Start(valid_end))?;
        let log = FramedLog {
            path: path.to_path_buf(),
            inner: Mutex::new(LogInner { file, offset: valid_end }),
        };
        Ok((log, payloads))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current length of the valid log in bytes (magic + appended
    /// frames) — the journal-growth watermark heartbeats watch.
    pub fn len(&self) -> u64 {
        self.inner.lock().offset
    }

    /// Whether the log holds no frames yet.
    pub fn is_empty(&self) -> bool {
        // An empty log still carries its 8-byte magic.
        self.len() <= 8
    }

    /// Append one payload as a CRC frame, with bounded retry + backoff
    /// on I/O errors. Each failed attempt truncates back to the frame
    /// start, so a partial write from a transient error (ENOSPC and
    /// friends) never corrupts the log.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload);
        let mut inner = self.inner.lock();
        let start = inner.offset;
        let mut attempt = 0u32;
        loop {
            match write_frame(&mut inner, &frame) {
                Ok(()) => {
                    inner.offset = start + frame.len() as u64;
                    obs::add("checkpoint.appends", 1);
                    return Ok(());
                }
                Err(e) => {
                    attempt += 1;
                    obs::add("checkpoint.append_retries", 1);
                    let _ = inner.file.set_len(start);
                    let _ = inner.file.seek(SeekFrom::Start(start));
                    if attempt >= MAX_APPEND_ATTEMPTS {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(
                        u64::from(attempt) * APPEND_BACKOFF_MS,
                    ));
                }
            }
        }
    }

    /// Flush log contents to stable storage (graceful shutdown and
    /// side completion; individual appends rely on write-through).
    pub fn sync(&self) -> io::Result<()> {
        self.inner.lock().file.sync_data()
    }
}

/// Append-only, CRC-framed checkpoint journal of [`UnitRecord`]s: a
/// [`FramedLog`] whose payloads are JSON unit records.
pub struct Journal {
    log: FramedLog,
}

impl Journal {
    /// Create (or truncate) a journal at `path`.
    pub fn create(path: &Path) -> io::Result<Journal> {
        Ok(Journal { log: FramedLog::create(path, JOURNAL_MAGIC)? })
    }

    /// Open an existing journal, replaying its valid prefix. The torn or
    /// corrupt tail (if any) is physically truncated away so subsequent
    /// appends extend a clean file. Returns the journal positioned for
    /// appending plus the replayed records. A frame that passes its CRC
    /// but fails to parse as a [`UnitRecord`] also stops the scan (those
    /// units simply re-run); a missing or wrong magic is a real error.
    pub fn open_for_resume(path: &Path) -> io::Result<(Journal, Vec<UnitRecord>)> {
        let (log, payloads) =
            FramedLog::open_for_resume(path, &[JOURNAL_MAGIC, JOURNAL_MAGIC_V1], |p| {
                serde_json::from_slice::<UnitRecord>(p).is_ok()
            })?;
        let units = payloads
            .iter()
            .map(|p| serde_json::from_slice::<UnitRecord>(p))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok((Journal { log }, units))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// Append one unit record, with bounded retry + backoff on I/O
    /// errors. Each failed attempt truncates back to the frame start, so
    /// a partial write from a transient error (ENOSPC and friends) never
    /// corrupts the journal.
    pub fn append(&self, unit: &UnitRecord) -> io::Result<()> {
        let payload =
            serde_json::to_vec(unit).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.log.append(&payload)
    }

    /// Flush journal contents to stable storage (graceful shutdown and
    /// side completion; individual appends rely on write-through).
    pub fn sync(&self) -> io::Result<()> {
        self.log.sync()
    }
}

fn write_frame(inner: &mut LogInner, frame: &[u8]) -> io::Result<()> {
    #[cfg(feature = "chaos")]
    match crate::chaos::next_journal_fault() {
        Some(crate::chaos::JournalFault::IoError) => {
            return Err(io::Error::other("chaos: injected ENOSPC"));
        }
        Some(crate::chaos::JournalFault::PartialThenError) => {
            inner.file.write_all(&frame[..frame.len() / 2])?;
            return Err(io::Error::other("chaos: injected torn write"));
        }
        Some(crate::chaos::JournalFault::Crash) => {
            inner.file.write_all(frame)?;
            panic!("chaos: simulated crash after journal append");
        }
        Some(crate::chaos::JournalFault::CrashTorn) => {
            inner.file.write_all(&frame[..frame.len() / 2])?;
            panic!("chaos: simulated crash mid-append");
        }
        None => {}
    }
    inner.file.write_all(frame)
}

/// Which slice of a campaign a checkpoint covers: shard `index` of
/// `count`, i.e. the tests whose generation index is ≡ `index` (mod
/// `count`) — the subset [`CampaignMeta::generate_shard`] regenerates.
/// Persisted as `shard.json` in the checkpoint directory so `--resume`
/// re-runs exactly the same subset; the farm supervisor writes it once
/// when it creates a lease's checkpoint and every worker (first spawn or
/// respawn) just resumes the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Shard index in `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl std::str::FromStr for ShardSpec {
    type Err = String;

    /// Parse the CLI's `K/N` form (`--shard 3/8`).
    fn from_str(s: &str) -> Result<ShardSpec, String> {
        let err = || format!("bad shard spec {s:?} (use K/N, e.g. 3/8)");
        let (k, n) = s.split_once('/').ok_or_else(err)?;
        let spec = ShardSpec {
            index: k.trim().parse().map_err(|_| err())?,
            count: n.trim().parse().map_err(|_| err())?,
        };
        if spec.count == 0 || spec.index >= spec.count {
            return Err(format!("shard index must satisfy K < N, got {spec}"));
        }
        Ok(spec)
    }
}

/// A checkpoint directory: the campaign config (written atomically at
/// creation), the journal, and — for farm leases — the `shard.json`
/// spec naming the campaign slice this directory owns.
/// `quarantine.jsonl` is derived data the CLI writes next to them when
/// the campaign finishes or stops, and a `stop` file dropped in the
/// directory asks the running worker to drain at the next unit boundary.
pub struct Checkpoint {
    dir: PathBuf,
    journal: Journal,
    shard: Option<ShardSpec>,
}

impl Checkpoint {
    /// Path of the config file inside a checkpoint directory.
    pub fn config_path(dir: &Path) -> PathBuf {
        dir.join("config.json")
    }

    /// Path of the journal inside a checkpoint directory.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("journal.bin")
    }

    /// Path of the quarantine log inside a checkpoint directory.
    pub fn quarantine_path(dir: &Path) -> PathBuf {
        dir.join("quarantine.jsonl")
    }

    /// Path of the shard spec inside a checkpoint directory.
    pub fn shard_path(dir: &Path) -> PathBuf {
        dir.join("shard.json")
    }

    /// Path of the cooperative stop file inside a checkpoint directory.
    /// Creating it asks the worker running this checkpoint to stop at
    /// the next unit boundary, flush, and exit as interrupted — drain
    /// without signals.
    pub fn stop_path(dir: &Path) -> PathBuf {
        dir.join("stop")
    }

    /// Start a fresh checkpoint: create the directory, persist the
    /// config atomically, and truncate the journal.
    pub fn create(dir: &Path, config: &CampaignConfig) -> Result<Checkpoint, MetaError> {
        Self::create_sharded(dir, config, None)
    }

    /// Start a fresh checkpoint covering one shard of the campaign (or
    /// all of it when `shard` is `None`). Clears any stale `stop` file
    /// so a directory recycled from a drained run starts live.
    pub fn create_sharded(
        dir: &Path,
        config: &CampaignConfig,
        shard: Option<ShardSpec>,
    ) -> Result<Checkpoint, MetaError> {
        std::fs::create_dir_all(dir).map_err(meta_io)?;
        let json = serde_json::to_vec_pretty(config).map_err(meta_io)?;
        atomic_write(&Self::config_path(dir), &json).map_err(meta_io)?;
        if let Some(spec) = &shard {
            let spec_json = serde_json::to_vec_pretty(spec).map_err(meta_io)?;
            atomic_write(&Self::shard_path(dir), &spec_json).map_err(meta_io)?;
        }
        std::fs::remove_file(Self::stop_path(dir)).ok();
        let journal = Journal::create(&Self::journal_path(dir)).map_err(meta_io)?;
        Ok(Checkpoint { dir: dir.to_path_buf(), journal, shard })
    }

    /// Reopen a checkpoint directory: load the config (and the shard
    /// spec, if this checkpoint covers one) and replay the journal's
    /// valid prefix.
    pub fn resume(dir: &Path) -> Result<(Checkpoint, CampaignConfig, Vec<UnitRecord>), MetaError> {
        let json = std::fs::read_to_string(Self::config_path(dir)).map_err(meta_io)?;
        let config: CampaignConfig = serde_json::from_str(&json).map_err(meta_io)?;
        let shard = match std::fs::read_to_string(Self::shard_path(dir)) {
            Ok(s) => Some(serde_json::from_str(&s).map_err(meta_io)?),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(meta_io(e)),
        };
        let (journal, units) =
            Journal::open_for_resume(&Self::journal_path(dir)).map_err(meta_io)?;
        Ok((Checkpoint { dir: dir.to_path_buf(), journal, shard }, config, units))
    }

    /// The checkpoint's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The checkpoint's journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The campaign slice this checkpoint covers (`None` = the whole
    /// campaign).
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// Take ownership of the journal (to hand to an [`FtSession`]).
    pub fn into_journal(self) -> Journal {
        self.journal
    }
}

fn meta_io(e: impl std::fmt::Display) -> MetaError {
    MetaError::Io(e.to_string())
}

/// How a fault-tolerant run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtStatus {
    /// Every unit ran (possibly with quarantined faults).
    Complete,
    /// The `--max-faults` circuit breaker tripped; remaining units were
    /// skipped.
    FaultLimit,
    /// A graceful shutdown was requested; completed units are
    /// checkpointed and the campaign can be resumed.
    Interrupted,
    /// The journal hit an unrecoverable I/O error (after bounded
    /// retries).
    IoError(String),
}

/// Shared state of one fault-tolerant campaign run (both sides): the
/// optional journal, the set of units already replayed from it, the
/// fault ledger, and the circuit breaker.
pub struct FtSession {
    journal: Option<Journal>,
    skip: HashSet<(u64, SideKey)>,
    max_faults: Option<u64>,
    heed_shutdown: bool,
    stop_file: Option<PathBuf>,
    faults: Mutex<Vec<TestFault>>,
    tripped: AtomicBool,
    io_error: Mutex<Option<String>>,
}

impl FtSession {
    /// A session with a journal (checkpointing) and/or a fault cap.
    /// `max_faults` is the number of faults *tolerated*: `Some(0)` trips
    /// the breaker on the first fault. Sessions built this way honour
    /// the process-global shutdown flag between units.
    pub fn new(journal: Option<Journal>, max_faults: Option<u64>) -> FtSession {
        FtSession {
            journal,
            skip: HashSet::new(),
            max_faults,
            heed_shutdown: true,
            stop_file: None,
            faults: Mutex::new(Vec::new()),
            tripped: AtomicBool::new(false),
            io_error: Mutex::new(None),
        }
    }

    /// Also watch a stop file: when `path` comes into existence the
    /// session behaves exactly as if a graceful shutdown were requested
    /// — workers stop at the next unit boundary, the checkpoint is
    /// flushed, and the run reports [`FtStatus::Interrupted`]. This is
    /// how a farm supervisor drains worker *processes* it cannot (or
    /// chooses not to) signal: it drops [`Checkpoint::stop_path`] into
    /// the lease's checkpoint directory.
    pub fn with_stop_file(mut self, path: PathBuf) -> FtSession {
        self.stop_file = Some(path);
        self
    }

    /// A plain session: no journal, no skip set, no fault cap, and deaf
    /// to the global shutdown flag (so concurrent library users can't
    /// interrupt each other). This is what `CampaignMeta::run_side`
    /// uses — isolation and quarantine accounting always on,
    /// persistence opt-in.
    pub fn plain() -> FtSession {
        FtSession { heed_shutdown: false, ..FtSession::new(None, None) }
    }

    /// Whether the session's stop file exists (checked between units,
    /// alongside the global shutdown flag).
    fn stop_file_present(&self) -> bool {
        self.stop_file.as_deref().is_some_and(|p| p.exists())
    }

    /// Apply journal-replayed units to the regenerated campaign: store
    /// their results, mark them skipped, adopt their faults, and fold
    /// their telemetry into the global metrics (when telemetry is on).
    /// Duplicate `(index, side)` units — possible when a dropped tail
    /// was re-run before a second crash — are applied once.
    pub fn apply_replay(&mut self, meta: &mut CampaignMeta, units: Vec<UnitRecord>) {
        for unit in units {
            if !self.skip.insert((unit.index, unit.side)) {
                continue;
            }
            let test = match meta.tests.get_mut(unit.index as usize) {
                Some(t) if t.index == unit.index => Some(t),
                _ => meta.tests.iter_mut().find(|t| t.index == unit.index),
            };
            let Some(test) = test else { continue };
            test.results.insert(unit.side.to_string(), unit.records);
            self.faults.lock().extend(unit.faults);
            if obs::enabled() && !unit.metrics.is_empty() {
                obs::global().merge_snapshot(&unit.metrics);
            }
        }
    }

    /// Number of units already replayed from the journal.
    pub fn replayed(&self) -> usize {
        self.skip.len()
    }

    /// All faults seen so far (replayed + contained this run).
    pub fn faults(&self) -> Vec<TestFault> {
        self.faults.lock().clone()
    }

    /// Whether the fault circuit breaker tripped.
    pub fn fault_limit_hit(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// How this session would report its run so far.
    pub fn status(&self) -> FtStatus {
        if let Some(e) = self.io_error.lock().clone() {
            return FtStatus::IoError(e);
        }
        if self.fault_limit_hit() {
            return FtStatus::FaultLimit;
        }
        if (self.heed_shutdown && fault::shutdown_requested()) || self.stop_file_present() {
            return FtStatus::Interrupted;
        }
        FtStatus::Complete
    }

    /// The session's journal, if checkpointing.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    fn stopped(&self) -> bool {
        self.fault_limit_hit() || self.io_error.lock().is_some()
    }

    fn register_fault(&self, fault: TestFault) {
        let count = {
            let mut v = self.faults.lock();
            v.push(fault);
            v.len() as u64
        };
        if let Some(max) = self.max_faults {
            if count > max && !self.tripped.swap(true, Ordering::SeqCst) {
                obs::add("campaign.fault_limit_tripped", 1);
            }
        }
    }

    fn record_io_error(&self, e: &io::Error) {
        let mut slot = self.io_error.lock();
        if slot.is_none() {
            *slot = Some(e.to_string());
        }
    }
}

/// Execute one side of a campaign fault-tolerantly: per-unit isolation
/// and quarantine, journal checkpointing, metric capture, circuit
/// breaker, and cooperative shutdown. Units already in the session's
/// skip set (journal replay) are not re-run — and because campaigns are
/// deterministic in their config, the final metadata is identical to an
/// uninterrupted run's.
pub fn run_side_ft(meta: &mut CampaignMeta, toolchain: Toolchain, session: &FtSession) -> FtStatus {
    run_side_ft_tier(meta, toolchain, session, gpucc::ExecTier::Interp)
}

/// [`run_side_ft`] on a chosen execution tier. The tier is a *runtime*
/// selection, deliberately not part of [`CampaignConfig`]: configs are
/// identity (merges compare them, checkpoints persist them), and because
/// the vm tier is bit-identical to the interpreter — including
/// `ExecError` display strings — the same checkpoint can be started
/// under one tier and resumed under another, or replayed into a
/// byte-identical report either way.
pub fn run_side_ft_tier(
    meta: &mut CampaignMeta,
    toolchain: Toolchain,
    session: &FtSession,
    tier: gpucc::ExecTier,
) -> FtStatus {
    let _span = match toolchain {
        Toolchain::Nvcc => obs::span("campaign.run.nvcc"),
        Toolchain::Hipcc => obs::span("campaign.run.hipcc"),
    }
    .attr("toolchain", toolchain.name())
    .attr("tier", tier.label());
    let config = meta.config.clone();
    let device = Device::with_quirks(
        match toolchain {
            Toolchain::Nvcc => DeviceKind::NvidiaLike,
            Toolchain::Hipcc => DeviceKind::AmdLike,
        },
        config.quirks,
    );
    let halted = || {
        session.stopped()
            || (session.heed_shutdown && fault::shutdown_requested())
            || session.stop_file_present()
    };
    meta.tests.par_iter_mut().for_each(|test| {
        if halted() {
            return;
        }
        let needed: Vec<OptLevel> = config
            .levels
            .iter()
            .copied()
            .filter(|l| !session.skip.contains(&(test.index, SideKey::new(toolchain, *l))))
            .collect();
        if needed.is_empty() {
            return;
        }
        // Capture the regeneration delta too and ride it on the side's
        // first journaled unit: a resume that replays the whole side
        // never regenerates, yet its metric totals must still match an
        // uninterrupted run's. (A partially replayed side regenerates —
        // genuinely re-done work, counted again.)
        let (program, gen_delta) =
            obs::with_capture(|| generate_program(&config.gen, config.seed, test.index));
        let mut gen_delta = Some(gen_delta);
        let mut cache = crate::metadata::SideBuildCache::default();
        for level in needed {
            if halted() {
                return;
            }
            let ((records, fault_rec), mut unit_metrics) = obs::with_capture(|| {
                crate::metadata::run_unit_tier(
                    &config, &device, toolchain, level, test, &program, tier, &mut cache,
                )
            });
            if let Some(g) = gen_delta.take() {
                unit_metrics.merge(&g);
            }
            let unit = UnitRecord {
                index: test.index,
                side: SideKey::new(toolchain, level),
                records,
                faults: fault_rec.clone().into_iter().collect(),
                metrics: unit_metrics,
            };
            if let Some(journal) = &session.journal {
                if let Err(e) = journal.append(&unit) {
                    session.record_io_error(&e);
                    return;
                }
            }
            test.results.insert(side_key(toolchain, level), unit.records);
            if let Some(f) = fault_rec {
                session.register_fault(f);
            }
        }
    });
    let status = session.status();
    if status == FtStatus::Complete {
        mark_side_run(meta, Side::from(toolchain));
        if let Some(journal) = &session.journal {
            let _ = journal.sync();
        }
    }
    status
}

/// Record that `side` finished, keeping `sides_run` in the canonical
/// (vendors-first) order so single-process runs match farm merges
/// byte-for-byte regardless of which side completed first.
fn mark_side_run(meta: &mut CampaignMeta, side: Side) {
    if !meta.sides_run.contains(&side) {
        meta.sides_run.push(side);
        meta.sides_run.sort();
    }
}

/// Execute the ground-truth reference side of a campaign
/// fault-tolerantly. Mirrors [`run_side_ft`]'s structure — journal-replay
/// skip, per-unit isolation, exact metric capture, circuit breaker,
/// cooperative shutdown — but evaluates each test's strict O0 IR over
/// double-double values ([`gpucc::refexec`]) and stores the results
/// under the single [`SideKey::REFERENCE`] column, one truth per test
/// serving every level's comparison.
pub fn run_reference_ft(meta: &mut CampaignMeta, session: &FtSession) -> FtStatus {
    let _span = obs::span("campaign.run.reference").attr("toolchain", Side::Reference.name());
    let config = meta.config.clone();
    let halted = || {
        session.stopped()
            || (session.heed_shutdown && fault::shutdown_requested())
            || session.stop_file_present()
    };
    meta.tests.par_iter_mut().for_each(|test| {
        if halted() || session.skip.contains(&(test.index, SideKey::REFERENCE)) {
            return;
        }
        let (program, gen_delta) =
            obs::with_capture(|| generate_program(&config.gen, config.seed, test.index));
        let ((records, fault_rec), mut unit_metrics) =
            obs::with_capture(|| crate::metadata::run_reference_unit(&config, test, &program));
        unit_metrics.merge(&gen_delta);
        let unit = UnitRecord {
            index: test.index,
            side: SideKey::REFERENCE,
            records,
            faults: fault_rec.clone().into_iter().collect(),
            metrics: unit_metrics,
        };
        if let Some(journal) = &session.journal {
            if let Err(e) = journal.append(&unit) {
                session.record_io_error(&e);
                return;
            }
        }
        test.results.insert(unit.side.to_string(), unit.records);
        if let Some(f) = fault_rec {
            session.register_fault(f);
        }
    });
    let status = session.status();
    if status == FtStatus::Complete {
        mark_side_run(meta, Side::Reference);
        if let Some(journal) = &session.journal {
            let _ = journal.sync();
        }
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join("difftest_atomic_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        // no temp files left behind
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        std::fs::remove_file(&path).ok();
    }

    fn unit(index: u64, side: &str) -> UnitRecord {
        UnitRecord {
            index,
            side: side.parse().unwrap(),
            records: vec![RunRecord {
                bits: index ^ 0xDEAD,
                outcome: fpcore::classify::Outcome::Num,
                printed: format!("v{index}"),
                exceptions: fpcore::exceptions::ExceptionFlags::new(),
                error: None,
            }],
            faults: Vec::new(),
            metrics: obs::MetricsSnapshot::default(),
        }
    }

    #[test]
    fn journal_roundtrips_records() {
        let dir = std::env::temp_dir().join("difftest_journal_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        let j = Journal::create(&path).unwrap();
        for i in 0..5 {
            j.append(&unit(i, "nvcc:O0")).unwrap();
        }
        drop(j);
        let (_j, units) = Journal::open_for_resume(&path).unwrap();
        assert_eq!(units.len(), 5);
        assert_eq!(units[3], unit(3, "nvcc:O0"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_drops_torn_tail_and_appends_cleanly_after() {
        let dir = std::env::temp_dir().join("difftest_journal_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        let j = Journal::create(&path).unwrap();
        j.append(&unit(0, "nvcc:O0")).unwrap();
        j.append(&unit(1, "nvcc:O0")).unwrap();
        drop(j);
        // tear the file mid-way through the second record
        let full = std::fs::read(&path).unwrap();
        let torn_len = full.len() - 7;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(torn_len as u64).unwrap();
        drop(f);
        let (j, units) = Journal::open_for_resume(&path).unwrap();
        assert_eq!(units.len(), 1, "torn tail record must be dropped, not fatal");
        assert_eq!(units[0].index, 0);
        // the torn bytes were truncated away; appending resumes cleanly
        j.append(&unit(1, "nvcc:O0")).unwrap();
        j.append(&unit(2, "nvcc:O0")).unwrap();
        drop(j);
        let (_j, units) = Journal::open_for_resume(&path).unwrap();
        assert_eq!(units.iter().map(|u| u.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_rejects_corrupt_crc_tail_but_keeps_prefix() {
        let dir = std::env::temp_dir().join("difftest_journal_crc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        let j = Journal::create(&path).unwrap();
        j.append(&unit(0, "hipcc:O3")).unwrap();
        j.append(&unit(1, "hipcc:O3")).unwrap();
        drop(j);
        // flip one byte in the last record's payload
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_j, units) = Journal::open_for_resume(&path).unwrap();
        assert_eq!(units.len(), 1, "CRC-mismatched tail must be dropped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_codec_roundtrips_and_rejects_torn_or_corrupt_bytes() {
        let frame = encode_frame(b"hello, frame");
        let (payload, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(payload, b"hello, frame");
        assert_eq!(consumed, frame.len());
        // every possible truncation is rejected, never a panic
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_none(), "torn at {cut}");
        }
        // a flipped payload byte fails the CRC
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_frame(&bad).is_none());
        // trailing garbage after a valid frame is not this frame's problem
        let mut two = frame.clone();
        two.extend_from_slice(b"\xFF\xFF\xFF");
        assert_eq!(decode_frame(&two).unwrap().1, frame.len());
    }

    #[test]
    fn framed_log_roundtrips_under_a_custom_magic_and_drops_torn_tails() {
        const MAGIC: &[u8; 8] = b"VGTEST01";
        let dir = std::env::temp_dir().join("difftest_framed_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let log = FramedLog::create(&path, MAGIC).unwrap();
        assert!(log.is_empty());
        log.append(b"alpha").unwrap();
        log.append(b"beta").unwrap();
        let len = log.len();
        assert_eq!(len, 8 + (8 + 5) + (8 + 4));
        drop(log);
        // tear the file mid-way through the second frame
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (log, payloads) = FramedLog::open_for_resume(&path, &[MAGIC], |_| true).unwrap();
        assert_eq!(payloads, vec![b"alpha".to_vec()]);
        log.append(b"gamma").unwrap();
        drop(log);
        // a validator rejection also stops the scan and truncates
        let (log, payloads) =
            FramedLog::open_for_resume(&path, &[MAGIC], |p| p != b"gamma").unwrap();
        assert_eq!(payloads, vec![b"alpha".to_vec()]);
        assert_eq!(log.len(), 8 + (8 + 5));
        drop(log);
        // the wrong magic is a hard error
        assert!(FramedLog::open_for_resume(&path, &[b"VGOTHER1"], |_| true).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_rejects_bad_magic() {
        let dir = std::env::temp_dir().join("difftest_journal_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        std::fs::write(&path, b"garbage-not-a-journal").unwrap();
        assert!(Journal::open_for_resume(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_dir_create_resume_roundtrip() {
        use progen::ast::Precision;
        let config = CampaignConfig::default_for(Precision::F64, crate::campaign::TestMode::Direct)
            .with_programs(2);
        let dir = std::env::temp_dir().join("difftest_checkpoint_dir_test");
        std::fs::remove_dir_all(&dir).ok();
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        assert_eq!(ckpt.shard_spec(), None);
        ckpt.journal().append(&unit(0, "nvcc:O0")).unwrap();
        drop(ckpt);
        let (ckpt, back, units) = Checkpoint::resume(&dir).unwrap();
        assert_eq!(back, config);
        assert_eq!(units.len(), 1);
        assert_eq!(ckpt.shard_spec(), None, "no shard.json means a whole-campaign checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_spec_parses_and_rejects_malformed_input() {
        use std::str::FromStr;
        assert_eq!(ShardSpec::from_str("3/8").unwrap(), ShardSpec { index: 3, count: 8 });
        assert_eq!(ShardSpec::from_str("0/1").unwrap().to_string(), "0/1");
        for bad in ["", "3", "3/", "/8", "8/3", "3/3", "a/b", "3/0"] {
            assert!(ShardSpec::from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn sharded_checkpoint_persists_its_spec_across_resume() {
        use progen::ast::Precision;
        let config = CampaignConfig::default_for(Precision::F64, crate::campaign::TestMode::Direct)
            .with_programs(6);
        let dir = std::env::temp_dir().join("difftest_checkpoint_shard_test");
        std::fs::remove_dir_all(&dir).ok();
        let spec = ShardSpec { index: 2, count: 3 };
        let ckpt = Checkpoint::create_sharded(&dir, &config, Some(spec)).unwrap();
        assert_eq!(ckpt.shard_spec(), Some(spec));
        drop(ckpt);
        let (ckpt, back, units) = Checkpoint::resume(&dir).unwrap();
        assert_eq!(back, config);
        assert!(units.is_empty());
        assert_eq!(ckpt.shard_spec(), Some(spec), "shard.json must survive resume");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_sharded_clears_a_stale_stop_file() {
        use progen::ast::Precision;
        let config = CampaignConfig::default_for(Precision::F64, crate::campaign::TestMode::Direct)
            .with_programs(2);
        let dir = std::env::temp_dir().join("difftest_checkpoint_stale_stop");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Checkpoint::stop_path(&dir), b"").unwrap();
        let _ckpt = Checkpoint::create(&dir, &config).unwrap();
        assert!(!Checkpoint::stop_path(&dir).exists(), "fresh checkpoints must start live");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_file_drains_the_session_at_a_unit_boundary() {
        use gpucc::pipeline::Toolchain;
        use progen::ast::Precision;
        let config = CampaignConfig::default_for(Precision::F64, crate::campaign::TestMode::Direct)
            .with_programs(3);
        let dir = std::env::temp_dir().join("difftest_stop_file_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let stop = Checkpoint::stop_path(&dir);

        // stop file absent: the run completes
        let session = FtSession::plain().with_stop_file(stop.clone());
        let mut meta = CampaignMeta::generate(&config);
        assert_eq!(run_side_ft(&mut meta, Toolchain::Nvcc, &session), FtStatus::Complete);

        // stop file present up front: nothing runs, status is Interrupted
        std::fs::write(&stop, b"").unwrap();
        let session = FtSession::plain().with_stop_file(stop.clone());
        let mut meta = CampaignMeta::generate(&config);
        let status = run_side_ft(&mut meta, Toolchain::Hipcc, &session);
        assert_eq!(status, FtStatus::Interrupted);
        assert!(meta.tests.iter().all(|t| t.results.is_empty()), "no unit may start");
        assert!(!meta.sides_run.contains(&Side::Hipcc));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_magic_journal_resumes_under_the_v2_parser() {
        // a journal written before the reference side existed: v1 magic,
        // identical framing. It must replay (and keep appending) as-is.
        let dir = std::env::temp_dir().join("difftest_journal_v1_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        let payload = serde_json::to_vec(&unit(7, "hipcc:O3_FM")).unwrap();
        let mut bytes = JOURNAL_MAGIC_V1.to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let (j, units) = Journal::open_for_resume(&path).unwrap();
        assert_eq!(units, vec![unit(7, "hipcc:O3_FM")]);
        assert_eq!(units[0].side, SideKey::new(Side::Hipcc, OptLevel::O3Fm));
        j.append(&unit(8, "reference:O0")).unwrap();
        drop(j);
        let (_j, units) = Journal::open_for_resume(&path).unwrap();
        assert_eq!(units.iter().map(|u| u.index).collect::<Vec<_>>(), vec![7, 8]);
        assert_eq!(units[1].side, SideKey::REFERENCE);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reference_side_checkpoints_and_resumes() {
        use progen::ast::Precision;
        let config = CampaignConfig::default_for(Precision::F64, crate::campaign::TestMode::Direct)
            .with_programs(3);
        let dir = std::env::temp_dir().join("difftest_reference_ft_test");
        std::fs::remove_dir_all(&dir).ok();

        // run the reference side to completion under a journal
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        let mut meta = CampaignMeta::generate(&config);
        assert_eq!(run_reference_ft(&mut meta, &session), FtStatus::Complete);
        assert_eq!(meta.sides_run, vec![Side::Reference]);

        // resume: every unit replays, nothing re-runs, results identical
        let (ckpt, back, units) = Checkpoint::resume(&dir).unwrap();
        assert_eq!(back, config);
        assert_eq!(units.len(), 3);
        assert!(units.iter().all(|u| u.side == SideKey::REFERENCE));
        let mut resumed = CampaignMeta::generate(&config);
        let mut session = FtSession::new(Some(ckpt.into_journal()), None);
        session.apply_replay(&mut resumed, units);
        assert_eq!(session.replayed(), 3);
        assert_eq!(run_reference_ft(&mut resumed, &session), FtStatus::Complete);
        for (a, b) in meta.tests.iter().zip(&resumed.tests) {
            assert_eq!(a.results, b.results);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
