//! Pairwise result comparison with the paper's exclusion rules.

use crate::outcome::DiscrepancyClass;
use fpcore::classify::Outcome;
use gpucc::interp::ExecValue;
use serde::{Deserialize, Serialize};

/// A confirmed numerical discrepancy between the two platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Discrepancy {
    /// Discrepancy class.
    pub class: DiscrepancyClass,
    /// Outcome on the nvcc/NVIDIA side.
    pub nvcc: Outcome,
    /// Outcome on the hipcc/AMD side.
    pub hipcc: Outcome,
}

/// Compare an nvcc-side result against a hipcc-side result.
///
/// ```
/// use difftest::compare_runs;
/// use difftest::outcome::DiscrepancyClass;
/// use gpucc::interp::ExecValue;
///
/// // the paper's Fig. 5 outputs: Inf vs a number
/// let nvcc = ExecValue::F64(f64::INFINITY);
/// let hipcc = ExecValue::F64(1.34887e-306);
/// let d = compare_runs(&nvcc, &hipcc).unwrap();
/// assert_eq!(d.class, DiscrepancyClass::InfNum);
///
/// // sign-only special differences are excluded
/// assert!(compare_runs(
///     &ExecValue::F64(f64::INFINITY),
///     &ExecValue::F64(f64::NEG_INFINITY),
/// ).is_none());
/// ```
///
/// Rules (paper §IV-B):
/// * different outcomes → discrepancy of the corresponding class;
/// * both `Num` with different bit patterns → `Num, Num` discrepancy
///   (string comparison of `%.17g` output is equivalent to bit equality);
/// * both NaN / both Inf / both Zero → **no** discrepancy, regardless of
///   sign or payload (−NaN vs +NaN, −Inf vs +Inf, −0 vs +0 excluded).
pub fn compare_runs(nvcc: &ExecValue, hipcc: &ExecValue) -> Option<Discrepancy> {
    let (a, b) = (nvcc.outcome(), hipcc.outcome());
    if let Some(class) = DiscrepancyClass::of_outcomes(a, b) {
        return Some(Discrepancy { class, nvcc: a, hipcc: b });
    }
    if a == Outcome::Num && b == Outcome::Num && !nvcc.bit_eq(hipcc) {
        return Some(Discrepancy { class: DiscrepancyClass::NumNum, nvcc: a, hipcc: b });
    }
    None
}

/// Tolerance-aware comparison: like [`compare_runs`], but `Num, Num` pairs
/// whose relative difference is within `rel_tol` are accepted as
/// consistent. `rel_tol = 0.0` degenerates to the bitwise rule (the
/// paper's semantics); Varity itself supports threshold-based comparison
/// for triaging "last-ULP" differences away from gross ones.
///
/// The relative difference is measured in the pair's *native* width (an
/// f32 pair in f32 arithmetic), and pairs whose magnitude sits below the
/// normal range get an absolute gate of `rel_tol` at the smallest normal
/// instead: down there `rel_tol * scale` underflows, which silently
/// turned every adjacent-subnormal pair into a "gross" discrepancy.
pub fn compare_runs_with_tolerance(
    nvcc: &ExecValue,
    hipcc: &ExecValue,
    rel_tol: f64,
) -> Option<Discrepancy> {
    let d = compare_runs(nvcc, hipcc)?;
    if d.class == DiscrepancyClass::NumNum && rel_tol > 0.0 && within_rel_tol(nvcc, hipcc, rel_tol)
    {
        return None;
    }
    Some(d)
}

fn within_rel_tol(nvcc: &ExecValue, hipcc: &ExecValue, rel_tol: f64) -> bool {
    match (nvcc, hipcc) {
        (ExecValue::F32(a), ExecValue::F32(b)) => {
            let scale = a.abs().max(b.abs());
            let floor = scale.max(f32::MIN_POSITIVE);
            (a - b).abs() <= rel_tol as f32 * floor
        }
        _ => {
            let (a, b) = (nvcc.to_f64(), hipcc.to_f64());
            let scale = a.abs().max(b.abs());
            let floor = scale.max(f64::MIN_POSITIVE);
            (a - b).abs() <= rel_tol * floor
        }
    }
}

/// A per-thread discrepancy from a SIMT (multi-thread) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadDiscrepancy {
    /// `threadIdx.x` of the diverging thread.
    pub thread: u32,
    /// The discrepancy that thread exhibited.
    pub discrepancy: Discrepancy,
}

/// The two sides of a SIMT comparison ran different block sizes — a
/// harness or lowering bug, reported as data instead of a panic so a
/// campaign worker survives it as a quarantinable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridMismatch {
    /// Thread count on the nvcc/NVIDIA side.
    pub nvcc_threads: usize,
    /// Thread count on the hipcc/AMD side.
    pub hipcc_threads: usize,
}

impl std::fmt::Display for GridMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mismatched block sizes: nvcc ran {} threads, hipcc ran {}",
            self.nvcc_threads, self.hipcc_threads
        )
    }
}

impl std::error::Error for GridMismatch {}

/// Compare per-thread result vectors from `gpucc::interp::execute_grid`
/// (SIMT extension): returns every thread whose results diverge, or
/// [`GridMismatch`] if the two sides ran different block sizes.
pub fn compare_grids(
    nvcc: &[ExecValue],
    hipcc: &[ExecValue],
) -> Result<Vec<ThreadDiscrepancy>, GridMismatch> {
    if nvcc.len() != hipcc.len() {
        return Err(GridMismatch { nvcc_threads: nvcc.len(), hipcc_threads: hipcc.len() });
    }
    Ok(nvcc
        .iter()
        .zip(hipcc)
        .enumerate()
        .filter_map(|(tid, (a, b))| {
            compare_runs(a, b).map(|d| ThreadDiscrepancy { thread: tid as u32, discrepancy: d })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ExecValue {
        ExecValue::F64(v)
    }

    #[test]
    fn identical_numbers_agree() {
        assert_eq!(compare_runs(&f(1.5), &f(1.5)), None);
    }

    #[test]
    fn different_numbers_are_num_num() {
        let d = compare_runs(&f(1.5), &f(1.5000000000000002)).unwrap();
        assert_eq!(d.class, DiscrepancyClass::NumNum);
    }

    #[test]
    #[allow(clippy::excessive_precision)] // the paper's printed 17-digit outputs
    fn case_study_1_values_are_num_num() {
        // the paper's Fig. 4 outputs
        let d = compare_runs(&f(8.6551990944767196e-306), &f(9.3404611450291972e-306)).unwrap();
        assert_eq!(d.class, DiscrepancyClass::NumNum);
    }

    #[test]
    fn case_study_2_values_are_inf_num() {
        // Fig. 5: nvcc Inf, hipcc 1.34887e-306
        let d = compare_runs(&f(f64::INFINITY), &f(1.34887e-306)).unwrap();
        assert_eq!(d.class, DiscrepancyClass::InfNum);
        assert_eq!(d.nvcc, Outcome::Inf);
        assert_eq!(d.hipcc, Outcome::Num);
    }

    #[test]
    fn case_study_3_values_are_nan_inf() {
        // Fig. 6: nvcc -inf, hipcc -nan
        let d = compare_runs(&f(f64::NEG_INFINITY), &f(-f64::NAN)).unwrap();
        assert_eq!(d.class, DiscrepancyClass::NanInf);
        assert_eq!(d.nvcc, Outcome::Inf);
        assert_eq!(d.hipcc, Outcome::Nan);
    }

    #[test]
    fn sign_only_special_differences_are_excluded() {
        assert_eq!(compare_runs(&f(f64::NAN), &f(-f64::NAN)), None);
        assert_eq!(compare_runs(&f(f64::INFINITY), &f(f64::NEG_INFINITY)), None);
        assert_eq!(compare_runs(&f(0.0), &f(-0.0)), None);
    }

    #[test]
    fn sign_differences_between_numbers_count() {
        // -x vs +x are both Num with different bits: a real discrepancy
        let d = compare_runs(&f(1.5), &f(-1.5)).unwrap();
        assert_eq!(d.class, DiscrepancyClass::NumNum);
    }

    #[test]
    fn subnormal_vs_zero_is_num_zero() {
        let d = compare_runs(&f(1e-310), &f(0.0)).unwrap();
        assert_eq!(d.class, DiscrepancyClass::NumZero);
        assert_eq!(d.nvcc, Outcome::Num);
        assert_eq!(d.hipcc, Outcome::Zero);
    }

    #[test]
    fn tolerance_absorbs_small_num_num_differences() {
        let a = f(1.5);
        let b = f(1.5000000000000002); // 1 ulp
        assert!(compare_runs_with_tolerance(&a, &b, 0.0).is_some());
        assert!(compare_runs_with_tolerance(&a, &b, 1e-12).is_none());
        // gross differences survive any reasonable tolerance
        let c = f(2.5);
        assert!(compare_runs_with_tolerance(&a, &c, 1e-12).is_some());
    }

    #[test]
    fn tolerance_never_excuses_cross_class_discrepancies() {
        let inf = f(f64::INFINITY);
        let num = f(1.0);
        let d = compare_runs_with_tolerance(&inf, &num, 1.0).unwrap();
        assert_eq!(d.class, DiscrepancyClass::InfNum);
        let nan = f(f64::NAN);
        assert!(compare_runs_with_tolerance(&nan, &num, 1.0).is_some());
    }

    #[test]
    fn tolerance_is_relative_not_absolute() {
        // two huge values 1e290 apart: relative diff 1e-16 -> absorbed
        let a = f(1.0e306);
        let b = f(1.0000000000000001e306);
        assert!(compare_runs_with_tolerance(&a, &b, 1e-12).is_none());
        // two tiny values with the same absolute gap: relative diff huge
        let c = f(1.0e-300);
        let d = f(2.0e-300);
        assert!(compare_runs_with_tolerance(&c, &d, 1e-12).is_some());
    }

    #[test]
    fn f32_comparisons_work_the_same() {
        let a = ExecValue::F32(1.5);
        let b = ExecValue::F32(f32::from_bits(1.5f32.to_bits() + 1));
        assert_eq!(compare_runs(&a, &a), None);
        assert_eq!(compare_runs(&a, &b).unwrap().class, DiscrepancyClass::NumNum);
    }

    #[test]
    fn f32_tolerance_is_measured_in_native_width() {
        // 1 f32 ulp at 1.5 is ~7.9e-8 relative: a tolerance meant for
        // f32 precision absorbs it, a tighter one does not
        let a = ExecValue::F32(1.5);
        let b = ExecValue::F32(f32::from_bits(1.5f32.to_bits() + 1));
        assert!(compare_runs_with_tolerance(&a, &b, 1e-7).is_none());
        assert!(compare_runs_with_tolerance(&a, &b, 1e-9).is_some());
    }

    #[test]
    fn subnormal_pairs_do_not_underflow_the_tolerance() {
        // deep-subnormal f64 pair: rel_tol * scale underflows to zero,
        // so the unguarded check branded adjacent values "gross"
        let a = f(5e-324); // smallest subnormal
        let b = f(1.5e-323); // 3 × smallest
        assert!(compare_runs_with_tolerance(&a, &b, 1e-12).is_none());
        // far-apart subnormals still count under a tight tolerance
        let c = f(4.4e-308); // just below the normal range
        assert!(compare_runs_with_tolerance(&a, &c, 1e-12).is_some());
        // f32 subnormals get the same guard at the f32 normal floor
        let d = ExecValue::F32(f32::from_bits(1));
        let e = ExecValue::F32(f32::from_bits(3));
        assert!(compare_runs_with_tolerance(&d, &e, 1e-5).is_none());
    }

    #[test]
    fn grid_comparison_reports_mismatched_block_sizes() {
        let a = vec![f(1.0), f(2.0)];
        let b = vec![f(1.0)];
        let err = compare_grids(&a, &b).unwrap_err();
        assert_eq!(err, GridMismatch { nvcc_threads: 2, hipcc_threads: 1 });
        assert!(err.to_string().contains("mismatched block sizes"));
        // equal sizes: per-thread discrepancies as before
        let c = vec![f(1.0), f(3.0)];
        let diffs = compare_grids(&a, &c).unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].thread, 1);
    }
}
