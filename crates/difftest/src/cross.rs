//! Cross-configuration decomposition.
//!
//! The paper's comparison compounds two effects: a *compiler* difference
//! (nvcc vs hipcc pipelines) and a *math-library/device* difference
//! (libdevice vs OCML). On real clusters they cannot be separated — nvcc
//! binaries only run on NVIDIA GPUs. The simulator has no such constraint:
//! any toolchain's IR can execute against either device, so the four
//! configurations
//!
//! | | NVIDIA-like device | AMD-like device |
//! |---|---|---|
//! | **nvcc** | the paper's left side | library effect isolated |
//! | **hipcc** | compiler effect isolated | the paper's right side |
//!
//! can be compared pairwise, attributing each discrepancy to the compiler,
//! the library, or their interaction.

use crate::compare::compare_runs;
use gpucc::interp::{execute_prepared, prepare, ExecValue};
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::Program;
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::{generate_inputs, InputSet};
use rayon::prelude::*;

/// One (toolchain, device) execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Compiler pipeline.
    pub toolchain: Toolchain,
    /// Device the binary runs on.
    pub device: DeviceKind,
}

impl Config {
    /// Short label, e.g. `nvcc@NV`.
    pub fn label(&self) -> String {
        let dev = match self.device {
            DeviceKind::NvidiaLike => "NV",
            DeviceKind::AmdLike => "AMD",
        };
        format!("{}@{}", self.toolchain.name(), dev)
    }
}

/// The four configurations, in matrix order.
pub const ALL_CONFIGS: [Config; 4] = [
    Config { toolchain: Toolchain::Nvcc, device: DeviceKind::NvidiaLike },
    Config { toolchain: Toolchain::Nvcc, device: DeviceKind::AmdLike },
    Config { toolchain: Toolchain::Hipcc, device: DeviceKind::NvidiaLike },
    Config { toolchain: Toolchain::Hipcc, device: DeviceKind::AmdLike },
];

/// Pairwise discrepancy counts between all configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossMatrix {
    /// `counts[i][j]` = discrepancies between `ALL_CONFIGS[i]` and `[j]`
    /// (symmetric, zero diagonal).
    pub counts: [[u64; 4]; 4],
    /// Comparisons per pair.
    pub comparisons: u64,
}

impl CrossMatrix {
    /// Discrepancies between two configurations.
    pub fn between(&self, a: Config, b: Config) -> u64 {
        let i = ALL_CONFIGS.iter().position(|c| *c == a).expect("known config");
        let j = ALL_CONFIGS.iter().position(|c| *c == b).expect("known config");
        self.counts[i][j]
    }

    /// The paper's compound comparison: `nvcc@NV` vs `hipcc@AMD`.
    pub fn compound(&self) -> u64 {
        self.counts[0][3]
    }

    /// Library effect in isolation: same compiler (`nvcc`), different
    /// devices.
    pub fn library_effect(&self) -> u64 {
        self.counts[0][1]
    }

    /// Compiler effect in isolation: different compilers, same device
    /// (`NVIDIA-like`).
    pub fn compiler_effect(&self) -> u64 {
        self.counts[0][2]
    }
}

/// Run the cross matrix over `n_programs` × `inputs_per_program` tests at
/// one optimization level.
pub fn run_cross_matrix(
    gen: &GenConfig,
    seed: u64,
    n_programs: usize,
    inputs_per_program: usize,
    level: OptLevel,
    quirks: QuirkSet,
) -> CrossMatrix {
    let per_test: Vec<[[u64; 4]; 4]> = (0..n_programs as u64)
        .into_par_iter()
        .map(|index| {
            let program = generate_program(gen, seed, index);
            let inputs = generate_inputs(&program, seed, inputs_per_program);
            cross_one(&program, &inputs, level, quirks)
        })
        .collect();
    let mut m =
        CrossMatrix { comparisons: (n_programs * inputs_per_program) as u64, ..Default::default() };
    for t in per_test {
        for (row, trow) in m.counts.iter_mut().zip(&t) {
            for (cell, v) in row.iter_mut().zip(trow) {
                *cell += v;
            }
        }
    }
    m
}

fn cross_one(
    program: &Program,
    inputs: &[InputSet],
    level: OptLevel,
    quirks: QuirkSet,
) -> [[u64; 4]; 4] {
    // compile once per toolchain, run on both devices
    let kernels: Vec<_> = ALL_CONFIGS
        .iter()
        .map(|c| prepare(&compile(program, c.toolchain, level, false)).expect("resolves"))
        .collect();
    let devices: Vec<Device> =
        ALL_CONFIGS.iter().map(|c| Device::with_quirks(c.device, quirks)).collect();
    let mut counts = [[0u64; 4]; 4];
    for input in inputs {
        let results: Vec<Option<ExecValue>> = kernels
            .iter()
            .zip(&devices)
            .map(|(k, d)| execute_prepared(k, d, input).ok().map(|r| r.value))
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                if let (Some(a), Some(b)) = (&results[i], &results[j]) {
                    if compare_runs(a, b).is_some() {
                        counts[i][j] += 1;
                        counts[j][i] += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Render the matrix with the decomposition summary.
pub fn render_cross(m: &CrossMatrix, level: OptLevel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "CROSS-CONFIGURATION MATRIX at {} ({} comparisons per pair)\n\n",
        level.label(),
        m.comparisons
    ));
    out.push_str(&format!("{:<12}", ""));
    for c in ALL_CONFIGS {
        out.push_str(&format!("{:>12}", c.label()));
    }
    out.push('\n');
    for (i, c) in ALL_CONFIGS.iter().enumerate() {
        out.push_str(&format!("{:<12}", c.label()));
        for j in 0..4 {
            if i == j {
                out.push_str(&format!("{:>12}", "-"));
            } else {
                out.push_str(&format!("{:>12}", m.counts[i][j]));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\ncompound (paper's comparison, nvcc@NV vs hipcc@AMD): {}\n\
         library effect alone (nvcc@NV vs nvcc@AMD):          {}\n\
         compiler effect alone (nvcc@NV vs hipcc@NV):          {}\n",
        m.compound(),
        m.library_effect(),
        m.compiler_effect()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use progen::Precision;

    fn matrix(level: OptLevel) -> CrossMatrix {
        run_cross_matrix(
            &GenConfig::varity_default(Precision::F64),
            2024,
            150,
            5,
            level,
            QuirkSet::all(),
        )
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = matrix(OptLevel::O0);
        for i in 0..4 {
            assert_eq!(m.counts[i][i], 0);
            for j in 0..4 {
                assert_eq!(m.counts[i][j], m.counts[j][i]);
            }
        }
    }

    #[test]
    fn o0_divergence_is_purely_a_library_effect() {
        // at O0 the pipelines are identical, so same-device pairs agree
        // exactly and cross-device pairs carry all the divergence
        let m = matrix(OptLevel::O0);
        assert_eq!(m.compiler_effect(), 0, "identical O0 pipelines");
        assert!(m.library_effect() > 0, "math libraries differ");
        assert_eq!(
            m.compound(),
            m.library_effect(),
            "compound == library when the compiler contributes nothing"
        );
    }

    #[test]
    fn o3_adds_a_compiler_component() {
        let m = matrix(OptLevel::O3);
        assert!(m.compiler_effect() > 0, "contraction preferences differ at O3");
        // the compound effect carries at least the library component
        assert!(m.compound() >= m.library_effect());
    }

    #[test]
    fn render_includes_decomposition() {
        let m = matrix(OptLevel::O0);
        let s = render_cross(&m, OptLevel::O0);
        assert!(s.contains("nvcc@NV"));
        assert!(s.contains("hipcc@AMD"));
        assert!(s.contains("library effect"));
        assert!(s.contains("compiler effect"));
    }
}
