//! Per-test isolation: classified faults, panic capture, and cooperative
//! shutdown.
//!
//! A campaign is a long-running batch job; its value depends on surviving
//! and attributing its own failures, not just the compilers'. This module
//! supplies the containment primitives the fault-tolerant runner
//! ([`crate::checkpoint`]) is built on:
//!
//! * [`TestFault`] / [`FaultKind`] — a classified, serializable record of
//!   one test that panicked or exhausted its fuel budget. Faults carry
//!   the generation seed, index, and side, which is everything
//!   `varity-gpu replay` needs to re-run the test in isolation.
//! * [`catch_isolated`] — `catch_unwind` plus a process-global panic hook
//!   that captures the panic message (with location) on the panicking
//!   thread instead of spraying backtraces over the campaign's stderr.
//! * [`request_shutdown`] / [`shutdown_requested`] — a cooperative stop
//!   flag checked between work units, so an interrupt flushes the
//!   checkpoint at a unit boundary instead of mid-write.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// Classification of a contained test failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// The test panicked (interpreter bug, resolver `expect`, injected
    /// chaos fault).
    Panic,
    /// The test exhausted its instruction budget
    /// ([`gpucc::interp::ExecError::StepLimit`]).
    StepBudget,
    /// The test exhausted its wall-clock budget
    /// ([`gpucc::interp::ExecError::Timeout`]).
    Timeout,
}

impl FaultKind {
    /// Counter/label suffix (`campaign.faults.{label}`).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::StepBudget => "step_budget",
            FaultKind::Timeout => "timeout",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One quarantined test: a (test, side) unit that faulted instead of
/// producing ordinary results. The campaign stores error records in its
/// place and keeps going; this record is what lands in the quarantine
/// log so the test can be replayed (`varity-gpu replay`) and attributed.
///
/// Faults order by `(index, program_id, seed, side, kind, detail)` — the
/// derived lexicographic order `CampaignMeta::merge_shards` sorts
/// quarantine entries into, so merged quarantines are canonical no
/// matter which shard landed first.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TestFault {
    /// Generation index of the faulting test.
    pub index: u64,
    /// Program identifier (regeneration sanity check).
    pub program_id: String,
    /// Campaign master seed (with `index`, regenerates the program).
    pub seed: u64,
    /// The `"{toolchain}:{level}"` side key that faulted.
    pub side: String,
    /// What kind of fault this was.
    pub kind: FaultKind,
    /// Human-readable detail (panic message or budget diagnostics).
    pub detail: String,
}

thread_local! {
    /// Message captured by the panic hook for the innermost
    /// [`catch_isolated`] on this thread.
    static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Whether this thread is inside [`catch_isolated`] (suppresses the
    /// default hook's stderr output for expected, contained panics).
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

/// Install the capturing panic hook exactly once, chaining to whatever
/// hook was installed before (so panics outside [`catch_isolated`] —
/// including other threads' — still print normally).
fn ensure_capture_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS.with(|s| s.get()) {
                let msg = payload_str(info.payload());
                let text = match info.location() {
                    Some(loc) => format!("{msg} (at {}:{})", loc.file(), loc.line()),
                    None => msg,
                };
                CAPTURED.with(|c| *c.borrow_mut() = Some(text));
            } else {
                prev(info);
            }
        }));
    });
}

fn payload_str(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, containing any panic. On panic, returns the captured panic
/// message (with source location) instead of unwinding the caller, and
/// keeps the default panic output off the campaign's stderr.
///
/// The closure is deliberately treated as unwind-safe: campaign work
/// units own their inputs and publish results only on success, so a
/// half-updated unit is discarded wholesale rather than observed.
pub fn catch_isolated<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    ensure_capture_hook();
    let was = SUPPRESS.with(|s| s.replace(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS.with(|s| s.set(was));
    match outcome {
        Ok(v) => Ok(v),
        Err(payload) => {
            let msg = CAPTURED
                .with(|c| c.borrow_mut().take())
                .unwrap_or_else(|| payload_str(payload.as_ref()));
            Err(msg)
        }
    }
}

/// Cooperative shutdown flag (set by a SIGINT handler or a test;
/// checked by the campaign runner between work units).
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Request a graceful stop: workers finish (or skip) their current unit,
/// the checkpoint is flushed, and the campaign reports `Interrupted`.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether a graceful stop has been requested.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clear the shutdown flag (start of a new campaign / test isolation).
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_isolated_passes_values_through() {
        assert_eq!(catch_isolated(|| 41 + 1), Ok(42));
    }

    #[test]
    fn catch_isolated_captures_panic_message_and_location() {
        let err = catch_isolated(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert!(err.contains("boom 7"), "got: {err}");
        assert!(err.contains("fault.rs"), "location missing: {err}");
    }

    #[test]
    fn catch_isolated_handles_string_payloads() {
        let err =
            catch_isolated(|| -> u32 { std::panic::panic_any("plain".to_string()) }).unwrap_err();
        assert!(err.contains("plain"), "got: {err}");
    }

    #[test]
    fn catch_isolated_restores_suppression_when_nested() {
        let outer = catch_isolated(|| {
            let inner = catch_isolated(|| -> u32 { panic!("inner") });
            assert!(inner.is_err());
            5
        });
        assert_eq!(outer, Ok(5));
    }

    #[test]
    fn shutdown_flag_roundtrips() {
        reset_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_shutdown();
        assert!(!shutdown_requested());
    }

    #[test]
    fn fault_serde_roundtrip() {
        let f = TestFault {
            index: 3,
            program_id: "prog_3".into(),
            seed: 2024,
            side: "nvcc:O2".into(),
            kind: FaultKind::StepBudget,
            detail: "step budget exhausted: 11 steps executed, budget 10".into(),
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: TestFault = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
        assert_eq!(FaultKind::Panic.label(), "panic");
        assert_eq!(FaultKind::Timeout.to_string(), "timeout");
    }
}
