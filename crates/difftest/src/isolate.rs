//! Statement-level divergence isolation (pLiner-style, ref \[3\] of the
//! paper; the paper's own root-cause analyses in §IV-D did this by hand:
//! "we analyzed the intermediate results … until the condition was
//! satisfied and the loop started, there were no issues with this input").
//!
//! Both sides of a failing test are executed with store-tracing enabled;
//! the traces are aligned event-by-event (store order is pass-invariant)
//! and the first differing write pinpoints the statement where the
//! platforms part ways — plus how far apart they are in ULPs at that
//! moment, versus at the final output (quantifying the paper's
//! "small numerical difference … magnified with each loop iteration").

use crate::campaign::{decode, TestMode};
use crate::compare::{compare_runs, Discrepancy};
use crate::metadata::build_side;
use crate::verdict::ulp_between;
use gpucc::interp::{execute_traced, ExecValue, TraceEvent};
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::Program;
use progen::inputs::InputSet;

/// Where (and how badly) the two platforms first disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergencePoint {
    /// Index of the first differing store event.
    pub event_index: usize,
    /// The stored variable (`comp`, `tmp_1`, `var_5[3]`, …).
    pub target: String,
    /// Value written on the nvcc/NVIDIA side.
    pub nvcc: ExecValue,
    /// Value written on the hipcc/AMD side.
    pub hipcc: ExecValue,
    /// ULP distance at the divergence point (`None` if NaN involved).
    pub ulp_at_divergence: Option<u64>,
}

/// Result of isolating one failing (program, input, level) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationReport {
    /// The final-output discrepancy (as the campaign classified it).
    pub discrepancy: Option<Discrepancy>,
    /// The first diverging store, if any store diverged.
    pub first_divergence: Option<DivergencePoint>,
    /// Store events on the nvcc side.
    pub nvcc_events: usize,
    /// Store events on the hipcc side.
    pub hipcc_events: usize,
    /// True when the traces have different lengths or targets — control
    /// flow itself diverged (a condition evaluated differently).
    pub control_flow_diverged: bool,
    /// ULP distance between the final outputs (`None` if NaN involved or
    /// outcomes differ in class).
    pub final_ulp: Option<u64>,
}

impl IsolationReport {
    /// Human-readable one-line digest.
    pub fn digest(&self) -> String {
        match (&self.first_divergence, self.control_flow_diverged) {
            (Some(d), cf) => {
                // hex floats expose the exact differing bits that decimal
                // output can hide
                let hex = format!(
                    " [{} vs {}]",
                    fpcore::literal::format_hex_f64(d.nvcc.to_f64()),
                    fpcore::literal::format_hex_f64(d.hipcc.to_f64())
                );
                format!(
                    "first divergence at store #{} into `{}`: nvcc={} hipcc={}{}{}{}",
                    d.event_index,
                    d.target,
                    d.nvcc.format_exact(),
                    d.hipcc.format_exact(),
                    hex,
                    d.ulp_at_divergence.map(|u| format!(" ({u} ulp apart)")).unwrap_or_default(),
                    if cf { "; control flow later diverged" } else { "" },
                )
            }
            (None, true) => "control flow diverged with no differing store".into(),
            (None, false) => "no divergence observed".into(),
        }
    }
}

/// Run both sides with tracing and isolate the first diverging statement.
pub fn isolate(
    program: &Program,
    input: &InputSet,
    level: OptLevel,
    mode: TestMode,
    quirks: QuirkSet,
) -> Result<IsolationReport, gpucc::interp::ExecError> {
    let nv_dev = Device::with_quirks(DeviceKind::NvidiaLike, quirks);
    let amd_dev = Device::with_quirks(DeviceKind::AmdLike, quirks);
    let nv_ir = build_side(program, Toolchain::Nvcc, level, mode);
    let amd_ir = build_side(program, Toolchain::Hipcc, level, mode);
    let (rn, tn) = execute_traced(&nv_ir, &nv_dev, input)?;
    let (ra, ta) = execute_traced(&amd_ir, &amd_dev, input)?;

    let first_divergence = first_difference(program, &tn, &ta);
    let control_flow_diverged =
        tn.len() != ta.len() || tn.iter().zip(&ta).any(|(a, b)| a.target != b.target);

    Ok(IsolationReport {
        discrepancy: compare_runs(&rn.value, &ra.value),
        first_divergence,
        nvcc_events: tn.len(),
        hipcc_events: ta.len(),
        control_flow_diverged,
        final_ulp: ulp_between(&rn.value, &ra.value),
    })
}

fn first_difference(
    program: &Program,
    nv: &[TraceEvent],
    amd: &[TraceEvent],
) -> Option<DivergencePoint> {
    for (i, (a, b)) in nv.iter().zip(amd).enumerate() {
        if a.target != b.target {
            // control flow diverged before any value did; report the spot
            return Some(DivergencePoint {
                event_index: i,
                target: format!("{} / {}", a.target, b.target),
                nvcc: decode(program.precision, a.bits),
                hipcc: decode(program.precision, b.bits),
                ulp_at_divergence: None,
            });
        }
        if a.bits != b.bits {
            let vn = decode(program.precision, a.bits);
            let va = decode(program.precision, b.bits);
            return Some(DivergencePoint {
                event_index: i,
                target: a.target.clone(),
                ulp_at_divergence: ulp_between(&vn, &va),
                nvcc: vn,
                hipcc: va,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::mathlib::MathFunc;
    use progen::ast::*;
    use progen::inputs::InputValue;

    /// Fig. 5-shaped program: tmp decl, then the failing division.
    fn fig5() -> (Program, InputSet) {
        let p = Program {
            id: "fig5".into(),
            precision: Precision::F64,
            params: vec![Param { name: "comp".into(), ty: ParamType::Float }],
            body: vec![
                Stmt::DeclTmp { name: "tmp_1".into(), init: Expr::Lit(1.1147e-307) },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::bin(
                        BinOp::Div,
                        Expr::Var("tmp_1".into()),
                        Expr::Call(MathFunc::Ceil, vec![Expr::Lit(1.5955e-125)]),
                    ),
                },
            ],
        };
        let input = InputSet { values: vec![InputValue::Float(1.2374e-306)] };
        (p, input)
    }

    #[test]
    fn isolates_the_failing_statement_of_fig5() {
        let (p, input) = fig5();
        let r = isolate(&p, &input, OptLevel::O0, TestMode::Direct, QuirkSet::all()).unwrap();
        assert!(r.discrepancy.is_some());
        let d = r.first_divergence.expect("divergence found");
        // tmp_1 agrees (event 0); the division into comp diverges (event 1)
        assert_eq!(d.event_index, 1);
        assert_eq!(d.target, "comp");
        assert_eq!(d.nvcc, ExecValue::F64(f64::INFINITY));
        assert!(!r.control_flow_diverged);
    }

    #[test]
    fn agreeing_runs_report_no_divergence() {
        let (p, input) = fig5();
        let r = isolate(&p, &input, OptLevel::O0, TestMode::Direct, QuirkSet::none()).unwrap();
        assert!(r.discrepancy.is_none());
        assert!(r.first_divergence.is_none());
        assert!(!r.control_flow_diverged);
        assert_eq!(r.final_ulp, Some(0));
        assert_eq!(r.digest(), "no divergence observed");
    }

    #[test]
    fn loop_magnification_is_visible_in_ulp_growth() {
        // comp += fmod(huge, tiny) inside a loop: the first iteration's
        // divergence is magnified by subsequent iterations (case study 1's
        // "compounded" observation) — final ulp >= divergence-point ulp
        let p = Program {
            id: "mag".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body: vec![Stmt::For {
                var: "i".into(),
                bound: "var_1".into(),
                body: vec![
                    Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::AddAssign,
                        value: Expr::Call(
                            MathFunc::Fmod,
                            vec![Expr::Lit(1.5917195493481116e289), Expr::Lit(1.5793e-307)],
                        ),
                    },
                    Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::MulAssign,
                        value: Expr::Lit(1.5),
                    },
                ],
            }],
        };
        let input = InputSet {
            values: vec![InputValue::Float(0.0), InputValue::Int(6), InputValue::Float(0.0)],
        };
        let r = isolate(&p, &input, OptLevel::O0, TestMode::Direct, QuirkSet::all()).unwrap();
        let d = r.first_divergence.expect("fmod diverges");
        assert_eq!(d.event_index, 0, "first store already differs");
        assert!(r.discrepancy.is_some());
        // traces align (no control-flow divergence), 12 stores each
        assert!(!r.control_flow_diverged);
        assert_eq!(r.nvcc_events, 12);
        assert_eq!(r.hipcc_events, 12);
    }

    #[test]
    fn control_flow_divergence_is_detected() {
        // if (comp >= ceil(tiny)) { comp = 1 }: NV ceil gives 0 (branch
        // taken for comp=0.5), AMD gives 1 (branch not taken)
        let p = Program {
            id: "cf".into(),
            precision: Precision::F64,
            params: vec![Param { name: "comp".into(), ty: ParamType::Float }],
            body: vec![Stmt::If {
                cond: Cond {
                    op: CmpOp::Ge,
                    lhs: Expr::Var("comp".into()),
                    rhs: Expr::Call(MathFunc::Ceil, vec![Expr::Lit(1.5955e-125)]),
                },
                body: vec![Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::Set,
                    value: Expr::Lit(1.0),
                }],
            }],
        };
        let input = InputSet { values: vec![InputValue::Float(0.5)] };
        let r = isolate(&p, &input, OptLevel::O0, TestMode::Direct, QuirkSet::all()).unwrap();
        assert!(r.control_flow_diverged);
        assert_eq!(r.nvcc_events, 1, "NV takes the branch");
        assert_eq!(r.hipcc_events, 0, "AMD skips it");
    }

    #[test]
    fn digest_is_informative() {
        let (p, input) = fig5();
        let r = isolate(&p, &input, OptLevel::O0, TestMode::Direct, QuirkSet::all()).unwrap();
        let d = r.digest();
        assert!(d.contains("store #1"), "{d}");
        assert!(d.contains("comp"), "{d}");
        assert!(d.contains("inf"), "{d}");
    }
}
