//! # difftest — the differential-testing harness
//!
//! End-to-end implementation of the paper's testing campaign:
//!
//! 1. generate `N` random programs and `K` inputs each ([`progen`]);
//! 2. for every optimization level, compile each test with the nvcc-like
//!    and hipcc-like toolchains ([`gpucc`]) — routing the hipcc side
//!    through the HIPIFY translator in HIPIFY mode ([`hipify`]);
//! 3. execute both binaries on their devices ([`gpusim`]) with the same
//!    inputs;
//! 4. compare results bitwise, classify discrepancies into the paper's
//!    seven classes ([`outcome`], [`compare`]) — and, when the
//!    double-double ground-truth side ran ([`side`], `campaign
//!    --reference`), score every strict-cell discrepancy against the
//!    truth and say *who drifted* ([`verdict`]);
//! 5. aggregate per-level class counts and adjacency matrices and render
//!    the paper's tables ([`report`]);
//! 6. persist / merge campaign metadata as JSON for the between-platform
//!    protocol of Fig. 3 ([`metadata`]);
//! 7. shrink failure-inducing tests to minimal reproducers ([`reduce`]);
//! 8. isolate the first diverging statement via trace alignment
//!    ([`isolate`]) — pLiner-style root-cause localization;
//! 9. attribute discrepancies to the fast-math passes that rewrote the
//!    offending kernels ([`attribution`]), and carry campaign telemetry
//!    (spans, counters, throughput) through the metadata protocol
//!    ([`obs`]);
//! 10. survive their own failures: per-test isolation and quarantine
//!     ([`fault`]), crash-safe checkpoint/resume via an append-only
//!     CRC-framed journal ([`checkpoint`]), and — under the test-only
//!     `chaos` feature — injected crashes, torn writes, and I/O errors
//!     that prove the recovery paths ([`chaos`]);
//! 11. scale out: shard-sliced generation
//!     ([`metadata::CampaignMeta::generate_shard`]), sharded checkpoints
//!     ([`checkpoint::ShardSpec`]), stop-file drain, and order-independent
//!     incremental shard merging
//!     ([`metadata::CampaignMeta::merge_shards_partial`]) — the worker-
//!     side primitives the `farm` crate's supervisor composes into a
//!     self-healing multi-process fuzzing service.

#![deny(missing_docs)]

pub mod attribution;
pub mod campaign;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod checkpoint;
pub mod compare;
pub mod cross;
pub mod fault;
pub mod isolate;
pub mod metadata;
pub mod outcome;
pub mod reduce;
pub mod report;
pub mod side;
pub mod stats;
pub mod verdict;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, TestMode};
pub use checkpoint::{atomic_write, Checkpoint, FtSession, FtStatus, Journal, ShardSpec};
pub use compare::compare_runs;
pub use fault::{FaultKind, TestFault};
pub use outcome::DiscrepancyClass;
pub use side::{Side, SideKey};
pub use verdict::{judge, TruthScore, Verdict, VerdictStats};
