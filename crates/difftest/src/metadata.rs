//! Campaign metadata: the JSON protocol of the paper's Fig. 3.
//!
//! GPUs from different vendors live in different clusters, so the paper
//! runs each campaign in two halves: system `C1` generates the tests, runs
//! its own compiler, and saves a JSON metadata file; system `C2` loads the
//! metadata, *regenerates exactly the same tests and inputs* (generation
//! is deterministic in the config), runs its side, and the merged file is
//! analyzed. [`CampaignMeta::run_side`] + [`CampaignMeta::merge`]
//! implement that protocol on one machine or two.

use crate::campaign::CampaignConfig;
use crate::campaign::TestMode;
use crate::fault::{FaultKind, TestFault};
use crate::side::{Side, SideKey};
use fpcore::classify::Outcome;
use gpucc::interp::{
    execute_prepared_budgeted, prepare, ExecBudget, ExecError, ExecResult, ExecValue,
    ExecutableKernel,
};
use gpucc::pipeline::{compile_with_stats, CompileStats, OptLevel, Toolchain};
use gpucc::vm::{self, CompiledKernel};
use gpucc::{ExecTier, KernelIr};
use gpusim::Device;
use hipify::hipify;
use progen::ast::Program;
use progen::emit::{emit, Dialect};
use progen::gen::generate_program;
use progen::inputs::{generate_inputs, InputSet};
use progen::parser::parse_kernel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// One stored execution result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Raw result bits (width per campaign precision).
    pub bits: u64,
    /// Outcome classification.
    pub outcome: Outcome,
    /// The `printf("%.17g")` output line.
    pub printed: String,
    /// IEEE exception flags the run raised (GPU-FPX-style tracking; the
    /// paper's ref \[12\]).
    #[serde(default)]
    pub exceptions: fpcore::exceptions::ExceptionFlags,
    /// Execution error, if the run failed (never for generated tests).
    pub error: Option<String>,
}

/// Metadata for one test program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestMeta {
    /// Generation index (program is regenerated from `(config, index)`).
    pub index: u64,
    /// Program identifier (sanity-checked on regeneration).
    pub program_id: String,
    /// The input sets, in order.
    pub inputs: Vec<InputSet>,
    /// `results["nvcc:O0"][input_idx]`.
    pub results: BTreeMap<String, Vec<RunRecord>>,
}

/// A campaign's full metadata file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignMeta {
    /// Campaign configuration (fully determines tests + inputs).
    pub config: CampaignConfig,
    /// Which sides have been executed. Serializes as the historical
    /// lowercase strings (`"nvcc"`, `"hipcc"`, now also `"reference"`),
    /// so v1 metadata files load unchanged.
    pub sides_run: Vec<Side>,
    /// Per-test metadata.
    pub tests: Vec<TestMeta>,
    /// Telemetry captured while this half ran (absent in files written
    /// before metrics existed or with telemetry disabled). Merging
    /// halves or shards adds their snapshots together.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<obs::MetricsSnapshot>,
    /// Quarantined faults this piece of the campaign contained (absent
    /// in files written before fault tolerance existed). The CLI copies
    /// the fault-tolerant session's ledger here before saving, so shard
    /// result files carry their quarantine with them; merging dedupes
    /// and sorts, keeping shard merges order-independent.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub quarantine: Vec<TestFault>,
}

/// Key for one (side, level) result column — the string form of
/// [`SideKey`], which `TestMeta::results` maps are indexed by.
pub fn side_key(side: impl Into<Side>, level: OptLevel) -> String {
    SideKey::new(side, level).to_string()
}

/// The single key the ground-truth results are stored under (the
/// reference evaluates the strict O0 IR once per test; every level's
/// comparison reads the same column).
pub fn reference_key() -> String {
    SideKey::REFERENCE.to_string()
}

/// Errors from the metadata protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// The two files describe different campaigns.
    ConfigMismatch,
    /// Serialization / IO failure.
    Io(String),
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::ConfigMismatch => f.write_str("campaign configs do not match"),
            MetaError::Io(m) => write!(f, "metadata io error: {m}"),
        }
    }
}

impl std::error::Error for MetaError {}

impl CampaignMeta {
    /// Generate the campaign's tests and inputs (no results yet).
    pub fn generate(config: &CampaignConfig) -> Self {
        let indices: Vec<u64> = (0..config.n_programs as u64).collect();
        Self::generate_indices(config, indices)
    }

    /// Generate only shard `shard_index` of `shard_count`: the tests
    /// whose generation index is ≡ `shard_index` (mod `shard_count`) —
    /// exactly the subset [`CampaignMeta::shard`] deals that shard, so
    /// `generate_shard(c, k, n)` equals `generate(c).shard(n)[k]` without
    /// ever materializing the other shards. Campaign-farm workers use
    /// this to regenerate their lease from `(config, shard spec)` alone.
    pub fn generate_shard(config: &CampaignConfig, shard_index: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(shard_index < shard_count, "shard index out of range");
        let indices: Vec<u64> = (0..config.n_programs as u64)
            .filter(|i| (*i as usize) % shard_count == shard_index)
            .collect();
        Self::generate_indices(config, indices)
    }

    fn generate_indices(config: &CampaignConfig, indices: Vec<u64>) -> Self {
        let _span = obs::span("campaign.generate");
        let tests = indices
            .into_par_iter()
            .map(|index| {
                let program = generate_program(&config.gen, config.seed, index);
                let inputs = generate_inputs(&program, config.seed, config.inputs_per_program);
                TestMeta { index, program_id: program.id.clone(), inputs, results: BTreeMap::new() }
            })
            .collect();
        CampaignMeta {
            config: config.clone(),
            sides_run: Vec::new(),
            tests,
            metrics: None,
            quarantine: Vec::new(),
        }
    }

    /// Regenerate the program for a test entry (deterministic).
    pub fn program_for(&self, test: &TestMeta) -> Program {
        let p = generate_program(&self.config.gen, self.config.seed, test.index);
        debug_assert_eq!(p.id, test.program_id, "metadata/program mismatch");
        p
    }

    /// Execute one side of the campaign (all levels, all tests, all
    /// inputs) and store the results. This is what runs on each cluster in
    /// the Fig. 3 protocol.
    ///
    /// Runs through the fault-tolerant runner with a plain session
    /// (isolation on, no journal, no fault cap): a panicking or
    /// budget-exhausted test becomes error records instead of aborting
    /// the campaign. Callers that want checkpointing or a circuit
    /// breaker use [`crate::checkpoint::run_side_ft`] directly.
    pub fn run_side(&mut self, toolchain: Toolchain) {
        let session = crate::checkpoint::FtSession::plain();
        let _ = crate::checkpoint::run_side_ft(self, toolchain, &session);
    }

    /// [`CampaignMeta::run_side`] on a chosen execution tier. The interp
    /// tier is the reference; `ExecTier::Vm` runs the compiled bytecode
    /// tier (bit-identical results, several times the throughput);
    /// `ExecTier::Differential` runs both in lockstep and quarantines any
    /// divergence. Reports are byte-identical across tiers.
    pub fn run_side_tier(&mut self, toolchain: Toolchain, tier: ExecTier) {
        let session = crate::checkpoint::FtSession::plain();
        let _ = crate::checkpoint::run_side_ft_tier(self, toolchain, &session, tier);
    }

    /// True once both compilers' results are present. The reference
    /// side is optional: a campaign is complete without ground truth —
    /// verdicts simply stay `TruthUndecided`.
    pub fn is_complete(&self) -> bool {
        Side::VENDORS.iter().all(|s| self.sides_run.contains(s))
    }

    /// True when the ground-truth side has been executed.
    pub fn has_reference(&self) -> bool {
        self.sides_run.contains(&Side::Reference)
    }

    /// Execute the ground-truth reference side: the strict O0 IR of
    /// every test evaluated over double-double values
    /// ([`gpucc::refexec`]), stored under the single `"reference:O0"`
    /// column. Plain session; callers wanting checkpointing use
    /// [`crate::checkpoint::run_reference_ft`] directly.
    pub fn run_reference(&mut self) {
        let session = crate::checkpoint::FtSession::plain();
        let _ = crate::checkpoint::run_reference_ft(self, &session);
    }

    /// Merge two half-campaigns (same config, different sides run).
    pub fn merge(mut a: CampaignMeta, b: CampaignMeta) -> Result<CampaignMeta, MetaError> {
        if serde_json::to_string(&a.config).map_err(io)?
            != serde_json::to_string(&b.config).map_err(io)?
        {
            return Err(MetaError::ConfigMismatch);
        }
        if a.tests.len() != b.tests.len() {
            return Err(MetaError::ConfigMismatch);
        }
        for (ta, tb) in a.tests.iter_mut().zip(b.tests) {
            if ta.program_id != tb.program_id || ta.inputs != tb.inputs {
                return Err(MetaError::ConfigMismatch);
            }
            for (k, v) in tb.results {
                ta.results.entry(k).or_insert(v);
            }
        }
        for s in b.sides_run {
            if !a.sides_run.contains(&s) {
                a.sides_run.push(s);
            }
        }
        a.sides_run.sort();
        a.quarantine.extend(b.quarantine);
        canonicalize_quarantine(&mut a.quarantine);
        a.metrics = merge_metrics(a.metrics.take(), b.metrics);
        Ok(a)
    }

    /// Split a campaign into `n_shards` batches over disjoint test ranges
    /// (the paper: "Due to resource constraints, we divided the tests into
    /// multiple batches, executed each batch separately, and then compiled
    /// the results into a comprehensive dataset"). Each shard is a
    /// self-contained `CampaignMeta` that can be run (either side or both)
    /// on a different machine and recombined with
    /// [`CampaignMeta::merge_shards`].
    pub fn shard(self, n_shards: usize) -> Vec<CampaignMeta> {
        assert!(n_shards > 0, "need at least one shard");
        let mut shards: Vec<CampaignMeta> = (0..n_shards)
            .map(|_| CampaignMeta {
                config: self.config.clone(),
                sides_run: self.sides_run.clone(),
                tests: Vec::new(),
                metrics: None,
                quarantine: Vec::new(),
            })
            .collect();
        for (i, test) in self.tests.into_iter().enumerate() {
            shards[i % n_shards].tests.push(test);
        }
        // quarantine entries follow the shard that owns their test
        for fault in self.quarantine {
            shards[(fault.index as usize) % n_shards].quarantine.push(fault);
        }
        shards
    }

    /// Fold shards produced by [`CampaignMeta::shard`] (or regenerated
    /// by farm workers via [`CampaignMeta::generate_shard`]) into one
    /// campaign *without* requiring the set to be complete — the
    /// incremental-merge primitive the campaign farm folds finished
    /// shards into as they land. Requires identical configs; the
    /// intersection of the shards' completed sides is kept. Test indices
    /// must be disjoint *or identical*: overlapping crash-replay shards
    /// (a re-leased shard completing twice, or the same finding shipped
    /// by two fleet agents) carry byte-identical tests — campaigns are
    /// deterministic in their config — and those count once. Two
    /// *different* tests under one index still reject the merge.
    ///
    /// The result is canonical: tests sorted by index and deduplicated,
    /// sides sorted, and quarantine entries deduplicated and sorted.
    /// Canonical output makes the fold order-independent — merging
    /// shards in any order, in any grouping, yields byte-identical
    /// metadata.
    pub fn merge_shards_partial(shards: Vec<CampaignMeta>) -> Result<CampaignMeta, MetaError> {
        let mut iter = shards.into_iter();
        let mut first = iter.next().ok_or(MetaError::ConfigMismatch)?;
        let config_json = serde_json::to_string(&first.config).map_err(io)?;
        let mut sides: Vec<Side> = first.sides_run.clone();
        for shard in iter {
            if serde_json::to_string(&shard.config).map_err(io)? != config_json {
                return Err(MetaError::ConfigMismatch);
            }
            sides.retain(|s| shard.sides_run.contains(s));
            first.tests.extend(shard.tests);
            first.quarantine.extend(shard.quarantine);
            first.metrics = merge_metrics(first.metrics.take(), shard.metrics);
        }
        first.tests.sort_by_key(|t| t.index);
        // identical duplicates (overlapping replays) collapse to one copy …
        first.tests.dedup();
        // … and only *conflicting* duplicates remain to reject
        if first.tests.windows(2).any(|w| w[0].index == w[1].index) {
            return Err(MetaError::ConfigMismatch);
        }
        sides.sort();
        first.sides_run = sides;
        canonicalize_quarantine(&mut first.quarantine);
        Ok(first)
    }

    /// Recombine a *complete* shard set into the full campaign:
    /// [`CampaignMeta::merge_shards_partial`] plus the completeness
    /// check (every test index present exactly once).
    pub fn merge_shards(shards: Vec<CampaignMeta>) -> Result<CampaignMeta, MetaError> {
        let merged = Self::merge_shards_partial(shards)?;
        if merged.tests.len() != merged.config.n_programs {
            return Err(MetaError::ConfigMismatch);
        }
        Ok(merged)
    }

    /// Save as JSON, atomically (temp file + fsync + rename in the
    /// destination directory): a crash mid-save leaves the previous
    /// file intact, never a torn one.
    pub fn save(&self, path: &Path) -> Result<(), MetaError> {
        let json = serde_json::to_string(self).map_err(io)?;
        crate::checkpoint::atomic_write(path, json.as_bytes()).map_err(io)
    }

    /// Load from JSON.
    pub fn load(path: &Path) -> Result<CampaignMeta, MetaError> {
        let json = std::fs::read_to_string(path).map_err(io)?;
        serde_json::from_str(&json).map_err(io)
    }
}

fn io(e: impl std::fmt::Display) -> MetaError {
    MetaError::Io(e.to_string())
}

/// Sort and deduplicate a quarantine ledger into its canonical form.
/// Duplicates are real: a worker that crashed after journaling a
/// faulting unit replays that unit's fault on resume, and the shard that
/// reran it reports it again — the merged campaign must count the fault
/// once.
fn canonicalize_quarantine(quarantine: &mut Vec<TestFault>) {
    quarantine.sort();
    quarantine.dedup();
}

/// Combine the telemetry of two campaign pieces (counters add,
/// histograms merge bucket-wise; one-sided telemetry passes through).
fn merge_metrics(
    a: Option<obs::MetricsSnapshot>,
    b: Option<obs::MetricsSnapshot>,
) -> Option<obs::MetricsSnapshot> {
    match (a, b) {
        (Some(mut ma), Some(mb)) => {
            ma.merge(&mb);
            Some(ma)
        }
        (ma, mb) => ma.or(mb),
    }
}

/// Build the kernel a given side runs: emit source in the right dialect,
/// push it through HIPIFY if the campaign tests converted code, re-parse,
/// and compile with the side's toolchain.
pub fn build_side(
    program: &Program,
    toolchain: Toolchain,
    level: OptLevel,
    mode: TestMode,
) -> KernelIr {
    build_side_with_stats(program, toolchain, level, mode).0
}

/// [`build_side`], plus the per-pass compile statistics. The
/// pass-attribution report recompiles discrepant (program, level) pairs
/// through this to name the passes that rewrote the offending kernel —
/// compilation is deterministic, so the recompile sees exactly what the
/// campaign's compile did.
pub fn build_side_with_stats(
    program: &Program,
    toolchain: Toolchain,
    level: OptLevel,
    mode: TestMode,
) -> (KernelIr, CompileStats) {
    let (parsed, hipified) = parse_side(program, toolchain, mode);
    compile_with_stats(&parsed, toolchain, level, hipified)
}

fn run_one(
    kernel: &ExecutableKernel,
    device: &Device,
    input: &InputSet,
    budget: ExecBudget,
) -> (RunRecord, Option<ExecError>) {
    record_of(execute_prepared_budgeted(kernel, device, input, budget))
}

/// Convert an execution outcome into the stored record form. Both tiers
/// go through here, so a record never betrays which executor produced it
/// — the vm is bit-identical to the interpreter including `ExecError`
/// display strings, and report byte-identity across tiers depends on it.
fn record_of(outcome: Result<ExecResult, ExecError>) -> (RunRecord, Option<ExecError>) {
    match outcome {
        Ok(result) => (
            RunRecord {
                bits: result.value.bits(),
                outcome: result.value.outcome(),
                printed: result.value.format_exact(),
                exceptions: result.exceptions,
                error: None,
            },
            None,
        ),
        Err(e) => (error_record(e.to_string()), Some(e)),
    }
}

/// The placeholder record stored for a run that produced no value
/// (execution error or contained panic).
fn error_record(error: String) -> RunRecord {
    RunRecord {
        bits: ExecValue::F64(f64::NAN).bits(),
        outcome: Outcome::Nan,
        printed: String::new(),
        exceptions: fpcore::exceptions::ExceptionFlags::new(),
        error: Some(error),
    }
}

/// Run one work unit — every input of `test` on `(toolchain, level)` —
/// with per-unit isolation. A panic anywhere in build/prepare/execute is
/// contained by [`crate::fault::catch_isolated`] and, like a
/// budget-exhausted execution, classified into an optional [`TestFault`]
/// for the quarantine log; the unit still yields one record per input
/// (error records in the fault case) so campaign accounting stays
/// rectangular.
pub(crate) fn run_unit(
    config: &CampaignConfig,
    device: &Device,
    toolchain: Toolchain,
    level: OptLevel,
    test: &TestMeta,
    program: &Program,
) -> (Vec<RunRecord>, Option<TestFault>) {
    let _span = obs::span("campaign.unit")
        .attr("program", test.program_id.as_str())
        .attr("index", test.index)
        .attr("toolchain", toolchain.name())
        .attr("level", level.label());
    let make_fault = |kind: FaultKind, detail: String| TestFault {
        index: test.index,
        program_id: test.program_id.clone(),
        seed: config.seed,
        side: side_key(toolchain, level),
        kind,
        detail,
    };
    let caught = crate::fault::catch_isolated(|| {
        let ir = build_side(program, toolchain, level, config.mode);
        let kernel = prepare(&ir).expect("generated kernels resolve");
        test.inputs
            .iter()
            .map(|input| run_one(&kernel, device, input, config.budget))
            .collect::<Vec<(RunRecord, Option<ExecError>)>>()
    });
    let (records, fault) = match caught {
        Ok(pairs) => {
            let mut fault: Option<TestFault> = None;
            let mut records = Vec::with_capacity(pairs.len());
            for (record, err) in pairs {
                if fault.is_none() {
                    match &err {
                        Some(e @ ExecError::StepLimit { .. }) => {
                            fault = Some(make_fault(FaultKind::StepBudget, e.to_string()));
                        }
                        Some(e @ ExecError::Timeout { .. }) => {
                            fault = Some(make_fault(FaultKind::Timeout, e.to_string()));
                        }
                        _ => {}
                    }
                }
                records.push(record);
            }
            (records, fault)
        }
        Err(msg) => {
            let records =
                test.inputs.iter().map(|_| error_record(format!("panic: {msg}"))).collect();
            (records, Some(make_fault(FaultKind::Panic, msg)))
        }
    };
    // live discrepancy tally: when the other side already ran, compare
    // as results land so progress displays can report
    // discrepancies-so-far without waiting for the analyze phase
    record_unit_telemetry(config, toolchain, level, test, &records, &fault);
    (records, fault)
}

/// Run the ground-truth work unit for one test: every input evaluated by
/// the double-double reference executor over the strict O0 IR.
///
/// The IR comes from the un-hipified `nvcc` O0 compile regardless of the
/// campaign's [`TestMode`]: at O0 on plain sources both toolchains emit
/// bit-identical IR, and the truth is a property of the *source program*,
/// not of either vendor's lowering. Results land under the single
/// [`reference_key`] column — one truth serves every level's comparison.
///
/// Same isolation contract as [`run_unit`]: panics and budget
/// exhaustion become error records plus an optional quarantine fault,
/// and the unit always yields one record per input.
pub(crate) fn run_reference_unit(
    config: &CampaignConfig,
    test: &TestMeta,
    program: &Program,
) -> (Vec<RunRecord>, Option<TestFault>) {
    let _span = obs::span("campaign.unit")
        .attr("program", test.program_id.as_str())
        .attr("index", test.index)
        .attr("toolchain", Side::Reference.name())
        .attr("level", OptLevel::O0.label());
    let make_fault = |kind: FaultKind, detail: String| TestFault {
        index: test.index,
        program_id: test.program_id.clone(),
        seed: config.seed,
        side: reference_key(),
        kind,
        detail,
    };
    let caught = crate::fault::catch_isolated(|| {
        let ir = build_side(program, Toolchain::Nvcc, OptLevel::O0, TestMode::Direct);
        let kernel = prepare(&ir).expect("generated kernels resolve");
        test.inputs
            .iter()
            .map(|input| {
                record_of(gpucc::refexec::execute_reference_budgeted(
                    &kernel,
                    input,
                    config.budget,
                ))
            })
            .collect::<Vec<(RunRecord, Option<ExecError>)>>()
    });
    let (records, fault) = match caught {
        Ok(pairs) => {
            let mut fault: Option<TestFault> = None;
            let mut records = Vec::with_capacity(pairs.len());
            for (record, err) in pairs {
                if fault.is_none() {
                    match &err {
                        Some(e @ ExecError::StepLimit { .. }) => {
                            fault = Some(make_fault(FaultKind::StepBudget, e.to_string()));
                        }
                        Some(e @ ExecError::Timeout { .. }) => {
                            fault = Some(make_fault(FaultKind::Timeout, e.to_string()));
                        }
                        _ => {}
                    }
                }
                records.push(record);
            }
            (records, fault)
        }
        Err(msg) => {
            let records =
                test.inputs.iter().map(|_| error_record(format!("panic: {msg}"))).collect();
            (records, Some(make_fault(FaultKind::Panic, msg)))
        }
    };
    if obs::enabled() {
        obs::add("campaign.runs_done", records.len() as u64);
        if let Some(f) = &fault {
            obs::add(&format!("campaign.faults.{}", f.kind.label()), 1);
        }
        // no live discrepancy tally: truth does not participate in the
        // vendor-vs-vendor count the progress display reports
    }
    (records, fault)
}

/// The compilation-sharing class of an optimization level. `O1`, `O2`,
/// and `O3` run pass pipelines that produce identical IR bodies (the
/// levels differ only in the recorded level index), so the compiled tier
/// compiles each *class* once per `(test, toolchain)` instead of each
/// level: `{O0} {O1,O2,O3} {O3_fm}` — 3 compilations standing in for 5.
/// The interpreter tier keeps the historical compile-per-level behavior.
pub(crate) fn level_class(level: OptLevel) -> usize {
    match level {
        OptLevel::O0 => 0,
        OptLevel::O1 | OptLevel::O2 | OptLevel::O3 => 1,
        OptLevel::O3Fm => 2,
    }
}

/// Per-`(test, toolchain)` build cache for the compiled execution tiers.
///
/// The campaign runner sees each program 5 levels × `inputs_per_program`
/// times per side; this cache amortizes the front end (emit → hipify →
/// parse, done once) and the middle end (one compile + bytecode lowering
/// + interp prepare per [`level_class`]) across all of them, which is
/// where the `--exec-tier vm` throughput multiple comes from. A cache is
/// private to one rayon task (one test), so there is no locking.
///
/// Population happens *inside* the unit's `catch_isolated` so a panic
/// during build is attributed to the unit that triggered it, exactly as
/// the interpreter tier attributes its per-unit builds.
#[derive(Default)]
pub(crate) struct SideBuildCache {
    parsed: Option<Program>,
    hipified: bool,
    classes: [Option<(CompiledKernel, ExecutableKernel)>; 3],
}

impl SideBuildCache {
    /// Emit/parse once, then compile the level's class if not yet cached.
    /// Returns borrowed kernels for the given level.
    fn kernels_for(
        &mut self,
        program: &Program,
        toolchain: Toolchain,
        level: OptLevel,
        mode: TestMode,
    ) -> (&CompiledKernel, &ExecutableKernel) {
        if self.parsed.is_none() {
            let (parsed, hipified) = parse_side(program, toolchain, mode);
            self.parsed = Some(parsed);
            self.hipified = hipified;
        }
        let class = level_class(level);
        if self.classes[class].is_none() {
            let parsed = self.parsed.as_ref().expect("populated above");
            let (ir, _) = compile_with_stats(parsed, toolchain, level, self.hipified);
            let compiled = vm::compile_kernel(&ir).expect("generated kernels resolve");
            let reference = prepare(&ir).expect("generated kernels resolve");
            self.classes[class] = Some((compiled, reference));
        }
        let (c, r) = self.classes[class].as_ref().expect("populated above");
        (c, r)
    }
}

/// The front half of [`build_side`]: emit source in the side's dialect
/// (through HIPIFY when the campaign tests converted code) and re-parse.
/// Returns the parsed kernel and whether it went through the translator.
fn parse_side(program: &Program, toolchain: Toolchain, mode: TestMode) -> (Program, bool) {
    match (toolchain, mode) {
        (Toolchain::Nvcc, _) => {
            let src = emit(program, Dialect::Cuda);
            (parse_kernel(&src, &program.id).expect("emitted CUDA parses"), false)
        }
        (Toolchain::Hipcc, TestMode::Direct) => {
            let src = emit(program, Dialect::Hip);
            (parse_kernel(&src, &program.id).expect("emitted HIP parses"), false)
        }
        (Toolchain::Hipcc, TestMode::Hipified) => {
            let cuda = emit(program, Dialect::Cuda);
            let converted = hipify(&cuda);
            (parse_kernel(&converted.source, &program.id).expect("hipified source parses"), true)
        }
    }
}

/// [`run_unit`] for a selected execution tier. `ExecTier::Interp`
/// delegates to the historical per-level build path untouched; the
/// compiled tiers run through `cache`, executing all of a unit's inputs
/// against one compiled kernel via the batch API
/// ([`gpucc::vm::execute_batch`]), or input-by-input under lockstep
/// comparison for [`ExecTier::Differential`] — where a vm/interp
/// mismatch panics, which the unit isolation converts into a
/// [`FaultKind::Panic`] quarantine entry naming the divergence.
pub(crate) fn run_unit_tier(
    config: &CampaignConfig,
    device: &Device,
    toolchain: Toolchain,
    level: OptLevel,
    test: &TestMeta,
    program: &Program,
    tier: ExecTier,
    cache: &mut SideBuildCache,
) -> (Vec<RunRecord>, Option<TestFault>) {
    if tier == ExecTier::Interp {
        return run_unit(config, device, toolchain, level, test, program);
    }
    let _span = obs::span("campaign.unit")
        .attr("program", test.program_id.as_str())
        .attr("index", test.index)
        .attr("toolchain", toolchain.name())
        .attr("level", level.label())
        .attr("tier", tier.label());
    let make_fault = |kind: FaultKind, detail: String| TestFault {
        index: test.index,
        program_id: test.program_id.clone(),
        seed: config.seed,
        side: side_key(toolchain, level),
        kind,
        detail,
    };
    let caught = crate::fault::catch_isolated(|| {
        let (compiled, reference) = cache.kernels_for(program, toolchain, level, config.mode);
        match tier {
            ExecTier::Vm => vm::execute_batch(compiled, device, &test.inputs, config.budget)
                .into_iter()
                .map(record_of)
                .collect::<Vec<(RunRecord, Option<ExecError>)>>(),
            ExecTier::Differential => test
                .inputs
                .iter()
                .map(|input| {
                    record_of(vm::execute_differential(
                        reference,
                        compiled,
                        device,
                        input,
                        config.budget,
                    ))
                })
                .collect(),
            ExecTier::Interp => unreachable!("handled above"),
        }
    });
    let (records, fault) = match caught {
        Ok(pairs) => {
            let mut fault: Option<TestFault> = None;
            let mut records = Vec::with_capacity(pairs.len());
            for (record, err) in pairs {
                if fault.is_none() {
                    match &err {
                        Some(e @ ExecError::StepLimit { .. }) => {
                            fault = Some(make_fault(FaultKind::StepBudget, e.to_string()));
                        }
                        Some(e @ ExecError::Timeout { .. }) => {
                            fault = Some(make_fault(FaultKind::Timeout, e.to_string()));
                        }
                        _ => {}
                    }
                }
                records.push(record);
            }
            (records, fault)
        }
        Err(msg) => {
            let records =
                test.inputs.iter().map(|_| error_record(format!("panic: {msg}"))).collect();
            (records, Some(make_fault(FaultKind::Panic, msg)))
        }
    };
    record_unit_telemetry(config, toolchain, level, test, &records, &fault);
    (records, fault)
}

/// The unit-completion telemetry shared by every tier: run counters,
/// fault counters, and the live discrepancy tally against the other
/// side's already-recorded results.
fn record_unit_telemetry(
    config: &CampaignConfig,
    toolchain: Toolchain,
    level: OptLevel,
    test: &TestMeta,
    records: &[RunRecord],
    fault: &Option<TestFault>,
) {
    if !obs::enabled() {
        return;
    }
    obs::add("campaign.runs_done", records.len() as u64);
    if let Some(f) = fault {
        obs::add(&format!("campaign.faults.{}", f.kind.label()), 1);
    }
    let other_tc = match toolchain {
        Toolchain::Nvcc => Toolchain::Hipcc,
        Toolchain::Hipcc => Toolchain::Nvcc,
    };
    if let Some(prev) = test.results.get(&side_key(other_tc, level)) {
        for (mine, theirs) in records.iter().zip(prev) {
            if mine.error.is_some() || theirs.error.is_some() {
                continue;
            }
            let (nv, amd) = match toolchain {
                Toolchain::Nvcc => (mine.bits, theirs.bits),
                Toolchain::Hipcc => (theirs.bits, mine.bits),
            };
            let vn = crate::campaign::decode(config.precision, nv);
            let va = crate::campaign::decode(config.precision, amd);
            if let Some(d) = crate::compare::compare_runs(&vn, &va) {
                obs::add("campaign.discrepancies", 1);
                obs::add(&format!("campaign.disc.{:?}", d.class), 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{analyze, run_campaign, CampaignConfig};
    use progen::ast::Precision;

    fn cfg() -> CampaignConfig {
        CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(12)
    }

    #[test]
    fn between_platform_protocol_matches_single_machine_run() {
        let config = cfg();
        // single machine
        let combined = run_campaign(&config);

        // two "clusters": each generates from the shared config, runs its
        // side, and the metadata files are merged
        let mut c1 = CampaignMeta::generate(&config);
        c1.run_side(Toolchain::Nvcc);
        let mut c2 = CampaignMeta::generate(&config);
        c2.run_side(Toolchain::Hipcc);
        assert!(!c1.is_complete() && !c2.is_complete());
        let merged = CampaignMeta::merge(c1, c2).unwrap();
        assert!(merged.is_complete());
        let report = analyze(&merged);
        assert_eq!(report.per_level, combined.per_level);
    }

    #[test]
    fn save_load_roundtrip() {
        let config = cfg().with_programs(4);
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        let dir = std::env::temp_dir().join("difftest_meta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.json");
        meta.save(&path).unwrap();
        let back = CampaignMeta::load(&path).unwrap();
        assert_eq!(meta, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let a = CampaignMeta::generate(&cfg().with_programs(3));
        let b = CampaignMeta::generate(&cfg().with_programs(4));
        assert_eq!(CampaignMeta::merge(a, b).unwrap_err(), MetaError::ConfigMismatch);
    }

    #[test]
    fn merge_is_idempotent_on_overlapping_sides() {
        let config = cfg().with_programs(3);
        let mut a = CampaignMeta::generate(&config);
        a.run_side(Toolchain::Nvcc);
        let b = a.clone();
        let merged = CampaignMeta::merge(a.clone(), b).unwrap();
        assert_eq!(merged, a);
    }

    #[test]
    fn program_regeneration_matches_stored_ids() {
        let meta = CampaignMeta::generate(&cfg().with_programs(6));
        for t in &meta.tests {
            let p = meta.program_for(t);
            assert_eq!(p.id, t.program_id);
        }
    }

    #[test]
    fn records_store_exact_bits_and_print() {
        let config = cfg().with_programs(5);
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        let t = &meta.tests[0];
        let recs = t.results.get(&side_key(Toolchain::Nvcc, OptLevel::O0)).unwrap();
        assert_eq!(recs.len(), config.inputs_per_program);
        for r in recs {
            assert!(r.error.is_none());
            let v = f64::from_bits(r.bits);
            assert_eq!(r.outcome, Outcome::of_f64(v));
            assert_eq!(r.printed, fpcore::literal::format_g17(v));
        }
    }

    #[test]
    fn sharded_batches_reproduce_the_monolithic_campaign() {
        let config = cfg().with_programs(13); // uneven split on purpose
                                              // monolithic reference
        let monolithic = run_campaign(&config);
        // sharded: three batches, each run independently
        let shards = CampaignMeta::generate(&config).shard(3);
        assert_eq!(shards.len(), 3);
        let run_shards: Vec<CampaignMeta> = shards
            .into_iter()
            .map(|mut s| {
                s.run_side(Toolchain::Nvcc);
                s.run_side(Toolchain::Hipcc);
                s
            })
            .collect();
        let merged = CampaignMeta::merge_shards(run_shards).unwrap();
        assert!(merged.is_complete());
        let report = analyze(&merged);
        assert_eq!(report.per_level, monolithic.per_level);
    }

    #[test]
    fn generate_shard_equals_sharding_the_full_campaign() {
        let config = cfg().with_programs(13);
        let full_shards = CampaignMeta::generate(&config).shard(4);
        for k in 0..4 {
            let direct = CampaignMeta::generate_shard(&config, k, 4);
            assert_eq!(direct, full_shards[k], "shard {k}/4 mismatch");
            assert!(direct.tests.iter().all(|t| (t.index as usize) % 4 == k));
        }
        // every test appears in exactly one shard
        let total: usize =
            (0..4).map(|k| CampaignMeta::generate_shard(&config, k, 4).tests.len()).sum();
        assert_eq!(total, config.n_programs);
    }

    fn fault(index: u64, side: &str) -> TestFault {
        TestFault {
            index,
            program_id: format!("prog_{index}"),
            seed: 2024,
            side: side.to_string(),
            kind: FaultKind::Panic,
            detail: "injected".to_string(),
        }
    }

    #[test]
    fn merge_shards_is_order_independent_and_dedupes_quarantine() {
        let config = cfg().with_programs(9);
        let mut shards: Vec<CampaignMeta> = CampaignMeta::generate(&config)
            .shard(3)
            .into_iter()
            .map(|mut s| {
                s.run_side(Toolchain::Nvcc);
                s.run_side(Toolchain::Hipcc);
                s
            })
            .collect();
        // simulate a fault journaled by a crashed worker and re-reported
        // by the worker that resumed the shard: same entry twice, plus a
        // distinct fault on another shard, inserted out of order
        shards[1].quarantine.push(fault(4, "nvcc:O2"));
        shards[1].quarantine.push(fault(1, "hipcc:O0"));
        shards[1].quarantine.push(fault(4, "nvcc:O2"));
        shards[2].quarantine.push(fault(2, "nvcc:O0"));

        // fold in every completion order, incrementally (farm-style)
        let reference = serde_json::to_string(
            &CampaignMeta::merge_shards(shards.clone()).expect("complete set merges"),
        )
        .unwrap();
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for order in orders {
            let mut rolling: Option<CampaignMeta> = None;
            for &i in &order {
                let next = shards[i].clone();
                rolling = Some(match rolling.take() {
                    None => CampaignMeta::merge_shards_partial(vec![next]).unwrap(),
                    Some(acc) => CampaignMeta::merge_shards_partial(vec![acc, next]).unwrap(),
                });
            }
            let merged = rolling.unwrap();
            assert_eq!(merged.tests.len(), config.n_programs);
            assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                reference,
                "fold order {order:?} must be byte-identical"
            );
            // deduped: the duplicated fault counts once
            assert_eq!(merged.quarantine.len(), 3);
            assert!(merged.quarantine.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        }
    }

    #[test]
    fn shard_routes_quarantine_entries_with_their_tests() {
        let config = cfg().with_programs(6);
        let mut meta = CampaignMeta::generate(&config);
        meta.quarantine.push(fault(5, "nvcc:O0")); // 5 % 3 == 2
        meta.quarantine.push(fault(3, "nvcc:O0")); // 3 % 3 == 0
        let shards = meta.shard(3);
        assert_eq!(shards[0].quarantine.len(), 1);
        assert_eq!(shards[0].quarantine[0].index, 3);
        assert!(shards[1].quarantine.is_empty());
        assert_eq!(shards[2].quarantine[0].index, 5);
    }

    #[test]
    fn merge_halves_unions_quarantine() {
        let config = cfg().with_programs(3);
        let mut a = CampaignMeta::generate(&config);
        a.run_side(Toolchain::Nvcc);
        a.quarantine.push(fault(0, "nvcc:O1"));
        let mut b = CampaignMeta::generate(&config);
        b.run_side(Toolchain::Hipcc);
        b.quarantine.push(fault(0, "hipcc:O1"));
        b.quarantine.push(fault(0, "nvcc:O1")); // duplicate across halves
        let merged = CampaignMeta::merge(a, b).unwrap();
        assert_eq!(merged.quarantine.len(), 2);
    }

    #[test]
    fn quarantine_field_is_optional_in_old_files() {
        let config = cfg().with_programs(2);
        let meta = CampaignMeta::generate(&config);
        let mut v: serde_json::Value = serde_json::to_value(&meta).unwrap();
        v.as_object_mut().unwrap().remove("quarantine");
        let back: CampaignMeta = serde_json::from_value(v).unwrap();
        assert_eq!(back, meta);
        assert!(back.quarantine.is_empty());
    }

    #[test]
    fn merge_shards_rejects_incomplete_sets() {
        let config = cfg().with_programs(6);
        let mut shards = CampaignMeta::generate(&config).shard(3);
        shards.pop(); // lose a batch
        assert!(CampaignMeta::merge_shards(shards).is_err());
    }

    #[test]
    fn merge_counts_identical_overlapping_shards_once_but_rejects_conflicts() {
        let config = cfg().with_programs(6);
        let mut shards: Vec<CampaignMeta> = CampaignMeta::generate(&config)
            .shard(3)
            .into_iter()
            .map(|mut s| {
                s.run_side(Toolchain::Nvcc);
                s.run_side(Toolchain::Hipcc);
                s
            })
            .collect();
        let reference =
            serde_json::to_string(&CampaignMeta::merge_shards(shards.clone()).unwrap()).unwrap();

        // a fleet re-lease shipped shard 1 twice, byte-identical: the
        // duplicate findings count once and the merge stays canonical
        let mut overlapping = shards.clone();
        let dup = overlapping[1].clone();
        overlapping.push(dup);
        let merged = CampaignMeta::merge_shards(overlapping).unwrap();
        assert_eq!(serde_json::to_string(&merged).unwrap(), reference);

        // but a *conflicting* duplicate (same index, different results)
        // is still a merge error, not a silent pick-one
        let mut conflicting = shards[1].clone();
        for t in &mut conflicting.tests {
            t.results.clear();
        }
        conflicting.sides_run.clear();
        shards.push(conflicting);
        assert!(CampaignMeta::merge_shards(shards).is_err());
    }

    #[test]
    fn merge_shards_keeps_only_commonly_run_sides() {
        let config = cfg().with_programs(4);
        let mut shards = CampaignMeta::generate(&config).shard(2);
        shards[0].run_side(Toolchain::Nvcc);
        shards[0].run_side(Toolchain::Hipcc);
        shards[1].run_side(Toolchain::Nvcc);
        let merged = CampaignMeta::merge_shards(shards).unwrap();
        assert!(!merged.is_complete(), "hipcc missing from one batch");
        assert_eq!(merged.sides_run, vec![Side::Nvcc]);
    }

    #[test]
    fn reference_side_stores_truth_under_one_key() {
        let config = cfg().with_programs(4);
        let mut meta = CampaignMeta::generate(&config);
        meta.run_reference();
        assert!(meta.sides_run.contains(&Side::Reference));
        assert!(!meta.is_complete(), "reference alone is not a campaign");
        for t in &meta.tests {
            let recs = t.results.get(&reference_key()).expect("truth column present");
            assert_eq!(recs.len(), config.inputs_per_program);
            // exactly one reference column, no per-level duplication
            let ref_cols =
                t.results.keys().filter(|k| k.starts_with("reference:")).count();
            assert_eq!(ref_cols, 1);
        }
    }

    #[test]
    fn three_side_merge_is_complete_and_canonically_ordered() {
        let config = cfg().with_programs(3);
        let mut a = CampaignMeta::generate(&config);
        a.run_side(Toolchain::Nvcc);
        a.run_reference();
        let mut b = CampaignMeta::generate(&config);
        b.run_side(Toolchain::Hipcc);
        let merged = CampaignMeta::merge(a, b).unwrap();
        assert!(merged.is_complete());
        assert!(merged.has_reference());
        assert_eq!(merged.sides_run, vec![Side::Nvcc, Side::Hipcc, Side::Reference]);
    }

    #[test]
    fn v1_metadata_with_string_sides_still_loads() {
        // v1 wrote sides_run as plain strings; the typed schema must
        // accept the identical JSON
        let config = cfg().with_programs(2);
        let meta = CampaignMeta::generate(&config);
        let mut v: serde_json::Value = serde_json::to_value(&meta).unwrap();
        v["sides_run"] = serde_json::json!(["nvcc", "hipcc"]);
        let back: CampaignMeta = serde_json::from_value(v).unwrap();
        assert_eq!(back.sides_run, vec![Side::Nvcc, Side::Hipcc]);
        assert!(back.is_complete());
    }

    #[test]
    fn metrics_snapshot_survives_save_load_and_merge() {
        let config = cfg().with_programs(3);
        let mut a = CampaignMeta::generate(&config);
        a.run_side(Toolchain::Nvcc);
        let reg = obs::Registry::new();
        reg.counter("campaign.runs_done").add(10);
        reg.hist("span.campaign.generate").record(1234);
        a.metrics = Some(reg.snapshot());

        // save/load keeps the snapshot bit-identical
        let dir = std::env::temp_dir().join("difftest_meta_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.json");
        a.save(&path).unwrap();
        let back = CampaignMeta::load(&path).unwrap();
        assert_eq!(a, back);
        std::fs::remove_file(&path).ok();

        // merging halves adds their telemetry together
        let mut b = CampaignMeta::generate(&config);
        b.run_side(Toolchain::Hipcc);
        let reg2 = obs::Registry::new();
        reg2.counter("campaign.runs_done").add(5);
        b.metrics = Some(reg2.snapshot());
        let merged = CampaignMeta::merge(a, b).unwrap();
        let m = merged.metrics.expect("merged file keeps telemetry");
        assert_eq!(m.counter("campaign.runs_done"), 15);
        assert_eq!(m.hists["span.campaign.generate"].count, 1);

        // one-sided telemetry passes through merge untouched
        let mut c = CampaignMeta::generate(&config);
        c.metrics = Some(reg.snapshot());
        let d = CampaignMeta::generate(&config);
        let merged = CampaignMeta::merge(c, d).unwrap();
        assert_eq!(merged.metrics.unwrap().counter("campaign.runs_done"), 10);
    }

    #[test]
    fn metrics_field_is_optional_in_old_files() {
        // files written before telemetry existed must still load
        let config = cfg().with_programs(2);
        let meta = CampaignMeta::generate(&config);
        let mut v: serde_json::Value = serde_json::to_value(&meta).unwrap();
        v.as_object_mut().unwrap().remove("metrics");
        let back: CampaignMeta = serde_json::from_value(v).unwrap();
        assert_eq!(back, meta);
        assert!(back.metrics.is_none());
    }

    #[test]
    fn hipified_mode_builds_through_the_translator() {
        let program = generate_program(&cfg().gen, 1, 0);
        let direct = build_side(&program, Toolchain::Hipcc, OptLevel::O0, TestMode::Direct);
        let converted = build_side(&program, Toolchain::Hipcc, OptLevel::O0, TestMode::Hipified);
        // the hipified kernel may differ (contract-at-O0) but both must
        // come from the same program
        assert_eq!(direct.program_id, converted.program_id);
        assert_eq!(direct.precision, converted.precision);
    }
}
