//! Discrepancy classification (paper §IV-B).
//!
//! Each run produces one of four outcomes — NaN, Inf, Zero, Number — and a
//! discrepant pair falls into one of **seven classes**: NaN–Inf, NaN–Zero,
//! NaN–Num, Inf–Zero, Inf–Num, Num–Zero, Num–Num. Pairs that differ only
//! in sign on special values (−NaN vs +NaN, −Inf vs +Inf, −0 vs +0) are
//! *not* discrepancies.

use fpcore::classify::Outcome;
use serde::{Deserialize, Serialize};

/// The paper's seven discrepancy classes, in table-column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscrepancyClass {
    /// One platform NaN, the other ±Inf.
    NanInf,
    /// One platform NaN, the other ±0.
    NanZero,
    /// One platform NaN, the other a non-zero finite number.
    NanNum,
    /// One platform ±Inf, the other ±0.
    InfZero,
    /// One platform ±Inf, the other a non-zero finite number.
    InfNum,
    /// One platform a non-zero finite number, the other ±0.
    NumZero,
    /// Both platforms non-zero finite numbers with different values.
    NumNum,
}

impl DiscrepancyClass {
    /// All classes, in the order of the paper's table columns.
    pub const ALL: [DiscrepancyClass; 7] = [
        DiscrepancyClass::NanInf,
        DiscrepancyClass::NanZero,
        DiscrepancyClass::NanNum,
        DiscrepancyClass::InfZero,
        DiscrepancyClass::InfNum,
        DiscrepancyClass::NumZero,
        DiscrepancyClass::NumNum,
    ];

    /// Column header used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DiscrepancyClass::NanInf => "NaN, Inf",
            DiscrepancyClass::NanZero => "NaN, Zero",
            DiscrepancyClass::NanNum => "NaN, Num",
            DiscrepancyClass::InfZero => "Inf, Zero",
            DiscrepancyClass::InfNum => "Inf, Num",
            DiscrepancyClass::NumZero => "Num, Zero",
            DiscrepancyClass::NumNum => "Num, Num",
        }
    }

    /// Index into [`DiscrepancyClass::ALL`].
    pub fn index(self) -> usize {
        DiscrepancyClass::ALL.iter().position(|c| *c == self).expect("class in ALL")
    }

    /// Classify an *unordered* outcome pair. Returns `None` for identical
    /// outcomes (same-outcome discrepancies are only possible for
    /// `Num`–`Num` and are decided by value elsewhere).
    pub fn of_outcomes(a: Outcome, b: Outcome) -> Option<DiscrepancyClass> {
        use Outcome::*;
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        match (x, y) {
            (Nan, Inf) => Some(DiscrepancyClass::NanInf),
            (Nan, Zero) => Some(DiscrepancyClass::NanZero),
            (Nan, Num) => Some(DiscrepancyClass::NanNum),
            (Inf, Zero) => Some(DiscrepancyClass::InfZero),
            (Inf, Num) => Some(DiscrepancyClass::InfNum),
            (Zero, Num) => Some(DiscrepancyClass::NumZero),
            _ => None, // identical outcomes
        }
    }
}

impl std::fmt::Display for DiscrepancyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Outcome::*;

    #[test]
    fn cross_outcome_pairs_classify() {
        assert_eq!(DiscrepancyClass::of_outcomes(Nan, Inf), Some(DiscrepancyClass::NanInf));
        assert_eq!(DiscrepancyClass::of_outcomes(Inf, Nan), Some(DiscrepancyClass::NanInf));
        assert_eq!(DiscrepancyClass::of_outcomes(Zero, Num), Some(DiscrepancyClass::NumZero));
        assert_eq!(DiscrepancyClass::of_outcomes(Inf, Num), Some(DiscrepancyClass::InfNum));
        assert_eq!(DiscrepancyClass::of_outcomes(Nan, Num), Some(DiscrepancyClass::NanNum));
        assert_eq!(DiscrepancyClass::of_outcomes(Nan, Zero), Some(DiscrepancyClass::NanZero));
        assert_eq!(DiscrepancyClass::of_outcomes(Zero, Inf), Some(DiscrepancyClass::InfZero));
    }

    #[test]
    fn identical_outcomes_are_not_cross_classified() {
        for o in Outcome::ALL {
            assert_eq!(DiscrepancyClass::of_outcomes(o, o), None, "{o}");
        }
    }

    #[test]
    fn labels_match_paper_columns() {
        let labels: Vec<&str> = DiscrepancyClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "NaN, Inf",
                "NaN, Zero",
                "NaN, Num",
                "Inf, Zero",
                "Inf, Num",
                "Num, Zero",
                "Num, Num"
            ]
        );
    }

    #[test]
    fn index_roundtrips() {
        for (i, c) in DiscrepancyClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
