//! Failure-inducing test minimization.
//!
//! The paper argues that *small* failing tests are the valuable artifact —
//! easy to analyze, self-contained for vendor reports, reusable in
//! acceptance testing. The paper's case-study kernels were minimized by
//! hand; this module automates it (listed as future work in §VII): a
//! greedy delta-debugging loop that keeps shrinking while a caller-supplied
//! predicate still observes the discrepancy.

use crate::campaign::TestMode;
use crate::compare::compare_runs;
use crate::metadata::build_side;
use gpucc::interp::execute;
use gpucc::pipeline::{OptLevel, Toolchain};
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::{Expr, Program, Stmt};
use progen::inputs::InputSet;

/// Outcome of a reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The minimized program (still failing).
    pub program: Program,
    /// Statements before reduction.
    pub original_stmts: usize,
    /// Statements after reduction.
    pub final_stmts: usize,
    /// Number of accepted shrink steps.
    pub steps: usize,
}

/// Shrink `program` while `still_fails` holds. Greedy fixed point over
/// statement removal, block flattening, and expression shrinking.
pub fn reduce_program(program: &Program, still_fails: impl Fn(&Program) -> bool) -> Reduction {
    let original_stmts = program.stmt_count();
    let mut current = program.clone();
    let mut steps = 0usize;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current) {
            let smaller = candidate.stmt_count() < current.stmt_count()
                || expr_weight(&candidate) < expr_weight(&current);
            if smaller && still_fails(&candidate) {
                current = candidate;
                steps += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Reduction { final_stmts: current.stmt_count(), original_stmts, steps, program: current }
}

/// Build the standard "does the discrepancy reproduce" predicate for a
/// (input, level, mode, quirks) configuration.
pub fn discrepancy_check(
    input: InputSet,
    level: OptLevel,
    mode: TestMode,
    quirks: QuirkSet,
) -> impl Fn(&Program) -> bool {
    move |p: &Program| {
        let nv_dev = Device::with_quirks(DeviceKind::NvidiaLike, quirks);
        let amd_dev = Device::with_quirks(DeviceKind::AmdLike, quirks);
        let nv_ir = build_side(p, Toolchain::Nvcc, level, mode);
        let amd_ir = build_side(p, Toolchain::Hipcc, level, mode);
        let (Ok(rn), Ok(ra)) =
            (execute(&nv_ir, &nv_dev, &input), execute(&amd_ir, &amd_dev, &input))
        else {
            return false; // a reduction that breaks execution is invalid
        };
        compare_runs(&rn.value, &ra.value).is_some()
    }
}

/// Total expression-node weight of a program (tie-breaking metric).
fn expr_weight(p: &Program) -> usize {
    fn stmt_weight(s: &Stmt) -> usize {
        match s {
            Stmt::DeclTmp { init, .. } => init.node_count(),
            Stmt::Assign { value, .. } => value.node_count(),
            Stmt::If { cond, body } => {
                cond.lhs.node_count()
                    + cond.rhs.node_count()
                    + body.iter().map(stmt_weight).sum::<usize>()
            }
            Stmt::For { body, .. } => body.iter().map(stmt_weight).sum(),
        }
    }
    p.body.iter().map(stmt_weight).sum()
}

/// All programs one shrink step away from `p`.
fn shrink_candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    for body in shrink_stmt_lists(&p.body) {
        let mut q = p.clone();
        q.body = body;
        out.push(q);
    }
    out
}

/// Variants of a statement list: remove one, flatten one block, or shrink
/// one expression inside one statement.
fn shrink_stmt_lists(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    // removal
    for i in 0..stmts.len() {
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
    }
    // flattening: replace an if/for with its body
    for (i, s) in stmts.iter().enumerate() {
        if let Stmt::If { body, .. } | Stmt::For { body, .. } = s {
            let mut v = stmts.to_vec();
            v.splice(i..=i, body.clone());
            out.push(v);
        }
    }
    // recursive variants of each statement
    for (i, s) in stmts.iter().enumerate() {
        for variant in shrink_stmt(s) {
            let mut v = stmts.to_vec();
            v[i] = variant;
            out.push(v);
        }
    }
    out
}

fn shrink_stmt(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::DeclTmp { name, init } => shrink_expr(init)
            .into_iter()
            .map(|e| Stmt::DeclTmp { name: name.clone(), init: e })
            .collect(),
        Stmt::Assign { target, op, value } => shrink_expr(value)
            .into_iter()
            .map(|e| Stmt::Assign { target: target.clone(), op: *op, value: e })
            .collect(),
        Stmt::If { cond, body } => {
            let mut out: Vec<Stmt> = shrink_stmt_lists(body)
                .into_iter()
                .map(|b| Stmt::If { cond: cond.clone(), body: b })
                .collect();
            for e in shrink_expr(&cond.lhs) {
                let mut c = cond.clone();
                c.lhs = e;
                out.push(Stmt::If { cond: c, body: body.clone() });
            }
            for e in shrink_expr(&cond.rhs) {
                let mut c = cond.clone();
                c.rhs = e;
                out.push(Stmt::If { cond: c, body: body.clone() });
            }
            out
        }
        Stmt::For { var, bound, body } => shrink_stmt_lists(body)
            .into_iter()
            .map(|b| Stmt::For { var: var.clone(), bound: bound.clone(), body: b })
            .collect(),
    }
}

/// One-step expression shrinks: replace a node by one of its children.
fn shrink_expr(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Index(..) | Expr::ThreadIdx => {}
        Expr::Neg(inner) => {
            out.push((**inner).clone());
            out.extend(shrink_expr(inner).into_iter().map(|i| Expr::Neg(Box::new(i))));
        }
        Expr::Bin(op, l, r) => {
            out.push((**l).clone());
            out.push((**r).clone());
            out.extend(shrink_expr(l).into_iter().map(|x| Expr::Bin(*op, Box::new(x), r.clone())));
            out.extend(shrink_expr(r).into_iter().map(|x| Expr::Bin(*op, l.clone(), Box::new(x))));
        }
        Expr::Call(f, args) => {
            for a in args {
                out.push(a.clone());
            }
            for (i, a) in args.iter().enumerate() {
                for x in shrink_expr(a) {
                    let mut new_args = args.clone();
                    new_args[i] = x;
                    out.push(Expr::Call(*f, new_args));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::mathlib::MathFunc;
    use progen::ast::*;
    use progen::inputs::InputValue;

    /// A bloated version of case study 2: lots of irrelevant statements
    /// around a `ceil(tiny)` division.
    fn bloated_fig5() -> (Program, InputSet) {
        let p = Program {
            id: "bloat".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body: vec![
                Stmt::DeclTmp { name: "tmp_1".into(), init: Expr::Lit(1.1147e-307) },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::bin(BinOp::Mul, Expr::Var("var_2".into()), Expr::Lit(2.0)),
                },
                Stmt::For {
                    var: "i".into(),
                    bound: "var_1".into(),
                    body: vec![Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::SubAssign,
                        value: Expr::Lit(1.0),
                    }],
                },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::bin(
                        BinOp::Div,
                        Expr::Var("tmp_1".into()),
                        Expr::Call(MathFunc::Ceil, vec![Expr::Lit(1.5955e-125)]),
                    ),
                },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::Lit(0.0),
                },
            ],
        };
        let input = InputSet {
            values: vec![
                InputValue::Float(1.2374e-306),
                InputValue::Int(3),
                InputValue::Float(5.0),
            ],
        };
        (p, input)
    }

    #[test]
    fn reduces_bloated_case_study_to_the_core() {
        let (p, input) = bloated_fig5();
        let check = discrepancy_check(input, OptLevel::O0, TestMode::Direct, QuirkSet::all());
        assert!(check(&p), "the bloated program must fail to begin with");
        let red = reduce_program(&p, check);
        assert!(red.final_stmts < red.original_stmts);
        assert!(red.steps > 0);
        // the ceil call must survive: it is the root cause
        assert!(red.program.math_calls().contains(&MathFunc::Ceil), "{:?}", red.program);
        // the filler loop and no-op adds should be gone
        assert!(red.final_stmts <= 3, "still {} statements", red.final_stmts);
    }

    #[test]
    fn reduction_preserves_the_failure() {
        let (p, input) = bloated_fig5();
        let check = discrepancy_check(input, OptLevel::O0, TestMode::Direct, QuirkSet::all());
        let red = reduce_program(&p, &check);
        assert!(check(&red.program), "reduced program no longer fails");
    }

    #[test]
    fn non_failing_program_is_untouched() {
        let (p, _input) = bloated_fig5();
        let red = reduce_program(&p, |_| false);
        assert_eq!(red.program, p);
        assert_eq!(red.steps, 0);
    }

    #[test]
    fn shrink_expr_proposes_children() {
        let e = Expr::bin(BinOp::Add, Expr::Var("a".into()), Expr::Lit(1.0));
        let shrinks = shrink_expr(&e);
        assert!(shrinks.contains(&Expr::Var("a".into())));
        assert!(shrinks.contains(&Expr::Lit(1.0)));
    }

    #[test]
    fn shrink_candidates_include_removals_and_flattens() {
        let (p, _) = bloated_fig5();
        let cands = shrink_candidates(&p);
        // 5 removals + 1 flatten (the for) + expression variants
        assert!(cands.len() >= 6);
        assert!(cands.iter().any(|c| c.stmt_count() == p.stmt_count() - 1));
    }
}
