//! ASCII rendering of the paper's tables.

use crate::campaign::{CampaignReport, LevelStats};
use crate::outcome::DiscrepancyClass;
use crate::verdict::Verdict;
use fpcore::classify::Outcome;

/// Render Table IV (summary of experimental results) from up to three
/// campaign reports (FP64, FP64+HIPIFY, FP32).
pub fn render_summary(reports: &[&CampaignReport]) -> String {
    let mut out = String::new();
    out.push_str("TABLE IV — SUMMARY OF EXPERIMENTAL RESULTS\n");
    let headers: Vec<String> = reports
        .iter()
        .map(|r| {
            let mode = match r.config.mode {
                crate::campaign::TestMode::Direct => String::new(),
                crate::campaign::TestMode::Hipified => " with HIPIFY".to_string(),
            };
            format!("{}{}", r.config.precision.label(), mode)
        })
        .collect();
    let mut row = |name: &str, vals: Vec<String>| {
        out.push_str(&format!("{name:<42}"));
        for v in vals {
            out.push_str(&format!("{v:>18}"));
        }
        out.push('\n');
    };
    row("Metric", headers);
    row("Total Programs", reports.iter().map(|r| r.config.n_programs.to_string()).collect());
    row(
        "Total Runs per Option per Compiler",
        reports
            .iter()
            .map(|r| (r.config.n_programs * r.config.inputs_per_program).to_string())
            .collect(),
    );
    row("Total Runs", reports.iter().map(|r| r.total_runs().to_string()).collect());
    row("Runs on NVCC", reports.iter().map(|r| (r.total_runs() / 2).to_string()).collect());
    row("Runs on HIPCC", reports.iter().map(|r| (r.total_runs() / 2).to_string()).collect());
    row(
        "Total Discrepancies",
        reports.iter().map(|r| r.total_discrepancies().to_string()).collect(),
    );
    row(
        "Total Discrepancies (% of Total Runs)",
        reports.iter().map(|r| format!("{:.2}%", r.discrepancy_pct())).collect(),
    );
    out
}

/// Render a per-level class-count table (the paper's Tables V, VII, IX).
pub fn render_per_level(report: &CampaignReport, title: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<10}{:>12}", "Opt Flags", "Disc. Count"));
    for c in DiscrepancyClass::ALL {
        out.push_str(&format!("{:>12}", c.label()));
    }
    out.push('\n');
    let mut totals = [0u64; 7];
    let mut grand = 0u64;
    for (level, s) in &report.per_level {
        out.push_str(&format!("{:<10}{:>12}", level.label(), s.discrepancies));
        for (i, v) in s.by_class.iter().enumerate() {
            out.push_str(&format!("{v:>12}"));
            totals[i] += v;
        }
        grand += s.discrepancies;
        out.push('\n');
    }
    out.push_str(&format!("{:<10}{grand:>12}", "Total"));
    for v in totals {
        out.push_str(&format!("{v:>12}"));
    }
    out.push('\n');
    out
}

/// Render the adjacency matrices for every level (Tables VI, VIII, X).
///
/// Cell `(row o1, col o2)` above the diagonal prints "a, b" where `a` is
/// the number of discrepancies with NVCC=o1/HIPCC=o2 and `b` the count
/// with NVCC=o2/HIPCC=o1; the `Num` diagonal prints the (symmetric)
/// `Num, Num` count twice, matching the paper's layout.
pub fn render_adjacency(report: &CampaignReport, title: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (level, s) in &report.per_level {
        out.push_str(&format!("-- {} --\n", level.label()));
        out.push_str(&format!("{:<14}", "NVCC\\HIPCC"));
        for o in Outcome::ALL {
            out.push_str(&format!("{:>16}", format!("(±) {}", o.label())));
        }
        out.push('\n');
        for (i, row) in Outcome::ALL.iter().enumerate() {
            out.push_str(&format!("{:<14}", format!("(±) {}", row.label())));
            for (j, _col) in Outcome::ALL.iter().enumerate() {
                let cell = if j < i {
                    "-".to_string()
                } else if i == j {
                    let v = s.adjacency[i][j];
                    if *row == Outcome::Num {
                        format!("{v}, {v}")
                    } else {
                        "-".to_string()
                    }
                } else {
                    format!("{}, {}", s.adjacency[i][j], s.adjacency[j][i])
                };
                out.push_str(&format!("{cell:>16}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Render the who-drifted verdict table: one row per level tallying each
/// nvcc–hipcc discrepancy's verdict against the double-double ground
/// truth, plus the per-side ULP-from-truth totals. Returns the empty
/// string for reports analyzed without the reference side, so two-side
/// output is unchanged.
pub fn render_verdicts(report: &CampaignReport) -> String {
    if !report.has_verdicts() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("WHO DRIFTED — VERDICTS VS DOUBLE-DOUBLE GROUND TRUTH\n");
    out.push_str(&format!("{:<10}{:>8}", "Opt Flags", "Judged"));
    for v in Verdict::ALL {
        out.push_str(&format!("{:>16}", v.label()));
    }
    out.push_str(&format!("{:>14}{:>14}\n", "nvcc ulps", "hipcc ulps"));
    let mut render_row = |label: &str, s: &crate::verdict::VerdictStats| {
        out.push_str(&format!("{label:<10}{:>8}", s.judged));
        for v in Verdict::ALL {
            out.push_str(&format!("{:>16}", s.by_verdict[v.index()]));
        }
        out.push_str(&format!("{:>14}{:>14}\n", s.nvcc_ulps_total, s.hipcc_ulps_total));
    };
    for (level, s) in &report.per_level {
        if let Some(v) = &s.verdicts {
            render_row(level.label(), v);
        }
    }
    if let Some(total) = report.verdict_totals() {
        render_row("Total", &total);
        out.push_str(&format!(
            "{} of {} judged discrepancies decided; worst drift {} ulps (nvcc), {} ulps (hipcc)\n",
            total.decided(),
            total.judged,
            total.nvcc_ulps_max,
            total.hipcc_ulps_max
        ));
    }
    out
}

/// One-paragraph textual digest of a report (used by examples).
pub fn render_digest(report: &CampaignReport) -> String {
    format!(
        "{} {} campaign: {} programs × {} inputs × {} levels × 2 compilers = {} runs; \
         {} discrepancies ({:.2}%), worst level {}",
        report.config.precision.label(),
        report.config.mode.label(),
        report.config.n_programs,
        report.config.inputs_per_program,
        report.config.levels.len(),
        report.total_runs(),
        report.total_discrepancies(),
        report.discrepancy_pct(),
        report
            .per_level
            .iter()
            .max_by_key(|(_, s)| s.discrepancies)
            .map(|(l, _)| l.label())
            .unwrap_or("-"),
    )
}

/// Classify a stored [`RunRecord`] error string into a short category
/// label for the failures listing: `step_budget`, `timeout`, `panic`, or
/// the generic `error`. The prefixes match the `Display` impls of
/// [`gpucc::interp::ExecError`] and the panic capture in [`crate::fault`].
pub fn error_category(error: &str) -> &'static str {
    if error.starts_with("step budget exhausted") {
        "step_budget"
    } else if error.starts_with("wall-clock budget exhausted") {
        "timeout"
    } else if error.starts_with("panic: ") {
        "panic"
    } else {
        "error"
    }
}

/// List every failing (program, level, input) triple in a completed
/// campaign — the "small tests" inventory the paper hands to vendors.
///
/// Runs where one side failed to execute (fuel exhaustion, wall-clock
/// timeout, or an isolated panic) are listed too, with the error category
/// in place of a discrepancy class; a separate "errored runs" tail line
/// appears only when at least one such run exists, so error-free
/// campaigns render exactly as before.
pub fn render_failures(meta: &crate::metadata::CampaignMeta) -> String {
    use crate::campaign::decode;
    use crate::compare::compare_runs;
    use crate::metadata::side_key;
    use gpucc::pipeline::Toolchain;

    let mut out = String::new();
    let mut n = 0usize;
    let mut errored = 0usize;
    for test in &meta.tests {
        for (level, _) in meta.config.levels.iter().map(|l| (*l, ())) {
            let (Some(nv), Some(amd)) = (
                test.results.get(&side_key(Toolchain::Nvcc, level)),
                test.results.get(&side_key(Toolchain::Hipcc, level)),
            ) else {
                continue;
            };
            for (k, (rn, ra)) in nv.iter().zip(amd).enumerate() {
                if rn.error.is_some() || ra.error.is_some() {
                    errored += 1;
                    let (side, err) = match &rn.error {
                        Some(e) => ("nvcc", e.as_str()),
                        None => ("hipcc", ra.error.as_deref().unwrap_or("")),
                    };
                    out.push_str(&format!(
                        "{:<22} {:<6} input {:<3} [{:<10}] {side}: {err}\n",
                        test.program_id,
                        level.label(),
                        k,
                        error_category(err),
                    ));
                    continue;
                }
                let vn = decode(meta.config.precision, rn.bits);
                let va = decode(meta.config.precision, ra.bits);
                if let Some(d) = compare_runs(&vn, &va) {
                    n += 1;
                    out.push_str(&format!(
                        "{:<22} {:<6} input {:<3} [{:<10}] nvcc={:<24} hipcc={}\n",
                        test.program_id,
                        level.label(),
                        k,
                        d.class.label(),
                        rn.printed,
                        ra.printed
                    ));
                }
            }
        }
    }
    if errored > 0 {
        out.push_str(&format!("{errored} errored runs (excluded from comparison)\n"));
    }
    out.push_str(&format!("{n} failing runs\n"));
    out
}

/// Render an ASCII profile table from a campaign's telemetry snapshot:
/// span timings (milliseconds), non-span distributions (raw units), and
/// every counter. This is what `varity-gpu analyze --profile` prints.
pub fn render_profile(snap: &obs::MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("CAMPAIGN PROFILE\n");

    out.push_str("-- Phase / span timings --\n");
    out.push_str(&format!(
        "{:<34}{:>8}{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "Span", "Count", "Total ms", "Mean ms", "p50 ms", "p95 ms", "p99 ms", "Max ms"
    ));
    // Heaviest spans first: sorted by total time, so the top line is the
    // phase to optimize. Percentiles are bucket-resolution estimates
    // from the log2 histograms (each at most 2x the true value).
    let mut spans: Vec<(&str, &obs::HistSnapshot)> = snap
        .hists
        .iter()
        .filter_map(|(name, h)| name.strip_prefix("span.").map(|s| (s, h)))
        .collect();
    spans.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then(a.0.cmp(b.0)));
    for (span, h) in spans {
        out.push_str(&format!(
            "{:<34}{:>8}{:>12.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}\n",
            span,
            h.count,
            h.sum as f64 / 1e6,
            h.mean() / 1e6,
            h.quantile(0.50) as f64 / 1e6,
            h.quantile(0.95) as f64 / 1e6,
            h.quantile(0.99) as f64 / 1e6,
            h.max as f64 / 1e6
        ));
    }

    if let Some(tput) = throughput_per_sec(snap) {
        out.push_str(&format!("{:<34}{tput:>22.0} runs/sec\n", "throughput"));
    }

    out.push_str(&render_exec_tiers(snap));

    let other: Vec<_> = snap.hists.iter().filter(|(n, _)| !n.starts_with("span.")).collect();
    if !other.is_empty() {
        out.push_str("-- Distributions --\n");
        out.push_str(&format!(
            "{:<34}{:>8}{:>14}{:>14}{:>14}\n",
            "Histogram", "Count", "Mean", "Min", "Max"
        ));
        for (name, h) in other {
            out.push_str(&format!(
                "{:<34}{:>8}{:>14.1}{:>14}{:>14}\n",
                name,
                h.count,
                h.mean(),
                h.min,
                h.max
            ));
        }
    }

    out.push_str("-- Counters --\n");
    for (name, v) in &snap.counters {
        out.push_str(&format!("{name:<48}{v:>14}\n"));
    }
    out
}

/// Render the per-tier execution cost table: one row per executor
/// (`interp`, `vm`, the double-double `reference`) that recorded work,
/// so a profile of a differential or mixed-tier campaign attributes its
/// executions unambiguously. The tier label is the row key — previously
/// both tiers' `*.nsperop` histograms sat undifferentiated in the raw
/// distribution dump. Returns the empty string when no tier recorded an
/// execution.
pub fn render_exec_tiers(snap: &obs::MetricsSnapshot) -> String {
    let mut out = String::new();
    for tier in ["interp", "vm", "reference"] {
        let execs = snap.counter(&format!("{tier}.execs"));
        let ops = snap.counter(&format!("{tier}.ops"));
        let Some(execns) = snap.hists.get(&format!("{tier}.execns")) else { continue };
        if execs == 0 || ops == 0 {
            continue;
        }
        if out.is_empty() {
            out.push_str("-- Execution tiers --\n");
            out.push_str(&format!(
                "{:<34}{:>8}{:>14}{:>12}{:>12}{:>12}\n",
                "Tier", "Execs", "Ops", "Total ms", "ns/op", "p95 ns/op"
            ));
        }
        let nsperop = snap.hists.get(&format!("{tier}.nsperop"));
        out.push_str(&format!(
            "{:<34}{:>8}{:>14}{:>12.2}{:>12.1}{:>12}\n",
            tier,
            execs,
            ops,
            execns.sum as f64 / 1e6,
            execns.sum as f64 / ops as f64,
            nsperop.map_or(0, |h| h.quantile(0.95)),
        ));
    }
    out
}

/// Campaign throughput in runs per second, if the snapshot has both the
/// run counter and the per-side run spans.
pub fn throughput_per_sec(snap: &obs::MetricsSnapshot) -> Option<f64> {
    let runs = snap.counter("campaign.runs_done");
    let ns: u64 = ["span.campaign.run.nvcc", "span.campaign.run.hipcc", "span.campaign.run.reference"]
        .iter()
        .filter_map(|k| snap.hists.get(*k))
        .map(|h| h.sum)
        .sum();
    if runs == 0 || ns == 0 {
        return None;
    }
    Some(runs as f64 / (ns as f64 / 1e9))
}

/// Render the "discrepancies by responsible pass" table — the paper's §V
/// root-causing, as recorded data.
pub fn render_attribution(attr: &crate::attribution::AttributionReport) -> String {
    let mut out = String::new();
    out.push_str("DISCREPANCIES BY RESPONSIBLE PASS\n");
    out.push_str(&format!("{:<22}{:>12}{:>10}", "Pass", "Disc. Count", "Unique"));
    for c in DiscrepancyClass::ALL {
        out.push_str(&format!("{:>12}", c.label()));
    }
    if attr.has_verdicts {
        for v in Verdict::ALL {
            out.push_str(&format!("{:>16}", v.label()));
        }
    }
    out.push('\n');
    for row in &attr.rows {
        out.push_str(&format!(
            "{:<22}{:>12}{:>10}",
            row.key, row.discrepancies, row.unique_findings
        ));
        for v in row.by_class {
            out.push_str(&format!("{v:>12}"));
        }
        if attr.has_verdicts {
            for v in row.by_verdict {
                out.push_str(&format!("{v:>16}"));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{} discrepancies, {} in kernels a fast-math pass rewrote \
         (rows overlap when several passes fired on the same kernel; \
         Unique counts distinct program/level/class findings once, \
         however many inputs or overlapping shards reported them)\n",
        attr.total_discrepancies, attr.attributed
    ));
    out
}

/// Bar rendering of class proportions (the paper's in-table bar charts).
pub fn render_class_bars(stats: &LevelStats, width: usize) -> String {
    let total = stats.discrepancies.max(1);
    let mut out = String::new();
    for (i, c) in DiscrepancyClass::ALL.iter().enumerate() {
        let n = stats.by_class[i];
        let bar = "#".repeat((n as usize * width / total as usize).min(width));
        out.push_str(&format!("{:<10} {n:>8} |{bar}\n", c.label()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig, TestMode};
    use progen::ast::Precision;

    fn report() -> CampaignReport {
        run_campaign(
            &CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(20),
        )
    }

    #[test]
    fn summary_contains_key_rows() {
        let r = report();
        let s = render_summary(&[&r]);
        assert!(s.contains("Total Programs"));
        assert!(s.contains("Total Discrepancies (% of Total Runs)"));
        assert!(s.contains("FP64"));
        assert!(s.contains('%'));
    }

    #[test]
    fn per_level_table_has_all_levels_and_total() {
        let r = report();
        let s = render_per_level(&r, "TABLE V");
        for l in ["O0", "O1", "O2", "O3", "O3_FM", "Total"] {
            assert!(s.contains(l), "missing {l}:\n{s}");
        }
        for c in DiscrepancyClass::ALL {
            assert!(s.contains(c.label()));
        }
    }

    #[test]
    fn adjacency_has_one_matrix_per_level() {
        let r = report();
        let s = render_adjacency(&r, "TABLE VI");
        assert_eq!(s.matches("NVCC\\HIPCC").count(), 5);
        assert!(s.contains("(±) NaN"));
        assert!(s.contains("(±) Num"));
    }

    #[test]
    fn verdict_table_renders_only_with_the_reference_side() {
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        let r = report();
        assert_eq!(render_verdicts(&r), "", "two-side reports have no verdict table");

        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(60);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        meta.run_reference();
        let s = render_verdicts(&crate::campaign::analyze(&meta));
        assert!(s.contains("WHO DRIFTED"), "{s}");
        for v in Verdict::ALL {
            assert!(s.contains(v.label()), "missing column {}: {s}", v.label());
        }
        for l in ["O0", "O3_FM", "Total"] {
            assert!(s.contains(l), "missing row {l}: {s}");
        }
        assert!(s.contains("judged discrepancies decided"), "{s}");
    }

    #[test]
    fn digest_mentions_discrepancy_percentage() {
        let r = report();
        let d = render_digest(&r);
        assert!(d.contains('%'));
        assert!(d.contains("FP64"));
    }

    #[test]
    fn failures_listing_reconciles_with_totals() {
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(60);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let report = crate::campaign::analyze(&meta);
        let listing = render_failures(&meta);
        let expected = report.total_discrepancies();
        assert!(
            listing.ends_with(&format!("{expected} failing runs\n")),
            "listing tail: {:?}",
            listing.lines().last()
        );
        // one line per failure + the summary line
        assert_eq!(listing.lines().count() as u64, expected + 1);
    }

    #[test]
    fn failures_listing_surfaces_errored_runs_by_category() {
        use crate::metadata::{side_key, CampaignMeta};
        use gpucc::pipeline::{OptLevel, Toolchain};
        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(5);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        // forge one error of each kind into stored records
        let key = side_key(Toolchain::Nvcc, OptLevel::O0);
        let recs = meta.tests[0].results.get_mut(&key).unwrap();
        recs[0].error = Some("step budget exhausted: 10 steps executed, budget 10".into());
        recs[1].error = Some("wall-clock budget exhausted: 1 ms, 300 steps executed".into());
        recs[2].error = Some("panic: chaos: injected interpreter fault".into());
        let listing = render_failures(&meta);
        assert!(listing.contains("step_budget"), "{listing}");
        assert!(listing.contains("timeout"), "{listing}");
        assert!(listing.contains("panic"), "{listing}");
        assert!(listing.contains("3 errored runs"), "{listing}");
        assert!(listing.lines().last().unwrap().ends_with("failing runs"));
        assert_eq!(error_category("something else entirely"), "error");
    }

    #[test]
    fn profile_table_shows_spans_counters_and_throughput() {
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        obs::reset();
        obs::set_enabled(true);
        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(20);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let snap = obs::snapshot();
        let s = render_profile(&snap);
        assert!(s.contains("CAMPAIGN PROFILE"));
        assert!(s.contains("campaign.generate"), "{s}");
        assert!(s.contains("campaign.run.nvcc"), "{s}");
        assert!(s.contains("campaign.runs_done"), "{s}");
        assert!(s.contains("runs/sec"), "{s}");
        assert!(s.contains("progen.ast_stmts"), "{s}");
        assert!(throughput_per_sec(&snap).unwrap() > 0.0);
    }

    #[test]
    fn profile_labels_per_op_rows_by_execution_tier() {
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        use gpucc::ExecTier;
        obs::reset();
        obs::set_enabled(true);
        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(6);
        let mut meta = CampaignMeta::generate(&cfg);
        // differential runs both tiers, so the profile must show one
        // labeled row per tier
        meta.run_side_tier(Toolchain::Nvcc, ExecTier::Differential);
        let snap = obs::snapshot();
        let s = render_profile(&snap);
        assert!(s.contains("-- Execution tiers --"), "{s}");
        let tier_lines: Vec<&str> =
            s.lines().filter(|l| l.starts_with("interp ") || l.starts_with("vm ")).collect();
        assert_eq!(tier_lines.len(), 2, "one labeled row per tier: {s}");
        for line in tier_lines {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let ops: u64 = cols[2].parse().expect("ops column parses");
            let ns_per_op: f64 = cols[4].parse().expect("ns/op column parses");
            assert!(ops > 0, "{line}");
            assert!(ns_per_op > 0.0, "{line}");
        }

        // an interp-only campaign shows exactly the interp row
        obs::reset();
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side_tier(Toolchain::Nvcc, ExecTier::Interp);
        let s = render_profile(&obs::snapshot());
        assert!(s.lines().any(|l| l.starts_with("interp ")), "{s}");
        assert!(!s.lines().any(|l| l.starts_with("vm ")), "{s}");
    }

    #[test]
    fn profile_span_table_has_percentiles_and_sorts_by_total_time() {
        let mut snap = obs::MetricsSnapshot::default();
        let big = obs::Histogram::new();
        for _ in 0..100 {
            big.record(4_000_000); // 100 x 4ms
        }
        big.record(400_000_000); // one 400ms outlier
        let small = obs::Histogram::new();
        small.record(1_000_000); // 1ms total
                                 // alphabetical order (a_light first) is the opposite of weight
                                 // order, so the assertion below really exercises the sort
        snap.hists.insert("span.z_heavy".into(), big.snapshot());
        snap.hists.insert("span.a_light".into(), small.snapshot());

        let s = render_profile(&snap);
        for col in ["p50 ms", "p95 ms", "p99 ms"] {
            assert!(s.contains(col), "missing column {col}: {s}");
        }
        let heavy_at = s.find("z_heavy").expect("heavy row");
        let light_at = s.find("a_light").expect("light row");
        assert!(heavy_at < light_at, "rows must be sorted by total time: {s}");
        // p50 stays near 4ms while the max is the 400ms outlier; the
        // bucket-resolution p50 can overshoot by at most 2x.
        let heavy_line = s.lines().find(|l| l.contains("z_heavy")).unwrap();
        let cols: Vec<&str> = heavy_line.split_whitespace().collect();
        let p50: f64 = cols[4].parse().expect("p50 column parses");
        let max: f64 = cols[7].parse().expect("max column parses");
        assert!(p50 < 10.0, "p50 should be near 4ms, got {p50}: {heavy_line}");
        assert!(max > 300.0, "max should be the outlier, got {max}: {heavy_line}");
    }

    #[test]
    fn profile_of_empty_snapshot_omits_throughput() {
        let snap = obs::MetricsSnapshot::default();
        let s = render_profile(&snap);
        assert!(s.contains("CAMPAIGN PROFILE"));
        assert!(!s.contains("runs/sec"));
        assert_eq!(throughput_per_sec(&snap), None);
    }

    #[test]
    fn attribution_table_lists_rows_and_footer() {
        use crate::attribution::{attribute, UNATTRIBUTED};
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(60);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let attr = attribute(&meta);
        let s = render_attribution(&attr);
        assert!(s.contains("DISCREPANCIES BY RESPONSIBLE PASS"));
        assert!(s.contains("Unique"), "deduplicated findings column missing: {s}");
        for c in DiscrepancyClass::ALL {
            assert!(s.contains(c.label()), "{s}");
        }
        assert!(s.contains(&format!("{} discrepancies", attr.total_discrepancies)));
        for row in &attr.rows {
            assert!(row.key.contains(':') || row.key == UNATTRIBUTED, "odd row key {}", row.key);
            assert!(s.contains(&row.key), "{s}");
        }
    }

    #[test]
    fn class_bars_render_within_width() {
        let r = report();
        let (_, stats) = &r.per_level[0];
        let bars = render_class_bars(stats, 40);
        for line in bars.lines() {
            assert!(line.len() <= 70, "{line}");
        }
        assert_eq!(bars.lines().count(), 7);
    }
}
