//! Named sides of the N-way comparison plane.
//!
//! The campaign historically compared exactly two sides identified by the
//! string literals `"nvcc"` and `"hipcc"` scattered across the metadata,
//! journal, and report layers. [`Side`] names every executor that can
//! contribute results — the two vendor toolchains plus the double-double
//! ground-truth reference — and [`SideKey`] pairs a side with the
//! optimization level it ran at.
//!
//! Both types serialize to the exact string forms the v1 artifacts used
//! (`"nvcc"` for a side, `"nvcc:O0"` for a key), so v1 metadata files and
//! journals load unchanged under the typed schema.

use gpucc::pipeline::{OptLevel, Toolchain};
use serde::{Deserialize, Serialize};

/// One executor in the comparison plane.
///
/// The derived `Ord` (declaration order: vendors first, reference last)
/// is the canonical ordering used when merging shard metadata, so merged
/// reports are byte-identical regardless of worker completion order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "lowercase")]
pub enum Side {
    /// The NVIDIA-like toolchain on the NVIDIA-like device.
    Nvcc,
    /// The AMD-like toolchain on the AMD-like device.
    Hipcc,
    /// The strict extended-precision ground-truth executor
    /// (`gpucc::refexec`): double-double evaluation of the O0 IR with a
    /// single final rounding.
    Reference,
}

impl Side {
    /// Every side, vendors first.
    pub const ALL: [Side; 3] = [Side::Nvcc, Side::Hipcc, Side::Reference];

    /// The two vendor sides every campaign must run for completeness.
    pub const VENDORS: [Side; 2] = [Side::Nvcc, Side::Hipcc];

    /// Stable lowercase name, identical to the historical string literal.
    pub fn name(self) -> &'static str {
        match self {
            Side::Nvcc => "nvcc",
            Side::Hipcc => "hipcc",
            Side::Reference => "reference",
        }
    }

    /// The vendor toolchain behind this side (`None` for the reference,
    /// which has no toolchain: it evaluates the strict O0 IR directly).
    pub fn toolchain(self) -> Option<Toolchain> {
        match self {
            Side::Nvcc => Some(Toolchain::Nvcc),
            Side::Hipcc => Some(Toolchain::Hipcc),
            Side::Reference => None,
        }
    }
}

impl From<Toolchain> for Side {
    fn from(tc: Toolchain) -> Side {
        match tc {
            Toolchain::Nvcc => Side::Nvcc,
            Toolchain::Hipcc => Side::Hipcc,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Side {
    type Err = String;

    fn from_str(s: &str) -> Result<Side, String> {
        Side::ALL
            .into_iter()
            .find(|side| side.name() == s)
            .ok_or_else(|| format!("unknown side {s:?}"))
    }
}

/// A side at a specific optimization level: the key one unit of results
/// is stored and journaled under.
///
/// Serializes as the `"{side}:{level}"` string (`"nvcc:O0"`,
/// `"hipcc:O3_FM"`, `"reference:O0"`) — the same wire form the v1
/// journal's free-form `side` strings used, so old journals parse
/// directly into typed keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SideKey {
    /// Which executor produced the results.
    pub side: Side,
    /// The optimization level it ran at (always `O0` for the reference).
    pub level: OptLevel,
}

impl SideKey {
    /// Key for `side` at `level`.
    pub fn new(side: impl Into<Side>, level: OptLevel) -> SideKey {
        SideKey { side: side.into(), level }
    }

    /// The single key the ground-truth results live under: the reference
    /// evaluates the strict O0 IR once per test, independent of which
    /// vendor levels ran (nvcc and hipcc agree bit-for-bit at O0 on
    /// plain sources, so one truth serves every level's comparison).
    pub const REFERENCE: SideKey = SideKey { side: Side::Reference, level: OptLevel::O0 };
}

impl std::fmt::Display for SideKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.side, self.level.label())
    }
}

impl std::str::FromStr for SideKey {
    type Err = String;

    fn from_str(s: &str) -> Result<SideKey, String> {
        let (side, level) = s.split_once(':').ok_or_else(|| {
            format!("side key {s:?} is not of the form \"side:LEVEL\"")
        })?;
        Ok(SideKey { side: side.parse()?, level: level.parse()? })
    }
}

impl Serialize for SideKey {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for SideKey {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<SideKey, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_historical_string_literals() {
        assert_eq!(Side::Nvcc.name(), "nvcc");
        assert_eq!(Side::Hipcc.name(), "hipcc");
        assert_eq!(Side::Reference.name(), "reference");
    }

    #[test]
    fn serde_is_wire_compatible_with_v1_side_strings() {
        // v1 stored sides_run as plain strings; the enum must produce
        // and accept the identical JSON
        assert_eq!(serde_json::to_string(&Side::Nvcc).unwrap(), "\"nvcc\"");
        assert_eq!(
            serde_json::from_str::<Vec<Side>>("[\"nvcc\",\"hipcc\"]").unwrap(),
            vec![Side::Nvcc, Side::Hipcc]
        );
        assert_eq!(serde_json::to_string(&Side::Reference).unwrap(), "\"reference\"");
    }

    #[test]
    fn side_key_roundtrips_through_the_v1_string_form() {
        for side in Side::ALL {
            for level in OptLevel::ALL {
                let k = SideKey::new(side, level);
                let s = k.to_string();
                assert_eq!(s.parse::<SideKey>().unwrap(), k, "{s}");
                let json = serde_json::to_string(&k).unwrap();
                assert_eq!(json, format!("\"{s}\""));
                assert_eq!(serde_json::from_str::<SideKey>(&json).unwrap(), k);
            }
        }
    }

    #[test]
    fn v1_journal_side_strings_parse() {
        assert_eq!(
            "nvcc:O0".parse::<SideKey>().unwrap(),
            SideKey::new(Side::Nvcc, OptLevel::O0)
        );
        assert_eq!(
            "hipcc:O3_FM".parse::<SideKey>().unwrap(),
            SideKey::new(Side::Hipcc, OptLevel::O3Fm)
        );
        assert!("nvcc".parse::<SideKey>().is_err(), "missing level");
        assert!("gcc:O0".parse::<SideKey>().is_err(), "unknown side");
        assert!("nvcc:O9".parse::<SideKey>().is_err(), "unknown level");
    }

    #[test]
    fn ordering_is_vendors_first_then_reference() {
        let mut v = vec![Side::Reference, Side::Hipcc, Side::Nvcc];
        v.sort();
        assert_eq!(v, vec![Side::Nvcc, Side::Hipcc, Side::Reference]);
    }

    #[test]
    fn toolchain_mapping_is_total_for_vendors() {
        assert_eq!(Side::Nvcc.toolchain(), Some(Toolchain::Nvcc));
        assert_eq!(Side::Hipcc.toolchain(), Some(Toolchain::Hipcc));
        assert_eq!(Side::Reference.toolchain(), None);
        for tc in Toolchain::ALL {
            assert_eq!(Side::from(tc).toolchain(), Some(tc));
        }
    }
}
