//! Program-characteristics census (paper Table III).
//!
//! Table III describes what the random programs contain; this module
//! measures it over an actual generated corpus, so the claim is checkable
//! rather than aspirational.

use progen::ast::{Expr, ParamType, Program, Stmt};
use std::collections::BTreeMap;

/// Aggregate feature census over a program corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Number of programs.
    pub programs: usize,
    /// Programs containing at least one `for` loop.
    pub with_loops: usize,
    /// Programs with nested loops (depth ≥ 2).
    pub with_nested_loops: usize,
    /// Programs containing at least one `if`.
    pub with_conditions: usize,
    /// Programs containing temporary variables.
    pub with_temporaries: usize,
    /// Programs with array parameters.
    pub with_arrays: usize,
    /// Programs calling at least one math function.
    pub with_math_calls: usize,
    /// Total statement count.
    pub total_stmts: usize,
    /// Maximum loop depth seen.
    pub max_loop_depth: usize,
    /// Call counts per math function.
    pub calls_per_func: BTreeMap<&'static str, usize>,
    /// Binary-operator usage counts (`+ - * /`).
    pub ops: [usize; 4],
}

/// Census one corpus.
pub fn census(programs: &[Program]) -> CorpusStats {
    let mut s = CorpusStats { programs: programs.len(), ..Default::default() };
    for p in programs {
        let depth = p.loop_depth();
        if depth > 0 {
            s.with_loops += 1;
        }
        if depth > 1 {
            s.with_nested_loops += 1;
        }
        s.max_loop_depth = s.max_loop_depth.max(depth);
        if has_if(&p.body) {
            s.with_conditions += 1;
        }
        if has_tmp(&p.body) {
            s.with_temporaries += 1;
        }
        if p.params_of(ParamType::FloatArray).next().is_some() {
            s.with_arrays += 1;
        }
        let calls = p.math_calls();
        if !calls.is_empty() {
            s.with_math_calls += 1;
        }
        for f in calls {
            *s.calls_per_func.entry(f.c_name()).or_insert(0) += 1;
        }
        s.total_stmts += p.stmt_count();
        count_ops(&p.body, &mut s.ops);
    }
    s
}

fn has_if(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::If { .. } => true,
        Stmt::For { body, .. } => has_if(body),
        _ => false,
    })
}

fn has_tmp(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::DeclTmp { .. } => true,
        Stmt::If { body, .. } | Stmt::For { body, .. } => has_tmp(body),
        _ => false,
    })
}

fn count_ops(stmts: &[Stmt], ops: &mut [usize; 4]) {
    fn expr_ops(e: &Expr, ops: &mut [usize; 4]) {
        match e {
            Expr::Bin(op, l, r) => {
                use progen::ast::BinOp::*;
                let idx = match op {
                    Add => 0,
                    Sub => 1,
                    Mul => 2,
                    Div => 3,
                };
                ops[idx] += 1;
                expr_ops(l, ops);
                expr_ops(r, ops);
            }
            Expr::Neg(i) => expr_ops(i, ops),
            Expr::Call(_, args) => args.iter().for_each(|a| expr_ops(a, ops)),
            _ => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::DeclTmp { init, .. } => expr_ops(init, ops),
            Stmt::Assign { value, .. } => expr_ops(value, ops),
            Stmt::If { cond, body } => {
                expr_ops(&cond.lhs, ops);
                expr_ops(&cond.rhs, ops);
                count_ops(body, ops);
            }
            Stmt::For { body, .. } => count_ops(body, ops),
        }
    }
}

/// Render Table III: the characteristics of the random programs, measured.
pub fn render_table3(s: &CorpusStats) -> String {
    let pct = |n: usize| 100.0 * n as f64 / s.programs.max(1) as f64;
    let mut out = String::new();
    out.push_str("TABLE III — CHARACTERISTICS OF THE RANDOM PROGRAMS (measured)\n");
    out.push_str(&format!("Programs in corpus:        {}\n", s.programs));
    out.push_str(&format!(
        "Arithmetic operators used: + ×{}  - ×{}  * ×{}  / ×{}\n",
        s.ops[0], s.ops[1], s.ops[2], s.ops[3]
    ));
    out.push_str(&format!(
        "for loops:                 {:.1}% of programs (nested: {:.1}%, max depth {})\n",
        pct(s.with_loops),
        pct(s.with_nested_loops),
        s.max_loop_depth
    ));
    out.push_str(&format!("if conditions:             {:.1}%\n", pct(s.with_conditions)));
    out.push_str(&format!("temporary variables:       {:.1}%\n", pct(s.with_temporaries)));
    out.push_str(&format!("array variables:           {:.1}%\n", pct(s.with_arrays)));
    out.push_str(&format!("math library calls:        {:.1}%\n", pct(s.with_math_calls)));
    out.push_str(&format!(
        "avg statements per kernel: {:.1}\n",
        s.total_stmts as f64 / s.programs.max(1) as f64
    ));
    out.push_str("math functions used:       ");
    let funcs: Vec<String> = s.calls_per_func.iter().map(|(f, n)| format!("{f}×{n}")).collect();
    out.push_str(&funcs.join(" "));
    out.push('\n');
    out
}

/// Verify the census covers the grammar's feature set (used by tests and
/// the table binary): every Table III row must be non-trivially exercised.
pub fn grammar_coverage_ok(s: &CorpusStats) -> bool {
    s.with_loops * 100 > s.programs * 20
        && s.with_conditions * 100 > s.programs * 20
        && s.with_math_calls * 100 > s.programs * 30
        && s.ops.iter().all(|&n| n > 0)
        && !s.calls_per_func.is_empty()
}

/// Input-feature attribution: which characteristics of the random inputs
/// correlate with discrepancies (the paper's case study 1 observed that
/// only one of ten inputs triggered the `fmod` divergence — this measures
/// that phenomenon across a whole campaign).
pub mod input_features {
    use crate::campaign::{decode, CampaignReport};
    use crate::compare::compare_runs;
    use crate::metadata::{side_key, CampaignMeta};
    use fpcore::classify::FpClass;
    use gpucc::pipeline::Toolchain;
    use progen::inputs::{InputSet, InputValue};

    /// Binary features of one input vector.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct InputFeatures {
        /// Contains ±0.
        pub has_zero: bool,
        /// Contains a subnormal.
        pub has_subnormal: bool,
        /// Contains a value within ~3 decades of overflow.
        pub has_near_overflow: bool,
        /// Contains a normal value within ~8 decades of the smallest normal.
        pub has_near_underflow: bool,
    }

    /// Classify an input vector's features at the given precision.
    pub fn features_of(input: &InputSet, precision: progen::Precision) -> InputFeatures {
        let mut f = InputFeatures::default();
        let (huge, tiny) = match precision {
            progen::Precision::F64 => (1e300, 1e-300),
            progen::Precision::F32 => (1e35, 1e-30),
        };
        for v in &input.values {
            let x = match v {
                InputValue::Float(x) | InputValue::ArrayFill(x) => *x,
                InputValue::Int(_) => continue,
            };
            match (precision, x) {
                (progen::Precision::F64, x) => match FpClass::of_f64(x) {
                    FpClass::Zero => f.has_zero = true,
                    FpClass::Subnormal => f.has_subnormal = true,
                    _ => {}
                },
                (progen::Precision::F32, x) => match FpClass::of_f32(x as f32) {
                    FpClass::Zero => f.has_zero = true,
                    FpClass::Subnormal => f.has_subnormal = true,
                    _ => {}
                },
            }
            if x.abs() >= huge {
                f.has_near_overflow = true;
            }
            if x != 0.0 && x.abs() <= tiny {
                f.has_near_underflow = true;
            }
        }
        f
    }

    /// Discrepancy rate per input feature.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct FeatureReport {
        /// `(inputs with feature, discrepant inputs with feature)` for each
        /// of: zero, subnormal, near-overflow, near-underflow, none-of-the-above.
        pub rows: [(u64, u64); 5],
    }

    /// Feature row labels, aligned with [`FeatureReport::rows`].
    pub const FEATURE_LABELS: [&str; 5] = [
        "contains ±0",
        "contains subnormal",
        "contains near-overflow value",
        "contains near-underflow value",
        "none of the above",
    ];

    /// Attribute a completed campaign's discrepancies to input features.
    /// An input counts as discrepant if *any* level diverged on it.
    pub fn analyze(meta: &CampaignMeta) -> FeatureReport {
        let mut report = FeatureReport::default();
        let precision = meta.config.precision;
        for test in &meta.tests {
            for (k, input) in test.inputs.iter().enumerate() {
                let f = features_of(input, precision);
                let discrepant = meta.config.levels.iter().any(|level| {
                    let (Some(nv), Some(amd)) = (
                        test.results.get(&side_key(Toolchain::Nvcc, *level)),
                        test.results.get(&side_key(Toolchain::Hipcc, *level)),
                    ) else {
                        return false;
                    };
                    let (rn, ra) = (&nv[k], &amd[k]);
                    rn.error.is_none()
                        && ra.error.is_none()
                        && compare_runs(&decode(precision, rn.bits), &decode(precision, ra.bits))
                            .is_some()
                });
                let flags = [
                    f.has_zero,
                    f.has_subnormal,
                    f.has_near_overflow,
                    f.has_near_underflow,
                    !(f.has_zero || f.has_subnormal || f.has_near_overflow || f.has_near_underflow),
                ];
                for (row, present) in report.rows.iter_mut().zip(flags) {
                    if present {
                        row.0 += 1;
                        if discrepant {
                            row.1 += 1;
                        }
                    }
                }
            }
        }
        report
    }

    /// Render the feature table.
    pub fn render(report: &FeatureReport, campaign: &CampaignReport) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "INPUT-FEATURE ATTRIBUTION ({} {}, {} programs)\n\n",
            campaign.config.precision.label(),
            campaign.config.mode.label(),
            campaign.config.n_programs
        ));
        out.push_str(&format!(
            "{:<34}{:>10}{:>14}{:>10}\n",
            "input feature", "inputs", "discrepant", "rate"
        ));
        for (label, (n, d)) in FEATURE_LABELS.iter().zip(report.rows) {
            let rate = if n > 0 { 100.0 * d as f64 / n as f64 } else { 0.0 };
            out.push_str(&format!("{label:<34}{n:>10}{d:>14}{rate:>9.2}%\n"));
        }
        out
    }
}

/// Exception-flag differential analysis (GPU-FPX-style, the paper's ref
/// \[12\]): NVIDIA GPUs expose no exception state, so tools reconstruct
/// it; the simulator tracks it natively, and this module compares the
/// reconstructed flag sets *between platforms* — a discrepancy dimension
/// the paper's value comparison cannot see (two runs can print identical
/// numbers while raising different exceptions along the way).
pub mod exception_diff {
    use crate::metadata::{side_key, CampaignMeta};
    use fpcore::exceptions::FpException;
    use gpucc::pipeline::{OptLevel, Toolchain};

    /// Flag-divergence counts for one optimization level.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct ExceptionStats {
        /// Comparisons made.
        pub comparisons: u64,
        /// Runs whose flag sets differ at all.
        pub flag_divergent: u64,
        /// Runs whose flag sets differ while the printed values are
        /// bit-identical (invisible to the paper's comparison).
        pub silent_divergent: u64,
        /// Per-event divergence counts (Table II order).
        pub per_event: [u64; 5],
    }

    /// Compare exception flags across the two platforms per level.
    pub fn analyze(meta: &CampaignMeta) -> Vec<(OptLevel, ExceptionStats)> {
        meta.config
            .levels
            .iter()
            .map(|level| {
                let mut s = ExceptionStats::default();
                for test in &meta.tests {
                    let (Some(nv), Some(amd)) = (
                        test.results.get(&side_key(Toolchain::Nvcc, *level)),
                        test.results.get(&side_key(Toolchain::Hipcc, *level)),
                    ) else {
                        continue;
                    };
                    for (rn, ra) in nv.iter().zip(amd) {
                        if rn.error.is_some() || ra.error.is_some() {
                            continue;
                        }
                        s.comparisons += 1;
                        if rn.exceptions != ra.exceptions {
                            s.flag_divergent += 1;
                            if rn.bits == ra.bits {
                                s.silent_divergent += 1;
                            }
                            for (i, e) in FpException::ALL.into_iter().enumerate() {
                                if rn.exceptions.is_set(e) != ra.exceptions.is_set(e) {
                                    s.per_event[i] += 1;
                                }
                            }
                        }
                    }
                }
                (*level, s)
            })
            .collect()
    }

    /// Render the exception-divergence table.
    pub fn render(rows: &[(OptLevel, ExceptionStats)]) -> String {
        let mut out = String::new();
        out.push_str("EXCEPTION-FLAG DIVERGENCE (GPU-FPX-style)\n\n");
        out.push_str(&format!(
            "{:<8}{:>12}{:>14}{:>14}",
            "level", "comparisons", "flag-diverg.", "silent"
        ));
        for e in FpException::ALL {
            out.push_str(&format!("{:>14}", e.to_string()));
        }
        out.push('\n');
        for (level, s) in rows {
            out.push_str(&format!(
                "{:<8}{:>12}{:>14}{:>14}",
                level.label(),
                s.comparisons,
                s.flag_divergent,
                s.silent_divergent
            ));
            for v in s.per_event {
                out.push_str(&format!("{v:>14}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::mathlib::MathFunc;
    use progen::gen::generate_batch;
    use progen::grammar::GenConfig;
    use progen::Precision;

    fn corpus() -> Vec<Program> {
        generate_batch(&GenConfig::varity_default(Precision::F64), 99, 300)
    }

    #[test]
    fn census_counts_are_internally_consistent() {
        let c = corpus();
        let s = census(&c);
        assert_eq!(s.programs, 300);
        assert!(s.with_nested_loops <= s.with_loops);
        assert!(s.with_loops <= s.programs);
        assert!(s.total_stmts >= s.programs); // every program has statements
    }

    #[test]
    fn default_grammar_covers_table3() {
        let s = census(&corpus());
        assert!(grammar_coverage_ok(&s), "{s:?}");
    }

    #[test]
    fn table3_rendering_mentions_all_features() {
        let s = census(&corpus());
        let t = render_table3(&s);
        for needle in ["for loops", "if conditions", "temporary variables", "array", "math library"]
        {
            assert!(t.contains(needle), "missing {needle}:\n{t}");
        }
    }

    #[test]
    fn empty_corpus_is_handled() {
        let s = census(&[]);
        assert_eq!(s.programs, 0);
        let t = render_table3(&s);
        assert!(t.contains("Programs in corpus:        0"));
    }

    #[test]
    fn exception_diff_counts_reconcile() {
        use super::exception_diff::analyze;
        use crate::campaign::{CampaignConfig, TestMode};
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        use progen::Precision;

        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(40);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let rows = analyze(&meta);
        assert_eq!(rows.len(), 5);
        for (_, s) in &rows {
            assert_eq!(s.comparisons, (cfg.n_programs * cfg.inputs_per_program) as u64);
            assert!(s.silent_divergent <= s.flag_divergent);
            // a flag-divergent run differs in >= 1 event
            let events: u64 = s.per_event.iter().sum();
            assert!(events >= s.flag_divergent);
        }
        // with the quirky math libraries, *some* flag divergence exists
        let total: u64 = rows.iter().map(|(_, s)| s.flag_divergent).sum();
        assert!(total > 0, "expected exception-flag divergence somewhere");
    }

    #[test]
    fn input_feature_analysis_counts_reconcile() {
        use super::input_features::{analyze, features_of};
        use crate::campaign::{CampaignConfig, TestMode};
        use crate::metadata::CampaignMeta;
        use gpucc::pipeline::Toolchain;
        use progen::Precision;

        let cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(30);
        let mut meta = CampaignMeta::generate(&cfg);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        let report = analyze(&meta);
        let total_inputs = (cfg.n_programs * cfg.inputs_per_program) as u64;
        // every input lands in >= 1 feature row, and counts are bounded
        let covered: u64 = report.rows.iter().map(|(n, _)| n).sum();
        assert!(covered >= total_inputs, "{covered} < {total_inputs}");
        for (n, d) in report.rows {
            assert!(d <= n);
        }
        // feature classification sanity
        use progen::inputs::{InputSet, InputValue};
        let f = features_of(
            &InputSet {
                values: vec![
                    InputValue::Float(0.0),
                    InputValue::Int(3),
                    InputValue::Float(1e-310),
                    InputValue::Float(5e305),
                ],
            },
            Precision::F64,
        );
        assert!(f.has_zero && f.has_subnormal && f.has_near_overflow);
        assert!(f.has_near_underflow); // the subnormal is also tiny
    }

    #[test]
    fn math_calls_counted_per_function() {
        let s = census(&corpus());
        let total: usize = s.calls_per_func.values().sum();
        assert!(total > 0);
        // only allowlisted functions appear
        for f in s.calls_per_func.keys() {
            assert!(MathFunc::from_c_name(f).is_some(), "{f}");
        }
    }
}
