//! Drift verdicts: which vendor side moved away from the ground truth.
//!
//! A two-sided discrepancy only says the toolchains disagree. With the
//! reference side present (`campaign --reference`), every Num–Num
//! discrepancy in a strict cell also gets an **error-vs-truth score** —
//! the ULP distance of each vendor result from the correctly-rounded
//! double-double reference result — and a [`Verdict`] naming the side
//! that drifted.
//!
//! Fast-math cells are always [`Verdict::TruthUndecided`]: `-ffast-math`
//! licenses value-changing rewrites, so there is no single "true" result
//! the rewritten kernel is obligated to produce, and blaming either side
//! against the strict truth would manufacture false drift verdicts. The
//! same applies when the reference side was not run or errored for the
//! unit (e.g. step-budget exhaustion in the slower executor).

use crate::side::Side;
use gpucc::interp::ExecValue;
use serde::{Deserialize, Serialize};

/// Which side drifted from the reference result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The NVIDIA-like result differs from the truth; the AMD-like one
    /// matches it (after rounding to the kernel precision).
    NvccDrifted,
    /// The AMD-like result differs from the truth; the NVIDIA-like one
    /// matches it.
    HipccDrifted,
    /// Both vendor results differ from the truth (common for
    /// transcendental-heavy kernels, where each vendor library carries
    /// its own last-ulp error).
    BothDrifted,
    /// No verdict is possible: the cell is fast-math (no strict truth
    /// exists), the reference was not run, or it errored on this unit.
    TruthUndecided,
}

impl Verdict {
    /// Every verdict, in table-column order.
    pub const ALL: [Verdict; 4] =
        [Verdict::NvccDrifted, Verdict::HipccDrifted, Verdict::BothDrifted, Verdict::TruthUndecided];

    /// Dense index within [`Verdict::ALL`] (tally arrays).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short column label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::NvccDrifted => "NvccDrifted",
            Verdict::HipccDrifted => "HipccDrifted",
            Verdict::BothDrifted => "BothDrifted",
            Verdict::TruthUndecided => "TruthUndecided",
        }
    }

    /// The side this verdict blames, when it blames exactly one.
    pub fn blamed(self) -> Option<Side> {
        match self {
            Verdict::NvccDrifted => Some(Side::Nvcc),
            Verdict::HipccDrifted => Some(Side::Hipcc),
            Verdict::BothDrifted | Verdict::TruthUndecided => None,
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// ULP distance between two results of the same precision (`None` when
/// either is NaN — NaN has no place on the value lattice — or when the
/// precisions disagree, which would indicate a lowering bug).
pub fn ulp_between(a: &ExecValue, b: &ExecValue) -> Option<u64> {
    match (a, b) {
        (ExecValue::F64(x), ExecValue::F64(y)) => fpcore::ulp::ulp_diff_f64(*x, *y),
        (ExecValue::F32(x), ExecValue::F32(y)) => fpcore::ulp::ulp_diff_f32(*x, *y).map(u64::from),
        _ => None,
    }
}

/// The error-vs-truth score of one discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthScore {
    /// ULP distance of the NVIDIA-like result from the truth (`None`
    /// when no lattice distance exists: NaN involved, or no truth).
    pub nvcc_ulps: Option<u64>,
    /// ULP distance of the AMD-like result from the truth.
    pub hipcc_ulps: Option<u64>,
    /// Who drifted.
    pub verdict: Verdict,
}

impl TruthScore {
    /// The undecided score (fast-math cell, missing or errored truth).
    pub const UNDECIDED: TruthScore =
        TruthScore { nvcc_ulps: None, hipcc_ulps: None, verdict: Verdict::TruthUndecided };
}

/// Did `side_value` drift from `truth`? Returns the ULP distance when
/// one exists and whether this counts as drift.
///
/// Bit-equality is never drift. Otherwise a defined, nonzero lattice
/// distance is drift, as is any NaN mismatch (one side NaN, the other
/// not). Two NaNs with different payloads are *not* drift: the truth
/// executor does not model payload propagation.
fn drift(side_value: &ExecValue, truth: &ExecValue) -> (Option<u64>, bool) {
    if side_value.bits() == truth.bits() {
        return (Some(0), false);
    }
    match ulp_between(side_value, truth) {
        // +0 vs -0 share a lattice point: distance 0, not drift
        Some(d) => (Some(d), d > 0),
        None => {
            let both_nan = side_value.to_f64().is_nan() && truth.to_f64().is_nan();
            (None, !both_nan)
        }
    }
}

/// Judge one discrepancy against the truth.
///
/// `truth` is the reference executor's result for the same test input
/// (`None` when the reference side was not run or errored on this
/// unit); `fast_math` marks the cell's optimization level. Fast-math
/// cells and truthless units are [`Verdict::TruthUndecided`] by
/// construction — see the module docs for why.
pub fn judge(
    nvcc: &ExecValue,
    hipcc: &ExecValue,
    truth: Option<&ExecValue>,
    fast_math: bool,
) -> TruthScore {
    if fast_math {
        return TruthScore::UNDECIDED;
    }
    let Some(truth) = truth else {
        return TruthScore::UNDECIDED;
    };
    let (nvcc_ulps, n_drifted) = drift(nvcc, truth);
    let (hipcc_ulps, h_drifted) = drift(hipcc, truth);
    let verdict = match (n_drifted, h_drifted) {
        (true, false) => Verdict::NvccDrifted,
        (false, true) => Verdict::HipccDrifted,
        (true, true) => Verdict::BothDrifted,
        // both sides match the truth — then they match each other, so
        // this was not a real discrepancy; stay undecided rather than
        // inventing a drift
        (false, false) => Verdict::TruthUndecided,
    };
    TruthScore { nvcc_ulps, hipcc_ulps, verdict }
}

/// Aggregated verdict tallies for one optimization level, recomputed
/// from raw records at `analyze` time (never merged numerically, so
/// farm merges stay order-independent by construction).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictStats {
    /// Discrepancies that went through [`judge`].
    pub judged: u64,
    /// Tally per verdict, indexed by [`Verdict::index`].
    pub by_verdict: [u64; 4],
    /// Saturating sum of NVIDIA-side ULP-from-truth distances.
    pub nvcc_ulps_total: u64,
    /// Saturating sum of AMD-side ULP-from-truth distances.
    pub hipcc_ulps_total: u64,
    /// Worst single NVIDIA-side distance.
    pub nvcc_ulps_max: u64,
    /// Worst single AMD-side distance.
    pub hipcc_ulps_max: u64,
}

impl VerdictStats {
    /// Fold one score into the tallies.
    pub fn record(&mut self, score: &TruthScore) {
        self.judged += 1;
        self.by_verdict[score.verdict.index()] += 1;
        if let Some(d) = score.nvcc_ulps {
            self.nvcc_ulps_total = self.nvcc_ulps_total.saturating_add(d);
            self.nvcc_ulps_max = self.nvcc_ulps_max.max(d);
        }
        if let Some(d) = score.hipcc_ulps {
            self.hipcc_ulps_total = self.hipcc_ulps_total.saturating_add(d);
            self.hipcc_ulps_max = self.hipcc_ulps_max.max(d);
        }
    }

    /// Discrepancies that received a decisive (non-undecided) verdict.
    pub fn decided(&self) -> u64 {
        self.judged - self.by_verdict[Verdict::TruthUndecided.index()]
    }

    /// Fold another tally in. Display-side totals only (a report's
    /// all-levels row): shard merges recompute per-level tallies from
    /// raw records instead, keeping them order-independent.
    pub fn absorb(&mut self, other: &VerdictStats) {
        self.judged += other.judged;
        for (t, v) in self.by_verdict.iter_mut().zip(other.by_verdict) {
            *t += v;
        }
        self.nvcc_ulps_total = self.nvcc_ulps_total.saturating_add(other.nvcc_ulps_total);
        self.hipcc_ulps_total = self.hipcc_ulps_total.saturating_add(other.hipcc_ulps_total);
        self.nvcc_ulps_max = self.nvcc_ulps_max.max(other.nvcc_ulps_max);
        self.hipcc_ulps_max = self.hipcc_ulps_max.max(other.hipcc_ulps_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_inf_vs_num_blames_nvcc() {
        // the paper's Fig. 5 case: nvcc printed Inf, hipcc printed
        // 1.34887e-306, and the strict truth is the hipcc value
        let truth = ExecValue::F64(1.34887e-306);
        let score =
            judge(&ExecValue::F64(f64::INFINITY), &ExecValue::F64(1.34887e-306), Some(&truth), false);
        assert_eq!(score.verdict, Verdict::NvccDrifted);
        assert_eq!(score.hipcc_ulps, Some(0));
        // Inf sits on the lattice: the distance is defined and huge
        assert!(score.nvcc_ulps.unwrap() > 1 << 52);
    }

    #[test]
    fn fast_math_cells_are_always_undecided() {
        let truth = ExecValue::F64(1.0);
        let score = judge(&ExecValue::F64(2.0), &ExecValue::F64(1.0), Some(&truth), true);
        assert_eq!(score, TruthScore::UNDECIDED);
    }

    #[test]
    fn missing_truth_is_undecided() {
        let score = judge(&ExecValue::F64(2.0), &ExecValue::F64(1.0), None, false);
        assert_eq!(score, TruthScore::UNDECIDED);
    }

    #[test]
    fn both_last_ulp_errors_blame_both() {
        let t = 1.5f64;
        let up = f64::from_bits(t.to_bits() + 1);
        let down = f64::from_bits(t.to_bits() - 1);
        let score =
            judge(&ExecValue::F64(up), &ExecValue::F64(down), Some(&ExecValue::F64(t)), false);
        assert_eq!(score.verdict, Verdict::BothDrifted);
        assert_eq!((score.nvcc_ulps, score.hipcc_ulps), (Some(1), Some(1)));
    }

    #[test]
    fn nan_mismatch_is_drift_nan_agreement_is_not() {
        let truth = ExecValue::F64(f64::NAN);
        // hipcc also NaN (different payload is fine), nvcc finite: nvcc drifted
        let score = judge(
            &ExecValue::F64(1.0),
            &ExecValue::F64(f64::from_bits(f64::NAN.to_bits() ^ 1)),
            Some(&truth),
            false,
        );
        assert_eq!(score.verdict, Verdict::NvccDrifted);
        assert_eq!(score.nvcc_ulps, None, "no lattice distance to NaN");
    }

    #[test]
    fn signed_zero_is_not_drift() {
        let (n, h) = (ExecValue::F64(0.0), ExecValue::F64(-0.0));
        let score = judge(&n, &h, Some(&ExecValue::F64(0.0)), false);
        // -0 and +0 share a lattice point; neither side drifted
        assert_eq!(score.verdict, Verdict::TruthUndecided);
    }

    #[test]
    fn f32_distances_are_measured_in_f32_ulps() {
        let t = 1.5f32;
        let up = f32::from_bits(t.to_bits() + 3);
        let score = judge(
            &ExecValue::F32(up),
            &ExecValue::F32(t),
            Some(&ExecValue::F32(t)),
            false,
        );
        assert_eq!(score.verdict, Verdict::NvccDrifted);
        assert_eq!(score.nvcc_ulps, Some(3));
    }

    #[test]
    fn stats_tally_and_saturate() {
        let mut s = VerdictStats::default();
        s.record(&TruthScore {
            nvcc_ulps: Some(u64::MAX),
            hipcc_ulps: Some(2),
            verdict: Verdict::BothDrifted,
        });
        s.record(&TruthScore {
            nvcc_ulps: Some(5),
            hipcc_ulps: Some(0),
            verdict: Verdict::NvccDrifted,
        });
        s.record(&TruthScore::UNDECIDED);
        assert_eq!(s.judged, 3);
        assert_eq!(s.decided(), 2);
        assert_eq!(s.nvcc_ulps_total, u64::MAX, "saturated");
        assert_eq!(s.nvcc_ulps_max, u64::MAX);
        assert_eq!(s.hipcc_ulps_total, 2);
        assert_eq!(s.by_verdict, [1, 0, 1, 1]);
    }
}
