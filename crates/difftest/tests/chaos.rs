//! Chaos harness: prove recovery under *injected* faults.
//!
//! Compiled only with `--features chaos`. Three fault families:
//!
//! * simulated crashes at a chosen journal append (clean or torn), to
//!   prove kill/resume equivalence in-process;
//! * transient I/O errors (clean and partial writes), to prove the
//!   journal's bounded retry + rollback;
//! * seeded interpreter panics (`gpucc::chaos`), to prove isolation and
//!   exact quarantine accounting.
//!
//! All injection switches are process-global, so every test takes `LOCK`
//! and disarms on all exit paths.

#![cfg(feature = "chaos")]

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::checkpoint::{
    run_reference_ft, run_side_ft, Checkpoint, FtSession, FtStatus, Journal, UnitRecord,
};
use difftest::fault::{self, FaultKind};
use difftest::metadata::CampaignMeta;
use difftest::side::Side;
use gpucc::pipeline::Toolchain;
use progen::Precision;
use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarm every injection switch (taken on entry and on every exit path
/// via drop).
struct Disarmed;

impl Drop for Disarmed {
    fn drop(&mut self) {
        difftest::chaos::disarm();
        gpucc::chaos::disarm();
        fault::reset_shutdown();
    }
}

fn small(n: usize) -> CampaignConfig {
    CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(n)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftest_chaos_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn reference(config: &CampaignConfig) -> String {
    let mut meta = CampaignMeta::generate(config);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    serde_json::to_string(&analyze(&meta)).unwrap()
}

/// Like [`reference`], with the double-double truth side as a third
/// plane — the report gains per-pair stats and who-drifted verdicts.
fn reference_three_side(config: &CampaignConfig) -> String {
    let mut meta = CampaignMeta::generate(config);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    meta.run_reference();
    serde_json::to_string(&analyze(&meta)).unwrap()
}

fn in_pool<R>(threads: usize, f: impl FnOnce() -> R + Send) -> R
where
    R: Send,
{
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds").install(f)
}

/// Start a checkpointed campaign, let an injected crash kill it at
/// journal append `crash_at` (torn or clean), then resume from disk and
/// finish. Returns the serialized final report.
fn crash_then_resume(
    name: &str,
    config: &CampaignConfig,
    threads: usize,
    crash_at: u64,
    torn: bool,
) -> String {
    crash_then_resume_sides(name, config, threads, crash_at, torn, false)
}

fn crash_then_resume_sides(
    name: &str,
    config: &CampaignConfig,
    threads: usize,
    crash_at: u64,
    torn: bool,
    with_reference: bool,
) -> String {
    let dir = tmp_dir(name);
    difftest::chaos::arm_crash_at_append(crash_at, torn);
    let crashed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let ckpt = Checkpoint::create(&dir, config).unwrap();
        let mut meta = CampaignMeta::generate(config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        in_pool(threads, || {
            let _ = run_side_ft(&mut meta, Toolchain::Nvcc, &session);
            let _ = run_side_ft(&mut meta, Toolchain::Hipcc, &session);
            if with_reference {
                let _ = run_reference_ft(&mut meta, &session);
            }
        });
    }));
    difftest::chaos::disarm();
    assert!(crashed.is_err(), "the injected crash must propagate out of the campaign");

    // "new process": only the checkpoint directory survives
    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    assert_eq!(&stored, config);
    let expected_replayed = if torn { crash_at - 1 } else { crash_at };
    assert!(
        units.len() as u64 >= expected_replayed,
        "at least the fully appended frames replay (got {}, crash at {crash_at})",
        units.len()
    );
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        let status = in_pool(threads, || run_side_ft(&mut meta, tc, &session));
        assert_eq!(status, FtStatus::Complete);
    }
    if with_reference {
        let status = in_pool(threads, || run_reference_ft(&mut meta, &session));
        assert_eq!(status, FtStatus::Complete);
    }
    std::fs::remove_dir_all(&dir).ok();
    serde_json::to_string(&analyze(&meta)).unwrap()
}

#[test]
fn kill_mid_campaign_then_resume_is_byte_identical_across_thread_counts() {
    let _g = lock();
    let _d = Disarmed;
    let config = small(6);
    let expected = reference(&config);
    for threads in [1usize, 4] {
        let got = crash_then_resume(&format!("kill_t{threads}"), &config, threads, 10, false);
        assert_eq!(got, expected, "crash/resume report differs at {threads} thread(s)");
    }
}

#[test]
fn three_side_kill_then_resume_keeps_the_truth_plane_byte_identical() {
    let _g = lock();
    let _d = Disarmed;
    let config = small(6);
    let expected = reference_three_side(&config);
    assert!(expected.contains("\"verdicts\""), "truth plane missing from the reference report");
    // 6 tests × 5 levels × 2 vendor sides journal 60 units, then the
    // reference side appends 6 more (one per test): crash once in the
    // vendor phase and once inside the truth phase itself
    for crash_at in [10u64, 63] {
        let got = crash_then_resume_sides(
            &format!("threeside_{crash_at}"),
            &config,
            2,
            crash_at,
            false,
            true,
        );
        assert_eq!(got, expected, "three-side crash/resume at append {crash_at} diverges");
    }
}

#[test]
fn torn_crash_drops_the_half_written_record_and_still_recovers() {
    let _g = lock();
    let _d = Disarmed;
    let config = small(5);
    let expected = reference(&config);
    let got = crash_then_resume("torn", &config, 2, 7, true);
    assert_eq!(got, expected);
}

#[test]
fn injected_panics_are_quarantined_exactly_as_predicted() {
    let _g = lock();
    let _d = Disarmed;
    let config = small(16);
    gpucc::chaos::arm_exec_panics(config.seed, 3);
    let mut meta = CampaignMeta::generate(&config);
    // prediction is pure in (seed, program_id): compute while armed
    let victims: BTreeSet<u64> = meta
        .tests
        .iter()
        .filter(|t| gpucc::chaos::would_panic(&t.program_id))
        .map(|t| t.index)
        .collect();
    assert!(!victims.is_empty(), "1-in-3 over 16 programs should hit someone");
    assert!(victims.len() < 16, "and miss someone");

    let session = FtSession::new(None, None);
    let status = run_side_ft(&mut meta, Toolchain::Nvcc, &session);
    gpucc::chaos::disarm();
    assert_eq!(status, FtStatus::Complete, "contained panics must not abort the campaign");

    let faults = session.faults();
    let faulted: BTreeSet<u64> = faults.iter().map(|f| f.index).collect();
    assert_eq!(faulted, victims, "quarantine set must match the pure prediction");
    assert_eq!(
        faults.len(),
        victims.len() * config.levels.len(),
        "each victim faults once per level"
    );
    assert!(faults.iter().all(|f| f.kind == FaultKind::Panic));
    assert!(faults.iter().all(|f| f.detail.contains("chaos: injected interpreter fault")));

    // victims carry error records; everyone else ran normally
    for test in &meta.tests {
        let is_victim = victims.contains(&test.index);
        for records in test.results.values() {
            for r in records {
                assert_eq!(
                    r.error.as_deref().map(|e| e.starts_with("panic:")).unwrap_or(false),
                    is_victim,
                    "index {} victim={is_victim} record error={:?}",
                    test.index,
                    r.error
                );
            }
        }
    }
}

#[test]
fn resume_equivalence_holds_while_panics_are_armed() {
    // the panic victims are a pure function of (seed, program_id), so a
    // crashed-and-resumed campaign quarantines the same tests and yields
    // the same report as an uninterrupted one under identical injection
    let _g = lock();
    let _d = Disarmed;
    let config = small(6);
    gpucc::chaos::arm_exec_panics(config.seed, 4);
    let expected = reference(&config);
    let got = crash_then_resume("panics_armed", &config, 2, 6, false);
    assert_eq!(got, expected);
}

fn unit(index: u64) -> UnitRecord {
    UnitRecord {
        index,
        side: "nvcc:O0".parse().unwrap(),
        records: Vec::new(),
        faults: Vec::new(),
        metrics: obs::MetricsSnapshot::default(),
    }
}

#[test]
fn transient_io_errors_are_retried_until_the_append_lands() {
    let _g = lock();
    let _d = Disarmed;
    let dir = tmp_dir("retry");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.bin");
    let j = Journal::create(&path).unwrap();
    // 2 clean failures + 1 partial write, all within the 4-attempt budget
    difftest::chaos::arm_io_errors(2);
    j.append(&unit(0)).unwrap();
    difftest::chaos::arm_partial_errors(1);
    j.append(&unit(1)).unwrap();
    drop(j);
    let (_j, units) = Journal::open_for_resume(&path).unwrap();
    assert_eq!(units.iter().map(|u| u.index).collect::<Vec<_>>(), vec![0, 1]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_io_errors_fail_the_append_but_leave_the_journal_clean() {
    let _g = lock();
    let _d = Disarmed;
    let dir = tmp_dir("enospc");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.bin");
    let j = Journal::create(&path).unwrap();
    j.append(&unit(0)).unwrap();
    // more failures than the retry budget: the append must surface an
    // error, and any partial bytes must be rolled back
    difftest::chaos::arm_partial_errors(10);
    assert!(j.append(&unit(1)).is_err());
    difftest::chaos::disarm();
    // the journal is still valid and appendable
    j.append(&unit(2)).unwrap();
    drop(j);
    let (_j, units) = Journal::open_for_resume(&path).unwrap();
    assert_eq!(units.iter().map(|u| u.index).collect::<Vec<_>>(), vec![0, 2]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_io_error_mid_campaign_reports_io_status() {
    let _g = lock();
    let _d = Disarmed;
    let config = small(3);
    let dir = tmp_dir("io_status");
    let ckpt = Checkpoint::create(&dir, &config).unwrap();
    let mut meta = CampaignMeta::generate(&config);
    let session = FtSession::new(Some(ckpt.into_journal()), None);
    // every attempt fails: the first unit's append exhausts its retries
    difftest::chaos::arm_io_errors(u64::MAX);
    let status = run_side_ft(&mut meta, Toolchain::Nvcc, &session);
    difftest::chaos::disarm();
    match status {
        FtStatus::IoError(e) => assert!(e.contains("ENOSPC"), "unexpected error text: {e}"),
        other => panic!("expected IoError, got {other:?}"),
    }
    assert!(!meta.sides_run.contains(&Side::Nvcc));
    std::fs::remove_dir_all(&dir).ok();
}
