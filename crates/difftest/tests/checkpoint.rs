//! Fault-tolerance integration tests (no injected faults): checkpoint /
//! resume equivalence, journal-corruption tolerance, cooperative
//! interruption, and budget-exhaustion quarantine.
//!
//! The injected-fault counterparts (simulated crashes, torn writes,
//! seeded panics) live in `tests/chaos.rs` behind the `chaos` feature.

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::checkpoint::{run_side_ft, Checkpoint, FtSession, FtStatus};
use difftest::fault::{self, FaultKind};
use difftest::metadata::CampaignMeta;
use difftest::side::Side;
use gpucc::pipeline::Toolchain;
use progen::Precision;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Tests here share process-global state (the cooperative shutdown
/// flag), so they run one at a time.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small(n: usize) -> CampaignConfig {
    CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(n)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftest_it_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The uninterrupted reference: serialized report of a plain
/// generate-and-run-both-sides campaign.
fn reference(config: &CampaignConfig) -> String {
    let mut meta = CampaignMeta::generate(config);
    meta.run_side(Toolchain::Nvcc);
    meta.run_side(Toolchain::Hipcc);
    serde_json::to_string(&analyze(&meta)).unwrap()
}

fn in_pool<R>(threads: usize, f: impl FnOnce() -> R + Send) -> R
where
    R: Send,
{
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds").install(f)
}

/// Run the nvcc side under a checkpoint, drop everything (the simulated
/// kill), then resume from disk and finish both sides at `threads`
/// workers. Returns the serialized final report.
fn run_killed_then_resumed(dir: &Path, config: &CampaignConfig, threads: usize) -> String {
    {
        let ckpt = Checkpoint::create(dir, config).unwrap();
        let mut meta = CampaignMeta::generate(config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        let status = in_pool(threads, || run_side_ft(&mut meta, Toolchain::Nvcc, &session));
        assert_eq!(status, FtStatus::Complete);
        // `meta`, `session`, and the journal handle drop here: the only
        // surviving state is the checkpoint directory, as after SIGKILL
    }
    let (ckpt, stored, units) = Checkpoint::resume(dir).unwrap();
    assert_eq!(&stored, config, "resume must run under the stored config");
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    assert_eq!(
        session.replayed(),
        config.n_programs * config.levels.len(),
        "every nvcc unit must replay from the journal"
    );
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        let status = in_pool(threads, || run_side_ft(&mut meta, tc, &session));
        assert_eq!(status, FtStatus::Complete);
    }
    assert!(meta.is_complete());
    serde_json::to_string(&analyze(&meta)).unwrap()
}

#[test]
fn kill_after_one_side_then_resume_is_byte_identical_across_thread_counts() {
    let _g = lock();
    fault::reset_shutdown();
    let config = small(8);
    let expected = reference(&config);
    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("resume_t{threads}"));
        let got = run_killed_then_resumed(&dir, &config, threads);
        assert_eq!(got, expected, "resumed report differs at {threads} thread(s)");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_journal_tail_is_rerun_not_fatal() {
    let _g = lock();
    fault::reset_shutdown();
    let config = small(4);
    let expected = reference(&config);
    let dir = tmp_dir("truncated");
    {
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        let mut meta = CampaignMeta::generate(&config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        assert_eq!(run_side_ft(&mut meta, Toolchain::Nvcc, &session), FtStatus::Complete);
    }
    // chop bytes off the journal tail: the torn record is dropped on
    // resume and its unit simply re-runs
    let jpath = Checkpoint::journal_path(&dir);
    let len = std::fs::metadata(&jpath).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&jpath).unwrap();
    f.set_len(len - 9).unwrap();
    drop(f);

    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    let full = config.n_programs * config.levels.len();
    assert_eq!(units.len(), full - 1, "exactly the torn unit is lost");
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft(&mut meta, tc, &session), FtStatus::Complete);
    }
    assert_eq!(serde_json::to_string(&analyze(&meta)).unwrap(), expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_interrupts_and_resume_completes() {
    let _g = lock();
    let config = small(5);
    let expected = reference(&config);
    let dir = tmp_dir("interrupt");
    {
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        let mut meta = CampaignMeta::generate(&config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        // the "SIGINT" lands before the run: every unit is skipped, the
        // side is NOT marked complete, and the status reports Interrupted
        fault::request_shutdown();
        let status = run_side_ft(&mut meta, Toolchain::Nvcc, &session);
        fault::reset_shutdown();
        assert_eq!(status, FtStatus::Interrupted);
        assert!(!meta.sides_run.contains(&Side::Nvcc));
        session.journal().unwrap().sync().unwrap();
    }
    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft(&mut meta, tc, &session), FtStatus::Complete);
    }
    assert_eq!(serde_json::to_string(&analyze(&meta)).unwrap(), expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plain_sessions_ignore_the_global_shutdown_flag() {
    let _g = lock();
    // a library `run_side` (plain session) must not be interruptible by
    // another thread's shutdown request — only CLI sessions heed it
    fault::request_shutdown();
    let config = small(2);
    let mut meta = CampaignMeta::generate(&config);
    meta.run_side(Toolchain::Nvcc);
    fault::reset_shutdown();
    assert!(meta.sides_run.contains(&Side::Nvcc));
}

#[test]
fn fuel_exhaustion_quarantines_every_unit_and_campaign_completes() {
    let _g = lock();
    fault::reset_shutdown();
    let mut config = small(3);
    config.budget.max_steps = 1; // every generated program exceeds this
    let mut meta = CampaignMeta::generate(&config);
    let session = FtSession::new(None, None);
    let status = run_side_ft(&mut meta, Toolchain::Nvcc, &session);
    assert_eq!(status, FtStatus::Complete, "budget faults must not abort the campaign");
    let faults = session.faults();
    assert_eq!(faults.len(), config.n_programs * config.levels.len(), "one fault per unit");
    assert!(faults.iter().all(|f| f.kind == FaultKind::StepBudget), "{faults:?}");
    assert!(faults.iter().all(|f| f.detail.contains("step budget exhausted")), "{faults:?}");
    // every stored record is an error record carrying the diagnostics
    for test in &meta.tests {
        for records in test.results.values() {
            assert!(records.iter().all(|r| {
                r.error.as_deref().is_some_and(|e| e.starts_with("step budget exhausted"))
            }));
        }
    }
}

#[test]
fn max_faults_circuit_breaker_trips_and_skips_remaining_work() {
    let _g = lock();
    fault::reset_shutdown();
    let mut config = small(6);
    config.budget.max_steps = 1;
    let mut meta = CampaignMeta::generate(&config);
    let session = FtSession::new(None, Some(0)); // tolerate zero faults
    let status = run_side_ft(&mut meta, Toolchain::Nvcc, &session);
    assert_eq!(status, FtStatus::FaultLimit);
    assert!(session.fault_limit_hit());
    assert!(!meta.sides_run.contains(&Side::Nvcc));
    // the breaker tripped early: not every unit ran
    let done: usize = meta.tests.iter().map(|t| t.results.len()).sum();
    assert!(
        done < config.n_programs * config.levels.len(),
        "breaker must skip remaining units (ran {done})"
    );
}

#[test]
fn wall_clock_budget_quarantines_as_timeout() {
    let _g = lock();
    fault::reset_shutdown();
    let mut config = small(2);
    config.budget.max_wall_ms = Some(0); // every run's deadline is already past
    let mut meta = CampaignMeta::generate(&config);
    let session = FtSession::new(None, None);
    assert_eq!(run_side_ft(&mut meta, Toolchain::Nvcc, &session), FtStatus::Complete);
    let faults = session.faults();
    // programs short enough to finish before the first deadline poll
    // produce no fault; any fault that does occur must be a Timeout
    assert!(faults.iter().all(|f| f.kind == FaultKind::Timeout), "{faults:?}");
}
