//! Campaign determinism across thread counts.
//!
//! The campaign distributes work with rayon, but every artifact — program
//! generation, inputs, execution, aggregation — is keyed by `(seed,
//! index)` and folded in index order, so the report must be bit-identical
//! whether the pool has one worker or many. This is the property the
//! paper's Fig. 3 between-platform protocol leans on: two machines with
//! different core counts must produce comparable metadata.

use difftest::campaign::{run_campaign, CampaignConfig, CampaignReport, TestMode};
use progen::Precision;

fn in_pool(threads: usize, config: &CampaignConfig) -> CampaignReport {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(|| run_campaign(config))
}

#[test]
fn fp64_campaign_report_is_identical_at_one_and_many_threads() {
    let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(12);
    let single = in_pool(1, &config);
    let many = in_pool(8, &config);
    assert_eq!(single.per_level, many.per_level);
    // the serialized form (what `--out` writes) matches byte for byte
    assert_eq!(serde_json::to_string(&single).unwrap(), serde_json::to_string(&many).unwrap());
}

#[test]
fn hipify_campaign_report_is_identical_at_one_and_many_threads() {
    let config = CampaignConfig::default_for(Precision::F64, TestMode::Hipified).with_programs(8);
    let single = in_pool(1, &config);
    let many = in_pool(4, &config);
    assert_eq!(single.per_level, many.per_level);
}
