//! Robustness of [`CampaignMeta::load`] against damaged inputs: corrupt,
//! truncated, or empty metadata files must come back as `Err`, never a
//! panic — a half-written file on disk must not take the campaign
//! driver down with it.

use difftest::campaign::{CampaignConfig, TestMode};
use difftest::metadata::CampaignMeta;
use progen::Precision;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Serialized bytes of a small but fully populated campaign (generation
/// is the expensive part, so do it once).
fn valid_json() -> &'static [u8] {
    static CACHE: OnceLock<Vec<u8>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(2);
        let meta = CampaignMeta::generate(&config);
        serde_json::to_vec(&meta).expect("campaign metadata serializes")
    })
}

static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to a unique temp file and return its path (unique per
/// call: these tests run in parallel threads).
fn scratch(bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "difftest_meta_corrupt_{}_{}.json",
        std::process::id(),
        FILE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

fn load_bytes(bytes: &[u8]) -> Result<CampaignMeta, difftest::metadata::MetaError> {
    let path = scratch(bytes);
    let result = CampaignMeta::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn the_cached_fixture_itself_loads() {
    assert!(load_bytes(valid_json()).is_ok());
}

#[test]
fn empty_file_is_an_error_not_a_panic() {
    assert!(load_bytes(b"").is_err());
}

#[test]
fn wrong_shape_json_is_an_error_not_a_panic() {
    for bad in [&b"{}"[..], b"null", b"[]", b"42", b"\"meta\"", b"{\"config\":3}"] {
        assert!(load_bytes(bad).is_err(), "{:?} must not load", String::from_utf8_lossy(bad));
    }
}

#[test]
fn missing_file_is_an_error_not_a_panic() {
    let path = std::env::temp_dir().join("difftest_meta_corrupt_does_not_exist.json");
    assert!(CampaignMeta::load(&path).is_err());
}

#[test]
fn every_truncation_point_is_an_error_not_a_panic() {
    // A crash mid-write leaves a prefix; no prefix of a valid file is
    // itself valid JSON for the full struct (sweep in coarse steps to
    // keep the test quick, always including the final byte boundary).
    let full = valid_json();
    let mut cut = 0;
    while cut < full.len() {
        assert!(load_bytes(&full[..cut]).is_err(), "truncation at {cut} bytes must not load");
        cut += 97;
    }
    assert!(load_bytes(&full[..full.len() - 1]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single byte of a valid file must never panic the
    /// loader. (It may still load: a flip inside a string literal can
    /// leave the JSON valid — the property is only "no panic".)
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..4096, byte in any::<u8>()) {
        let mut bytes = valid_json().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let _ = load_bytes(&bytes);
    }

    /// Arbitrary garbage bytes must never panic the loader.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = load_bytes(&bytes);
    }
}
