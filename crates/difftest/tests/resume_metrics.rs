//! Telemetry equivalence across resume: a killed-and-resumed campaign
//! must report the same `--metrics` totals as an uninterrupted one.
//!
//! Every work unit's exact metric deltas are captured via
//! `obs::with_capture` and stamped into its journal record;
//! `FtSession::apply_replay` merges them back, so work a resume skips
//! still contributes its telemetry.
//!
//! This test owns its binary: it asserts on the process-global obs
//! registry, which tests in a shared binary would race on.

use difftest::campaign::{CampaignConfig, TestMode};
use difftest::checkpoint::{run_side_ft, Checkpoint, FtSession, FtStatus};
use difftest::metadata::CampaignMeta;
use gpucc::pipeline::Toolchain;
use obs::MetricsSnapshot;
use progen::Precision;
use std::collections::BTreeMap;

/// Strip the metrics whose values legitimately differ across a resume:
///
/// * `checkpoint.*` counters — journal bookkeeping; the uninterrupted
///   reference run has no journal at all;
/// * `span.*`, `gpucc.passns.*`, `interp.execns`, and `interp.nsperop`
///   histograms — wall-clock timings, nondeterministic by nature. For
///   the interpreter timing pair the *record counts* are still
///   deterministic (one per execution), so those are kept.
///
/// Everything else (run counts, discrepancy tallies, interpreter op
/// counts, generator stats, …) must match exactly.
fn deterministic_view(snap: &MetricsSnapshot) -> (BTreeMap<String, u64>, Vec<String>) {
    let counters: BTreeMap<String, u64> = snap
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("checkpoint."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    // histogram *contents* for the deterministic ones, names-with-counts
    // serialized for a readable assert message
    let hists: Vec<String> = snap
        .hists
        .iter()
        .filter(|(k, _)| !k.starts_with("span.") && !k.starts_with("gpucc.passns."))
        .map(|(k, h)| {
            if k == "interp.execns" || k == "interp.nsperop" {
                format!("{k}: count={}", h.count)
            } else {
                format!("{k}: count={} sum={} min={} max={}", h.count, h.sum, h.min, h.max)
            }
        })
        .collect();
    (counters, hists)
}

#[test]
fn resumed_campaign_metric_totals_match_an_uninterrupted_run() {
    let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(6);

    // --- reference: one uninterrupted campaign, metrics on ---
    obs::reset();
    obs::set_enabled(true);
    let expected = {
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        deterministic_view(&obs::snapshot())
    };

    // --- run 1: checkpoint the nvcc side, then "die" ---
    let dir = std::env::temp_dir().join("difftest_it_resume_metrics");
    std::fs::remove_dir_all(&dir).ok();
    obs::reset();
    obs::set_enabled(true);
    {
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        let mut meta = CampaignMeta::generate(&config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        assert_eq!(run_side_ft(&mut meta, Toolchain::Nvcc, &session), FtStatus::Complete);
    }

    // --- run 2: fresh "process" (registry wiped), resume and finish ---
    obs::reset();
    obs::set_enabled(true);
    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft(&mut meta, tc, &session), FtStatus::Complete);
    }
    let resumed = deterministic_view(&obs::snapshot());
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(resumed.0, expected.0, "counter totals must survive the resume");
    assert_eq!(resumed.1, expected.1, "deterministic histograms must survive the resume");
    // sanity: the comparison is not vacuous
    assert!(expected.0.contains_key("campaign.runs_done"));
    assert!(expected.0.contains_key("progen.programs"));
}
