//! Tracing must be a pure observer: a killed-and-resumed campaign run
//! with the trace sink active yields a report byte-identical to an
//! uninterrupted, untraced run, and the collected events render as
//! valid Chrome trace-event JSON.
//!
//! This test owns its binary: it drives the process-global obs
//! registry and trace sink, which tests in a shared binary would race
//! on.

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::checkpoint::{run_side_ft, Checkpoint, FtSession, FtStatus};
use difftest::metadata::CampaignMeta;
use gpucc::pipeline::Toolchain;
use progen::Precision;

#[test]
fn traced_kill_and_resume_report_is_byte_identical_to_untraced_run() {
    let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(6);

    // --- reference: uninterrupted, tracing off ---
    obs::reset();
    obs::set_enabled(true);
    let reference = {
        let mut meta = CampaignMeta::generate(&config);
        meta.run_side(Toolchain::Nvcc);
        meta.run_side(Toolchain::Hipcc);
        serde_json::to_vec(&analyze(&meta)).unwrap()
    };

    // --- run 1: tracing on, checkpoint the nvcc side, then "die" ---
    let dir = std::env::temp_dir().join("difftest_it_trace_resume");
    std::fs::remove_dir_all(&dir).ok();
    obs::reset();
    obs::set_enabled(true);
    obs::trace::start();
    {
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        let mut meta = CampaignMeta::generate(&config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        assert_eq!(run_side_ft(&mut meta, Toolchain::Nvcc, &session), FtStatus::Complete);
    }
    let first_events = obs::trace::stop();
    assert!(!first_events.is_empty(), "the traced half produced no events");

    // --- run 2: fresh "process", tracing on again, resume and finish ---
    obs::reset();
    obs::set_enabled(true);
    obs::trace::start();
    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft(&mut meta, tc, &session), FtStatus::Complete);
    }
    let events = obs::trace::stop();
    std::fs::remove_dir_all(&dir).ok();

    let resumed = serde_json::to_vec(&analyze(&meta)).unwrap();
    assert_eq!(resumed, reference, "tracing changed the resumed campaign's report");

    // The events render as loadable Chrome trace JSON: complete ("X")
    // unit and compile spans with microsecond timestamps.
    assert!(!events.is_empty(), "the resumed run produced no events");
    let doc: serde_json::Value = serde_json::from_str(&obs::trace::chrome_json(&events))
        .expect("chrome_json emits valid JSON");
    let rows = doc["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(rows.len(), events.len());
    let names: Vec<&str> = rows.iter().filter_map(|r| r["name"].as_str()).collect();
    assert!(names.contains(&"campaign.unit"), "no unit spans in {names:?}");
    assert!(names.contains(&"gpucc.compile"), "no compile spans in {names:?}");
    for row in rows {
        assert!(row["ts"].is_number(), "event missing ts: {row}");
        let ph = row["ph"].as_str().unwrap();
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        if ph == "X" {
            assert!(row["dur"].is_number(), "complete event missing dur: {row}");
        }
    }
}
