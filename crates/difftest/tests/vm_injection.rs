//! Campaign-level vm-bug injection: prove `--exec-tier differential`
//! catches a deliberately broken bytecode lowering and attributes it to
//! the vm, quarantining the unit instead of corrupting the report.
//!
//! Two armed bugs (gpucc's `vm-inject` feature, runtime-gated):
//!
//! * [`VmBug::RegisterClobber`] — wrong register reuse in the lowerer;
//!   fires on any multi-instruction kernel, so a stock generated
//!   campaign trips it;
//! * [`VmBug::DropFtzFlush`] — the dispatch loop keeps subnormal
//!   results a fast-math device would flush; needs a handcrafted
//!   subnormal-producing kernel at a fast-math level.
//!
//! The injection switch is process-global: tests serialize through
//! `GATE` and disarm via an RAII guard. This file is its own binary, so
//! the stock difftest tests never see an armed bug.

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::checkpoint::{run_side_ft_tier, FtSession, FtStatus};
use difftest::fault::FaultKind;
use difftest::metadata::CampaignMeta;
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpucc::vm::execute_ir_tier;
use gpucc::vm_inject::{arm, disarm, VmBug};
use gpucc::ExecTier;
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::{AssignOp, BinOp, Expr, LValue, Param, ParamType, Precision, Program, Stmt};
use progen::inputs::{InputSet, InputValue};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

struct Armed;

impl Armed {
    fn new(bug: VmBug) -> Armed {
        arm(bug);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

fn with_bug<T>(bug: VmBug, f: impl FnOnce() -> T) -> T {
    let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _armed = Armed::new(bug);
    f()
}

fn small(n: usize) -> CampaignConfig {
    CampaignConfig::default_for(progen::Precision::F64, TestMode::Direct).with_programs(n)
}

/// Run one campaign side on `tier`, returning the collected faults and
/// the final metadata.
fn run_nvcc_side(
    config: &CampaignConfig,
    tier: ExecTier,
) -> (CampaignMeta, Vec<difftest::fault::TestFault>) {
    let mut meta = CampaignMeta::generate(config);
    let session = FtSession::new(None, None);
    assert_eq!(run_side_ft_tier(&mut meta, Toolchain::Nvcc, &session, tier), FtStatus::Complete);
    (meta, session.faults())
}

#[test]
fn differential_campaign_quarantines_an_armed_register_clobber() {
    let config = small(6);

    let (_, faults) =
        with_bug(VmBug::RegisterClobber, || run_nvcc_side(&config, ExecTier::Differential));
    assert!(!faults.is_empty(), "a broken vm lowering must be quarantined, not absorbed");
    for f in &faults {
        assert_eq!(f.kind, FaultKind::Panic, "{f:?}");
        assert!(
            f.detail.contains("vm/interp mismatch"),
            "quarantine entry must attribute the fault to the vm tier: {}",
            f.detail
        );
    }

    // disarmed, the identical campaign is fault-free on every tier and
    // the reports are byte-identical — the feature build alone is inert
    let (interp_meta, interp_faults) = run_nvcc_side(&config, ExecTier::Interp);
    let (diff_meta, diff_faults) = run_nvcc_side(&config, ExecTier::Differential);
    assert!(interp_faults.is_empty());
    assert!(diff_faults.is_empty());
    assert_eq!(
        serde_json::to_string(&analyze(&interp_meta)).unwrap(),
        serde_json::to_string(&analyze(&diff_meta)).unwrap(),
    );
}

#[test]
fn plain_vm_tier_is_fooled_by_the_clobber_that_differential_catches() {
    // the negative control for the differential tier's value: the same
    // armed bug silently corrupts results under `--exec-tier vm` (bits
    // change, nothing is quarantined) — only the lockstep tier converts
    // the miscompile into an attributed fault
    let config = small(4);
    let (clean_meta, _) = run_nvcc_side(&config, ExecTier::Vm);
    let (broken_meta, broken_faults) =
        with_bug(VmBug::RegisterClobber, || run_nvcc_side(&config, ExecTier::Vm));
    assert!(broken_faults.is_empty(), "the vm tier alone cannot see its own miscompile");
    assert_ne!(
        serde_json::to_string(&clean_meta.tests).unwrap(),
        serde_json::to_string(&broken_meta.tests).unwrap(),
        "the armed clobber must actually change recorded results"
    );
}

fn float_param(name: &str) -> Param {
    Param { name: name.into(), ty: ParamType::Float }
}

/// `comp = var_2 * var_3;` in F32 — with inputs `1e-20f32 * 1e-20f32`
/// the product is subnormal (`~1e-40`), which a fast-math device
/// flushes to zero. [`VmBug::DropFtzFlush`] skips exactly that flush.
fn ftz_victim() -> (Program, InputSet) {
    let p = Program {
        id: "vm-inject-ftz".into(),
        precision: Precision::F32,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            float_param("var_2"),
            float_param("var_3"),
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::bin(BinOp::Mul, Expr::Var("var_2".into()), Expr::Var("var_3".into())),
        }],
    };
    let input = InputSet {
        values: vec![
            InputValue::Float(0.0),
            InputValue::Int(1),
            InputValue::Float(1.0e-20),
            InputValue::Float(1.0e-20),
        ],
    };
    (p, input)
}

#[test]
fn dropped_ftz_flush_is_caught_by_the_differential_tier_at_fast_math() {
    let (p, input) = ftz_victim();
    let device = Device::with_quirks(DeviceKind::NvidiaLike, QuirkSet::all());
    let ir = compile(&p, Toolchain::Nvcc, OptLevel::O3Fm, false);

    // sanity: the clean vm flushes the subnormal product like the
    // interpreter does
    let clean = execute_ir_tier(ExecTier::Differential, &ir, &device, &input)
        .expect("clean differential run executes");
    assert_eq!(clean.value.bits(), 0, "fast math must flush the subnormal product to +0.0");

    with_bug(VmBug::DropFtzFlush, || {
        let caught = std::panic::catch_unwind(|| {
            execute_ir_tier(ExecTier::Differential, &ir, &device, &input)
        });
        let payload = match caught {
            Ok(r) => panic!("armed DropFtzFlush must not pass the differential tier: {r:?}"),
            Err(p) => p,
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("vm/interp mismatch"), "attribution missing: {msg:?}");
    });
}
