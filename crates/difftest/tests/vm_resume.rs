//! Kill-and-resume equivalence for the compiled vm tier.
//!
//! The checkpoint journal records *results*, not the tier that produced
//! them — the tiers are bit-identical, so a unit completed under one
//! tier replays interchangeably into a campaign resumed under another.
//! These tests prove the three-way equivalence the execution-tier
//! acceptance criteria demand: an interrupted vm-tier campaign resumes
//! to a report byte-identical to an uninterrupted vm run AND to an
//! uninterrupted interp run.
//!
//! The chaos-killed variant (`--features chaos`) arms a torn journal
//! crash mid-run — the hardest interruption the journal recovers from.

use difftest::campaign::{analyze, CampaignConfig, TestMode};
use difftest::checkpoint::{run_side_ft_tier, Checkpoint, FtSession, FtStatus};
use difftest::metadata::CampaignMeta;
use gpucc::pipeline::Toolchain;
use gpucc::ExecTier;
use progen::Precision;
use std::path::PathBuf;

fn small(n: usize) -> CampaignConfig {
    CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(n)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("difftest_it_vm_resume_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Uninterrupted both-sides run on `tier`, serialized report.
fn full_run(config: &CampaignConfig, tier: ExecTier) -> String {
    let mut meta = CampaignMeta::generate(config);
    let session = FtSession::new(None, None);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft_tier(&mut meta, tc, &session, tier), FtStatus::Complete);
    }
    serde_json::to_string(&analyze(&meta)).unwrap()
}

/// Checkpoint the nvcc side on `first_tier`, drop everything but the
/// directory ("the process dies"), then resume and finish both sides on
/// `resume_tier`. Returns the serialized final report.
fn interrupted_run(
    name: &str,
    config: &CampaignConfig,
    first_tier: ExecTier,
    resume_tier: ExecTier,
) -> String {
    let dir = tmp_dir(name);
    {
        let ckpt = Checkpoint::create(&dir, config).unwrap();
        let mut meta = CampaignMeta::generate(config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        assert_eq!(
            run_side_ft_tier(&mut meta, Toolchain::Nvcc, &session, first_tier),
            FtStatus::Complete
        );
    }
    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    assert_eq!(&stored, config);
    assert!(!units.is_empty(), "the first half must have journaled its units");
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft_tier(&mut meta, tc, &session, resume_tier), FtStatus::Complete);
    }
    std::fs::remove_dir_all(&dir).ok();
    serde_json::to_string(&analyze(&meta)).unwrap()
}

#[test]
fn interrupted_vm_campaign_resumes_byte_identical_to_vm_and_interp_runs() {
    let config = small(6);
    let interp = full_run(&config, ExecTier::Interp);
    let vm = full_run(&config, ExecTier::Vm);
    assert_eq!(interp, vm, "uninterrupted tiers must agree before resume is tested");

    let resumed = interrupted_run("vm_vm", &config, ExecTier::Vm, ExecTier::Vm);
    assert_eq!(resumed, vm, "vm-tier resume diverged from the uninterrupted vm run");
    assert_eq!(resumed, interp, "vm-tier resume diverged from the uninterrupted interp run");
}

#[test]
fn resume_may_switch_tiers_because_the_journal_is_tier_agnostic() {
    // a checkpoint written by an interp-tier campaign resumes under the
    // vm tier (and vice versa) with a byte-identical report — the tier
    // is an execution strategy, not campaign configuration
    let config = small(5);
    let expected = full_run(&config, ExecTier::Vm);
    assert_eq!(expected, interrupted_run("interp_to_vm", &config, ExecTier::Interp, ExecTier::Vm));
    assert_eq!(expected, interrupted_run("vm_to_interp", &config, ExecTier::Vm, ExecTier::Interp));
    assert_eq!(
        expected,
        interrupted_run("vm_to_diff", &config, ExecTier::Vm, ExecTier::Differential)
    );
}

/// The chaos-killed variant: a torn crash mid-journal under the vm tier,
/// then recovery — resumed report byte-identical to uninterrupted vm and
/// interp runs.
#[cfg(feature = "chaos")]
#[test]
fn chaos_killed_vm_campaign_recovers_byte_identical_across_tiers() {
    use std::panic::AssertUnwindSafe;

    let config = small(5);
    let interp = full_run(&config, ExecTier::Interp);
    let vm = full_run(&config, ExecTier::Vm);
    assert_eq!(interp, vm);

    let dir = tmp_dir("chaos_kill");
    difftest::chaos::arm_crash_at_append(7, true);
    let crashed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let ckpt = Checkpoint::create(&dir, &config).unwrap();
        let mut meta = CampaignMeta::generate(&config);
        let session = FtSession::new(Some(ckpt.into_journal()), None);
        let _ = run_side_ft_tier(&mut meta, Toolchain::Nvcc, &session, ExecTier::Vm);
        let _ = run_side_ft_tier(&mut meta, Toolchain::Hipcc, &session, ExecTier::Vm);
    }));
    difftest::chaos::disarm();
    assert!(crashed.is_err(), "the injected crash must propagate out of the campaign");

    let (ckpt, stored, units) = Checkpoint::resume(&dir).unwrap();
    let mut meta = CampaignMeta::generate(&stored);
    let mut session = FtSession::new(Some(ckpt.into_journal()), None);
    session.apply_replay(&mut meta, units);
    for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
        assert_eq!(run_side_ft_tier(&mut meta, tc, &session, ExecTier::Vm), FtStatus::Complete);
    }
    std::fs::remove_dir_all(&dir).ok();
    let recovered = serde_json::to_string(&analyze(&meta)).unwrap();
    assert_eq!(recovered, vm, "chaos-killed vm campaign must recover the vm report");
    assert_eq!(recovered, interp, "…and match the interp tier byte for byte");
}
