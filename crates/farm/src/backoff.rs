//! Jittered exponential backoff for worker respawns.
//!
//! A shard whose worker keeps dying is respawned with exponentially
//! growing, jittered delays so a correlated failure (bad node, full
//! disk) doesn't turn into a tight fork-bomb — and the jitter keeps a
//! fleet of crashed shards from thundering back in lock-step. The
//! supervisor keeps one [`Backoff`] per shard and resets it when a
//! worker completes the shard (or makes journal progress before dying).

use crate::rng::SplitMix64;

/// Hard ceiling on any re-eligibility delay, in milliseconds. No
/// backoff policy — however misconfigured, and whatever jitter drew —
/// may bench a shard longer than this: [`crate::WorkQueue::release`]
/// clamps its delay here, so a poisoned-then-recovered shard (or a
/// fleet lease bounced through a long partition) always becomes
/// leasable again within a bounded window.
pub const MAX: u64 = 60_000;

/// Shape of the backoff curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Ceiling the exponential curve saturates at (pre-jitter).
    pub cap_ms: u64,
    /// Symmetric jitter fraction in `[0, 1)`: a computed delay `d` is
    /// drawn uniformly from `[d·(1−jitter), d·(1+jitter)]`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy { base_ms: 250, cap_ms: 15_000, jitter: 0.5 }
    }
}

impl BackoffPolicy {
    /// The deterministic (pre-jitter) delay for retry `attempt`
    /// (0-based): `min(cap, base · 2^attempt)`.
    pub fn raw_delay_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.min(32);
        self.base_ms.saturating_mul(1u64 << shift).min(self.cap_ms)
    }
}

/// Per-shard backoff state: an attempt counter advanced by each failure
/// and cleared by success, plus a seeded jitter source.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// Fresh backoff under `policy`; `seed` fixes the jitter stream so
    /// farm runs are replayable.
    pub fn new(policy: BackoffPolicy, seed: u64) -> Backoff {
        Backoff { policy, attempt: 0, rng: SplitMix64::new(seed) }
    }

    /// Number of consecutive failures recorded so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Record a failure and return the jittered delay to wait before the
    /// next respawn.
    pub fn next_delay_ms(&mut self) -> u64 {
        let raw = self.policy.raw_delay_ms(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        let spread = raw as f64 * self.policy.jitter;
        let offset = spread * (2.0 * self.rng.next_f64() - 1.0);
        (raw as f64 + offset).round().max(0.0) as u64
    }

    /// Record a success: the next failure starts the curve over from
    /// `base_ms`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy { base_ms: 100, cap_ms: 1600, jitter: 0.5 }
    }

    #[test]
    fn raw_curve_doubles_then_saturates_at_the_cap() {
        let p = policy();
        assert_eq!(p.raw_delay_ms(0), 100);
        assert_eq!(p.raw_delay_ms(1), 200);
        assert_eq!(p.raw_delay_ms(2), 400);
        assert_eq!(p.raw_delay_ms(4), 1600);
        assert_eq!(p.raw_delay_ms(5), 1600, "cap");
        assert_eq!(p.raw_delay_ms(63), 1600, "huge attempts must not overflow");
    }

    #[test]
    fn jitter_stays_inside_the_advertised_bounds() {
        for seed in 0..32u64 {
            let mut b = Backoff::new(policy(), seed);
            for attempt in 0..8u32 {
                let raw = policy().raw_delay_ms(attempt) as f64;
                let d = b.next_delay_ms() as f64;
                let lo = (raw * 0.5).floor() - 1.0;
                let hi = (raw * 1.5).ceil() + 1.0;
                assert!(
                    (lo..=hi).contains(&d),
                    "seed {seed} attempt {attempt}: delay {d} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn jitter_actually_varies_across_seeds() {
        let delays: Vec<u64> =
            (0..16u64).map(|s| Backoff::new(policy(), s).next_delay_ms()).collect();
        let first = delays[0];
        assert!(delays.iter().any(|&d| d != first), "all seeds produced {first}ms");
    }

    #[test]
    fn zero_jitter_reproduces_the_raw_curve_exactly() {
        let p = BackoffPolicy { base_ms: 50, cap_ms: 400, jitter: 0.0 };
        let mut b = Backoff::new(p, 9);
        assert_eq!(b.next_delay_ms(), 50);
        assert_eq!(b.next_delay_ms(), 100);
        assert_eq!(b.next_delay_ms(), 200);
        assert_eq!(b.next_delay_ms(), 400);
        assert_eq!(b.next_delay_ms(), 400);
    }

    #[test]
    fn reset_on_success_restarts_the_curve() {
        let p = BackoffPolicy { base_ms: 100, cap_ms: 1600, jitter: 0.0 };
        let mut b = Backoff::new(p, 1);
        assert_eq!(b.next_delay_ms(), 100);
        assert_eq!(b.next_delay_ms(), 200);
        assert_eq!(b.attempt(), 2);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.next_delay_ms(), 100, "post-reset delay must restart from base");
    }
}
