//! Per-shard crash-count circuit breaker.
//!
//! A shard whose worker dies over and over is usually not unlucky — it
//! is sitting on an input that deterministically kills the process (or
//! on a poisoned checkpoint). Respawning it forever burns a worker slot
//! and starves healthy shards. The breaker counts *consecutive* crashes
//! per shard; at the configured threshold it trips and the supervisor
//! demotes the shard to the poison quarantine instead of respawning it.
//! Any sign of life (journal progress, clean completion) resets the
//! count, so a long shard that crashes occasionally but keeps advancing
//! is never poisoned.

use crate::lease::ShardId;

/// Consecutive-crash counter per shard with a trip threshold.
#[derive(Debug, Clone)]
pub struct CrashBreaker {
    threshold: u32,
    consecutive: Vec<u32>,
}

impl CrashBreaker {
    /// Breaker over `n_shards` shards tripping at `threshold`
    /// consecutive crashes. `threshold` must be nonzero.
    pub fn new(n_shards: usize, threshold: u32) -> CrashBreaker {
        assert!(threshold > 0, "a zero threshold would poison every shard on sight");
        CrashBreaker { threshold, consecutive: vec![0; n_shards] }
    }

    /// The configured trip threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Record a crash for `shard`; returns `true` if this crash trips
    /// the breaker (the shard should be poisoned, not respawned).
    pub fn record_crash(&mut self, shard: ShardId) -> bool {
        let c = &mut self.consecutive[shard];
        *c = c.saturating_add(1);
        *c >= self.threshold
    }

    /// Record progress or completion for `shard`, clearing its streak.
    pub fn record_success(&mut self, shard: ShardId) {
        self.consecutive[shard] = 0;
    }

    /// Current consecutive-crash count for `shard`.
    pub fn crashes(&self, shard: ShardId) -> u32 {
        self.consecutive[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_at_the_threshold() {
        let mut b = CrashBreaker::new(2, 3);
        assert!(!b.record_crash(0));
        assert!(!b.record_crash(0));
        assert!(b.record_crash(0), "third consecutive crash must trip");
        assert_eq!(b.crashes(0), 3);
        assert_eq!(b.crashes(1), 0, "shards are independent");
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CrashBreaker::new(1, 3);
        assert!(!b.record_crash(0));
        assert!(!b.record_crash(0));
        b.record_success(0);
        assert_eq!(b.crashes(0), 0);
        assert!(!b.record_crash(0), "streak restarted; two more to trip");
        assert!(!b.record_crash(0));
        assert!(b.record_crash(0));
    }

    #[test]
    fn threshold_one_trips_on_the_first_crash() {
        let mut b = CrashBreaker::new(1, 1);
        assert!(b.record_crash(0));
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_threshold_is_rejected() {
        let _ = CrashBreaker::new(1, 0);
    }
}
