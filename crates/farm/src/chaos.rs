//! The farm's built-in adversary: seeded random worker kills.
//!
//! Fault tolerance you haven't exercised is fault tolerance you don't
//! have. With `--chaos-kills N`, the supervisor itself `SIGKILL`s `N`
//! workers mid-run — victims chosen by a seeded RNG, and only once a
//! victim has demonstrably made progress (its shard journal grew past a
//! floor since spawn), so a kill always lands on a *partially complete*
//! checkpoint. The CI smoke job then asserts the merged farm report is
//! byte-identical to a single-process run of the same campaign: the
//! strongest end-to-end statement that crash recovery re-executes and
//! loses nothing.

use crate::lease::ShardId;
use crate::rng::SplitMix64;

/// Chaos-mode parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Total number of workers to kill over the run.
    pub kills: u32,
    /// Seed for victim selection; equal seeds kill the same victims
    /// given the same candidate sequences.
    pub seed: u64,
    /// A worker is only a candidate once its shard journal has grown by
    /// at least this many bytes since that worker's spawn — guarantees
    /// every kill interrupts real progress.
    pub min_journal_growth: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig { kills: 0, seed: 0, min_journal_growth: 1 }
    }
}

/// Seeded victim picker tracking its remaining kill budget.
#[derive(Debug, Clone)]
pub struct ChaosKiller {
    config: ChaosConfig,
    rng: SplitMix64,
    killed: u32,
}

impl ChaosKiller {
    /// Killer for `config`.
    pub fn new(config: ChaosConfig) -> ChaosKiller {
        ChaosKiller { rng: SplitMix64::new(config.seed), config, killed: 0 }
    }

    /// Minimum journal growth a worker must show before it can be a
    /// victim.
    pub fn min_journal_growth(&self) -> u64 {
        self.config.min_journal_growth
    }

    /// Pick a victim among `candidates` (shards whose workers have made
    /// enough progress), or `None` if the budget is spent or no one
    /// qualifies. Decrements the budget on a pick.
    pub fn pick(&mut self, candidates: &[ShardId]) -> Option<ShardId> {
        if self.exhausted() || candidates.is_empty() {
            return None;
        }
        let victim = candidates[self.rng.next_below(candidates.len() as u64) as usize];
        self.killed += 1;
        Some(victim)
    }

    /// Kills performed so far.
    pub fn killed(&self) -> u32 {
        self.killed
    }

    /// `true` once the kill budget is spent.
    pub fn exhausted(&self) -> bool {
        self.killed >= self.config.kills
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_the_kill_budget() {
        let mut k = ChaosKiller::new(ChaosConfig { kills: 2, seed: 1, ..Default::default() });
        assert!(!k.exhausted());
        assert!(k.pick(&[0, 1, 2]).is_some());
        assert!(k.pick(&[0, 1, 2]).is_some());
        assert!(k.exhausted());
        assert_eq!(k.pick(&[0, 1, 2]), None, "budget spent");
        assert_eq!(k.killed(), 2);
    }

    #[test]
    fn no_candidates_means_no_kill_and_no_budget_burn() {
        let mut k = ChaosKiller::new(ChaosConfig { kills: 1, seed: 1, ..Default::default() });
        assert_eq!(k.pick(&[]), None);
        assert_eq!(k.killed(), 0);
        assert!(k.pick(&[5]).is_some(), "budget untouched by the empty pick");
    }

    #[test]
    fn equal_seeds_pick_equal_victims() {
        let cfg = ChaosConfig { kills: 10, seed: 42, ..Default::default() };
        let mut a = ChaosKiller::new(cfg);
        let mut b = ChaosKiller::new(cfg);
        let candidates = [3, 1, 4, 1, 5, 9, 2, 6];
        for _ in 0..10 {
            assert_eq!(a.pick(&candidates), b.pick(&candidates));
        }
    }

    #[test]
    fn victims_come_from_the_candidate_set() {
        let mut k = ChaosKiller::new(ChaosConfig { kills: 100, seed: 7, ..Default::default() });
        let candidates = [2, 4, 8];
        for _ in 0..100 {
            let v = k.pick(&candidates).expect("budget covers all picks");
            assert!(candidates.contains(&v));
        }
    }
}
