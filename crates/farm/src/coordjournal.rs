//! The fleet coordinator's write-ahead journal.
//!
//! Every lease-queue state transition — grant, heartbeat, release,
//! poison, completion — is appended here *before* the reply leaves the
//! socket, using the same CRC-framed, torn-tail-tolerant log the
//! checkpoint journal is built on ([`difftest::checkpoint::FramedLog`]).
//! A coordinator killed at any instant restarts by replaying this file:
//! completed shards fold back into the merge (no shard lost), their
//! `(epoch, fence)` identity is remembered (no shard double-completed —
//! a zombie agent re-sending an old completion is either re-acked
//! idempotently or fenced), and in-flight leases are voided under a new
//! epoch so their holders get [`crate::proto::Reply::Fenced`] on next
//! contact.
//!
//! Because a reply is only sent after its events are durably framed, an
//! agent can never hold a grant the journal doesn't know about. The
//! opposite — a journaled grant whose reply was lost — is harmless: the
//! lease expires unheartbeaten and is re-granted.

use std::io;
use std::path::Path;

use difftest::checkpoint::FramedLog;
use difftest::metadata::CampaignMeta;
use serde::{Deserialize, Serialize};

/// Magic tag opening a coordinator journal.
pub const COORD_MAGIC: &[u8; 8] = b"VGCOORD1";

/// One journaled lease-queue transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "ev")]
pub enum CoordEvent {
    /// A coordinator (re)started and owns the queue under `epoch`.
    /// Appended once per process start; replay derives the next epoch
    /// from the maximum epoch any event carries.
    Start {
        /// The new coordinator epoch.
        epoch: u64,
        /// Shard count of the campaign (sanity-checked on replay).
        n_shards: usize,
    },
    /// A lease was granted.
    Grant {
        /// Shard leased.
        shard: usize,
        /// Epoch the lease belongs to.
        epoch: u64,
        /// Fencing token of the lease.
        fence: u64,
        /// Agent holding it.
        agent: String,
    },
    /// A lease's deadline was pushed out by an agent keepalive.
    Heartbeat {
        /// Shard heartbeaten.
        shard: usize,
        /// Epoch of the lease.
        epoch: u64,
        /// Fencing token of the lease.
        fence: u64,
    },
    /// A lease went back to the pool (agent gave it up, or the
    /// coordinator expired it for heartbeat silence).
    Release {
        /// Shard released.
        shard: usize,
        /// Epoch of the voided lease.
        epoch: u64,
        /// Fencing token of the voided lease.
        fence: u64,
        /// Why (agent's reason, or "lease expired").
        reason: String,
    },
    /// A shard was demoted to the poison quarantine.
    Poison {
        /// Shard poisoned.
        shard: usize,
        /// Epoch of the lease that reported it.
        epoch: u64,
        /// Fencing token of the lease that reported it.
        fence: u64,
        /// Consecutive no-progress crashes the reporting agent saw.
        crashes: u32,
    },
    /// A shard completed and its results were folded into the merge.
    /// Replay rebuilds the merge from these payloads alone, so the
    /// journal — not coordinator memory — is the source of truth.
    Done {
        /// Shard completed.
        shard: usize,
        /// Epoch of the completing lease.
        epoch: u64,
        /// Fencing token of the completing lease — a later duplicate
        /// `Complete` carrying exactly this identity is re-acked
        /// idempotently; any other identity is fenced.
        fence: u64,
        /// The shard's full result, as shipped by the agent.
        meta: Box<CampaignMeta>,
    },
}

impl CoordEvent {
    /// Short kind label (logs, counters).
    pub fn kind(&self) -> &'static str {
        match self {
            CoordEvent::Start { .. } => "start",
            CoordEvent::Grant { .. } => "grant",
            CoordEvent::Heartbeat { .. } => "heartbeat",
            CoordEvent::Release { .. } => "release",
            CoordEvent::Poison { .. } => "poison",
            CoordEvent::Done { .. } => "done",
        }
    }
}

/// Append-only, CRC-framed coordinator journal.
#[derive(Debug)]
pub struct CoordJournal {
    log: FramedLog,
    frames: u64,
}

impl CoordJournal {
    /// Create a fresh journal at `path` (truncating any old file).
    pub fn create(path: &Path) -> io::Result<CoordJournal> {
        Ok(CoordJournal { log: FramedLog::create(path, COORD_MAGIC)?, frames: 0 })
    }

    /// Open an existing journal, truncating any torn tail, and return
    /// it together with every intact event in append order. A file that
    /// is not a coordinator journal is a hard error.
    pub fn open_for_resume(path: &Path) -> io::Result<(CoordJournal, Vec<CoordEvent>)> {
        let (log, payloads) = FramedLog::open_for_resume(path, &[COORD_MAGIC], |p| {
            serde_json::from_slice::<CoordEvent>(p).is_ok()
        })?;
        let events: Vec<CoordEvent> = payloads
            .iter()
            .map(|p| serde_json::from_slice(p).expect("validated during scan"))
            .collect();
        let frames = events.len() as u64;
        Ok((CoordJournal { log, frames }, events))
    }

    /// Durably append one event (write-through; bounded internal
    /// retries). The caller must not send the reply this event backs
    /// until this returns `Ok` — and must treat `Err` as fatal, exiting
    /// so the restart path replays a journal that matches what agents
    /// were told.
    pub fn append(&mut self, ev: &CoordEvent) -> io::Result<()> {
        let payload = serde_json::to_vec(ev)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.log.append(&payload)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of intact events (replayed + appended this process).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Journal length in bytes (magic + frames).
    pub fn len_bytes(&self) -> u64 {
        self.log.len()
    }

    /// fsync the journal file.
    pub fn sync(&self) -> io::Result<()> {
        self.log.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("coordjournal-{tag}-{}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    fn sample_events() -> Vec<CoordEvent> {
        vec![
            CoordEvent::Start { epoch: 1, n_shards: 2 },
            CoordEvent::Grant { shard: 0, epoch: 1, fence: 1, agent: "a1".into() },
            CoordEvent::Heartbeat { shard: 0, epoch: 1, fence: 1 },
            CoordEvent::Release { shard: 0, epoch: 1, fence: 1, reason: "lease expired".into() },
            CoordEvent::Grant { shard: 1, epoch: 1, fence: 2, agent: "a2".into() },
            CoordEvent::Poison { shard: 1, epoch: 1, fence: 2, crashes: 3 },
        ]
    }

    #[test]
    fn journal_replays_exactly_what_was_appended() {
        let path = temp_path("roundtrip");
        let mut j = CoordJournal::create(&path).unwrap();
        let events = sample_events();
        for ev in &events {
            j.append(ev).unwrap();
        }
        assert_eq!(j.frames(), events.len() as u64);
        drop(j);
        let (j2, replayed) = CoordJournal::open_for_resume(&path).unwrap();
        assert_eq!(replayed, events);
        assert_eq!(j2.frames(), events.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue_cleanly() {
        let path = temp_path("torn");
        let mut j = CoordJournal::create(&path).unwrap();
        let events = sample_events();
        for ev in &events {
            j.append(ev).unwrap();
        }
        let full = j.len_bytes();
        drop(j);
        // Simulate a kill mid-append: chop the last frame in half.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 10).unwrap();
        drop(f);
        let (mut j2, replayed) = CoordJournal::open_for_resume(&path).unwrap();
        assert_eq!(replayed, events[..events.len() - 1], "torn last event dropped");
        // The journal remains appendable after truncation.
        j2.append(&CoordEvent::Start { epoch: 2, n_shards: 2 }).unwrap();
        drop(j2);
        let (_, again) = CoordJournal::open_for_resume(&path).unwrap();
        assert_eq!(again.len(), events.len(), "replaced the torn frame");
        assert_eq!(again.last(), Some(&CoordEvent::Start { epoch: 2, n_shards: 2 }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_foreign_file_is_rejected_not_misparsed() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(CoordJournal::open_for_resume(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
