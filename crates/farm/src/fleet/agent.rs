//! The fleet agent: lease shards over the wire, run workers exactly as
//! a local farm does, ship results back.
//!
//! An agent is the supervisor's *local* machinery — checkpoint
//! materialization, `campaign --resume` workers, journal-watermark hang
//! detection, crash breaker, jittered respawn backoff — with the lease
//! queue moved behind [`FleetClient`]. Every worker spawn is still a
//! resume of an on-disk checkpoint; what changes hands over the network
//! is only *who may run a shard* (a grant with an `(epoch, fence)`
//! identity) and *what it produced* (the shard's `result.json`).
//!
//! The identity discipline is absolute: any [`Reply::Fenced`] means
//! this agent's claim on the shard is dead — kill the worker, drop the
//! lease, keep the checkpoint directory (a future re-grant resumes it).
//! Connection failures never destroy work either: the client retries
//! under jittered backoff, and only after `max_offline_ms` without a
//! successful exchange does the agent give up (checkpoints intact, exit
//! nonzero, rejoin later).

use std::path::{Path, PathBuf};
use std::time::Instant;

use difftest::checkpoint::{atomic_write, Checkpoint, ShardSpec};
use difftest::fault::shutdown_requested;
use difftest::metadata::CampaignMeta;
use difftest::CampaignConfig;

use crate::backoff::{Backoff, BackoffPolicy};
use crate::fleet::client::FleetClient;
use crate::fleet::netchaos::NetChaosConfig;
use crate::proto::{Reply, Request};
use crate::supervisor::{
    farm_stop_path, journal_len, poison_path, shard_dir, validate_shard_dir, FarmError,
};
use crate::worker::{WorkerHandle, WorkerSpec};

/// Everything an agent needs to join a fleet.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Agent root: shard checkpoints are materialized under it, and its
    /// `stop` file drains this agent alone.
    pub dir: PathBuf,
    /// Self-chosen agent name (journal attribution on the coordinator).
    pub name: String,
    /// Worker subprocesses (= leases) to keep in flight.
    pub n_workers: usize,
    /// How to launch workers (`--reference` is appended per-lease when
    /// the grant demands it).
    pub worker: WorkerSpec,
    /// Event-loop poll interval.
    pub poll_ms: u64,
    /// Consecutive no-progress crashes before the agent reports the
    /// shard as poison.
    pub crash_threshold: u32,
    /// Respawn and network-retry backoff shape.
    pub backoff: BackoffPolicy,
    /// Seed for backoff jitter and the network-chaos schedule.
    pub seed: u64,
    /// How long a drain waits for workers to flush before hard-killing.
    pub grace_ms: u64,
    /// Give up after this long without one successful exchange.
    pub max_offline_ms: u64,
    /// Per-exchange connect/read/write timeout.
    pub io_timeout_ms: u64,
    /// Seeded network adversary (budget 0 = off).
    pub net_chaos: NetChaosConfig,
}

impl AgentConfig {
    /// Agent joining `coordinator` with production defaults: 50 ms
    /// poll, 3-crash breaker, default backoff, 10 s drain grace, 60 s
    /// offline give-up, 2 s I/O timeouts, chaos off.
    pub fn new(
        coordinator: impl Into<String>,
        dir: impl Into<PathBuf>,
        n_workers: usize,
        worker: WorkerSpec,
    ) -> AgentConfig {
        AgentConfig {
            coordinator: coordinator.into(),
            dir: dir.into(),
            name: format!("agent-{}", std::process::id()),
            n_workers,
            worker,
            poll_ms: 50,
            crash_threshold: 3,
            backoff: BackoffPolicy::default(),
            seed: 0,
            grace_ms: 10_000,
            max_offline_ms: 60_000,
            io_timeout_ms: 2_000,
            net_chaos: NetChaosConfig::default(),
        }
    }
}

/// What an agent run did.
#[derive(Debug)]
pub struct AgentReport {
    /// Shard completions the coordinator accepted from this agent.
    pub shards_completed: u64,
    /// Shards this agent reported as poison (coordinator acked).
    pub shards_poisoned: u64,
    /// Leases lost to fencing (expired, reassigned, or orphaned by a
    /// coordinator restart).
    pub fenced: u64,
    /// Worker processes spawned.
    pub spawns: u64,
    /// Worker deaths observed (crashes, hangs, kills).
    pub worker_deaths: u64,
    /// `true` if the run ended on a drain (local stop file, SIGINT, or
    /// coordinator `Drain`).
    pub drained: bool,
    /// `true` if the coordinator reported every shard settled.
    pub all_done: bool,
    /// `true` if the agent gave up after `max_offline_ms` without a
    /// successful exchange (checkpoints kept; rejoin resumes them).
    pub gave_up: bool,
    /// Network-chaos faults injected by this agent's client.
    pub faults_injected: u32,
}

/// One lease this agent holds, with its local run state.
#[derive(Debug)]
struct Held {
    shard: usize,
    epoch: u64,
    fence: u64,
    dir: PathBuf,
    heartbeat_ms: u64,
    spec: WorkerSpec,
    worker: Option<WorkerHandle>,
    crashes: u32,
    backoff: Backoff,
    respawn_at_ms: u64,
    last_hb_ms: u64,
    journal_last_seen: u64,
    last_progress_ms: u64,
    /// A finished `result.json` is waiting to be shipped.
    completing: bool,
    /// The lease should be handed back (drain).
    releasing: bool,
    /// The local breaker tripped; waiting for the coordinator's ack.
    poisoning: bool,
}

/// Materialize (or adopt) the checkpoint directory for a granted
/// shard. Returns the directory and whether a finished, matching
/// `result.json` is already present (ship it; don't spawn).
fn materialize_shard(
    agent_dir: &Path,
    shard: usize,
    n_shards: usize,
    config: &CampaignConfig,
) -> Result<(PathBuf, bool), FarmError> {
    let dir = shard_dir(agent_dir, shard);
    validate_shard_dir(config, n_shards, shard, &dir)?;
    if dir.join("result.json").exists() {
        let meta = CampaignMeta::load(&dir.join("result.json"))?;
        if meta.config != *config {
            return Err(FarmError::Config(format!(
                "{} holds a result for a different campaign; use a fresh --dir",
                dir.display()
            )));
        }
        return Ok((dir, true));
    }
    if Checkpoint::config_path(&dir).exists() {
        std::fs::remove_file(Checkpoint::stop_path(&dir)).ok();
    } else {
        let spec = ShardSpec { index: shard, count: n_shards };
        Checkpoint::create_sharded(&dir, config, Some(spec))?;
    }
    Ok((dir, false))
}

fn io_err(e: impl std::fmt::Display) -> FarmError {
    FarmError::Io(e.to_string())
}

/// Join a fleet and work until the coordinator reports completion, a
/// drain is requested, or the coordinator stays unreachable past
/// `max_offline_ms`. See the module docs for the loop's contract.
pub fn run_agent(cfg: &AgentConfig) -> Result<AgentReport, FarmError> {
    if cfg.n_workers == 0 {
        return Err(FarmError::Config("need at least one worker".into()));
    }
    std::fs::create_dir_all(&cfg.dir).map_err(io_err)?;
    std::fs::remove_file(farm_stop_path(&cfg.dir)).ok();

    let mut client = FleetClient::new(
        &cfg.coordinator,
        cfg.io_timeout_ms,
        cfg.backoff,
        cfg.seed ^ 0x9E37_79B9_7F4A_7C15,
        cfg.net_chaos,
    );
    let mut held: Vec<Held> = Vec::new();
    let mut report = AgentReport {
        shards_completed: 0,
        shards_poisoned: 0,
        fenced: 0,
        spawns: 0,
        worker_deaths: 0,
        drained: false,
        all_done: false,
        gave_up: false,
        faults_injected: 0,
    };

    let started = Instant::now();
    let now_ms = |started: &Instant| started.elapsed().as_millis() as u64;
    let mut draining = false;
    let mut drain_deadline_ms = u64::MAX;
    let mut next_lease_at_ms = 0u64;
    let mut all_done = false;

    macro_rules! enter_drain {
        ($now:expr) => {
            if !draining {
                draining = true;
                drain_deadline_ms = $now + cfg.grace_ms;
                eprintln!(
                    "fleet[{}]: drain requested; flushing {} lease(s)",
                    cfg.name,
                    held.len()
                );
                for h in &held {
                    let _ = std::fs::write(Checkpoint::stop_path(&h.dir), b"drain");
                    if let Some(w) = &h.worker {
                        w.interrupt();
                    }
                }
            }
        };
    }

    loop {
        let now = now_ms(&started);

        // 1. Local drain triggers.
        if !draining && (shutdown_requested() || farm_stop_path(&cfg.dir).exists()) {
            enter_drain!(now);
        }

        // 2. Reap exited workers.
        for h in held.iter_mut() {
            let (status, spawn_len) = {
                let Some(w) = h.worker.as_mut() else { continue };
                let Some(status) = w.try_wait().map_err(io_err)? else { continue };
                (status, w.journal_len_at_spawn)
            };
            let progressed = journal_len(&h.dir) > spawn_len;
            h.worker = None;
            if status.success() && h.dir.join("result.json").exists() {
                h.completing = true;
                h.crashes = 0;
                h.backoff.reset();
            } else if status.code() == Some(130) || (draining && status.success()) {
                // Flushed at a unit boundary: hand the lease back.
                h.releasing = true;
            } else {
                report.worker_deaths += 1;
                obs::add("fleet.agent_deaths", 1);
                if progressed {
                    h.crashes = 0;
                    h.backoff.reset();
                }
                h.crashes = h.crashes.saturating_add(1);
                if draining {
                    h.releasing = true;
                } else if h.crashes >= cfg.crash_threshold {
                    h.poisoning = true;
                } else {
                    h.respawn_at_ms = now + h.backoff.next_delay_ms();
                }
            }
        }

        // 3. Local hang watchdog: the journal watermark is the
        // heartbeat, exactly as in the local farm.
        for h in held.iter_mut() {
            let hung = match &h.worker {
                None => false,
                Some(_) => {
                    let len = journal_len(&h.dir);
                    if len > h.journal_last_seen {
                        h.journal_last_seen = len;
                        h.last_progress_ms = now;
                        false
                    } else {
                        now > h.last_progress_ms + h.heartbeat_ms
                    }
                }
            };
            if hung {
                let mut w = h.worker.take().expect("hung implies a live worker");
                eprintln!(
                    "fleet[{}]: shard {} hung (no journal growth for {} ms); killing worker {}",
                    cfg.name,
                    h.shard,
                    h.heartbeat_ms,
                    w.pid()
                );
                let progressed = journal_len(&h.dir) > w.journal_len_at_spawn;
                w.kill();
                report.worker_deaths += 1;
                obs::add("fleet.agent_deaths", 1);
                if progressed {
                    h.crashes = 0;
                    h.backoff.reset();
                }
                h.crashes = h.crashes.saturating_add(1);
                if draining {
                    h.releasing = true;
                } else if h.crashes >= cfg.crash_threshold {
                    h.poisoning = true;
                } else {
                    h.respawn_at_ms = now + h.backoff.next_delay_ms();
                }
            }
        }

        // 4. One protocol exchange per lease per pass: ship results,
        // report poison, hand back drained leases, keep alive the rest.
        let mut drop_idx: Vec<usize> = Vec::new();
        let mut saw_drain = false;
        for (i, h) in held.iter_mut().enumerate() {
            if h.completing {
                let meta = match CampaignMeta::load(&h.dir.join("result.json")) {
                    Ok(m) => m,
                    Err(_) => {
                        // Corrupt result: scrap it and let a respawned
                        // worker regenerate from the journal.
                        std::fs::remove_file(h.dir.join("result.json")).ok();
                        h.completing = false;
                        h.respawn_at_ms = now;
                        continue;
                    }
                };
                let req = Request::Complete {
                    agent: cfg.name.clone(),
                    shard: h.shard,
                    epoch: h.epoch,
                    fence: h.fence,
                    meta: Box::new(meta),
                };
                match client.call(&req) {
                    Ok(Reply::Ok) => {
                        report.shards_completed += 1;
                        obs::add("fleet.agent_completes", 1);
                        drop_idx.push(i);
                    }
                    Ok(Reply::Fenced { reason }) => {
                        eprintln!(
                            "fleet[{}]: completion of shard {} fenced ({reason}); \
                             keeping the checkpoint",
                            cfg.name, h.shard
                        );
                        report.fenced += 1;
                        drop_idx.push(i);
                    }
                    Ok(_) | Err(_) => {} // retry next pass
                }
            } else if h.poisoning {
                let req = Request::Poison {
                    agent: cfg.name.clone(),
                    shard: h.shard,
                    epoch: h.epoch,
                    fence: h.fence,
                    crashes: h.crashes,
                };
                match client.call(&req) {
                    Ok(Reply::Ok) => {
                        let record = serde_json::json!({
                            "shard": h.shard,
                            "agent": cfg.name,
                            "consecutive_crashes": h.crashes,
                            "replay": format!(
                                "varity-gpu campaign --resume {} (after deleting {})",
                                h.dir.display(),
                                poison_path(&h.dir).display()
                            ),
                        });
                        let bytes = serde_json::to_vec_pretty(&record).map_err(io_err)?;
                        atomic_write(&poison_path(&h.dir), &bytes).map_err(io_err)?;
                        report.shards_poisoned += 1;
                        eprintln!(
                            "fleet[{}]: shard {} poisoned after {} consecutive no-progress crashes",
                            cfg.name, h.shard, h.crashes
                        );
                        drop_idx.push(i);
                    }
                    Ok(Reply::Fenced { .. }) => {
                        report.fenced += 1;
                        drop_idx.push(i);
                    }
                    Ok(_) | Err(_) => {}
                }
            } else if h.releasing {
                let req = Request::Release {
                    agent: cfg.name.clone(),
                    shard: h.shard,
                    epoch: h.epoch,
                    fence: h.fence,
                    reason: "drain".into(),
                };
                match client.call(&req) {
                    Ok(Reply::Ok) => drop_idx.push(i),
                    Ok(Reply::Fenced { .. }) => {
                        report.fenced += 1;
                        drop_idx.push(i);
                    }
                    Ok(_) | Err(_) => {}
                }
            } else if now >= h.last_hb_ms + (h.heartbeat_ms / 3).max(1) {
                let req = Request::Heartbeat {
                    agent: cfg.name.clone(),
                    shard: h.shard,
                    epoch: h.epoch,
                    fence: h.fence,
                };
                match client.call(&req) {
                    Ok(Reply::Ok) => h.last_hb_ms = now,
                    Ok(Reply::Fenced { reason }) => {
                        eprintln!(
                            "fleet[{}]: lease on shard {} fenced ({reason}); \
                             killing worker, keeping checkpoint",
                            cfg.name, h.shard
                        );
                        if let Some(w) = h.worker.as_mut() {
                            w.kill();
                            report.worker_deaths += 1;
                        }
                        h.worker = None;
                        report.fenced += 1;
                        obs::add("fleet.agent_fenced", 1);
                        drop_idx.push(i);
                    }
                    Ok(Reply::Drain) => saw_drain = true,
                    Ok(_) | Err(_) => {}
                }
            }
        }
        for i in drop_idx.into_iter().rev() {
            held.remove(i);
        }
        if saw_drain {
            enter_drain!(now);
        }

        // 5. Lease more work.
        if !draining && !all_done && held.len() < cfg.n_workers && now >= next_lease_at_ms {
            match client.call(&Request::Lease { agent: cfg.name.clone() }) {
                Ok(Reply::Grant { shard, n_shards, epoch, fence, heartbeat_ms, reference, config }) => {
                    let (dir, already_complete) =
                        materialize_shard(&cfg.dir, shard, n_shards, &config)?;
                    let mut spec = cfg.worker.clone();
                    if reference && !spec.prefix_args.iter().any(|a| a == "--reference") {
                        spec.prefix_args.push("--reference".into());
                    }
                    let journal_seen = journal_len(&dir);
                    held.push(Held {
                        shard,
                        epoch,
                        fence,
                        dir,
                        heartbeat_ms,
                        spec,
                        worker: None,
                        crashes: 0,
                        backoff: Backoff::new(cfg.backoff, cfg.seed ^ fence),
                        respawn_at_ms: now,
                        last_hb_ms: now,
                        journal_last_seen: journal_seen,
                        last_progress_ms: now,
                        completing: already_complete,
                        releasing: false,
                        poisoning: false,
                    });
                }
                Ok(Reply::Wait { retry_ms }) => next_lease_at_ms = now + retry_ms,
                Ok(Reply::AllDone) => all_done = true,
                Ok(Reply::Drain) => enter_drain!(now),
                Ok(_) => next_lease_at_ms = now + 250,
                Err(_) => next_lease_at_ms = now + 100,
            }
        }

        // 6. Spawn workers for leases that need one.
        if !draining {
            for h in held.iter_mut() {
                if h.worker.is_some()
                    || h.completing
                    || h.releasing
                    || h.poisoning
                    || now < h.respawn_at_ms
                {
                    continue;
                }
                let len = journal_len(&h.dir);
                match WorkerHandle::spawn(&h.spec, h.fence, h.shard, &h.dir, len) {
                    Ok(w) => {
                        report.spawns += 1;
                        obs::add("fleet.agent_spawns", 1);
                        h.journal_last_seen = len;
                        h.last_progress_ms = now;
                        h.worker = Some(w);
                    }
                    Err(e) => {
                        eprintln!("fleet[{}]: failed to spawn worker for shard {}: {e}", cfg.name, h.shard);
                        report.worker_deaths += 1;
                        h.crashes = h.crashes.saturating_add(1);
                        if h.crashes >= cfg.crash_threshold {
                            h.poisoning = true;
                        } else {
                            h.respawn_at_ms = now + h.backoff.next_delay_ms();
                        }
                    }
                }
            }
        }

        // 7. Offline give-up: no successful exchange for too long means
        // the coordinator (or the network to it) is gone. Keep every
        // checkpoint; a later --join resumes them.
        if client.consecutive_failures() > 0 {
            let offline_ms = client.ms_since_last_ok().unwrap_or(now);
            if offline_ms > cfg.max_offline_ms {
                eprintln!(
                    "fleet[{}]: no successful exchange for {} ms; giving up \
                     (checkpoints kept under {})",
                    cfg.name,
                    offline_ms,
                    cfg.dir.display()
                );
                for h in held.iter_mut() {
                    if let Some(w) = h.worker.as_mut() {
                        w.kill();
                    }
                }
                held.clear();
                report.gave_up = true;
                break;
            }
        }

        // 8. Termination.
        if draining {
            if now > drain_deadline_ms {
                for h in held.iter_mut() {
                    if let Some(w) = h.worker.as_mut() {
                        eprintln!(
                            "fleet[{}]: drain grace expired; hard-killing worker {}",
                            cfg.name,
                            w.pid()
                        );
                        w.kill();
                    }
                    h.worker = None;
                }
                held.clear();
                report.drained = true;
                break;
            }
            // Leases with exited workers flow through releasing /
            // completing above; once all are handed off we are done.
            if held.is_empty() {
                report.drained = true;
                break;
            }
        } else if all_done && held.is_empty() {
            report.all_done = true;
            break;
        }

        std::thread::sleep(std::time::Duration::from_millis(cfg.poll_ms));
    }

    report.faults_injected = client.faults_injected();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest::TestMode;
    use progen::Precision;

    fn tiny_config() -> CampaignConfig {
        let mut c = CampaignConfig::default_for(Precision::F32, TestMode::Direct);
        c.n_programs = 6;
        c.inputs_per_program = 2;
        c
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fleet-agent-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn materialize_creates_a_resumable_checkpoint() {
        let root = temp_root("mat");
        let config = tiny_config();
        let (dir, complete) = materialize_shard(&root, 1, 3, &config).unwrap();
        assert!(!complete);
        assert!(Checkpoint::config_path(&dir).exists());
        let spec: ShardSpec =
            serde_json::from_str(&std::fs::read_to_string(Checkpoint::shard_path(&dir)).unwrap())
                .unwrap();
        assert_eq!((spec.index, spec.count), (1, 3));
        // Second materialization adopts instead of clobbering.
        let (dir2, complete) = materialize_shard(&root, 1, 3, &config).unwrap();
        assert_eq!(dir, dir2);
        assert!(!complete);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn materialize_reports_a_finished_matching_result() {
        let root = temp_root("adopt");
        let config = tiny_config();
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut meta = CampaignMeta::generate_shard(&config, 0, 2);
        meta.sides_run = vec![];
        meta.save(&dir.join("result.json")).unwrap();
        let (_, complete) = materialize_shard(&root, 0, 2, &config).unwrap();
        assert!(complete, "a finished shard must be shipped, not re-run");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn materialize_rejects_results_and_checkpoints_from_other_campaigns() {
        let root = temp_root("mismatch");
        let config = tiny_config();
        let mut other = tiny_config();
        other.n_programs += 1;
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut stale = CampaignMeta::generate_shard(&other, 0, 2);
        stale.sides_run = vec![];
        stale.save(&dir.join("result.json")).unwrap();
        assert!(matches!(
            materialize_shard(&root, 0, 2, &config),
            Err(FarmError::Config(_))
        ));
        // A mid-flight checkpoint with the wrong geometry is rejected
        // too (delegates to the supervisor's adopted-shard validation).
        let root2 = temp_root("mismatch2");
        let dir2 = shard_dir(&root2, 0);
        Checkpoint::create_sharded(&dir2, &config, Some(ShardSpec { index: 0, count: 5 })).unwrap();
        assert!(matches!(
            materialize_shard(&root2, 0, 2, &config),
            Err(FarmError::Config(_))
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::remove_dir_all(&root2).ok();
    }

    #[test]
    fn zero_workers_is_rejected() {
        let cfg = AgentConfig::new("127.0.0.1:1", temp_root("zw"), 0, WorkerSpec::new("/bin/sh"));
        assert!(matches!(run_agent(&cfg), Err(FarmError::Config(_))));
    }
}
