//! The agent's side of the wire: one request/reply exchange per TCP
//! connection, every I/O under a timeout, failures absorbed by
//! jittered [`crate::backoff`] with reset-on-success, and the seeded
//! [`NetChaos`] adversary injected *below* the retry loop so chaos runs
//! exercise exactly the recovery machinery a flaky network would.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::backoff::{Backoff, BackoffPolicy};
use crate::fleet::netchaos::{NetChaos, NetChaosConfig, NetFault};
use crate::proto::{read_message, write_message, Reply, Request};

/// A connect-per-exchange client for the coordinator at `addr`.
#[derive(Debug)]
pub struct FleetClient {
    addr: String,
    io_timeout: Duration,
    chaos: NetChaos,
    backoff: Backoff,
    consecutive_failures: u32,
    saw_partition: bool,
    last_ok: Option<Instant>,
}

impl FleetClient {
    /// Client for `addr` with `io_timeout_ms` on connect/read/write,
    /// retrying under `backoff` (jitter seeded by `seed`) and injecting
    /// faults per `chaos`.
    pub fn new(
        addr: impl Into<String>,
        io_timeout_ms: u64,
        backoff: BackoffPolicy,
        seed: u64,
        chaos: NetChaosConfig,
    ) -> FleetClient {
        FleetClient {
            addr: addr.into(),
            io_timeout: Duration::from_millis(io_timeout_ms.max(1)),
            chaos: NetChaos::new(chaos),
            backoff: Backoff::new(backoff, seed),
            consecutive_failures: 0,
            saw_partition: false,
            last_ok: None,
        }
    }

    /// Milliseconds since the last successful exchange (`None` before
    /// the first success). The agent's give-up clock.
    pub fn ms_since_last_ok(&self) -> Option<u64> {
        self.last_ok.map(|t| t.elapsed().as_millis() as u64)
    }

    /// Chaos faults injected so far.
    pub fn faults_injected(&self) -> u32 {
        self.chaos.injected()
    }

    /// Consecutive failed exchanges (0 after any success).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable addr"))?;
        let stream = TcpStream::connect_timeout(&addr, self.io_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    fn exchange(&self, req: &Request) -> io::Result<Reply> {
        let mut stream = self.connect()?;
        write_message(&mut stream, req)?;
        read_message(&mut stream)
    }

    /// Send a deliberately torn frame (half the bytes, then close) so
    /// the coordinator's CRC check rejects it without a state change.
    fn send_truncated(&self, req: &Request) -> io::Result<()> {
        let mut bytes = Vec::new();
        write_message(&mut bytes, req)?;
        let mut stream = self.connect()?;
        stream.write_all(&bytes[..bytes.len() / 2])?;
        stream.flush()
    }

    fn settle(&mut self, result: io::Result<Reply>) -> io::Result<Reply> {
        match &result {
            Ok(_) => {
                if self.consecutive_failures > 0 {
                    obs::add("fleet.reconnects", 1);
                    if self.saw_partition {
                        obs::add("fleet.partitions_healed", 1);
                    }
                }
                self.consecutive_failures = 0;
                self.saw_partition = false;
                self.backoff.reset();
                self.last_ok = Some(Instant::now());
            }
            Err(_) => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            }
        }
        result
    }

    /// One exchange attempt, chaos included. Every failure mode —
    /// injected or genuine — comes back as an `io::Error` for the
    /// caller's retry loop; success resets the failure streak and the
    /// backoff curve.
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        if self.chaos.partition_active() {
            self.saw_partition = true;
            let r = Err(io::Error::new(io::ErrorKind::ConnectionRefused, "chaos partition"));
            return self.settle(r);
        }
        match self.chaos.next_fault(req.kind()) {
            Some(NetFault::Drop) => {
                let r = Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos drop"));
                return self.settle(r);
            }
            Some(NetFault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(NetFault::Truncate) => {
                let _ = self.send_truncated(req);
                let r = Err(io::Error::new(io::ErrorKind::UnexpectedEof, "chaos truncate"));
                return self.settle(r);
            }
            Some(NetFault::Partition(ms)) => {
                self.chaos.begin_partition(ms);
                self.saw_partition = true;
                let r = Err(io::Error::new(io::ErrorKind::ConnectionRefused, "chaos partition"));
                return self.settle(r);
            }
            Some(NetFault::Duplicate) => {
                // Complete the exchange, then replay it verbatim and
                // discard the second reply: the coordinator must treat
                // the replay as a duplicate (idempotent re-ack or
                // fencing rejection), never as a second completion.
                let first = self.exchange(req);
                if first.is_ok() {
                    let _ = self.exchange(req);
                }
                return self.settle(first);
            }
            None => {}
        }
        let r = self.exchange(req);
        self.settle(r)
    }

    /// `call` with up to `attempts` tries, sleeping the jittered
    /// backoff delay between failures. Returns the last error if every
    /// attempt fails.
    pub fn call_with_retry(&mut self, req: &Request, attempts: u32) -> io::Result<Reply> {
        let mut last = io::Error::new(io::ErrorKind::Other, "no attempts");
        for i in 0..attempts.max(1) {
            match self.call(req) {
                Ok(reply) => return Ok(reply),
                Err(e) => last = e,
            }
            if i + 1 < attempts {
                std::thread::sleep(Duration::from_millis(self.backoff_delay()));
            }
        }
        Err(last)
    }

    fn backoff_delay(&mut self) -> u64 {
        self.backoff.next_delay_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_once(reply: Reply) -> (std::net::SocketAddr, std::thread::JoinHandle<Request>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req: Request = read_message(&mut stream).unwrap();
            write_message(&mut stream, &reply).unwrap();
            req
        });
        (addr, handle)
    }

    fn calm_client(addr: std::net::SocketAddr) -> FleetClient {
        FleetClient::new(
            addr.to_string(),
            2_000,
            BackoffPolicy { base_ms: 1, cap_ms: 2, jitter: 0.0 },
            0,
            NetChaosConfig::default(),
        )
    }

    #[test]
    fn a_calm_exchange_roundtrips_and_resets_the_failure_streak() {
        let (addr, server) = serve_once(Reply::Wait { retry_ms: 42 });
        let mut client = calm_client(addr);
        // Seed a failure streak first so success visibly clears it.
        client.consecutive_failures = 3;
        let reply = client.call(&Request::Lease { agent: "t".into() }).unwrap();
        assert_eq!(reply, Reply::Wait { retry_ms: 42 });
        assert_eq!(client.consecutive_failures(), 0);
        assert!(client.ms_since_last_ok().is_some());
        let seen = server.join().unwrap();
        assert_eq!(seen, Request::Lease { agent: "t".into() });
    }

    #[test]
    fn connection_refused_counts_failures_and_retry_eventually_errors() {
        // Bind-then-drop guarantees a dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut client = calm_client(addr);
        let err = client.call_with_retry(&Request::Lease { agent: "t".into() }, 3).unwrap_err();
        assert!(err.kind() != io::ErrorKind::Other, "a real io error surfaced: {err}");
        assert_eq!(client.consecutive_failures(), 3);
        assert!(client.ms_since_last_ok().is_none(), "never succeeded");
    }

    #[test]
    fn a_truncated_frame_is_rejected_by_the_server_side_crc() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_read_timeout(Some(Duration::from_millis(2_000))).unwrap();
            read_message::<Request>(&mut stream).is_err()
        });
        let client = calm_client(addr);
        client.send_truncated(&Request::Lease { agent: "t".into() }).unwrap();
        assert!(server.join().unwrap(), "torn frame must not decode");
    }

    #[test]
    fn chaos_drop_fails_without_touching_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        // budget 1, and keep drawing until the schedule injects: with
        // seed 11 the first fault drawn for "lease" must be a failure
        // class (drop/truncate/partition) or delay; loop until the
        // budget is spent, then verify nothing connected.
        let mut client = FleetClient::new(
            addr.to_string(),
            50,
            BackoffPolicy { base_ms: 1, cap_ms: 1, jitter: 0.0 },
            0,
            NetChaosConfig { budget: 1, seed: 11, ..NetChaosConfig::default() },
        );
        let mut results = Vec::new();
        for _ in 0..60 {
            if client.faults_injected() >= 1 {
                break;
            }
            results.push(client.call(&Request::Lease { agent: "t".into() }));
        }
        assert_eq!(client.faults_injected(), 1, "budget must eventually fire");
        // Non-injected attempts hit a listener that never accepts: they
        // time out or queue in the backlog — either way no reply, so
        // every call failed.
        assert!(results.iter().all(|r| r.is_err()));
    }
}
