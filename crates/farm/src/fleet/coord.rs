//! The fleet coordinator: the lease queue behind a socket, with a
//! write-ahead journal making every decision crash-safe.
//!
//! The heart is [`CoordState`], a *pure* state machine: `handle(req,
//! now_ms)` mutates the in-memory queue and returns the reply to send
//! plus the [`CoordEvent`]s that justify it. The server loop journals
//! those events — durably, via the CRC-framed [`CoordJournal`] —
//! *before* the reply leaves the socket, so an agent can never hold a
//! promise the journal doesn't know about. A journal append failure is
//! fatal by design: better to die and replay a truthful journal than to
//! keep serving from memory the disk disagrees with.
//!
//! Restart = replay: completed shards fold back into the merge, their
//! completing `(epoch, fence)` identity is remembered (a zombie agent
//! re-sending an old completion is re-acked idempotently, any other
//! stale identity is fenced), poisoned shards stay quarantined, and
//! in-flight leases are voided under a bumped epoch. No shard is lost;
//! no shard is double-merged.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use difftest::checkpoint::atomic_write;
use difftest::fault::shutdown_requested;
use difftest::metadata::CampaignMeta;
use difftest::CampaignConfig;

use crate::coordjournal::{CoordEvent, CoordJournal};
use crate::lease::{LeaseState, ShardId, WorkQueue};
use crate::proto::{read_message, write_message, Reply, Request};
use crate::status::StatusServer;
use crate::supervisor::{farm_stop_path, merged_path, FarmError};

/// Suggested delay for [`Reply::Wait`].
pub const WAIT_RETRY_MS: u64 = 200;

/// Everything the coordinator needs to own one campaign's queue.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// The campaign being dealt out.
    pub campaign: CampaignConfig,
    /// Shard count (the unit of lease, recovery, and merge).
    pub n_shards: usize,
    /// Address to listen on (`host:port`; port 0 picks a free port,
    /// published to `<dir>/coord.addr`).
    pub bind: String,
    /// Coordinator root: holds `coord.journal`, the rolling
    /// `merged.json`, `coord.addr`, and the drain `stop` file.
    pub dir: PathBuf,
    /// Lease heartbeat window: a granted shard with no agent keepalive
    /// for this long is expired and re-granted.
    pub heartbeat_ms: u64,
    /// Event-loop poll interval.
    pub poll_ms: u64,
    /// How long a drain keeps serving so agents can flush and release.
    pub grace_ms: u64,
    /// Ask agents to also run the double-double ground-truth side.
    pub reference: bool,
    /// How long to keep answering `AllDone` after the last shard
    /// settles, so every agent hears the verdict before the socket
    /// closes.
    pub linger_ms: u64,
    /// Bind address for the HTTP status endpoint (`None` = off).
    pub status_addr: Option<String>,
}

impl CoordConfig {
    /// Coordinator over `campaign` with production defaults: 30 s
    /// heartbeat, 50 ms poll, 10 s drain grace, 3 s linger.
    pub fn new(
        campaign: CampaignConfig,
        n_shards: usize,
        bind: impl Into<String>,
        dir: impl Into<PathBuf>,
    ) -> CoordConfig {
        CoordConfig {
            campaign,
            n_shards,
            bind: bind.into(),
            dir: dir.into(),
            heartbeat_ms: 30_000,
            poll_ms: 50,
            grace_ms: 10_000,
            reference: false,
            linger_ms: 3_000,
            status_addr: None,
        }
    }
}

/// What a coordinator run produced.
#[derive(Debug)]
pub struct CoordReport {
    /// The rolling merge of every completed shard.
    pub merged: Option<CampaignMeta>,
    /// Shards folded into `merged`.
    pub shards_done: usize,
    /// Shards in the poison quarantine.
    pub shards_poisoned: Vec<ShardId>,
    /// `true` if the run stopped on a drain rather than completion.
    pub drained: bool,
    /// The epoch this process served under.
    pub epoch: u64,
    /// Leases granted this process.
    pub grants: u64,
    /// Stale-identity messages rejected (`Reply::Fenced`).
    pub fence_rejections: u64,
    /// Duplicate completions re-acked idempotently.
    pub dup_completes: u64,
    /// Leases expired for keepalive silence.
    pub lease_expiries: u64,
    /// The exact way to resume a drained fleet, when `drained`.
    pub resume_hint: Option<String>,
}

#[derive(Debug, Clone)]
struct Lease {
    fence: u64,
    agent: String,
}

/// The coordinator's pure state machine. All time is caller-supplied
/// milliseconds, so fencing, expiry, and grant policy are unit-testable
/// and proptestable without sockets or sleeping.
#[derive(Debug)]
pub struct CoordState {
    config: CampaignConfig,
    n_shards: usize,
    reference: bool,
    epoch: u64,
    next_fence: u64,
    queue: WorkQueue,
    leases: Vec<Option<Lease>>,
    done_identity: Vec<Option<(u64, u64)>>,
    merged: Option<CampaignMeta>,
    draining: bool,
    /// Counters mirrored into `obs` (`fleet.*`) and the final report.
    pub grants: u64,
    /// Stale-identity rejections issued.
    pub fence_rejections: u64,
    /// Duplicate completions re-acked.
    pub dup_completes: u64,
    /// Leases expired by `tick`.
    pub lease_expiries: u64,
}

impl CoordState {
    /// Rebuild the queue from a journal replay (`events` may be empty
    /// for a fresh start). The returned state serves under an epoch one
    /// past anything the journal has seen, with every in-flight lease
    /// voided and every fence token above any previously issued.
    pub fn replay(
        config: CampaignConfig,
        n_shards: usize,
        heartbeat_ms: u64,
        reference: bool,
        events: &[CoordEvent],
    ) -> Result<CoordState, FarmError> {
        let mut state = CoordState {
            config,
            n_shards,
            reference,
            epoch: 0,
            next_fence: 0,
            queue: WorkQueue::new(n_shards, heartbeat_ms),
            leases: vec![None; n_shards],
            done_identity: vec![None; n_shards],
            merged: None,
            draining: false,
            grants: 0,
            fence_rejections: 0,
            dup_completes: 0,
            lease_expiries: 0,
        };
        let mut max_epoch = 0u64;
        let mut max_fence = 0u64;
        for ev in events {
            match ev {
                CoordEvent::Start { epoch, n_shards: n } => {
                    if *n != n_shards {
                        return Err(FarmError::Config(format!(
                            "journal was written for {n} shards but this run wants {n_shards}; \
                             use a fresh --dir or rerun with --shards {n}"
                        )));
                    }
                    max_epoch = max_epoch.max(*epoch);
                }
                CoordEvent::Grant { epoch, fence, shard, .. }
                | CoordEvent::Heartbeat { epoch, fence, shard }
                | CoordEvent::Release { epoch, fence, shard, .. } => {
                    if *shard >= n_shards {
                        return Err(FarmError::Config(format!(
                            "journal references shard {shard} outside 0..{n_shards}"
                        )));
                    }
                    max_epoch = max_epoch.max(*epoch);
                    max_fence = max_fence.max(*fence);
                }
                CoordEvent::Poison { shard, epoch, fence, .. } => {
                    if *shard >= n_shards {
                        return Err(FarmError::Config(format!(
                            "journal references shard {shard} outside 0..{n_shards}"
                        )));
                    }
                    max_epoch = max_epoch.max(*epoch);
                    max_fence = max_fence.max(*fence);
                    state.queue.poison(*shard);
                }
                CoordEvent::Done { shard, epoch, fence, meta } => {
                    if *shard >= n_shards {
                        return Err(FarmError::Config(format!(
                            "journal references shard {shard} outside 0..{n_shards}"
                        )));
                    }
                    max_epoch = max_epoch.max(*epoch);
                    max_fence = max_fence.max(*fence);
                    if state.done_identity[*shard].is_none() {
                        if meta.config != state.config {
                            return Err(FarmError::Config(format!(
                                "journaled result for shard {shard} belongs to a different \
                                 campaign; use a fresh --dir"
                            )));
                        }
                        state.fold(*meta.clone())?;
                        state.queue.complete(*shard);
                        state.done_identity[*shard] = Some((*epoch, *fence));
                    }
                }
            }
        }
        state.epoch = max_epoch + 1;
        state.next_fence = max_fence + 1;
        Ok(state)
    }

    /// The epoch this state serves under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The rolling merge so far.
    pub fn merged(&self) -> Option<&CampaignMeta> {
        self.merged.as_ref()
    }

    /// Take the merge out (end of run).
    pub fn take_merged(&mut self) -> Option<CampaignMeta> {
        self.merged.take()
    }

    /// `true` once every shard is done or poisoned.
    pub fn all_settled(&self) -> bool {
        self.queue.all_settled()
    }

    /// Shards currently granted out.
    pub fn leased_count(&self) -> usize {
        self.queue.tally().1
    }

    /// Counts of (available, leased, done, poisoned) shards.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        self.queue.tally()
    }

    /// Poisoned shards, lowest first.
    pub fn poisoned_shards(&self) -> Vec<ShardId> {
        (0..self.n_shards).filter(|&k| self.queue.state(k) == LeaseState::Poisoned).collect()
    }

    /// Enter drain mode: no new grants; agents are told to flush,
    /// release, and exit.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// `true` once `drain` was called.
    pub fn draining(&self) -> bool {
        self.draining
    }

    fn fold(&mut self, meta: CampaignMeta) -> Result<(), FarmError> {
        let next = match self.merged.take() {
            None => meta,
            Some(acc) => CampaignMeta::merge_shards_partial(vec![acc, meta])?,
        };
        obs::add("fleet.merge_folds", 1);
        self.merged = Some(next);
        Ok(())
    }

    fn fenced(&mut self, why: impl Into<String>) -> (Reply, Vec<CoordEvent>) {
        self.fence_rejections += 1;
        obs::add("fleet.fence_rejections", 1);
        (Reply::Fenced { reason: why.into() }, Vec::new())
    }

    /// Validate a shard-scoped `(shard, epoch, fence)` identity against
    /// the live lease table. `Ok` means the caller holds the current
    /// lease on `shard`.
    fn check_identity(&mut self, shard: usize, epoch: u64, fence: u64) -> Result<(), (Reply, Vec<CoordEvent>)> {
        if shard >= self.n_shards {
            return Err((Reply::Error { reason: format!("unknown shard {shard}") }, Vec::new()));
        }
        if epoch != self.epoch {
            return Err(self.fenced(format!(
                "stale epoch {epoch} (coordinator is at {}; it restarted since this lease)",
                self.epoch
            )));
        }
        match (&self.queue.state(shard), &self.leases[shard]) {
            (LeaseState::Leased { .. }, Some(l)) if l.fence == fence => Ok(()),
            _ => Err(self.fenced(format!("no live lease on shard {shard} with fence {fence}"))),
        }
    }

    /// Serve one request at virtual time `now_ms`. Returns the reply
    /// and the journal events that must be durable *before* the reply
    /// is sent.
    pub fn handle(&mut self, req: &Request, now_ms: u64) -> (Reply, Vec<CoordEvent>) {
        match req {
            Request::Lease { agent } => {
                if self.draining {
                    return (Reply::Drain, Vec::new());
                }
                if self.queue.all_settled() {
                    return (Reply::AllDone, Vec::new());
                }
                let fence = self.next_fence;
                match self.queue.acquire(now_ms, fence) {
                    None => (Reply::Wait { retry_ms: WAIT_RETRY_MS }, Vec::new()),
                    Some(shard) => {
                        self.next_fence += 1;
                        self.leases[shard] = Some(Lease { fence, agent: agent.clone() });
                        self.grants += 1;
                        obs::add("fleet.grants", 1);
                        let ev = CoordEvent::Grant {
                            shard,
                            epoch: self.epoch,
                            fence,
                            agent: agent.clone(),
                        };
                        let reply = Reply::Grant {
                            shard,
                            n_shards: self.n_shards,
                            epoch: self.epoch,
                            fence,
                            heartbeat_ms: self.queue.heartbeat_ms(),
                            reference: self.reference,
                            config: Box::new(self.config.clone()),
                        };
                        (reply, vec![ev])
                    }
                }
            }
            Request::Heartbeat { shard, epoch, fence, .. } => {
                if self.draining {
                    return (Reply::Drain, Vec::new());
                }
                if let Err(r) = self.check_identity(*shard, *epoch, *fence) {
                    return r;
                }
                self.queue.heartbeat(*shard, now_ms);
                (Reply::Ok, vec![CoordEvent::Heartbeat { shard: *shard, epoch: *epoch, fence: *fence }])
            }
            Request::Complete { shard, epoch, fence, meta, .. } => {
                if *shard >= self.n_shards {
                    return (Reply::Error { reason: format!("unknown shard {shard}") }, Vec::new());
                }
                // Idempotent re-ack first: the exact identity that
                // completed this shard — even under an older epoch,
                // replayed from the journal across a restart — gets Ok
                // again, and nothing is merged twice.
                if self.done_identity[*shard] == Some((*epoch, *fence)) {
                    self.dup_completes += 1;
                    obs::add("fleet.dup_completes", 1);
                    return (Reply::Ok, Vec::new());
                }
                if let Err(r) = self.check_identity(*shard, *epoch, *fence) {
                    return r;
                }
                if meta.config != self.config {
                    return (
                        Reply::Error { reason: "shard result is for a different campaign".into() },
                        Vec::new(),
                    );
                }
                if let Err(e) = self.fold(*meta.clone()) {
                    return (Reply::Error { reason: format!("merge rejected shard: {e}") }, Vec::new());
                }
                self.queue.complete(*shard);
                self.leases[*shard] = None;
                self.done_identity[*shard] = Some((*epoch, *fence));
                obs::add("fleet.completes", 1);
                let ev = CoordEvent::Done {
                    shard: *shard,
                    epoch: *epoch,
                    fence: *fence,
                    meta: meta.clone(),
                };
                (Reply::Ok, vec![ev])
            }
            Request::Release { shard, epoch, fence, reason, .. } => {
                if let Err(r) = self.check_identity(*shard, *epoch, *fence) {
                    return r;
                }
                self.queue.release(*shard, now_ms, 0);
                self.leases[*shard] = None;
                let ev = CoordEvent::Release {
                    shard: *shard,
                    epoch: *epoch,
                    fence: *fence,
                    reason: reason.clone(),
                };
                (Reply::Ok, vec![ev])
            }
            Request::Poison { shard, epoch, fence, crashes, .. } => {
                if let Err(r) = self.check_identity(*shard, *epoch, *fence) {
                    return r;
                }
                self.queue.poison(*shard);
                self.leases[*shard] = None;
                obs::add("fleet.poisons", 1);
                let ev = CoordEvent::Poison {
                    shard: *shard,
                    epoch: *epoch,
                    fence: *fence,
                    crashes: *crashes,
                };
                (Reply::Ok, vec![ev])
            }
        }
    }

    /// Expire leases whose keepalive went silent past the heartbeat
    /// window. Returns the journal events (one `Release` per expiry)
    /// that must be durable before the shards are re-granted — which
    /// the caller guarantees by journaling them before the next
    /// `handle`.
    pub fn tick(&mut self, now_ms: u64) -> Vec<CoordEvent> {
        let mut events = Vec::new();
        for shard in self.queue.expired(now_ms) {
            let lease = self.leases[shard].take();
            self.queue.release(shard, now_ms, 0);
            self.lease_expiries += 1;
            obs::add("fleet.lease_expiries", 1);
            events.push(CoordEvent::Release {
                shard,
                epoch: self.epoch,
                fence: lease.as_ref().map(|l| l.fence).unwrap_or(0),
                reason: format!(
                    "lease expired (no keepalive from {})",
                    lease.map(|l| l.agent).unwrap_or_else(|| "unknown".into())
                ),
            });
        }
        events
    }
}

/// Path of the coordinator's write-ahead journal under `root`.
pub fn coord_journal_path(root: &std::path::Path) -> PathBuf {
    root.join("coord.journal")
}

/// Path of the published listen address under `root` (written
/// atomically once the socket is bound; `--bind host:0` runs discover
/// their port here).
pub fn coord_addr_path(root: &std::path::Path) -> PathBuf {
    root.join("coord.addr")
}

fn io_err(e: impl std::fmt::Display) -> FarmError {
    FarmError::Io(e.to_string())
}

/// Bind the listening socket, riding out `EADDRINUSE` left behind by a
/// just-killed predecessor whose connections may still sit in
/// TIME_WAIT. A restarted coordinator should wait out the kernel, not
/// die: retry for ~75s (past Linux's 60s TIME_WAIT) before giving up.
fn bind_with_retry(addr: &str) -> Result<TcpListener, FarmError> {
    let deadline = Instant::now() + Duration::from_secs(75);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(e) => return Err(io_err(e)),
        }
    }
}

/// Serve one accepted connection: read a request, apply it, journal
/// the resulting events, then — and only then — send the reply. A
/// journal append failure is returned as fatal; a codec failure on the
/// wire just drops the connection.
fn serve_conn(
    stream: &mut TcpStream,
    state: &mut CoordState,
    journal: &mut CoordJournal,
    dir: &std::path::Path,
    now_ms: u64,
) -> Result<(), FarmError> {
    stream.set_nonblocking(false).ok();
    stream.set_read_timeout(Some(Duration::from_millis(2_000))).ok();
    stream.set_write_timeout(Some(Duration::from_millis(2_000))).ok();
    let req: Request = match read_message(stream) {
        Ok(r) => r,
        Err(_) => {
            // Torn frame, wrong version, or a stranger: no state
            // change happened, so just drop the connection.
            obs::add("fleet.codec_errors", 1);
            return Ok(());
        }
    };
    let (reply, events) = state.handle(&req, now_ms);
    let mut completed = false;
    for ev in &events {
        journal.append(ev).map_err(io_err)?;
        completed |= matches!(ev, CoordEvent::Done { .. });
    }
    if completed {
        if let Some(m) = state.merged() {
            m.save(&merged_path(dir))?;
        }
    }
    // Reply delivery is best-effort: if the agent vanished it will
    // retry, and the journal already reflects the truth.
    let _ = write_message(stream, &reply);
    // Wait briefly for the client's close (it drops the socket right
    // after reading the reply). Being the passive closer keeps
    // TIME_WAIT off the coordinator's port, so a killed coordinator
    // can rebind the same address instead of colliding with its own
    // ghost connections for 60s.
    stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
    let _ = std::io::Read::read(stream, &mut [0u8; 1]);
    Ok(())
}

fn healthz_snapshot(state: &CoordState, journal: &CoordJournal, now_ms: u64) -> serde_json::Value {
    let (available, leased, done, poisoned) = state.tally();
    serde_json::json!({
        "role": "coordinator",
        "epoch": state.epoch(),
        "journal_frames": journal.frames(),
        "journal_bytes": journal.len_bytes(),
        "uptime_ms": now_ms,
        "draining": state.draining(),
        "shards": {
            "available": available,
            "leased": leased,
            "done": done,
            "poisoned": poisoned,
        },
    })
}

fn metrics_exposition(state: &CoordState) -> String {
    let mut snap = obs::snapshot().filter_prefix("fleet.");
    if let Some(metrics) = state.merged().and_then(|m| m.metrics.as_ref()) {
        snap.merge(metrics);
    }
    obs::prom::render(&snap)
}

/// Run a coordinator to completion (or drain). Crash-safe by journal:
/// kill it at any instant and a restart on the same `--dir` resumes
/// with no shard lost or double-merged, under a bumped epoch that
/// fences every lease the dead process had granted.
pub fn run_coordinator(cfg: &CoordConfig) -> Result<CoordReport, FarmError> {
    if cfg.n_shards == 0 {
        return Err(FarmError::Config("need at least one shard".into()));
    }
    std::fs::create_dir_all(&cfg.dir).map_err(io_err)?;
    std::fs::remove_file(farm_stop_path(&cfg.dir)).ok();

    let journal_path = coord_journal_path(&cfg.dir);
    let (mut journal, events) = if journal_path.exists() {
        CoordJournal::open_for_resume(&journal_path).map_err(io_err)?
    } else {
        (CoordJournal::create(&journal_path).map_err(io_err)?, Vec::new())
    };
    let mut state = CoordState::replay(
        cfg.campaign.clone(),
        cfg.n_shards,
        cfg.heartbeat_ms,
        cfg.reference,
        &events,
    )?;
    journal
        .append(&CoordEvent::Start { epoch: state.epoch(), n_shards: cfg.n_shards })
        .map_err(io_err)?;
    journal.sync().map_err(io_err)?;
    if !events.is_empty() {
        eprintln!(
            "fleet: coordinator resumed from {} journaled event(s); serving epoch {}",
            events.len(),
            state.epoch()
        );
    }
    // The journal may hold the merge even when merged.json never made
    // it to disk; re-persist so the two never disagree for long.
    if let Some(m) = state.merged() {
        m.save(&merged_path(&cfg.dir))?;
    }

    let listener = bind_with_retry(&cfg.bind)?;
    let local = listener.local_addr().map_err(io_err)?;
    atomic_write(&coord_addr_path(&cfg.dir), local.to_string().as_bytes()).map_err(io_err)?;
    listener.set_nonblocking(true).map_err(io_err)?;
    eprintln!("fleet: coordinator listening on {local} (epoch {})", state.epoch());

    let status = match &cfg.status_addr {
        Some(addr) => Some(StatusServer::bind(addr).map_err(io_err)?),
        None => None,
    };
    if let Some(s) = &status {
        eprintln!("fleet: status endpoint at http://{}/", s.local_addr());
    }

    let started = Instant::now();
    let now_ms = |started: &Instant| started.elapsed().as_millis() as u64;
    let mut draining = false;
    let mut drain_deadline_ms = u64::MAX;
    let mut settled_at_ms: Option<u64> = None;
    let mut last_publish_ms = 0u64;

    loop {
        let now = now_ms(&started);

        if !draining && (shutdown_requested() || farm_stop_path(&cfg.dir).exists()) {
            draining = true;
            drain_deadline_ms = now + cfg.grace_ms;
            state.drain();
            obs::add("fleet.drains", 1);
            eprintln!(
                "fleet: coordinator drain requested; serving releases for up to {} ms",
                cfg.grace_ms
            );
        }

        // Accept everything queued, one exchange per connection.
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => serve_conn(&mut stream, &mut state, &mut journal, &cfg.dir, now)?,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }

        for ev in state.tick(now) {
            journal.append(&ev).map_err(io_err)?;
        }

        if let Some(s) = &status {
            if now >= last_publish_ms + 250 {
                last_publish_ms = now;
                s.publish_healthz(&healthz_snapshot(&state, &journal, now));
                s.publish(&healthz_snapshot(&state, &journal, now));
                s.publish_metrics(&metrics_exposition(&state));
            }
        }

        if draining {
            if state.leased_count() == 0 || now > drain_deadline_ms {
                break;
            }
        } else if state.all_settled() {
            // Keep answering AllDone for the linger window so every
            // agent hears the verdict instead of timing out.
            match settled_at_ms {
                None => settled_at_ms = Some(now),
                Some(t) if now >= t + cfg.linger_ms => break,
                Some(_) => {}
            }
        }

        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
    }

    journal.sync().map_err(io_err)?;
    if let Some(m) = state.merged() {
        m.save(&merged_path(&cfg.dir))?;
    }
    if let Some(s) = status {
        s.publish_healthz(&healthz_snapshot(&state, &journal, now_ms(&started)));
        s.publish_metrics(&metrics_exposition(&state));
        s.shutdown();
    }

    let (_, _, done, _) = state.tally();
    let drained = draining;
    let mut report = CoordReport {
        merged: None,
        shards_done: done,
        shards_poisoned: state.poisoned_shards(),
        drained,
        epoch: state.epoch(),
        grants: state.grants,
        fence_rejections: state.fence_rejections,
        dup_completes: state.dup_completes,
        lease_expiries: state.lease_expiries,
        resume_hint: drained.then(|| {
            format!(
                "re-run the same coordinator command with --dir {} — the journal replays, \
                 agents re-join, and unfinished shards are re-leased",
                cfg.dir.display()
            )
        }),
    };
    report.merged = state.take_merged();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest::TestMode;
    use progen::Precision;

    fn tiny_config() -> CampaignConfig {
        let mut c = CampaignConfig::default_for(Precision::F32, TestMode::Direct);
        c.n_programs = 6;
        c.inputs_per_program = 2;
        c
    }

    fn shard_meta(config: &CampaignConfig, k: usize, n: usize) -> CampaignMeta {
        let mut m = CampaignMeta::generate_shard(config, k, n);
        m.sides_run = vec![];
        m
    }

    fn fresh(n_shards: usize) -> CoordState {
        CoordState::replay(tiny_config(), n_shards, 1_000, false, &[]).unwrap()
    }

    fn grant_of(reply: Reply) -> (usize, u64, u64) {
        match reply {
            Reply::Grant { shard, epoch, fence, .. } => (shard, epoch, fence),
            other => panic!("expected Grant, got {other:?}"),
        }
    }

    #[test]
    fn grant_complete_grant_all_done_happy_path() {
        let mut st = fresh(2);
        assert_eq!(st.epoch(), 1, "fresh state serves epoch 1");
        let (r, evs) = st.handle(&Request::Lease { agent: "a".into() }, 0);
        let (shard, epoch, fence) = grant_of(r);
        assert_eq!((shard, epoch, fence), (0, 1, 1));
        assert_eq!(evs.len(), 1);
        let meta = shard_meta(&tiny_config(), 0, 2);
        let complete = Request::Complete {
            agent: "a".into(),
            shard,
            epoch,
            fence,
            meta: Box::new(meta),
        };
        let (r, evs) = st.handle(&complete, 10);
        assert_eq!(r, Reply::Ok);
        assert!(matches!(evs[0], CoordEvent::Done { shard: 0, .. }));
        // The exact same Complete again: idempotent re-ack, no event,
        // nothing merged twice.
        let before = st.merged().unwrap().tests.len();
        let (r, evs) = st.handle(&complete, 20);
        assert_eq!(r, Reply::Ok);
        assert!(evs.is_empty(), "duplicate completion must not journal");
        assert_eq!(st.dup_completes, 1);
        assert_eq!(st.merged().unwrap().tests.len(), before);
        // Remaining shard, then AllDone.
        let (r, _) = st.handle(&Request::Lease { agent: "b".into() }, 30);
        let (shard, epoch, fence) = grant_of(r);
        assert_eq!(shard, 1);
        let meta = shard_meta(&tiny_config(), 1, 2);
        let (r, _) = st.handle(
            &Request::Complete { agent: "b".into(), shard, epoch, fence, meta: Box::new(meta) },
            40,
        );
        assert_eq!(r, Reply::Ok);
        assert!(st.all_settled());
        let (r, _) = st.handle(&Request::Lease { agent: "b".into() }, 50);
        assert_eq!(r, Reply::AllDone);
        assert_eq!(st.merged().unwrap().tests.len(), 6, "both shards folded");
    }

    #[test]
    fn expiry_voids_the_lease_and_the_zombie_is_fenced() {
        let mut st = fresh(1);
        let (r, _) = st.handle(&Request::Lease { agent: "zombie".into() }, 0);
        let (shard, epoch, fence) = grant_of(r);
        // Keepalive works while the lease is live.
        let hb = Request::Heartbeat { agent: "zombie".into(), shard, epoch, fence };
        let (r, evs) = st.handle(&hb, 500);
        assert_eq!(r, Reply::Ok);
        assert!(matches!(evs[0], CoordEvent::Heartbeat { .. }));
        // Silence past the window: tick expires it.
        let evs = st.tick(5_000);
        assert_eq!(evs.len(), 1);
        assert!(matches!(&evs[0], CoordEvent::Release { reason, .. } if reason.contains("expired")));
        assert_eq!(st.lease_expiries, 1);
        // The zombie's late completion is rejected, not merged.
        let meta = shard_meta(&tiny_config(), 0, 1);
        let (r, evs) = st.handle(
            &Request::Complete {
                agent: "zombie".into(),
                shard,
                epoch,
                fence,
                meta: Box::new(meta.clone()),
            },
            5_010,
        );
        assert!(matches!(r, Reply::Fenced { .. }), "got {r:?}");
        assert!(evs.is_empty());
        assert!(st.merged().is_none());
        assert_eq!(st.fence_rejections, 1);
        // Re-grant carries a strictly higher fence; the new holder's
        // completion lands.
        let (r, _) = st.handle(&Request::Lease { agent: "fresh".into() }, 5_020);
        let (shard2, epoch2, fence2) = grant_of(r);
        assert_eq!(shard2, shard);
        assert_eq!(epoch2, epoch);
        assert!(fence2 > fence, "fence must be monotonic across re-grants");
        let (r, _) = st.handle(
            &Request::Complete {
                agent: "fresh".into(),
                shard: shard2,
                epoch: epoch2,
                fence: fence2,
                meta: Box::new(meta),
            },
            5_030,
        );
        assert_eq!(r, Reply::Ok);
        assert_eq!(st.merged().unwrap().tests.len(), 6);
    }

    #[test]
    fn restart_replay_voids_leases_bumps_epoch_and_keeps_done_shards() {
        let config = tiny_config();
        let meta0 = shard_meta(&config, 0, 3);
        // Journal from a previous life: shard 0 done, shard 1 granted
        // (in flight at the kill), shard 2 poisoned.
        let events = vec![
            CoordEvent::Start { epoch: 1, n_shards: 3 },
            CoordEvent::Grant { shard: 0, epoch: 1, fence: 1, agent: "a".into() },
            CoordEvent::Done { shard: 0, epoch: 1, fence: 1, meta: Box::new(meta0.clone()) },
            CoordEvent::Grant { shard: 1, epoch: 1, fence: 2, agent: "a".into() },
            CoordEvent::Grant { shard: 2, epoch: 1, fence: 3, agent: "b".into() },
            CoordEvent::Poison { shard: 2, epoch: 1, fence: 3, crashes: 4 },
        ];
        let mut st = CoordState::replay(config.clone(), 3, 1_000, false, &events).unwrap();
        assert_eq!(st.epoch(), 2, "epoch bumps past everything journaled");
        assert_eq!(st.tally(), (1, 0, 1, 1), "lease on shard 1 voided to available");
        assert_eq!(st.merged().unwrap().tests.len(), meta0.tests.len(), "done shard folded back");
        // The pre-restart holder of shard 1 heartbeats: stale epoch.
        let (r, _) =
            st.handle(&Request::Heartbeat { agent: "a".into(), shard: 1, epoch: 1, fence: 2 }, 0);
        assert!(matches!(r, Reply::Fenced { .. }));
        // A zombie re-sending shard 0's completion under its original
        // identity is re-acked without a second merge.
        let (r, evs) = st.handle(
            &Request::Complete {
                agent: "a".into(),
                shard: 0,
                epoch: 1,
                fence: 1,
                meta: Box::new(meta0),
            },
            0,
        );
        assert_eq!(r, Reply::Ok);
        assert!(evs.is_empty());
        assert_eq!(st.dup_completes, 1);
        // New grants start above every journaled fence.
        let (r, _) = st.handle(&Request::Lease { agent: "c".into() }, 0);
        let (shard, epoch, fence) = grant_of(r);
        assert_eq!((shard, epoch), (1, 2));
        assert!(fence >= 4);
    }

    #[test]
    fn replay_rejects_a_journal_for_a_different_geometry_or_campaign() {
        let events = vec![CoordEvent::Start { epoch: 1, n_shards: 4 }];
        assert!(matches!(
            CoordState::replay(tiny_config(), 2, 1_000, false, &events),
            Err(FarmError::Config(_))
        ));
        let mut other = tiny_config();
        other.n_programs += 1;
        let events = vec![CoordEvent::Done {
            shard: 0,
            epoch: 1,
            fence: 1,
            meta: Box::new(shard_meta(&other, 0, 2)),
        }];
        assert!(matches!(
            CoordState::replay(tiny_config(), 2, 1_000, false, &events),
            Err(FarmError::Config(_))
        ));
    }

    #[test]
    fn draining_refuses_grants_but_still_accepts_completions() {
        let mut st = fresh(2);
        let (r, _) = st.handle(&Request::Lease { agent: "a".into() }, 0);
        let (shard, epoch, fence) = grant_of(r);
        st.drain();
        let (r, _) = st.handle(&Request::Lease { agent: "b".into() }, 1);
        assert_eq!(r, Reply::Drain);
        let (r, _) =
            st.handle(&Request::Heartbeat { agent: "a".into(), shard, epoch, fence }, 2);
        assert_eq!(r, Reply::Drain, "keepalives also learn about the drain");
        let meta = shard_meta(&tiny_config(), 0, 2);
        let (r, _) = st.handle(
            &Request::Complete { agent: "a".into(), shard, epoch, fence, meta: Box::new(meta) },
            3,
        );
        assert_eq!(r, Reply::Ok, "in-flight work is never thrown away by a drain");
        assert_eq!(st.leased_count(), 0);
    }

    #[test]
    fn poison_message_quarantines_the_shard() {
        let mut st = fresh(1);
        let (r, _) = st.handle(&Request::Lease { agent: "a".into() }, 0);
        let (shard, epoch, fence) = grant_of(r);
        let (r, evs) = st.handle(
            &Request::Poison { agent: "a".into(), shard, epoch, fence, crashes: 3 },
            1,
        );
        assert_eq!(r, Reply::Ok);
        assert!(matches!(evs[0], CoordEvent::Poison { crashes: 3, .. }));
        assert!(st.all_settled());
        assert_eq!(st.poisoned_shards(), vec![0]);
        let (r, _) = st.handle(&Request::Lease { agent: "a".into() }, 2);
        assert_eq!(r, Reply::AllDone, "poisoned shards are settled, not re-leased");
    }
}
