//! Cross-machine farm transport: a crash-safe, partition-tolerant
//! coordinator/agent protocol that moves [`crate::lease::WorkQueue`]
//! semantics onto the wire.
//!
//! ```text
//!                        ┌────────────────────────────┐
//!                        │ coordinator (--coordinate)  │
//!                        │  WorkQueue + CoordJournal   │
//!                        │  epoch E, fences f1<f2<…    │
//!                        └─────▲───────────────▲──────┘
//!            lease/heartbeat/  │               │  complete(meta)/
//!            release/poison    │               │  fenced replies
//!                    ┌─────────┴───┐       ┌───┴─────────┐
//!                    │ agent A     │       │ agent B     │
//!                    │ (--join)    │       │ (--join)    │
//!                    │ workers =   │       │ workers =   │
//!                    │ campaign    │       │ campaign    │
//!                    │  --resume   │       │  --resume   │
//!                    └─────────────┘       └─────────────┘
//! ```
//!
//! Division of labor:
//!
//! * [`coord`] — [`CoordState`], the pure lease-queue state machine,
//!   and [`run_coordinator`], which journals every transition through
//!   [`crate::coordjournal`] *before* replying. Kill it anytime; the
//!   restart replays the journal, bumps the epoch, and fences the dead
//!   process's leases — no shard lost, none double-merged.
//! * [`agent`] — [`run_agent`]: leases shards, materializes their
//!   checkpoints, runs `campaign --resume` workers exactly as the local
//!   supervisor does, and ships finished `result.json`s back.
//! * [`client`] — the timeout-everything, backoff-with-reset TCP
//!   client, one request/reply exchange per connection.
//! * [`netchaos`] — the seeded wire adversary (drop, delay, duplicate,
//!   truncate, partition) proving a tortured fleet merges byte-identical
//!   to a calm single-process run.

pub mod agent;
pub mod client;
pub mod coord;
pub mod netchaos;

pub use agent::{run_agent, AgentConfig, AgentReport};
pub use client::FleetClient;
pub use coord::{run_coordinator, CoordConfig, CoordReport, CoordState};
pub use netchaos::{NetChaos, NetChaosConfig, NetFault};
