//! Seeded network adversary for the fleet transport.
//!
//! Mirrors `difftest::chaos` (fault budget, deterministic seed) but
//! torments the wire instead of the filesystem: requests are dropped,
//! delayed, duplicated, truncated mid-frame, or blackholed behind a
//! partition window. The client owns one [`NetChaos`] and consults it
//! before every exchange, so a chaos-tortured fleet run is replayable
//! from `(seed, budget)` alone — and CI can assert the merged report
//! stays byte-identical to a calm single-process run.
//!
//! Faults compose with the protocol's defenses one-to-one: `Drop` and
//! `Partition` exercise retry/backoff and lease expiry, `Truncate`
//! exercises CRC rejection, `Duplicate` replays a completed exchange
//! (second reply discarded) to exercise the coordinator's fencing and
//! idempotent re-acks, `Delay` widens every race window.

use std::time::{Duration, Instant};

use crate::rng::SplitMix64;

/// Shape of the network adversary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetChaosConfig {
    /// Total faults to inject (0 = chaos off).
    pub budget: u32,
    /// Seed for the fault schedule; equal seeds give equal schedules.
    pub seed: u64,
    /// Upper bound on an injected `Delay`, in milliseconds.
    pub max_delay_ms: u64,
    /// Length of an injected partition window, in milliseconds.
    pub partition_ms: u64,
}

impl Default for NetChaosConfig {
    fn default() -> NetChaosConfig {
        NetChaosConfig { budget: 0, seed: 0, max_delay_ms: 150, partition_ms: 400 }
    }
}

/// One injected network fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFault {
    /// The request is never sent; the caller sees an I/O error.
    Drop,
    /// The exchange happens after this many extra milliseconds.
    Delay(u64),
    /// The exchange happens twice; the duplicate's reply is discarded.
    /// Only offered for shard-scoped requests, where it probes the
    /// coordinator's `(epoch, fence)` idempotency.
    Duplicate,
    /// A deliberately torn frame is sent (CRC cannot match), then the
    /// connection drops; the caller sees an I/O error.
    Truncate,
    /// Every exchange fails fast for this many milliseconds.
    Partition(u64),
}

/// The adversary: a seeded schedule plus the live partition window.
#[derive(Debug)]
pub struct NetChaos {
    cfg: NetChaosConfig,
    rng: SplitMix64,
    injected: u32,
    partition_until: Option<Instant>,
}

impl NetChaos {
    /// Adversary under `cfg`.
    pub fn new(cfg: NetChaosConfig) -> NetChaos {
        NetChaos { cfg, rng: SplitMix64::new(cfg.seed), injected: 0, partition_until: None }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u32 {
        self.injected
    }

    /// `true` while an injected partition window is open.
    pub fn partition_active(&self) -> bool {
        self.partition_until.is_some_and(|t| Instant::now() < t)
    }

    /// Open a partition window `ms` long (the client calls this when it
    /// draws [`NetFault::Partition`]).
    pub fn begin_partition(&mut self, ms: u64) {
        self.partition_until = Some(Instant::now() + Duration::from_millis(ms));
    }

    /// Decide the fault (if any) for the next exchange of request kind
    /// `kind` (see `proto::Request::kind`). Roughly one exchange in
    /// three draws a fault until the budget runs out; the draw sequence
    /// is a pure function of the seed.
    pub fn next_fault(&mut self, kind: &str) -> Option<NetFault> {
        if self.injected >= self.cfg.budget || self.rng.next_below(3) != 0 {
            return None;
        }
        let dup_ok = matches!(kind, "heartbeat" | "complete" | "release" | "poison");
        let fault = match self.rng.next_below(5) {
            0 => NetFault::Drop,
            1 => NetFault::Delay(1 + self.rng.next_below(self.cfg.max_delay_ms.max(1))),
            2 if dup_ok => NetFault::Duplicate,
            2 => NetFault::Drop,
            3 => NetFault::Truncate,
            _ => NetFault::Partition(self.cfg.partition_ms),
        };
        self.injected += 1;
        obs::add("fleet.net_faults", 1);
        Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos(budget: u32, seed: u64) -> NetChaos {
        NetChaos::new(NetChaosConfig { budget, seed, ..NetChaosConfig::default() })
    }

    #[test]
    fn equal_seeds_give_equal_fault_schedules() {
        let mut a = chaos(32, 9);
        let mut b = chaos(32, 9);
        for _ in 0..200 {
            assert_eq!(a.next_fault("complete"), b.next_fault("complete"));
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "a 32-fault budget over 200 rolls must fire");
    }

    #[test]
    fn budget_bounds_the_injected_faults() {
        let mut c = chaos(5, 3);
        for _ in 0..500 {
            c.next_fault("lease");
        }
        assert_eq!(c.injected(), 5);
        assert_eq!(c.next_fault("lease"), None, "budget exhausted");
    }

    #[test]
    fn duplicates_are_never_offered_for_lease_requests() {
        // A duplicated Lease would grant a second shard nobody runs
        // (harmless — it expires — but slow); the schedule must demote
        // that draw to a Drop instead.
        for seed in 0..64u64 {
            let mut c = chaos(1000, seed);
            for _ in 0..200 {
                assert_ne!(c.next_fault("lease"), Some(NetFault::Duplicate), "seed {seed}");
            }
        }
    }

    #[test]
    fn partition_window_opens_and_closes() {
        let mut c = chaos(0, 0);
        assert!(!c.partition_active());
        c.begin_partition(30);
        assert!(c.partition_active());
        std::thread::sleep(Duration::from_millis(45));
        assert!(!c.partition_active());
    }

    #[test]
    fn zero_budget_is_silent() {
        let mut c = chaos(0, 7);
        for _ in 0..100 {
            assert_eq!(c.next_fault("complete"), None);
        }
    }
}
