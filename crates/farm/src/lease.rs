//! Lease-based work queue over campaign shards.
//!
//! Each shard is a lease: when a worker takes it the queue stamps a
//! heartbeat deadline, and every observed heartbeat (in the farm,
//! growth of the shard's checkpoint journal) pushes the deadline out.
//! A lease whose deadline passes without a heartbeat is *expired* — the
//! supervisor kills the hung worker and the shard goes back to
//! `Available` for reassignment. Because workers always operate through
//! `--resume` on the shard's checkpoint, reassignment never re-executes
//! or loses a completed unit.
//!
//! The queue is driven entirely by caller-supplied millisecond
//! timestamps ("virtual time"), so every policy decision — expiry,
//! backoff eligibility, drain — is unit-testable without sleeping and
//! replayable in the proptest harness.

/// Index of a shard in the farm's round-robin decomposition.
pub type ShardId = usize;

/// Lifecycle of one shard lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Unassigned; may not be leased again before `eligible_at_ms`
    /// (respawn backoff).
    Available {
        /// Earliest virtual time at which `acquire` may hand it out.
        eligible_at_ms: u64,
    },
    /// Held by worker `worker`; hung if no heartbeat by `deadline_ms`.
    Leased {
        /// Supervisor-assigned id of the worker holding the lease.
        worker: u64,
        /// Virtual time past which the lease counts as expired.
        deadline_ms: u64,
    },
    /// Shard finished and its result was folded into the rolling merge.
    Done,
    /// Shard tripped the circuit breaker and was quarantined.
    Poisoned,
}

/// The supervisor's work queue: one [`LeaseState`] per shard plus the
/// heartbeat-deadline policy.
#[derive(Debug, Clone)]
pub struct WorkQueue {
    states: Vec<LeaseState>,
    heartbeat_ms: u64,
}

impl WorkQueue {
    /// Queue over `n_shards` shards, expiring a lease after
    /// `heartbeat_ms` of silence.
    pub fn new(n_shards: usize, heartbeat_ms: u64) -> WorkQueue {
        WorkQueue {
            states: vec![LeaseState::Available { eligible_at_ms: 0 }; n_shards],
            heartbeat_ms,
        }
    }

    /// The heartbeat window used to stamp deadlines.
    pub fn heartbeat_ms(&self) -> u64 {
        self.heartbeat_ms
    }

    /// State of `shard`.
    pub fn state(&self, shard: ShardId) -> LeaseState {
        self.states[shard]
    }

    /// Lease the lowest-numbered eligible shard to `worker` at `now`,
    /// stamping its first deadline. Returns `None` when nothing is
    /// currently available (all leased, done, poisoned, or backing off).
    pub fn acquire(&mut self, now_ms: u64, worker: u64) -> Option<ShardId> {
        let shard = self.states.iter().position(
            |s| matches!(s, LeaseState::Available { eligible_at_ms } if *eligible_at_ms <= now_ms),
        )?;
        self.states[shard] = LeaseState::Leased { worker, deadline_ms: now_ms + self.heartbeat_ms };
        Some(shard)
    }

    /// Record a heartbeat for `shard` at `now`, pushing its deadline
    /// out. No-op unless the shard is currently leased.
    pub fn heartbeat(&mut self, shard: ShardId, now_ms: u64) {
        if let LeaseState::Leased { worker, .. } = self.states[shard] {
            self.states[shard] =
                LeaseState::Leased { worker, deadline_ms: now_ms + self.heartbeat_ms };
        }
    }

    /// Shards whose lease deadline has passed as of `now` (hung
    /// workers), lowest shard first.
    pub fn expired(&self, now_ms: u64) -> Vec<ShardId> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                LeaseState::Leased { deadline_ms, .. } if *deadline_ms < now_ms => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Return `shard` to the pool, not leasable again before
    /// `now + delay_ms` (respawn backoff). The delay is capped at
    /// [`crate::backoff::MAX`]: the queue's re-eligibility policy and
    /// the backoff policy stay aligned, so no caller — misconfigured
    /// cap, saturated jitter, or a fleet coordinator translating remote
    /// failures into delays — can bench a shard unboundedly.
    pub fn release(&mut self, shard: ShardId, now_ms: u64, delay_ms: u64) {
        let delay_ms = delay_ms.min(crate::backoff::MAX);
        self.states[shard] = LeaseState::Available { eligible_at_ms: now_ms + delay_ms };
    }

    /// Mark `shard` finished.
    pub fn complete(&mut self, shard: ShardId) {
        self.states[shard] = LeaseState::Done;
    }

    /// Demote `shard` to the poison quarantine.
    pub fn poison(&mut self, shard: ShardId) {
        self.states[shard] = LeaseState::Poisoned;
    }

    /// `true` once every shard is terminally settled (done or
    /// poisoned).
    pub fn all_settled(&self) -> bool {
        self.states.iter().all(|s| matches!(s, LeaseState::Done | LeaseState::Poisoned))
    }

    /// Shards currently out on lease, lowest first.
    pub fn leased_shards(&self) -> Vec<ShardId> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, LeaseState::Leased { .. }).then_some(i))
            .collect()
    }

    /// Counts of (available, leased, done, poisoned) shards.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for s in &self.states {
            match s {
                LeaseState::Available { .. } => t.0 += 1,
                LeaseState::Leased { .. } => t.1 += 1,
                LeaseState::Done => t.2 += 1,
                LeaseState::Poisoned => t.3 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_hands_out_each_shard_once_then_dries_up() {
        let mut q = WorkQueue::new(3, 100);
        assert_eq!(q.acquire(0, 1), Some(0));
        assert_eq!(q.acquire(0, 2), Some(1));
        assert_eq!(q.acquire(0, 3), Some(2));
        assert_eq!(q.acquire(0, 4), None, "all leased");
        assert_eq!(q.state(1), LeaseState::Leased { worker: 2, deadline_ms: 100 });
    }

    #[test]
    fn heartbeat_extends_the_deadline_and_staves_off_expiry() {
        let mut q = WorkQueue::new(1, 100);
        q.acquire(0, 7);
        assert!(q.expired(100).is_empty(), "deadline is inclusive");
        q.heartbeat(0, 80);
        assert!(q.expired(150).is_empty(), "heartbeat at 80 pushed deadline to 180");
        assert_eq!(q.expired(181), vec![0]);
    }

    #[test]
    fn released_shard_respects_the_backoff_delay() {
        let mut q = WorkQueue::new(1, 100);
        q.acquire(0, 1);
        q.release(0, 50, 200);
        assert_eq!(q.acquire(100, 2), None, "still backing off until 250");
        assert_eq!(q.acquire(250, 2), Some(0));
    }

    #[test]
    fn release_caps_the_delay_at_the_backoff_ceiling() {
        let mut q = WorkQueue::new(1, 100);
        q.acquire(0, 1);
        // a delay far past the policy ceiling (e.g. a runaway cap_ms or
        // a poisoned-then-recovered shard) is clamped to backoff::MAX
        q.release(0, 1_000, crate::backoff::MAX * 100);
        assert_eq!(
            q.state(0),
            LeaseState::Available { eligible_at_ms: 1_000 + crate::backoff::MAX }
        );
        assert_eq!(q.acquire(1_000 + crate::backoff::MAX - 1, 2), None, "still benched");
        assert_eq!(q.acquire(1_000 + crate::backoff::MAX, 2), Some(0), "bounded bench");
        // delays at or under the ceiling pass through untouched
        q.release(0, 2_000, 250);
        assert_eq!(q.state(0), LeaseState::Available { eligible_at_ms: 2_250 });
    }

    #[test]
    fn settled_states_are_terminal() {
        let mut q = WorkQueue::new(2, 100);
        q.acquire(0, 1);
        q.complete(0);
        q.poison(1);
        assert!(q.all_settled());
        assert_eq!(q.acquire(1_000, 2), None, "done/poisoned shards never re-lease");
        q.heartbeat(0, 1_000);
        assert_eq!(q.state(0), LeaseState::Done, "heartbeat on settled shard is a no-op");
        assert!(q.expired(1_000_000).is_empty());
    }

    #[test]
    fn tally_and_leased_shards_reflect_the_mix() {
        let mut q = WorkQueue::new(4, 100);
        q.acquire(0, 1);
        q.acquire(0, 2);
        q.complete(1);
        q.poison(3);
        assert_eq!(q.tally(), (1, 1, 1, 1));
        assert_eq!(q.leased_shards(), vec![0]);
        assert!(!q.all_settled());
    }
}
