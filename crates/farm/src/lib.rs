//! # farm — a supervised, self-healing multi-worker fuzzing service
//!
//! The paper's methodology lives or dies on campaign scale: millions of
//! generated tests across toolchains and optimization levels. One
//! crash-safe process ([`difftest::checkpoint`]) is not a fleet; this
//! crate supervises one.
//!
//! The supervisor shards a campaign with the round-robin geometry of
//! [`difftest::metadata::CampaignMeta::shard`], materializes each shard
//! as a checkpoint directory (config + [`difftest::ShardSpec`] + empty
//! journal), and spawns worker subprocesses that each run the existing
//! checkpointed `varity-gpu campaign --resume` path against their shard.
//! Because *every* spawn is a resume, first assignment, crash recovery,
//! and hang recovery are the same operation — no completed work unit is
//! ever re-executed or lost, and the journal replay machinery proven by
//! the chaos tests does all the heavy lifting.
//!
//! Robustness machinery, by module:
//!
//! * [`lease`] — the lease-based work queue. Each shard is a lease with
//!   a heartbeat deadline; workers heartbeat implicitly by growing their
//!   checkpoint journal, and a lease whose journal stops moving past the
//!   deadline is declared hung, its worker killed, and the shard
//!   reassigned.
//! * [`backoff`] — jittered exponential backoff between respawns of a
//!   crashing shard, with reset-on-success.
//! * [`breaker`] — a per-shard circuit breaker: a shard that kills its
//!   worker too many times in a row is demoted to the poison-shard
//!   quarantine, with the responsible seed range recorded for replay.
//! * [`supervisor`] — the event loop composing the above: spawn, reap,
//!   heartbeat, reassign, incrementally fold finished shards into a
//!   rolling report via order-independent
//!   [`difftest::metadata::CampaignMeta::merge_shards_partial`], and
//!   drain gracefully (stop leasing, let in-flight workers flush their
//!   checkpoints, report the exact resume command).
//! * [`status`] — a tiny built-in HTTP endpoint serving live
//!   progress/metrics as JSON (`farm --status-addr`).
//! * [`chaos`] — the farm's own adversary: a seeded killer that
//!   `SIGKILL`s random workers mid-run so CI can prove the merged report
//!   stays byte-identical to a single-process run.
//! * [`proto`] — the fleet wire protocol: version-tagged, CRC-framed
//!   request/reply messages carrying `(epoch, fence)` lease identities.
//! * [`coordjournal`] — the coordinator's write-ahead journal; every
//!   lease transition is durably framed before its reply is sent.
//! * [`fleet`] — the cross-machine farm: `--coordinate` owns the lease
//!   queue behind a socket, `--join` agents run workers exactly as the
//!   local supervisor does, and a seeded network adversary proves the
//!   merged report survives drops, duplicates, partitions, and
//!   coordinator kills byte-identically.
//!
//! Farm-level telemetry rides the usual [`obs`] counters: `farm.spawns`,
//! `farm.respawns`, `farm.reassignments`, `farm.worker_deaths`,
//! `farm.lease_expiries`, `farm.shards_done`, `farm.shards_poisoned`,
//! `farm.chaos_kills`, `farm.merge_folds`, `farm.drains`.

#![deny(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod chaos;
pub mod coordjournal;
pub mod fleet;
pub mod lease;
pub mod proto;
pub mod rng;
pub mod status;
pub mod supervisor;
pub mod worker;

pub use backoff::{Backoff, BackoffPolicy};
pub use breaker::CrashBreaker;
pub use chaos::{ChaosConfig, ChaosKiller};
pub use coordjournal::{CoordEvent, CoordJournal};
pub use fleet::{
    run_agent, run_coordinator, AgentConfig, AgentReport, CoordConfig, CoordReport, CoordState,
    FleetClient, NetChaosConfig,
};
pub use lease::{LeaseState, ShardId, WorkQueue};
pub use status::StatusServer;
pub use supervisor::{run_farm, FarmConfig, FarmReport};
pub use worker::WorkerSpec;
