//! Fleet wire protocol: the lease queue's semantics as messages.
//!
//! One request/reply exchange per TCP connection, framed exactly like a
//! checkpoint journal record — a protocol version byte, then
//! `[payload_len: u32 LE][crc32(payload): u32 LE][payload JSON]` via
//! [`difftest::checkpoint::encode_frame`]. The CRC rejects torn frames
//! (a truncated send, an injected chaos fault); the version byte
//! rejects an old agent before it can misparse anything; the length
//! prefix bounds allocation. Decoding arbitrary bytes never panics —
//! every malformed input is an `io::Error` the caller's retry loop
//! absorbs (`tests/proto_proptest.rs` proves it).
//!
//! Exactly-once completion does not come from the transport (the chaos
//! layer duplicates and drops at will) but from the identity carried in
//! every shard-scoped message: the coordinator `epoch` (bumped on every
//! restart) and the per-lease `fence` token (globally monotonic, a new
//! one per grant). A partitioned "zombie" agent finishing a shard that
//! was re-leased to someone else presents a stale fence and gets
//! [`Reply::Fenced`] — its result is dropped, not merged twice.

use difftest::campaign::CampaignConfig;
use difftest::checkpoint::{crc32, encode_frame};
use difftest::metadata::CampaignMeta;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Wire protocol version. Bumped on any incompatible message change;
/// a coordinator rejects other versions before parsing a payload.
pub const PROTO_VERSION: u8 = 1;

/// Largest payload a frame may carry (shard `CampaignMeta` results ride
/// the wire, so this is generous — but bounded, so a corrupt length
/// prefix cannot demand an absurd allocation).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// What an agent asks the coordinator. Every shard-scoped request
/// carries the `(epoch, fence)` identity of the lease it acts under;
/// the coordinator rejects stale identities with [`Reply::Fenced`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum Request {
    /// Lease the next available shard.
    Lease {
        /// Self-chosen agent name (diagnostics and journal attribution).
        agent: String,
    },
    /// Keepalive for a held lease: pushes the coordinator-side deadline
    /// out, exactly as journal growth does for a local farm worker.
    Heartbeat {
        /// Agent name.
        agent: String,
        /// Shard the lease covers.
        shard: usize,
        /// Coordinator epoch the lease was granted under.
        epoch: u64,
        /// Fencing token of the lease.
        fence: u64,
    },
    /// Ship a finished shard's results for the incremental merge.
    Complete {
        /// Agent name.
        agent: String,
        /// Shard the lease covers.
        shard: usize,
        /// Coordinator epoch the lease was granted under.
        epoch: u64,
        /// Fencing token of the lease.
        fence: u64,
        /// The shard's complete `CampaignMeta` (the worker's
        /// `result.json`, exactly what a local farm folds).
        meta: Box<CampaignMeta>,
    },
    /// Give a lease back unfinished (drain, local failure, shutdown).
    /// The checkpoint journal stays on the agent's disk; a future lease
    /// of the same shard — on any machine — resumes from whatever
    /// journal that machine has, or from scratch, without re-merging or
    /// losing completed units.
    Release {
        /// Agent name.
        agent: String,
        /// Shard the lease covers.
        shard: usize,
        /// Coordinator epoch the lease was granted under.
        epoch: u64,
        /// Fencing token of the lease.
        fence: u64,
        /// Why the agent gave the shard back (diagnostics).
        reason: String,
    },
    /// The shard tripped the agent's no-progress crash breaker: demote
    /// it to the poison quarantine instead of re-leasing it forever.
    Poison {
        /// Agent name.
        agent: String,
        /// Shard the lease covers.
        shard: usize,
        /// Coordinator epoch the lease was granted under.
        epoch: u64,
        /// Fencing token of the lease.
        fence: u64,
        /// Consecutive no-progress crashes the agent observed.
        crashes: u32,
    },
}

impl Request {
    /// Short kind label (journal events, counters, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Lease { .. } => "lease",
            Request::Heartbeat { .. } => "heartbeat",
            Request::Complete { .. } => "complete",
            Request::Release { .. } => "release",
            Request::Poison { .. } => "poison",
        }
    }
}

/// What the coordinator answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum Reply {
    /// A lease: run this shard. The agent materializes (or adopts) the
    /// shard's checkpoint directory from `config` + the shard spec and
    /// spawns `campaign --resume` workers exactly as a local farm does.
    Grant {
        /// Shard index leased.
        shard: usize,
        /// Total shard count of the campaign.
        n_shards: usize,
        /// Coordinator epoch this lease belongs to.
        epoch: u64,
        /// Fencing token: must accompany every later message about this
        /// lease. A reassigned shard gets a new, higher fence, so the
        /// old holder's messages are rejected.
        fence: u64,
        /// Coordinator-side heartbeat window; the agent should send
        /// [`Request::Heartbeat`] comfortably more often than this.
        heartbeat_ms: u64,
        /// Whether workers must also run the double-double ground-truth
        /// side (`campaign --reference`, runtime-only config).
        reference: bool,
        /// The campaign config the shard's checkpoint must be created
        /// (or validated) against.
        config: Box<CampaignConfig>,
    },
    /// Nothing leasable right now (all out, backing off, or settling):
    /// ask again in `retry_ms`.
    Wait {
        /// Suggested delay before the next [`Request::Lease`].
        retry_ms: u64,
    },
    /// Every shard is terminally settled; the agent can exit cleanly.
    AllDone,
    /// The coordinator is draining: stop leasing, flush and release
    /// held shards, exit as interrupted (130).
    Drain,
    /// Acknowledged (heartbeat extended, completion merged or already
    /// merged, release/poison recorded).
    Ok,
    /// The `(epoch, fence)` identity is stale: the lease expired, was
    /// reassigned, or predates a coordinator restart. The agent must
    /// kill the shard's worker and drop the lease (keeping its local
    /// checkpoint for a possible future re-grant).
    Fenced {
        /// Human-readable cause (diagnostics).
        reason: String,
    },
    /// The request could not be served (malformed, journal write
    /// failure mid-shutdown). The agent retries with backoff.
    Error {
        /// Human-readable cause (diagnostics).
        reason: String,
    },
}

impl Reply {
    /// Short kind label (counters, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            Reply::Grant { .. } => "grant",
            Reply::Wait { .. } => "wait",
            Reply::AllDone => "all_done",
            Reply::Drain => "drain",
            Reply::Ok => "ok",
            Reply::Fenced { .. } => "fenced",
            Reply::Error { .. } => "error",
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialize `msg` and write it as one versioned CRC frame.
pub fn write_message<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let payload = serde_json::to_vec(msg).map_err(|e| invalid(e.to_string()))?;
    if payload.len() > MAX_FRAME_BYTES as usize {
        return Err(invalid(format!("frame too large: {} bytes", payload.len())));
    }
    let mut buf = Vec::with_capacity(payload.len() + 9);
    buf.push(PROTO_VERSION);
    buf.extend_from_slice(&encode_frame(&payload));
    w.write_all(&buf)?;
    w.flush()
}

/// Read one versioned CRC frame and deserialize it. Every malformed
/// input — wrong version, oversized or short frame, CRC mismatch,
/// unparsable JSON — is an `io::Error`; this function never panics on
/// arbitrary bytes.
pub fn read_message<T: DeserializeOwned>(r: &mut impl Read) -> io::Result<T> {
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != PROTO_VERSION {
        return Err(invalid(format!(
            "unsupported protocol version {} (want {PROTO_VERSION})",
            version[0]
        )));
    }
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!("oversized frame: {len} bytes")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(invalid("frame CRC mismatch"));
    }
    serde_json::from_slice(&payload).map_err(|e| invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(msg: &T) -> T {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).unwrap();
        read_message(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn requests_and_replies_roundtrip() {
        let reqs = [
            Request::Lease { agent: "a1".into() },
            Request::Heartbeat { agent: "a1".into(), shard: 3, epoch: 2, fence: 41 },
            Request::Release {
                agent: "a2".into(),
                shard: 0,
                epoch: 1,
                fence: 7,
                reason: "drain".into(),
            },
            Request::Poison { agent: "a2".into(), shard: 5, epoch: 1, fence: 9, crashes: 3 },
        ];
        for r in &reqs {
            assert_eq!(&roundtrip(r), r, "{}", r.kind());
        }
        let replies = [
            Reply::Wait { retry_ms: 150 },
            Reply::AllDone,
            Reply::Drain,
            Reply::Ok,
            Reply::Fenced { reason: "lease reassigned".into() },
            Reply::Error { reason: "journal write failed".into() },
        ];
        for r in &replies {
            assert_eq!(&roundtrip(r), r, "{}", r.kind());
        }
    }

    #[test]
    fn version_mismatch_is_rejected_before_the_payload() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Reply::Ok).unwrap();
        buf[0] = PROTO_VERSION + 1;
        let err = read_message::<Reply>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("protocol version"), "{err}");
    }

    #[test]
    fn corrupt_and_torn_frames_are_errors_not_panics() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Lease { agent: "x".into() }).unwrap();
        // flip a payload byte: CRC mismatch
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        let err = read_message::<Request>(&mut Cursor::new(bad)).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
        // every truncation point: clean error
        for cut in 0..buf.len() {
            assert!(read_message::<Request>(&mut Cursor::new(&buf[..cut])).is_err(), "cut {cut}");
        }
        // an absurd length prefix is bounded, not allocated
        let mut huge = vec![PROTO_VERSION];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        let err = read_message::<Request>(&mut Cursor::new(huge)).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
    }

    #[test]
    fn valid_frame_of_the_wrong_message_type_is_an_error() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Reply::Drain).unwrap();
        assert!(read_message::<Request>(&mut Cursor::new(buf)).is_err());
    }
}
