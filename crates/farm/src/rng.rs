//! A tiny deterministic RNG (SplitMix64) for backoff jitter and chaos
//! victim selection.
//!
//! The farm deliberately avoids pulling a random-number crate into the
//! supervisor: everything it randomizes must be reproducible from a
//! single seed so a chaos run can be replayed exactly, and SplitMix64's
//! 64-bit state is more than enough entropy for jitter and victim picks.

/// SplitMix64: Steele, Lea & Flood's statistically solid, trivially
/// seedable 64-bit generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero. Uses the widening
    /// multiply trick (Lemire), bias negligible at these magnitudes.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw in `[0.0, 1.0)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_stays_in_range_and_hits_everything() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 0..5: {seen:?}");
    }

    #[test]
    fn next_f64_is_a_unit_uniform() {
        let mut rng = SplitMix64::new(2024);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
    }
}
