//! Built-in HTTP status endpoint (`farm --status-addr`).
//!
//! A deliberately tiny HTTP/1.1 responder over `std::net::TcpListener`:
//! `GET /` or `GET /status` returns the most recently published JSON
//! snapshot, `GET /metrics` returns the most recently published
//! Prometheus text exposition, `GET /healthz` returns the published
//! liveness probe (for the fleet: coordinator epoch + journal length —
//! cheap enough for agents to poll), anything else is a 404. Malformed
//! request lines get a 400 and header blocks over 16 KB get a 431, so a
//! confused or hostile client can't wedge the supervisor. No external
//! HTTP crate — the endpoint exists so an operator (or the CI smoke
//! job) can `curl` live progress/metrics out of a long farm run,
//! nothing more.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest header block we will buffer before answering 431.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Handle to the background status-serving thread.
pub struct StatusServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    metrics: Arc<Mutex<String>>,
    healthz: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the published snapshot.
    pub fn bind(addr: &str) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let body = Arc::new(Mutex::new(String::from("{}")));
        let metrics = Arc::new(Mutex::new(String::new()));
        let healthz = Arc::new(Mutex::new(String::from("{}")));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let body = Arc::clone(&body);
            let metrics = Arc::clone(&metrics);
            let healthz = Arc::clone(&healthz);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve(listener, body, metrics, healthz, stop))
        };
        Ok(StatusServer { addr, body, metrics, healthz, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the snapshot served to subsequent `/status` requests.
    pub fn publish(&self, snapshot: &serde_json::Value) {
        let mut body = self.body.lock().unwrap_or_else(|e| e.into_inner());
        *body = snapshot.to_string();
    }

    /// Replace the Prometheus text served to subsequent `/metrics`
    /// requests.
    pub fn publish_metrics(&self, text: &str) {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        text.clone_into(&mut m);
    }

    /// Replace the liveness probe served to subsequent `/healthz`
    /// requests. The fleet coordinator publishes its epoch and journal
    /// length here, so agents (and operators) can tell a live restart
    /// from a dead coordinator with one cheap GET.
    pub fn publish_healthz(&self, snapshot: &serde_json::Value) {
        let mut h = self.healthz.lock().unwrap_or_else(|e| e.into_inner());
        *h = snapshot.to_string();
    }

    /// Stop the serving thread and release the port.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

fn serve(
    listener: TcpListener,
    body: Arc<Mutex<String>>,
    metrics: Arc<Mutex<String>>,
    healthz: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let snapshot = body.lock().unwrap_or_else(|e| e.into_inner()).clone();
                let prom = metrics.lock().unwrap_or_else(|e| e.into_inner()).clone();
                let health = healthz.lock().unwrap_or_else(|e| e.into_inner()).clone();
                // One request per connection; errors just drop the client.
                let _ = respond(stream, &snapshot, &prom, &health);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn respond(mut stream: TcpStream, json: &str, prom: &str, health: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request until the end of the header block (or timeout).
    let mut buf = [0u8; 1024];
    let mut seen: Vec<u8> = Vec::new();
    let mut complete = false;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    complete = true;
                    break;
                }
                if seen.len() > MAX_HEADER_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if seen.len() > MAX_HEADER_BYTES && !complete {
        return write_response(
            stream,
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "header block too large\n",
        );
    }
    let (status, content_type, body) = match parse_request_path(&seen) {
        None => ("400 Bad Request", "text/plain; charset=utf-8", "malformed request line\n"),
        Some(path) => match path {
            "/" | "/status" => ("200 OK", "application/json", json),
            "/healthz" => ("200 OK", "application/json", health),
            "/metrics" => ("200 OK", "text/plain; version=0.0.4; charset=utf-8", prom),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "unknown path\n"),
        },
    };
    write_response(stream, status, content_type, body)
}

/// Extract the request path from a raw request buffer, or `None` when
/// the request line is not a plausible `METHOD <path> HTTP/x.y`. Query
/// strings are ignored.
fn parse_request_path(raw: &[u8]) -> Option<&str> {
    let line_end = raw.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&raw[..line_end]).ok()?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return None;
    }
    if !matches!(method, "GET" | "HEAD") {
        return None;
    }
    if !target.starts_with('/') {
        return None;
    }
    Some(target.split('?').next().unwrap_or(target))
}

fn write_response(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_request(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.write_all(request);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        raw_request(addr, format!("GET {path} HTTP/1.1\r\nHost: farm\r\n\r\n").as_bytes())
    }

    #[test]
    fn serves_the_latest_published_snapshot() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let first = get(addr, "/status");
        assert!(first.starts_with("HTTP/1.1 200 OK"), "got: {first}");
        assert!(first.ends_with("{}"), "initial snapshot is empty JSON: {first}");

        server.publish(&serde_json::json!({"shards_done": 3, "workers": 2}));
        let second = get(addr, "/status");
        let json_start = second.find("\r\n\r\n").expect("header/body split") + 4;
        let parsed: serde_json::Value =
            serde_json::from_str(&second[json_start..]).expect("body parses as JSON");
        assert_eq!(parsed["shards_done"], 3);
        assert_eq!(parsed["workers"], 2);

        server.shutdown();
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let empty = get(addr, "/metrics");
        assert!(empty.starts_with("HTTP/1.1 200 OK"), "got: {empty}");

        server.publish_metrics("# TYPE farm_respawns counter\nfarm_respawns 2\n");
        let text = get(addr, "/metrics");
        assert!(text.contains("text/plain; version=0.0.4"), "got: {text}");
        assert!(text.contains("farm_respawns 2"), "got: {text}");

        server.shutdown();
    }

    #[test]
    fn root_serves_the_snapshot_and_queries_are_ignored() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.publish(&serde_json::json!({"ok": true}));
        for path in ["/", "/status?verbose=1"] {
            let r = get(addr, path);
            assert!(r.starts_with("HTTP/1.1 200 OK"), "{path}: {r}");
            assert!(r.contains("\"ok\":true"), "{path}: {r}");
        }
        server.shutdown();
    }

    #[test]
    fn healthz_serves_the_published_liveness_probe() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let empty = get(addr, "/healthz");
        assert!(empty.starts_with("HTTP/1.1 200 OK"), "got: {empty}");
        assert!(empty.ends_with("{}"), "initial probe is empty JSON: {empty}");

        server.publish_healthz(&serde_json::json!({"epoch": 3, "journal_frames": 17}));
        let probed = get(addr, "/healthz?from=agent");
        let body_start = probed.find("\r\n\r\n").expect("header/body split") + 4;
        let parsed: serde_json::Value =
            serde_json::from_str(&probed[body_start..]).expect("body parses as JSON");
        assert_eq!(parsed["epoch"], 3);
        assert_eq!(parsed["journal_frames"], 17);
        // the probe is independent of /status
        let status = get(addr, "/status");
        assert!(status.ends_with("{}"), "status untouched: {status}");

        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_404() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let r = get(addr, "/nope");
        assert!(r.starts_with("HTTP/1.1 404 Not Found"), "got: {r}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_lines_get_400() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        for req in [
            &b"NOT_A_REQUEST\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"POST /status HTTP/1.1\r\n\r\n"[..],
            &b"GET status HTTP/1.1\r\n\r\n"[..],
            &b"GET /status HTTP/1.1 extra\r\n\r\n"[..],
            &b"\xff\xfe bad utf8 \r\n\r\n"[..],
        ] {
            let r = raw_request(addr, req);
            assert!(
                r.starts_with("HTTP/1.1 400 Bad Request"),
                "request {:?} got: {r}",
                String::from_utf8_lossy(req)
            );
        }
        server.shutdown();
    }

    #[test]
    fn oversized_headers_get_431() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut req = b"GET /status HTTP/1.1\r\n".to_vec();
        req.extend_from_slice(b"X-Flood: ");
        req.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 1024));
        // No terminating blank line: the server must give up on its own.
        let r = raw_request(addr, &req);
        assert!(r.starts_with("HTTP/1.1 431"), "got: {r}");
        server.shutdown();
    }

    #[test]
    fn server_survives_abusive_clients_and_keeps_serving() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        // Client connects and immediately hangs up.
        drop(TcpStream::connect(addr).expect("connect"));
        let _ = raw_request(addr, b"");
        let _ = raw_request(addr, b"garbage");
        server.publish(&serde_json::json!({"alive": 1}));
        let r = get(addr, "/status");
        assert!(r.contains("\"alive\":1"), "got: {r}");
        server.shutdown();
    }
}
