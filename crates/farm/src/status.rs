//! Built-in HTTP status endpoint (`farm --status-addr`).
//!
//! A deliberately tiny HTTP/1.1 responder over `std::net::TcpListener`:
//! every request, regardless of path, gets the most recently published
//! JSON snapshot with `Connection: close`. No external HTTP crate, no
//! request parsing beyond draining the header block — the endpoint
//! exists so an operator (or the CI smoke job) can `curl` live
//! progress/metrics out of a long farm run, nothing more.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to the background status-serving thread.
pub struct StatusServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving the published snapshot.
    pub fn bind(addr: &str) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let body = Arc::new(Mutex::new(String::from("{}")));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let body = Arc::clone(&body);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve(listener, body, stop))
        };
        Ok(StatusServer { addr, body, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the snapshot served to subsequent requests.
    pub fn publish(&self, snapshot: &serde_json::Value) {
        let mut body = self.body.lock().unwrap_or_else(|e| e.into_inner());
        *body = snapshot.to_string();
    }

    /// Stop the serving thread and release the port.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

fn serve(listener: TcpListener, body: Arc<Mutex<String>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let snapshot =
                    body.lock().unwrap_or_else(|e| e.into_inner()).clone();
                // One request per connection; errors just drop the client.
                let _ = respond(stream, &snapshot);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn respond(mut stream: TcpStream, body: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request until the end of the header block (or timeout);
    // we serve the same snapshot whatever was asked.
    let mut buf = [0u8; 1024];
    let mut seen: Vec<u8> = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /status HTTP/1.1\r\nHost: farm\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn serves_the_latest_published_snapshot() {
        let server = StatusServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let first = get(addr);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "got: {first}");
        assert!(first.ends_with("{}"), "initial snapshot is empty JSON: {first}");

        server.publish(&serde_json::json!({"shards_done": 3, "workers": 2}));
        let second = get(addr);
        let json_start = second.find("\r\n\r\n").expect("header/body split") + 4;
        let parsed: serde_json::Value =
            serde_json::from_str(&second[json_start..]).expect("body parses as JSON");
        assert_eq!(parsed["shards_done"], 3);
        assert_eq!(parsed["workers"], 2);

        server.shutdown();
    }
}
