//! The farm event loop: spawn, reap, heartbeat, reassign, merge, drain.
//!
//! One pass of the loop does, in order:
//!
//! 1. **Drain check** — a SIGINT (via [`difftest::fault::shutdown_requested`])
//!    or a `stop` file in the farm root flips the run into drain mode:
//!    leasing stops, every in-flight shard gets its cooperative stop
//!    file (plus a process-group SIGINT under the `signals` feature),
//!    and the loop waits for workers to flush their checkpoints.
//! 2. **Reap** — exited workers are classified: success folds the
//!    shard's result into the rolling merge; a flushed drain exit
//!    (interrupt code 130, or a clean exit while draining) releases the
//!    lease quietly; anything else — even during a drain — is a death
//!    that feeds the circuit breaker and jittered backoff before the
//!    shard is reassigned.
//! 3. **Expire** — leased shards whose journal hasn't grown within the
//!    heartbeat window are declared hung: the worker is killed and the
//!    shard goes back to the queue. Journal growth since the previous
//!    poll *is* the heartbeat — a moving watermark, so a worker that
//!    advances and then wedges still expires; workers need no side
//!    channel.
//! 4. **Chaos** — with a kill budget configured, the supervisor
//!    `SIGKILL`s a random worker that has demonstrably made progress,
//!    exercising the recovery path it just promised to provide.
//! 5. **Spawn** — free worker slots pick up eligible leases. Every
//!    spawn runs `--resume` on the shard's checkpoint directory, so
//!    first assignment and Nth recovery are the same operation.
//!
//! The loop ends when every shard is settled (done or poisoned) and no
//! worker is left, or when a drain completes. Results fold through
//! [`CampaignMeta::merge_shards_partial`], whose canonical ordering
//! makes the rolling merge independent of worker completion order.

use std::path::{Path, PathBuf};
use std::time::Instant;

use difftest::checkpoint::{Checkpoint, ShardSpec};
use difftest::fault::shutdown_requested;
use difftest::metadata::{CampaignMeta, MetaError};
use difftest::CampaignConfig;

use crate::backoff::{Backoff, BackoffPolicy};
use crate::breaker::CrashBreaker;
use crate::chaos::{ChaosConfig, ChaosKiller};
use crate::lease::{LeaseState, ShardId, WorkQueue};
use crate::status::StatusServer;
use crate::worker::{WorkerHandle, WorkerSpec};

/// Everything the supervisor needs to run one farm.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// The campaign to run.
    pub campaign: CampaignConfig,
    /// Number of shards to deal the campaign into (the unit of lease,
    /// recovery, and merge; usually a small multiple of `n_workers`).
    pub n_shards: usize,
    /// Number of worker subprocesses to keep in flight.
    pub n_workers: usize,
    /// Farm root directory: holds `shard-NNN/` checkpoints, the rolling
    /// `merged.json`, and the drain `stop` file.
    pub dir: PathBuf,
    /// How to launch workers.
    pub worker: WorkerSpec,
    /// Lease heartbeat window: a leased shard whose journal shows no
    /// growth for this long is declared hung.
    pub heartbeat_ms: u64,
    /// Event-loop poll interval.
    pub poll_ms: u64,
    /// Consecutive no-progress crashes before a shard is poisoned.
    pub crash_threshold: u32,
    /// Respawn backoff shape.
    pub backoff: BackoffPolicy,
    /// Seed for backoff jitter and chaos victim selection.
    pub seed: u64,
    /// How long a drain waits for workers to flush before hard-killing.
    pub grace_ms: u64,
    /// Bind address for the HTTP status endpoint (`None` = off).
    pub status_addr: Option<String>,
    /// Chaos-mode kills (budget 0 = off).
    pub chaos: ChaosConfig,
}

impl FarmConfig {
    /// A farm over `campaign` with production defaults: 30 s heartbeat,
    /// 50 ms poll, 3-crash breaker, default backoff, 10 s drain grace.
    pub fn new(
        campaign: CampaignConfig,
        n_shards: usize,
        n_workers: usize,
        dir: impl Into<PathBuf>,
        worker: WorkerSpec,
    ) -> FarmConfig {
        FarmConfig {
            campaign,
            n_shards,
            n_workers,
            dir: dir.into(),
            worker,
            heartbeat_ms: 30_000,
            poll_ms: 50,
            crash_threshold: 3,
            backoff: BackoffPolicy::default(),
            seed: 0,
            grace_ms: 10_000,
            status_addr: None,
            chaos: ChaosConfig::default(),
        }
    }
}

/// What a farm run produced.
#[derive(Debug)]
pub struct FarmReport {
    /// The rolling merge of every completed shard (`None` only if no
    /// shard finished). Complete iff `shards_poisoned` is empty and
    /// `drained` is false.
    pub merged: Option<CampaignMeta>,
    /// Shards folded into `merged`.
    pub shards_done: usize,
    /// Shards demoted to the poison quarantine.
    pub shards_poisoned: Vec<ShardId>,
    /// `true` if the run stopped on a drain request rather than
    /// completion.
    pub drained: bool,
    /// Worker processes spawned (including respawns).
    pub spawns: u64,
    /// Spawns that were recoveries of a previously-assigned shard.
    pub respawns: u64,
    /// Worker deaths observed (crashes, kills, hangs).
    pub worker_deaths: u64,
    /// Leases revoked for missed heartbeats.
    pub lease_expiries: u64,
    /// Workers killed by the built-in chaos adversary.
    pub chaos_kills: u64,
    /// The exact command to resume a drained farm, when `drained`.
    pub resume_hint: Option<String>,
}

/// Farm-level failures (worker spawn errors, merge protocol errors,
/// unusable farm directory).
#[derive(Debug)]
pub enum FarmError {
    /// Filesystem or process-management failure.
    Io(String),
    /// Shard results violated the merge protocol.
    Meta(MetaError),
    /// The configuration is unusable (zero shards/workers).
    Config(String),
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Io(m) => write!(f, "farm io error: {m}"),
            FarmError::Meta(e) => write!(f, "farm merge error: {e}"),
            FarmError::Config(m) => write!(f, "farm config error: {m}"),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<MetaError> for FarmError {
    fn from(e: MetaError) -> FarmError {
        FarmError::Meta(e)
    }
}

fn io_err(e: impl std::fmt::Display) -> FarmError {
    FarmError::Io(e.to_string())
}

/// Directory of shard `k` under `root`.
pub fn shard_dir(root: &Path, shard: ShardId) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// Path of the rolling merged metadata under `root`.
pub fn merged_path(root: &Path) -> PathBuf {
    root.join("merged.json")
}

/// Path of the farm-level drain stop file.
pub fn farm_stop_path(root: &Path) -> PathBuf {
    root.join("stop")
}

/// Path of a shard's poison record.
pub fn poison_path(shard_dir: &Path) -> PathBuf {
    shard_dir.join("poison.json")
}

pub(crate) fn journal_len(shard_dir: &Path) -> u64 {
    std::fs::metadata(Checkpoint::journal_path(shard_dir)).map(|m| m.len()).unwrap_or(0)
}

/// Run a farm to completion (or drain). See the module docs for the
/// event-loop contract.
pub fn run_farm(cfg: &FarmConfig) -> Result<FarmReport, FarmError> {
    if cfg.n_shards == 0 || cfg.n_workers == 0 {
        return Err(FarmError::Config("need at least one shard and one worker".into()));
    }
    std::fs::create_dir_all(&cfg.dir).map_err(io_err)?;
    // A stale farm-level stop file would drain a fresh run instantly.
    std::fs::remove_file(farm_stop_path(&cfg.dir)).ok();

    let status = match &cfg.status_addr {
        Some(addr) => Some(StatusServer::bind(addr).map_err(io_err)?),
        None => None,
    };
    if let Some(s) = &status {
        eprintln!("farm: status endpoint at http://{}/", s.local_addr());
    }

    let mut queue = WorkQueue::new(cfg.n_shards, cfg.heartbeat_ms);
    let mut breaker = CrashBreaker::new(cfg.n_shards, cfg.crash_threshold);
    let mut backoffs: Vec<Backoff> = (0..cfg.n_shards)
        .map(|k| Backoff::new(cfg.backoff, cfg.seed.wrapping_add(k as u64)))
        .collect();
    let mut killer = ChaosKiller::new(cfg.chaos);
    let mut merged: Option<CampaignMeta> = None;
    let mut report = FarmReport {
        merged: None,
        shards_done: 0,
        shards_poisoned: Vec::new(),
        drained: false,
        spawns: 0,
        respawns: 0,
        worker_deaths: 0,
        lease_expiries: 0,
        chaos_kills: 0,
        resume_hint: None,
    };

    // Materialize (or adopt) each shard's checkpoint. Every later spawn
    // is a `--resume` of these directories; a farm restart folds shards
    // that already finished and resumes the rest where their journals
    // left off.
    let mut assigned_before = vec![false; cfg.n_shards];
    for k in 0..cfg.n_shards {
        let dir = shard_dir(&cfg.dir, k);
        if poison_path(&dir).exists() {
            queue.poison(k);
            report.shards_poisoned.push(k);
            continue;
        }
        if dir.join("result.json").exists() {
            let meta = CampaignMeta::load(&dir.join("result.json"))?;
            if meta.config != cfg.campaign {
                return Err(FarmError::Config(format!(
                    "{} holds a result for a different campaign \
                     (its config does not match this run's --seed/--programs); \
                     use a fresh --dir or delete the stale shard directory",
                    dir.display()
                )));
            }
            validate_adopted_shard(cfg, k, &dir)?;
            fold(&mut merged, meta, &cfg.dir)?;
            queue.complete(k);
            report.shards_done += 1;
            continue;
        }
        if Checkpoint::config_path(&dir).exists() {
            // Mid-flight checkpoint from a previous (drained/crashed)
            // farm run: clear its stop file and let a worker resume it.
            validate_adopted_shard(cfg, k, &dir)?;
            std::fs::remove_file(Checkpoint::stop_path(&dir)).ok();
            assigned_before[k] = journal_len(&dir) > 0;
        } else {
            let spec = ShardSpec { index: k, count: cfg.n_shards };
            Checkpoint::create_sharded(&dir, &cfg.campaign, Some(spec))?;
        }
    }

    let started = Instant::now();
    let now_ms = |started: &Instant| started.elapsed().as_millis() as u64;
    let mut workers: Vec<WorkerHandle> = Vec::new();
    let mut worker_seq: u64 = 0;
    let mut draining = false;
    let mut drain_deadline_ms = u64::MAX;
    let mut last_publish_ms = 0u64;

    loop {
        let now = now_ms(&started);

        // 1. Drain check.
        if !draining && (shutdown_requested() || farm_stop_path(&cfg.dir).exists()) {
            draining = true;
            drain_deadline_ms = now + cfg.grace_ms;
            obs::add("farm.drains", 1);
            if obs::trace::active() {
                obs::trace::instant("farm.drain", vec![("workers", workers.len().into())]);
            }
            eprintln!(
                "farm: drain requested; waiting up to {} ms for {} worker(s) to flush",
                cfg.grace_ms,
                workers.len()
            );
            for w in &workers {
                let dir = shard_dir(&cfg.dir, w.shard);
                let _ = std::fs::write(Checkpoint::stop_path(&dir), b"drain");
                w.interrupt();
            }
        }

        // 2. Reap exited workers.
        let mut reaped: Vec<(usize, std::process::ExitStatus)> = Vec::new();
        for (i, w) in workers.iter_mut().enumerate() {
            if let Some(status) = w.try_wait().map_err(io_err)? {
                reaped.push((i, status));
            }
        }
        for (i, status) in reaped.into_iter().rev() {
            let w = workers.remove(i);
            let dir = shard_dir(&cfg.dir, w.shard);
            let result_path = dir.join("result.json");
            if status.success() && result_path.exists() {
                let meta = CampaignMeta::load(&result_path)?;
                fold(&mut merged, meta, &cfg.dir)?;
                queue.complete(w.shard);
                breaker.record_success(w.shard);
                backoffs[w.shard].reset();
                report.shards_done += 1;
                obs::add("farm.shards_done", 1);
                if obs::trace::active() {
                    obs::trace::instant("farm.shard_done", vec![("shard", w.shard.into())]);
                }
            } else if status.code() == Some(130) || (draining && status.success()) {
                // Drained at a unit boundary (or externally interrupted):
                // the checkpoint is flushed, not failed. Release without
                // penalty; under drain it will not be re-leased. Only a
                // clean exit or the interrupt code counts as a flush — a
                // segfault or OOM kill during a drain is still a death
                // below, so drain-time failures stay visible in the
                // report, metrics, and breaker.
                queue.release(w.shard, now, 0);
            } else {
                report.worker_deaths += 1;
                obs::add("farm.worker_deaths", 1);
                if obs::trace::active() {
                    obs::trace::instant("farm.worker_death", vec![("shard", w.shard.into())]);
                }
                // Journal growth during the failed attempt counts as
                // life: only no-progress crashes accumulate toward the
                // breaker, so a long shard that dies occasionally but
                // keeps advancing is never poisoned.
                if journal_len(&dir) > w.journal_len_at_spawn {
                    breaker.record_success(w.shard);
                    backoffs[w.shard].reset();
                }
                if breaker.record_crash(w.shard) {
                    poison_shard(cfg, w.shard, breaker.crashes(w.shard))?;
                    queue.poison(w.shard);
                    report.shards_poisoned.push(w.shard);
                    obs::add("farm.shards_poisoned", 1);
                    eprintln!(
                        "farm: shard {} poisoned after {} consecutive no-progress crashes ({})",
                        w.shard,
                        breaker.crashes(w.shard),
                        poison_path(&dir).display()
                    );
                } else {
                    let delay = backoffs[w.shard].next_delay_ms();
                    queue.release(w.shard, now, delay);
                }
            }
        }

        // 3. Expire hung leases (journal silence past the heartbeat
        // window). Kill the worker; the release/backoff happens here
        // because the kill reaps the child immediately.
        for shard in queue.expired(now) {
            if let Some(i) = workers.iter().position(|w| w.shard == shard) {
                let mut w = workers.remove(i);
                eprintln!(
                    "farm: shard {} lease expired (no journal growth for {} ms); killing worker {}",
                    shard,
                    cfg.heartbeat_ms,
                    w.pid()
                );
                w.kill();
                report.lease_expiries += 1;
                report.worker_deaths += 1;
                obs::add("farm.lease_expiries", 1);
                obs::add("farm.worker_deaths", 1);
                if obs::trace::active() {
                    obs::trace::instant("farm.lease_expiry", vec![("shard", shard.into())]);
                }
                // Mirror the reap path: journal growth during the lease
                // counts as life, so a hang after real progress starts a
                // fresh streak instead of accumulating toward poison.
                if journal_len(&shard_dir(&cfg.dir, shard)) > w.journal_len_at_spawn {
                    breaker.record_success(shard);
                    backoffs[shard].reset();
                }
                if breaker.record_crash(shard) {
                    poison_shard(cfg, shard, breaker.crashes(shard))?;
                    queue.poison(shard);
                    report.shards_poisoned.push(shard);
                    obs::add("farm.shards_poisoned", 1);
                } else {
                    let delay = backoffs[shard].next_delay_ms();
                    queue.release(shard, now, delay);
                }
            } else {
                // Lease with no live worker (spawn raced a drain):
                // just return it to the pool.
                queue.release(shard, now, 0);
            }
        }

        // 4. Chaos: kill a random worker that has made real progress.
        if !draining && !killer.exhausted() {
            let min_growth = killer.min_journal_growth();
            let candidates: Vec<ShardId> = workers
                .iter()
                .filter(|w| {
                    journal_len(&shard_dir(&cfg.dir, w.shard))
                        >= w.journal_len_at_spawn + min_growth
                })
                .map(|w| w.shard)
                .collect();
            if let Some(victim) = killer.pick(&candidates) {
                if let Some(w) = workers.iter_mut().find(|w| w.shard == victim) {
                    eprintln!(
                        "farm: chaos kill {} of {}: SIGKILL worker {} (shard {})",
                        killer.killed(),
                        cfg.chaos.kills,
                        w.pid(),
                        victim
                    );
                    w.kill();
                    report.chaos_kills += 1;
                    obs::add("farm.chaos_kills", 1);
                    if obs::trace::active() {
                        obs::trace::instant("farm.chaos_kill", vec![("shard", victim.into())]);
                    }
                    // The normal reap pass classifies the death next
                    // iteration — chaos goes through the exact recovery
                    // path a real crash would.
                }
            }
        }

        // 5. Heartbeats + spawns. The heartbeat is journal growth since
        // the *last poll* (a moving watermark), not since spawn — a
        // worker that makes progress and then wedges stops refreshing
        // its lease and expires on schedule.
        for w in &mut workers {
            let len = journal_len(&shard_dir(&cfg.dir, w.shard));
            if len > w.journal_len_last_seen {
                w.journal_len_last_seen = len;
                queue.heartbeat(w.shard, now);
            }
        }
        // A worker that has not journaled yet is still warming up; its
        // lease deadline stands from acquire/spawn time, which is the
        // hang detector for workers that never start.
        if !draining {
            while workers.len() < cfg.n_workers {
                worker_seq += 1;
                let Some(shard) = queue.acquire(now, worker_seq) else { break };
                let dir = shard_dir(&cfg.dir, shard);
                let len = journal_len(&dir);
                match WorkerHandle::spawn(&cfg.worker, worker_seq, shard, &dir, len) {
                    Ok(w) => {
                        report.spawns += 1;
                        obs::add("farm.spawns", 1);
                        if obs::trace::active() {
                            obs::trace::instant(
                                "farm.spawn",
                                vec![("shard", shard.into()), ("worker", worker_seq.into())],
                            );
                        }
                        if assigned_before[shard] {
                            report.respawns += 1;
                            obs::add("farm.respawns", 1);
                            obs::add("farm.reassignments", 1);
                        }
                        assigned_before[shard] = true;
                        workers.push(w);
                    }
                    Err(e) => {
                        // Spawn failure (fork limits, missing binary):
                        // treat like a crash so the breaker can stop a
                        // hopeless farm instead of spinning.
                        eprintln!("farm: failed to spawn worker for shard {shard}: {e}");
                        report.worker_deaths += 1;
                        obs::add("farm.worker_deaths", 1);
                        if breaker.record_crash(shard) {
                            poison_shard(cfg, shard, breaker.crashes(shard))?;
                            queue.poison(shard);
                            report.shards_poisoned.push(shard);
                            obs::add("farm.shards_poisoned", 1);
                        } else {
                            let delay = backoffs[shard].next_delay_ms();
                            queue.release(shard, now, delay);
                        }
                    }
                }
            }
        }

        // 6. Status endpoint.
        if let Some(s) = &status {
            if now >= last_publish_ms + 250 {
                last_publish_ms = now;
                s.publish(&status_snapshot(cfg, &queue, &workers, &report, now));
                s.publish_metrics(&metrics_exposition(&merged));
            }
        }

        // Termination.
        if draining {
            if workers.is_empty() {
                report.drained = true;
                break;
            }
            if now > drain_deadline_ms {
                eprintln!("farm: drain grace expired; hard-killing {} worker(s)", workers.len());
                for w in &mut workers {
                    w.kill();
                }
                workers.clear();
                report.drained = true;
                break;
            }
        } else if queue.all_settled() && workers.is_empty() {
            break;
        }

        std::thread::sleep(std::time::Duration::from_millis(cfg.poll_ms));
    }

    if let Some(s) = status {
        s.publish(&status_snapshot(cfg, &queue, &workers, &report, now_ms(&started)));
        s.publish_metrics(&metrics_exposition(&merged));
        s.shutdown();
    }

    if report.drained {
        report.resume_hint = Some(format!(
            "re-run the same farm command with --dir {} — completed shards fold back in, \
             in-flight shards resume from their journals",
            cfg.dir.display()
        ));
    }
    report.merged = merged;
    Ok(report)
}

/// Check that a pre-existing shard directory under `--dir` was produced
/// by *this* campaign configuration before adopting it on restart.
///
/// Reusing a farm directory with a different `--seed`/`--programs` (or
/// shard count) would otherwise surface only later as an opaque
/// `ConfigMismatch` deep inside the rolling merge — or, for the first
/// adopted shard, silently seed the merge with stale data. Fail fast
/// and name the offending directory instead.
fn validate_adopted_shard(cfg: &FarmConfig, shard: ShardId, dir: &Path) -> Result<(), FarmError> {
    validate_shard_dir(&cfg.campaign, cfg.n_shards, shard, dir)
}

/// The config-free core of adopted-shard validation, shared with the
/// fleet agent (which learns the campaign from its lease grant rather
/// than a `FarmConfig`).
pub(crate) fn validate_shard_dir(
    campaign: &CampaignConfig,
    n_shards: usize,
    shard: ShardId,
    dir: &Path,
) -> Result<(), FarmError> {
    if let Ok(json) = std::fs::read_to_string(Checkpoint::shard_path(dir)) {
        let spec: ShardSpec = serde_json::from_str(&json).map_err(io_err)?;
        if spec.index != shard || spec.count != n_shards {
            return Err(FarmError::Config(format!(
                "{} was checkpointed as shard {}/{} but this farm runs {} shards; \
                 use a fresh --dir or rerun with --shards {}",
                dir.display(),
                spec.index,
                spec.count,
                n_shards,
                spec.count
            )));
        }
    }
    if let Ok(json) = std::fs::read_to_string(Checkpoint::config_path(dir)) {
        let stored: CampaignConfig = serde_json::from_str(&json).map_err(io_err)?;
        if stored != *campaign {
            return Err(FarmError::Config(format!(
                "{} was checkpointed for a different campaign \
                 (its config.json does not match this run's --seed/--programs); \
                 use a fresh --dir or delete the stale shard directory",
                dir.display()
            )));
        }
    }
    Ok(())
}

/// Fold one finished shard into the rolling merge and persist it.
fn fold(
    merged: &mut Option<CampaignMeta>,
    shard_meta: CampaignMeta,
    root: &Path,
) -> Result<(), FarmError> {
    let next = match merged.take() {
        None => shard_meta,
        Some(acc) => CampaignMeta::merge_shards_partial(vec![acc, shard_meta])?,
    };
    next.save(&merged_path(root))?;
    obs::add("farm.merge_folds", 1);
    *merged = Some(next);
    Ok(())
}

/// Record a poisoned shard: which slice of the campaign it owned and
/// how to replay it, so the responsible seed range is never lost.
fn poison_shard(cfg: &FarmConfig, shard: ShardId, crashes: u32) -> Result<(), FarmError> {
    let dir = shard_dir(&cfg.dir, shard);
    let first_indices: Vec<u64> = (0..cfg.campaign.n_programs as u64)
        .filter(|i| (*i as usize) % cfg.n_shards == shard)
        .take(8)
        .collect();
    let record = serde_json::json!({
        "shard": shard,
        "shard_count": cfg.n_shards,
        "consecutive_crashes": crashes,
        "campaign_seed": cfg.campaign.seed,
        "n_programs": cfg.campaign.n_programs,
        "test_indices": format!("i ≡ {shard} (mod {})", cfg.n_shards),
        "first_test_indices": first_indices,
        "replay": format!(
            "varity-gpu campaign --resume {} (after deleting {})",
            dir.display(),
            poison_path(&dir).display()
        ),
    });
    let bytes = serde_json::to_vec_pretty(&record).map_err(io_err)?;
    difftest::checkpoint::atomic_write(&poison_path(&dir), &bytes).map_err(io_err)?;
    Ok(())
}

/// The `/metrics` body: the supervisor's own `farm.*` metrics merged
/// with the rolling shard merge's campaign telemetry. Both sides merge
/// order-independently (see `obs::MetricsSnapshot::merge` and the merge
/// proptests), so the exposition is the same whatever order shards
/// finished in.
fn metrics_exposition(merged: &Option<CampaignMeta>) -> String {
    let mut snap = obs::snapshot().filter_prefix("farm.");
    if let Some(metrics) = merged.as_ref().and_then(|m| m.metrics.as_ref()) {
        snap.merge(metrics);
    }
    obs::prom::render(&snap)
}

fn status_snapshot(
    cfg: &FarmConfig,
    queue: &WorkQueue,
    workers: &[WorkerHandle],
    report: &FarmReport,
    now_ms: u64,
) -> serde_json::Value {
    let (available, leased, done, poisoned) = queue.tally();
    let shard_states: Vec<String> = (0..cfg.n_shards)
        .map(|k| match queue.state(k) {
            LeaseState::Available { .. } => "available".into(),
            LeaseState::Leased { worker, .. } => format!("leased:{worker}"),
            LeaseState::Done => "done".into(),
            LeaseState::Poisoned => "poisoned".into(),
        })
        .collect();
    let farm_metrics = obs::snapshot().filter_prefix("farm.");
    serde_json::json!({
        "uptime_ms": now_ms,
        "n_shards": cfg.n_shards,
        "n_workers": cfg.n_workers,
        "shards": {
            "available": available,
            "leased": leased,
            "done": done,
            "poisoned": poisoned,
            "states": shard_states,
        },
        "workers_alive": workers.len(),
        "spawns": report.spawns,
        "respawns": report.respawns,
        "worker_deaths": report.worker_deaths,
        "lease_expiries": report.lease_expiries,
        "chaos_kills": report.chaos_kills,
        "drained": report.drained,
        "metrics": serde_json::to_value(&farm_metrics).unwrap_or(serde_json::Value::Null),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest::TestMode;
    use progen::Precision;

    fn tiny_config() -> CampaignConfig {
        let mut c = CampaignConfig::default_for(Precision::F32, TestMode::Direct);
        c.n_programs = 6;
        c.inputs_per_program = 2;
        c
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("farm-sup-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A worker spec that runs a shell script instead of the real CLI,
    /// so supervisor plumbing is testable without a cargo-built binary.
    fn script_worker(script: &str) -> WorkerSpec {
        let mut spec = WorkerSpec::new("/bin/sh");
        spec.prefix_args = vec!["-c".into(), script.into(), "farm-test-worker".into()];
        spec
    }

    #[test]
    fn rejects_zero_shards_and_zero_workers() {
        let cfg = FarmConfig::new(tiny_config(), 0, 1, temp_root("z0"), script_worker("exit 0"));
        assert!(matches!(run_farm(&cfg), Err(FarmError::Config(_))));
        let cfg = FarmConfig::new(tiny_config(), 1, 0, temp_root("z1"), script_worker("exit 0"));
        assert!(matches!(run_farm(&cfg), Err(FarmError::Config(_))));
    }

    #[test]
    fn always_crashing_workers_poison_every_shard() {
        let root = temp_root("poison");
        // $2 is "--resume <dir>": the script dies without journaling, so
        // the breaker sees pure no-progress crashes.
        let mut cfg = FarmConfig::new(tiny_config(), 2, 2, &root, script_worker("exit 7"));
        cfg.crash_threshold = 2;
        cfg.poll_ms = 5;
        cfg.backoff = BackoffPolicy { base_ms: 1, cap_ms: 2, jitter: 0.0 };
        let report = run_farm(&cfg).expect("farm runs");
        assert!(!report.drained);
        assert_eq!(report.shards_done, 0);
        assert_eq!(report.shards_poisoned.len(), 2, "both shards must trip the breaker");
        assert!(report.worker_deaths >= 4, "2 shards x threshold 2");
        assert!(report.merged.is_none());
        for k in 0..2 {
            let p = poison_path(&shard_dir(&root, k));
            assert!(p.exists(), "poison record for shard {k}");
            let record: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
            assert_eq!(record["consecutive_crashes"], 2);
            assert_eq!(record["shard_count"], 2);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn workers_that_finish_their_shards_complete_the_farm() {
        let root = temp_root("done");
        let config = tiny_config();
        // Fake workers: write a real per-shard result by regenerating
        // the shard from its spec (as the CLI would after running it),
        // here via a pre-serialized file the script copies into place.
        for k in 0..2usize {
            let dir = shard_dir(&root, k);
            std::fs::create_dir_all(&dir).unwrap();
            let mut meta = CampaignMeta::generate_shard(&config, k, 2);
            meta.sides_run = vec![];
            meta.save(&dir.join("canned.json")).unwrap();
        }
        let spec = script_worker("cp \"$2/canned.json\" \"$2/result.json\"");
        let mut cfg = FarmConfig::new(config.clone(), 2, 2, &root, spec);
        cfg.poll_ms = 5;
        let report = run_farm(&cfg).expect("farm runs");
        assert!(!report.drained);
        assert_eq!(report.shards_done, 2);
        assert!(report.shards_poisoned.is_empty());
        assert_eq!(report.worker_deaths, 0);
        let merged = report.merged.expect("merged report");
        assert_eq!(merged.tests.len(), config.n_programs, "all tests present");
        assert!(merged_path(&root).exists(), "rolling merge persisted");
        // Canonical order regardless of which worker finished first.
        let indices: Vec<u64> = merged.tests.iter().map(|t| t.index).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn farm_restart_adopts_finished_shards_without_respawning_them() {
        let root = temp_root("adopt");
        let config = tiny_config();
        // Shard 0 already finished in a "previous run".
        let done_dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&done_dir).unwrap();
        let mut meta0 = CampaignMeta::generate_shard(&config, 0, 2);
        meta0.sides_run = vec![];
        meta0.save(&done_dir.join("result.json")).unwrap();
        // Shard 1's worker finishes normally.
        let dir1 = shard_dir(&root, 1);
        std::fs::create_dir_all(&dir1).unwrap();
        let mut meta1 = CampaignMeta::generate_shard(&config, 1, 2);
        meta1.sides_run = vec![];
        meta1.save(&dir1.join("canned.json")).unwrap();
        let spec = script_worker("cp \"$2/canned.json\" \"$2/result.json\"");
        let mut cfg = FarmConfig::new(config.clone(), 2, 4, &root, spec);
        cfg.poll_ms = 5;
        let report = run_farm(&cfg).expect("farm runs");
        assert_eq!(report.shards_done, 2);
        assert_eq!(report.spawns, 1, "only shard 1 needed a worker");
        assert_eq!(report.merged.unwrap().tests.len(), config.n_programs);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Run a farm on a watchdog thread so a regression that makes the
    /// event loop non-terminating fails the test instead of hanging it.
    fn run_farm_with_watchdog(cfg: FarmConfig) -> Result<FarmReport, FarmError> {
        let handle = std::thread::spawn(move || run_farm(&cfg));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !handle.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "farm loop failed to terminate within 60 s"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        handle.join().expect("no panic")
    }

    #[test]
    fn worker_that_progresses_then_hangs_still_expires() {
        let root = temp_root("hang-after-progress");
        // First attempt journals one byte then wedges; every respawn
        // wedges without progress. The moving-watermark heartbeat must
        // expire the first attempt too — under the old since-spawn
        // comparison its lease was refreshed forever and the farm never
        // terminated.
        let script = "if [ ! -f \"$2/mark\" ]; then : > \"$2/mark\"; \
                      printf x >> \"$2/journal.bin\"; fi; sleep 30";
        let mut cfg = FarmConfig::new(tiny_config(), 1, 1, &root, script_worker(script));
        cfg.heartbeat_ms = 200;
        cfg.poll_ms = 5;
        cfg.crash_threshold = 2;
        cfg.backoff = BackoffPolicy { base_ms: 1, cap_ms: 2, jitter: 0.0 };
        let report = run_farm_with_watchdog(cfg).expect("farm runs");
        assert!(report.lease_expiries >= 2, "both the progressing and the stuck attempt expire");
        assert_eq!(report.shards_poisoned, vec![0], "no-progress hangs trip the breaker");
        assert!(report.worker_deaths >= 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn crash_during_drain_is_still_counted_as_a_death() {
        let root = temp_root("drain-crash");
        std::fs::create_dir_all(&root).unwrap();
        // The worker segfault-alikes (exit 9) well after the drain
        // starts: the exit must be classified as a death, not a flush.
        let spec = script_worker("sleep 0.4; exit 9");
        let mut cfg = FarmConfig::new(tiny_config(), 1, 1, &root, spec);
        cfg.poll_ms = 5;
        cfg.grace_ms = 5_000;
        let handle = {
            let cfg = cfg.clone();
            std::thread::spawn(move || run_farm(&cfg))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        std::fs::write(farm_stop_path(&root), b"x").unwrap();
        let report = handle.join().expect("no panic").expect("farm runs");
        assert!(report.drained);
        assert!(report.worker_deaths >= 1, "drain-time crash visible in the report");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn restart_rejects_a_result_from_a_different_campaign() {
        let root = temp_root("stale-result");
        let dir = shard_dir(&root, 0);
        std::fs::create_dir_all(&dir).unwrap();
        let mut other = tiny_config();
        other.n_programs += 1;
        let mut stale = CampaignMeta::generate_shard(&other, 0, 2);
        stale.sides_run = vec![];
        stale.save(&dir.join("result.json")).unwrap();
        let cfg = FarmConfig::new(tiny_config(), 2, 1, &root, script_worker("exit 0"));
        match run_farm(&cfg) {
            Err(FarmError::Config(msg)) => {
                assert!(msg.contains("shard-000"), "error names the stale directory: {msg}")
            }
            other => panic!("expected fail-fast config error, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn restart_rejects_a_checkpoint_with_a_different_shard_count() {
        let root = temp_root("stale-spec");
        let config = tiny_config();
        // A previous farm over the same campaign but dealt into 3
        // shards left a mid-flight checkpoint behind.
        let dir = shard_dir(&root, 0);
        let spec = ShardSpec { index: 0, count: 3 };
        Checkpoint::create_sharded(&dir, &config, Some(spec)).unwrap();
        let cfg = FarmConfig::new(config, 2, 1, &root, script_worker("exit 0"));
        match run_farm(&cfg) {
            Err(FarmError::Config(msg)) => {
                assert!(msg.contains("0/3"), "error names the stored shard spec: {msg}")
            }
            other => panic!("expected fail-fast config error, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stop_file_drains_the_farm_with_exit_hint() {
        let root = temp_root("drain");
        std::fs::create_dir_all(&root).unwrap();
        // Request the drain before the farm even starts: workers never
        // spawn, every shard stays available, and the report says so.
        std::fs::write(farm_stop_path(&root), b"x").unwrap();
        // run_farm clears stale stop files, so write it again from a
        // slow worker's perspective instead: use a worker that sleeps,
        // then drop the stop file mid-run.
        let spec = script_worker("sleep 5");
        let mut cfg = FarmConfig::new(tiny_config(), 2, 1, &root, spec);
        cfg.poll_ms = 5;
        cfg.grace_ms = 400;
        let handle = {
            let cfg = cfg.clone();
            std::thread::spawn(move || run_farm(&cfg))
        };
        std::thread::sleep(std::time::Duration::from_millis(150));
        std::fs::write(farm_stop_path(&root), b"x").unwrap();
        let report = handle.join().expect("no panic").expect("farm runs");
        assert!(report.drained);
        assert!(report.resume_hint.is_some());
        assert_eq!(report.shards_done, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn metrics_exposition_merges_farm_and_campaign_series() {
        obs::add("farm.spawns", 2);
        let mut meta = CampaignMeta::generate(&tiny_config());
        let mut campaign = obs::MetricsSnapshot::default();
        campaign.counters.insert("campaign.runs_done".into(), 12);
        let h = obs::Histogram::new();
        h.record(1500);
        campaign.hists.insert("span.campaign.unit".into(), h.snapshot());
        meta.metrics = Some(campaign);

        let text = metrics_exposition(&Some(meta));
        assert!(text.contains("farm_spawns"), "{text}");
        assert!(text.contains("campaign_runs_done 12"), "{text}");
        assert!(text.contains("# TYPE span_campaign_unit histogram"), "{text}");
        assert!(text.contains("span_campaign_unit_count 1"), "{text}");
        // No merged campaign yet: only the farm's own series appear.
        let farm_only = metrics_exposition(&None);
        assert!(!farm_only.contains("campaign_runs_done"), "{farm_only}");
    }
}
