//! Worker subprocess lifecycle: spawn, probe, interrupt, kill.
//!
//! A worker is just the existing CLI running the checkpointed campaign
//! path against one shard's checkpoint directory:
//!
//! ```text
//! <program> [prefix-args…] --resume <shard-dir> --out <shard-dir>/result.json
//! ```
//!
//! Every spawn is a resume — the supervisor materializes the shard
//! checkpoint up front, so first assignment, crash recovery, and hang
//! recovery all run the same command line. On Unix each worker is moved
//! into its own process group so a terminal Ctrl-C reaches only the
//! supervisor (which then drains the fleet deliberately) and so the
//! `signals` feature can interrupt a worker's whole subtree at once.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use crate::lease::ShardId;

/// How to launch a worker: the binary plus the arguments that precede
/// the per-shard `--resume`/`--out` pair (e.g. `["campaign"]` for the
/// main CLI's subcommand).
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Program to execute (usually the current `varity-gpu` binary).
    pub program: PathBuf,
    /// Arguments placed before the shard-specific ones.
    pub prefix_args: Vec<String>,
    /// Extra environment variables for each worker (e.g. a
    /// `RAYON_NUM_THREADS` budget so `n_workers` processes don't
    /// oversubscribe the machine).
    pub env: Vec<(String, String)>,
}

impl WorkerSpec {
    /// Spec with no prefix args and no extra environment.
    pub fn new(program: impl Into<PathBuf>) -> WorkerSpec {
        WorkerSpec { program: program.into(), prefix_args: Vec::new(), env: Vec::new() }
    }
}

/// A live (or recently dead) worker process bound to one shard lease.
#[derive(Debug)]
pub struct WorkerHandle {
    /// Supervisor-assigned worker id (monotonic across the run; also
    /// the id stamped into the shard's lease).
    pub id: u64,
    /// Shard this worker is running.
    pub shard: ShardId,
    /// Journal byte-length observed at spawn time, for whole-lease
    /// progress classification and chaos-candidate selection.
    pub journal_len_at_spawn: u64,
    /// Journal byte-length at the supervisor's most recent poll: the
    /// moving watermark behind progress heartbeats. Growth past *this*
    /// (not the spawn-time length) refreshes the lease, so a worker
    /// that advances and then wedges stops heartbeating and expires.
    pub journal_len_last_seen: u64,
    child: Child,
}

impl WorkerHandle {
    /// Spawn a worker for `shard` against `shard_dir`, logging its
    /// stderr to `<shard_dir>/worker.log` (appended across respawns so
    /// the crash history of a poison shard survives for triage).
    pub fn spawn(
        spec: &WorkerSpec,
        id: u64,
        shard: ShardId,
        shard_dir: &Path,
        journal_len_at_spawn: u64,
    ) -> std::io::Result<WorkerHandle> {
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(shard_dir.join("worker.log"))?;
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.prefix_args)
            .arg("--resume")
            .arg(shard_dir)
            .arg("--out")
            .arg(shard_dir.join("result.json"))
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::from(log));
        for (k, v) in &spec.env {
            cmd.env(k, v);
        }
        #[cfg(unix)]
        {
            use std::os::unix::process::CommandExt;
            // Own process group: terminal signals hit only the
            // supervisor, and group-wide kills can't orphan children.
            cmd.process_group(0);
        }
        let child = cmd.spawn()?;
        Ok(WorkerHandle {
            id,
            shard,
            journal_len_at_spawn,
            journal_len_last_seen: journal_len_at_spawn,
            child,
        })
    }

    /// OS pid of the worker.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Non-blocking reap: `Some(status)` once the worker has exited.
    pub fn try_wait(&mut self) -> std::io::Result<Option<std::process::ExitStatus>> {
        self.child.try_wait()
    }

    /// Hard-kill the worker (SIGKILL on Unix) and reap it.
    ///
    /// With the `signals` feature the SIGKILL goes to the worker's
    /// whole process group, so a grandchild spawned by the worker
    /// cannot outlive a hang/chaos kill and keep appending to the
    /// shard's journal concurrently with the respawned worker. Without
    /// the feature only the direct child is killed — workers must then
    /// remain single-process for resume semantics to hold.
    pub fn kill(&mut self) {
        #[cfg(all(unix, feature = "signals"))]
        {
            let pgid = self.child.id() as i32;
            if pgid > 0 {
                // Negative pid = the whole process group.
                unsafe {
                    libc::kill(-pgid, libc::SIGKILL);
                }
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Politely interrupt the worker so it drains at a unit boundary.
    ///
    /// With the `signals` feature this sends SIGINT to the worker's
    /// process group (satellite: no orphaned grandchild can outlive the
    /// drain holding a checkpoint lock). Without it this is a no-op —
    /// the supervisor's stop files already drain workers cooperatively,
    /// so the signal is an accelerant, not a requirement.
    pub fn interrupt(&self) {
        #[cfg(all(unix, feature = "signals"))]
        {
            let pgid = self.child.id() as i32;
            if pgid > 0 {
                // Negative pid = the whole process group.
                unsafe {
                    libc::kill(-pgid, libc::SIGINT);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_runs_resume_against_the_shard_dir() {
        // Use `true`-like /bin/sh so the test needs no cargo-built
        // binary; we only check plumbing: spawn succeeds, exit is
        // reaped, and the log file exists.
        let dir = std::env::temp_dir().join(format!("farm-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = WorkerSpec::new("/bin/sh");
        spec.prefix_args = vec!["-c".into(), "exit 0".into(), "--".into()];
        let mut w = WorkerHandle::spawn(&spec, 1, 0, &dir, 0).expect("spawn");
        assert_eq!(w.shard, 0);
        let status = w.child.wait().expect("wait");
        assert!(status.success());
        assert!(dir.join("worker.log").exists(), "stderr log created");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(all(unix, feature = "signals"))]
    #[test]
    fn kill_takes_down_the_whole_process_group() {
        let dir = std::env::temp_dir().join(format!("farm-groupkill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The worker forks a grandchild and parks; after kill() the
        // grandchild must be gone too, or it could keep appending to
        // the shard journal alongside the respawned worker.
        let mut spec = WorkerSpec::new("/bin/sh");
        spec.prefix_args = vec![
            "-c".into(),
            "sleep 30 & echo $! > \"$2/grandchild.pid\"; sleep 30".into(),
            "--".into(),
        ];
        let mut w = WorkerHandle::spawn(&spec, 3, 0, &dir, 0).expect("spawn");
        let pid_file = dir.join("grandchild.pid");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !pid_file.exists() {
            assert!(std::time::Instant::now() < deadline, "grandchild never started");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let pid: i32 = std::fs::read_to_string(&pid_file).unwrap().trim().parse().unwrap();
        w.kill();
        // The orphaned grandchild lingers as a zombie until init reaps
        // it; poll rather than probe once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let gone = unsafe { libc::kill(pid, 0) } != 0;
            let zombie = std::fs::read_to_string(format!("/proc/{pid}/stat"))
                .map(|s| s.contains(") Z "))
                .unwrap_or(true);
            if gone || zombie {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "grandchild {pid} survived the group kill"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_reaps_a_long_running_worker() {
        let dir = std::env::temp_dir().join(format!("farm-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = WorkerSpec::new("/bin/sh");
        spec.prefix_args = vec!["-c".into(), "sleep 30".into(), "--".into()];
        let mut w = WorkerHandle::spawn(&spec, 2, 0, &dir, 0).expect("spawn");
        assert!(w.try_wait().expect("try_wait").is_none(), "still running");
        w.kill();
        assert!(w.try_wait().expect("reaped").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
