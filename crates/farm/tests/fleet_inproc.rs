//! In-process fleet integration: a real coordinator socket, two real
//! agents with subprocess workers, and the seeded network adversary —
//! proving the chaos-tortured fleet merges byte-identical to a calm
//! run, with zero shards lost and zero double-merged.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use difftest::metadata::CampaignMeta;
use difftest::{CampaignConfig, TestMode};
use farm::supervisor::shard_dir;
use farm::{
    run_agent, run_coordinator, AgentConfig, AgentReport, CoordConfig, CoordReport, NetChaosConfig,
    WorkerSpec,
};
use progen::Precision;

const N_SHARDS: usize = 5;

fn tiny_config() -> CampaignConfig {
    let mut c = CampaignConfig::default_for(Precision::F32, TestMode::Direct);
    c.n_programs = 10;
    c.inputs_per_program = 2;
    c
}

/// Workers are `/bin/sh` stand-ins that "finish" their shard by copying
/// a canned, deterministic result into place — the same trick the
/// supervisor tests use, so the fleet plumbing is testable without a
/// cargo-built CLI binary.
fn script_worker() -> WorkerSpec {
    let mut spec = WorkerSpec::new("/bin/sh");
    spec.prefix_args =
        vec!["-c".into(), "cp \"$2/canned.json\" \"$2/result.json\"".into(), "fleet-test".into()];
    spec
}

/// Pre-place every shard's canned result under an agent's dir (agents
/// race for leases, so each must be able to run any shard).
fn seed_canned(agent_dir: &Path, config: &CampaignConfig) {
    for k in 0..N_SHARDS {
        let dir = shard_dir(agent_dir, k);
        std::fs::create_dir_all(&dir).unwrap();
        let mut meta = CampaignMeta::generate_shard(config, k, N_SHARDS);
        meta.sides_run = vec![];
        meta.save(&dir.join("canned.json")).unwrap();
    }
}

fn wait_for_addr(coord_dir: &Path) -> String {
    let path = coord_dir.join("coord.addr");
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if let Ok(s) = std::fs::read_to_string(&path) {
            if !s.trim().is_empty() {
                return s.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "coordinator never published its address");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn join_with_watchdog<T: Send + 'static>(
    handle: std::thread::JoinHandle<T>,
    what: &str,
    secs: u64,
) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "{what} failed to terminate within {secs}s");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.join().expect("no panic")
}

fn run_fleet(tag: &str, chaos_budget: u32) -> (CoordReport, Vec<AgentReport>) {
    let root = std::env::temp_dir().join(format!("fleet-inproc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let coord_dir: PathBuf = root.join("coord");
    let config = tiny_config();

    let mut ccfg = CoordConfig::new(config.clone(), N_SHARDS, "127.0.0.1:0", &coord_dir);
    ccfg.heartbeat_ms = 2_000;
    ccfg.poll_ms = 10;
    ccfg.linger_ms = 4_000;
    let coord = std::thread::spawn(move || run_coordinator(&ccfg));
    let addr = wait_for_addr(&coord_dir);

    let mut agents = Vec::new();
    for i in 0..2u64 {
        let dir = root.join(format!("agent-{i}"));
        seed_canned(&dir, &config);
        let mut acfg = AgentConfig::new(&addr, &dir, 2, script_worker());
        acfg.name = format!("agent-{i}");
        acfg.poll_ms = 10;
        acfg.seed = 100 + i;
        acfg.io_timeout_ms = 1_000;
        acfg.max_offline_ms = 8_000;
        acfg.net_chaos = NetChaosConfig {
            budget: chaos_budget,
            seed: 7 + i,
            max_delay_ms: 80,
            partition_ms: 300,
        };
        agents.push(std::thread::spawn(move || run_agent(&acfg)));
    }

    let agent_reports: Vec<AgentReport> = agents
        .into_iter()
        .enumerate()
        .map(|(i, h)| join_with_watchdog(h, &format!("agent {i}"), 90).expect("agent runs"))
        .collect();
    let coord_report =
        join_with_watchdog(coord, "coordinator", 90).expect("coordinator runs");
    std::fs::remove_dir_all(&root).ok();
    (coord_report, agent_reports)
}

fn assert_complete(coord: &CoordReport, agents: &[AgentReport]) {
    assert!(!coord.drained, "fleet must finish, not drain");
    assert_eq!(coord.shards_done, N_SHARDS, "every shard folded exactly once");
    assert!(coord.shards_poisoned.is_empty());
    assert!(coord.grants >= N_SHARDS as u64);
    let merged = coord.merged.as_ref().expect("merged report");
    assert_eq!(merged.tests.len(), tiny_config().n_programs, "zero units lost");
    let indices: Vec<u64> = merged.tests.iter().map(|t| t.index).collect();
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(indices, sorted, "canonical order, zero units double-merged");
    let completed: u64 = agents.iter().map(|a| a.shards_completed).sum();
    assert_eq!(completed, N_SHARDS as u64, "agents account for every completion");
}

#[test]
fn calm_fleet_completes_with_every_shard_counted_once() {
    let (coord, agents) = run_fleet("calm", 0);
    assert_complete(&coord, &agents);
    assert_eq!(coord.fence_rejections, 0, "calm run needs no fencing");
    assert!(agents.iter().all(|a| a.all_done), "both agents heard the verdict");
    assert!(agents.iter().all(|a| !a.gave_up && !a.drained));
}

#[test]
fn chaos_tortured_fleet_merges_byte_identical_to_a_calm_run() {
    let (calm, calm_agents) = run_fleet("ref", 0);
    let (chaos, chaos_agents) = run_fleet("chaos", 24);
    assert_complete(&calm, &calm_agents);
    assert_complete(&chaos, &chaos_agents);
    let injected: u32 = chaos_agents.iter().map(|a| a.faults_injected).sum();
    assert!(injected > 0, "the chaos budget must actually fire");
    let calm_bytes = serde_json::to_string(calm.merged.as_ref().unwrap()).unwrap();
    let chaos_bytes = serde_json::to_string(chaos.merged.as_ref().unwrap()).unwrap();
    assert_eq!(
        calm_bytes, chaos_bytes,
        "dropped/duplicated/truncated/partitioned exchanges must not change the merge"
    );
}
