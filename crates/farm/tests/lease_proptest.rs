//! Property tests for the farm's lease queue under adversarial death
//! schedules.
//!
//! The farm's core promise: however workers die — crash mid-shard, hang
//! until the lease expires, or never get to run — every work unit lands
//! in the merged report **exactly once**. The simulation below drives a
//! [`WorkQueue`] with a proptest-chosen event schedule over virtual
//! time, modelling each shard's checkpoint journal the way the real
//! worker does (resume = continue after the journaled prefix; journals
//! survive deaths). The exactly-once property then falls out of two
//! invariants the test asserts directly:
//!
//! 1. the queue never leases one shard to two workers at once, and
//! 2. a resumed worker re-executes nothing the journal already holds.
//!
//! A final check ties the simulation to the real metadata protocol:
//! completed shards are regenerated with `CampaignMeta::generate_shard`
//! and folded in completion order through `merge_shards`, and every test
//! index must appear exactly once in the merged report.

use std::collections::BTreeMap;

use difftest::metadata::CampaignMeta;
use difftest::{CampaignConfig, TestMode};
use farm::{LeaseState, WorkQueue};
use progen::Precision;
use proptest::prelude::*;

/// One scheduler step per live worker, drawn from the proptest schedule.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Execute the shard's next unit (journaling it) or finish the shard.
    Progress,
    /// Die right now; the journal survives.
    Crash,
    /// Do nothing: no journal growth, no heartbeat. Enough of these in a
    /// row and the lease expires.
    Hang,
}

fn event(byte: u8) -> Event {
    match byte % 10 {
        0 | 1 | 2 => Event::Crash,
        3 | 4 => Event::Hang,
        _ => Event::Progress,
    }
}

/// The units shard `k` of `n` owns: indices ≡ k (mod n), in order.
fn shard_units(n_units: u64, shard: usize, n_shards: usize) -> Vec<u64> {
    (0..n_units).filter(|i| (*i as usize) % n_shards == shard).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_unit_lands_exactly_once_under_random_worker_death(
        n_shards in 1usize..6,
        n_workers in 1usize..5,
        n_units in 1u64..32,
        schedule in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        const HEARTBEAT_MS: u64 = 40;
        const STEP_MS: u64 = 10;

        let mut queue = WorkQueue::new(n_shards, HEARTBEAT_MS);
        // Simulated per-shard checkpoint journals: survive worker death,
        // define the resume point. A unit is "executed" when pushed.
        let mut journals: Vec<Vec<u64>> = vec![Vec::new(); n_shards];
        let mut exec_count: BTreeMap<u64, u64> = BTreeMap::new();
        // shard -> worker id currently simulated as running it.
        let mut active: BTreeMap<usize, u64> = BTreeMap::new();
        let mut completion_order: Vec<usize> = Vec::new();
        let mut now: u64 = 0;
        let mut worker_seq: u64 = 0;
        let mut cursor = 0usize; // schedule cursor; Progress once exhausted

        let mut steps = 0u32;
        while !queue.all_settled() {
            steps += 1;
            prop_assert!(
                steps < 100_000,
                "scheduler failed to settle: tally {:?}",
                queue.tally()
            );
            now += STEP_MS;

            // Fill free worker slots from the queue.
            while active.len() < n_workers {
                worker_seq += 1;
                let Some(shard) = queue.acquire(now, worker_seq) else { break };
                // Invariant 1: no double-lease.
                prop_assert!(
                    !active.contains_key(&shard),
                    "shard {shard} leased while already active"
                );
                active.insert(shard, worker_seq);
            }

            // Drive each live worker by one scheduled event.
            for shard in active.keys().copied().collect::<Vec<_>>() {
                let ev = schedule.get(cursor).copied().map(event).unwrap_or(Event::Progress);
                cursor += 1;
                match ev {
                    Event::Crash => {
                        active.remove(&shard);
                        queue.release(shard, now, 0);
                    }
                    Event::Hang => {} // silence; expiry below may reap it
                    Event::Progress => {
                        let units = shard_units(n_units, shard, n_shards);
                        // Invariant 2: resume continues after the
                        // journaled prefix — never before it.
                        let done = journals[shard].len();
                        if done < units.len() {
                            journals[shard].push(units[done]);
                            *exec_count.entry(units[done]).or_insert(0) += 1;
                            queue.heartbeat(shard, now);
                        } else {
                            active.remove(&shard);
                            queue.complete(shard);
                            completion_order.push(shard);
                        }
                    }
                }
            }

            // Hung leases expire and get reassigned; their journals stay.
            for shard in queue.expired(now) {
                prop_assert!(
                    active.contains_key(&shard),
                    "expired lease for shard {shard} with no active worker"
                );
                active.remove(&shard);
                queue.release(shard, now, 0);
            }
        }

        // Exactly-once at the unit level, however the deaths fell.
        prop_assert_eq!(exec_count.len() as u64, n_units, "all units executed");
        for (unit, count) in &exec_count {
            prop_assert_eq!(*count, 1, "unit {} executed {} times", unit, count);
        }
        // Each journal is exactly its shard's unit list, in order.
        for shard in 0..n_shards {
            prop_assert_eq!(&journals[shard], &shard_units(n_units, shard, n_shards));
            prop_assert_eq!(queue.state(shard), LeaseState::Done);
        }
        prop_assert_eq!(completion_order.len(), n_shards);
    }
}

/// Ties the simulation to the real protocol: merging completed shards in
/// an arbitrary completion order yields a report where every test index
/// appears exactly once.
#[test]
fn merged_report_has_every_test_exactly_once_in_any_completion_order() {
    let config = CampaignConfig::default_for(Precision::F32, TestMode::Direct).with_programs(11);
    let n_shards = 4;
    // A completion order a chaotic farm might produce.
    for order in [[2, 0, 3, 1], [3, 2, 1, 0], [1, 3, 0, 2]] {
        let mut merged: Option<CampaignMeta> = None;
        for shard in order {
            let piece = CampaignMeta::generate_shard(&config, shard, n_shards);
            merged = Some(match merged.take() {
                None => piece,
                Some(acc) => {
                    CampaignMeta::merge_shards_partial(vec![acc, piece]).expect("protocol")
                }
            });
        }
        let merged = merged.unwrap();
        let indices: Vec<u64> = merged.tests.iter().map(|t| t.index).collect();
        let expect: Vec<u64> = (0..config.n_programs as u64).collect();
        assert_eq!(indices, expect, "order {order:?}: each index exactly once, sorted");
    }
}
