//! Property tests for the farm's lease queue under adversarial death
//! schedules.
//!
//! The farm's core promise: however workers die — crash mid-shard, hang
//! until the lease expires, or never get to run — every work unit lands
//! in the merged report **exactly once**. The simulation below drives a
//! [`WorkQueue`] with a proptest-chosen event schedule over virtual
//! time, modelling each shard's checkpoint journal the way the real
//! worker does (resume = continue after the journaled prefix; journals
//! survive deaths). The exactly-once property then falls out of two
//! invariants the test asserts directly:
//!
//! 1. the queue never leases one shard to two workers at once, and
//! 2. a resumed worker re-executes nothing the journal already holds.
//!
//! A final check ties the simulation to the real metadata protocol:
//! completed shards are regenerated with `CampaignMeta::generate_shard`
//! and folded in completion order through `merge_shards`, and every test
//! index must appear exactly once in the merged report.

use std::collections::BTreeMap;

use difftest::metadata::CampaignMeta;
use difftest::{CampaignConfig, TestMode};
use farm::proto::{Reply, Request};
use farm::{CoordEvent, CoordState, LeaseState, WorkQueue};
use progen::Precision;
use proptest::prelude::*;

/// One scheduler step per live worker, drawn from the proptest schedule.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Execute the shard's next unit (journaling it) or finish the shard.
    Progress,
    /// Die right now; the journal survives.
    Crash,
    /// Do nothing: no journal growth, no heartbeat. Enough of these in a
    /// row and the lease expires.
    Hang,
}

fn event(byte: u8) -> Event {
    match byte % 10 {
        0 | 1 | 2 => Event::Crash,
        3 | 4 => Event::Hang,
        _ => Event::Progress,
    }
}

/// The units shard `k` of `n` owns: indices ≡ k (mod n), in order.
fn shard_units(n_units: u64, shard: usize, n_shards: usize) -> Vec<u64> {
    (0..n_units).filter(|i| (*i as usize) % n_shards == shard).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_unit_lands_exactly_once_under_random_worker_death(
        n_shards in 1usize..6,
        n_workers in 1usize..5,
        n_units in 1u64..32,
        schedule in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        const HEARTBEAT_MS: u64 = 40;
        const STEP_MS: u64 = 10;

        let mut queue = WorkQueue::new(n_shards, HEARTBEAT_MS);
        // Simulated per-shard checkpoint journals: survive worker death,
        // define the resume point. A unit is "executed" when pushed.
        let mut journals: Vec<Vec<u64>> = vec![Vec::new(); n_shards];
        let mut exec_count: BTreeMap<u64, u64> = BTreeMap::new();
        // shard -> worker id currently simulated as running it.
        let mut active: BTreeMap<usize, u64> = BTreeMap::new();
        let mut completion_order: Vec<usize> = Vec::new();
        let mut now: u64 = 0;
        let mut worker_seq: u64 = 0;
        let mut cursor = 0usize; // schedule cursor; Progress once exhausted

        let mut steps = 0u32;
        while !queue.all_settled() {
            steps += 1;
            prop_assert!(
                steps < 100_000,
                "scheduler failed to settle: tally {:?}",
                queue.tally()
            );
            now += STEP_MS;

            // Fill free worker slots from the queue.
            while active.len() < n_workers {
                worker_seq += 1;
                let Some(shard) = queue.acquire(now, worker_seq) else { break };
                // Invariant 1: no double-lease.
                prop_assert!(
                    !active.contains_key(&shard),
                    "shard {shard} leased while already active"
                );
                active.insert(shard, worker_seq);
            }

            // Drive each live worker by one scheduled event.
            for shard in active.keys().copied().collect::<Vec<_>>() {
                let ev = schedule.get(cursor).copied().map(event).unwrap_or(Event::Progress);
                cursor += 1;
                match ev {
                    Event::Crash => {
                        active.remove(&shard);
                        queue.release(shard, now, 0);
                    }
                    Event::Hang => {} // silence; expiry below may reap it
                    Event::Progress => {
                        let units = shard_units(n_units, shard, n_shards);
                        // Invariant 2: resume continues after the
                        // journaled prefix — never before it.
                        let done = journals[shard].len();
                        if done < units.len() {
                            journals[shard].push(units[done]);
                            *exec_count.entry(units[done]).or_insert(0) += 1;
                            queue.heartbeat(shard, now);
                        } else {
                            active.remove(&shard);
                            queue.complete(shard);
                            completion_order.push(shard);
                        }
                    }
                }
            }

            // Hung leases expire and get reassigned; their journals stay.
            for shard in queue.expired(now) {
                prop_assert!(
                    active.contains_key(&shard),
                    "expired lease for shard {shard} with no active worker"
                );
                active.remove(&shard);
                queue.release(shard, now, 0);
            }
        }

        // Exactly-once at the unit level, however the deaths fell.
        prop_assert_eq!(exec_count.len() as u64, n_units, "all units executed");
        for (unit, count) in &exec_count {
            prop_assert_eq!(*count, 1, "unit {} executed {} times", unit, count);
        }
        // Each journal is exactly its shard's unit list, in order.
        for shard in 0..n_shards {
            prop_assert_eq!(&journals[shard], &shard_units(n_units, shard, n_shards));
            prop_assert_eq!(queue.state(shard), LeaseState::Done);
        }
        prop_assert_eq!(completion_order.len(), n_shards);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The fleet coordinator's promise, as a property: drive
    /// [`CoordState`] with a proptest-chosen interleaving of grants,
    /// agent silences, **duplicated** completions, **delayed** zombie
    /// messages, and full **coordinator restarts** (journal replay with
    /// an epoch bump), and the final merged report still contains every
    /// test index exactly once — and a final replay of the journal
    /// reproduces it byte-identically.
    #[test]
    fn coordinator_is_exactly_once_under_duplication_delay_and_restarts(
        n_shards in 1usize..5,
        schedule in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        const HB: u64 = 40;
        let config =
            CampaignConfig::default_for(Precision::F32, TestMode::Direct).with_programs(8);
        let mut events: Vec<CoordEvent> = Vec::new();
        let mut state =
            CoordState::replay(config.clone(), n_shards, HB, false, &events).expect("fresh state");
        // Mirror run_coordinator: every (re)start journals its epoch, so
        // even a restart with no traffic in between still bumps it.
        events.push(CoordEvent::Start { epoch: state.epoch(), n_shards });
        let mut now: u64 = 0;
        // Live grants this simulated agent still intends to finish.
        let mut held: Vec<(usize, u64, u64)> = Vec::new();
        // Identities orphaned by silence or restart; their messages may
        // still arrive arbitrarily late (the partitioned-zombie case).
        let mut stale: Vec<(usize, u64, u64)> = Vec::new();
        // Completions the coordinator acked; the wire may replay them.
        let mut delivered: Vec<(usize, u64, u64)> = Vec::new();
        let mut cursor = 0usize;
        let mut steps = 0u32;

        while !state.all_settled() {
            steps += 1;
            prop_assert!(steps < 10_000, "failed to settle: tally {:?}", state.tally());
            now += 10;
            let action = match schedule.get(cursor).copied() {
                Some(b) => b % 8,
                // Schedule exhausted: deterministically finish — deliver
                // what is held, lease what is free, expire the ghosts.
                None => if held.is_empty() { 0 } else { 3 },
            };
            cursor += 1;
            match action {
                0 | 1 => {
                    // An agent asks for work.
                    let (reply, evs) =
                        state.handle(&Request::Lease { agent: "sim".into() }, now);
                    events.extend(evs);
                    match reply {
                        Reply::Grant { shard, epoch, fence, .. } => {
                            prop_assert!(
                                !held.iter().any(|h| h.0 == shard),
                                "shard {} granted while already held",
                                shard
                            );
                            held.push((shard, epoch, fence));
                        }
                        Reply::Wait { .. } => {
                            if held.is_empty() {
                                // Everything is leased to ghosts; let
                                // their keepalive silence expire them.
                                now += HB + 10;
                                events.extend(state.tick(now));
                            }
                        }
                        Reply::AllDone => {}
                        other => prop_assert!(false, "unexpected lease reply {}", other.kind()),
                    }
                }
                2 => {
                    // The agent goes silent mid-shard: no heartbeat, no
                    // release. The lease must expire on its own.
                    if let Some(h) = held.pop() {
                        stale.push(h);
                    }
                }
                3 | 4 => {
                    // Deliver a completion — and then the wire duplicates
                    // it immediately. The dup must re-ack, journal
                    // nothing, and fold nothing.
                    if let Some((shard, epoch, fence)) = held.pop() {
                        let piece = CampaignMeta::generate_shard(&config, shard, n_shards);
                        let req = Request::Complete {
                            agent: "sim".into(),
                            shard,
                            epoch,
                            fence,
                            meta: Box::new(piece),
                        };
                        let before = state.merged().map_or(0, |m| m.tests.len());
                        let (reply, evs) = state.handle(&req, now);
                        events.extend(evs);
                        prop_assert_eq!(reply, Reply::Ok);
                        let after = state.merged().map_or(0, |m| m.tests.len());
                        prop_assert!(after > before, "completion must fold new tests");
                        let (dup, dup_evs) = state.handle(&req, now);
                        prop_assert_eq!(dup, Reply::Ok, "duplicate completion re-acked");
                        prop_assert!(dup_evs.is_empty(), "duplicate journals nothing");
                        prop_assert_eq!(
                            state.merged().map_or(0, |m| m.tests.len()),
                            after,
                            "duplicate must not re-fold"
                        );
                        delivered.push((shard, epoch, fence));
                    }
                }
                5 => {
                    // A very late replay of an already-acked completion —
                    // possibly from before a restart. Idempotent re-ack,
                    // even though the epoch may have moved on.
                    if let Some(&(shard, epoch, fence)) = delivered.first() {
                        let piece = CampaignMeta::generate_shard(&config, shard, n_shards);
                        let before = state.merged().map_or(0, |m| m.tests.len());
                        let (reply, evs) = state.handle(
                            &Request::Complete {
                                agent: "sim".into(),
                                shard,
                                epoch,
                                fence,
                                meta: Box::new(piece),
                            },
                            now,
                        );
                        prop_assert!(evs.is_empty(), "replayed ack journals nothing");
                        prop_assert_eq!(reply, Reply::Ok, "acked completion re-acked across epochs");
                        prop_assert_eq!(state.merged().map_or(0, |m| m.tests.len()), before);
                    }
                }
                6 => {
                    // A partitioned zombie's late completion arrives. If
                    // its lease happens to still be live it may legally
                    // land; any other identity must be fenced. Either
                    // way the final exactly-once check has the last word.
                    if !stale.is_empty() {
                        let (shard, epoch, fence) = stale.remove(0);
                        let piece = CampaignMeta::generate_shard(&config, shard, n_shards);
                        let (reply, evs) = state.handle(
                            &Request::Poison {
                                agent: "zombie".into(),
                                shard,
                                epoch,
                                fence,
                                crashes: 3,
                            },
                            now,
                        );
                        // Poison from a zombie is the nastiest case: it
                        // would quarantine a shard someone else is
                        // running. It must only land while the zombie's
                        // own lease is still live.
                        match reply {
                            Reply::Ok | Reply::Fenced { .. } => {}
                            other => {
                                prop_assert!(false, "unexpected zombie reply {}", other.kind())
                            }
                        }
                        if matches!(reply, Reply::Ok) {
                            // It really was still the lease holder; undo
                            // the quarantine path for this run by
                            // treating the shard as settled-poisoned.
                            prop_assert!(!evs.is_empty(), "accepted poison must journal");
                        }
                        events.extend(evs);
                        let _ = (shard, epoch, fence);
                    }
                }
                7 => {
                    // The coordinator dies and replays its journal: the
                    // merge must survive byte-identically, the epoch must
                    // move forward, and every live lease is orphaned.
                    let replayed =
                        CoordState::replay(config.clone(), n_shards, HB, false, &events)
                            .expect("replay");
                    prop_assert_eq!(
                        serde_json::to_string(&state.merged()).unwrap(),
                        serde_json::to_string(&replayed.merged()).unwrap(),
                        "replayed merge differs from the live one"
                    );
                    prop_assert!(replayed.epoch() > state.epoch(), "epoch must bump on restart");
                    state = replayed;
                    events.push(CoordEvent::Start { epoch: state.epoch(), n_shards });
                    stale.append(&mut held);
                }
                _ => unreachable!(),
            }

            // Agents keepalive everything they still hold (the real
            // agent heartbeats every heartbeat_ms/3); only ghosts in
            // `stale` fall silent and expire.
            for &(shard, epoch, fence) in &held {
                let (reply, evs) = state.handle(
                    &Request::Heartbeat { agent: "sim".into(), shard, epoch, fence },
                    now,
                );
                events.extend(evs);
                prop_assert_eq!(reply, Reply::Ok, "held lease keepalive must succeed");
            }
            events.extend(state.tick(now));
        }

        // Exactly-once, however the duplicates and restarts fell: every
        // non-poisoned shard's tests appear exactly once, in canonical
        // order, and poisoned shards (zombie case above) stay excluded.
        let poisoned = state.poisoned_shards();
        let merged = state.take_merged();
        let got: Vec<u64> =
            merged.iter().flat_map(|m| m.tests.iter().map(|t| t.index)).collect();
        let expect: Vec<u64> = (0..config.n_programs as u64)
            .filter(|i| !poisoned.contains(&((*i as usize) % n_shards)))
            .collect();
        prop_assert_eq!(got, expect, "every surviving unit exactly once, in order");

        // The journal's final word matches the live state's.
        let replayed = CoordState::replay(config.clone(), n_shards, HB, false, &events)
            .expect("final replay");
        prop_assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&replayed.merged()).unwrap(),
            "final journal replay must reproduce the merge byte-identically"
        );
    }
}

/// Ties the simulation to the real protocol: merging completed shards in
/// an arbitrary completion order yields a report where every test index
/// appears exactly once.
#[test]
fn merged_report_has_every_test_exactly_once_in_any_completion_order() {
    let config = CampaignConfig::default_for(Precision::F32, TestMode::Direct).with_programs(11);
    let n_shards = 4;
    // A completion order a chaotic farm might produce.
    for order in [[2, 0, 3, 1], [3, 2, 1, 0], [1, 3, 0, 2]] {
        let mut merged: Option<CampaignMeta> = None;
        for shard in order {
            let piece = CampaignMeta::generate_shard(&config, shard, n_shards);
            merged = Some(match merged.take() {
                None => piece,
                Some(acc) => {
                    CampaignMeta::merge_shards_partial(vec![acc, piece]).expect("protocol")
                }
            });
        }
        let merged = merged.unwrap();
        let indices: Vec<u64> = merged.tests.iter().map(|t| t.index).collect();
        let expect: Vec<u64> = (0..config.n_programs as u64).collect();
        assert_eq!(indices, expect, "order {order:?}: each index exactly once, sorted");
    }
}
