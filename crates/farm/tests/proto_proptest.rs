//! Property tests for the fleet wire codec.
//!
//! The protocol promise the fleet leans on: a frame that arrives intact
//! decodes to exactly the message that was sent, and a frame that
//! arrives damaged *in any way* — torn mid-byte, bit-flipped anywhere,
//! fed from a hostile peer — is rejected with an `io::Error`, never a
//! panic and never a silently wrong message. The chaos layer's
//! `Truncate` fault and every partition-severed socket reduce to these
//! properties.

use difftest::metadata::CampaignMeta;
use difftest::{CampaignConfig, TestMode};
use farm::proto::{read_message, write_message, Reply, Request};
use progen::Precision;
use proptest::prelude::*;

fn config() -> CampaignConfig {
    CampaignConfig::default_for(Precision::F32, TestMode::Direct).with_programs(6)
}

fn meta() -> CampaignMeta {
    CampaignMeta::generate_shard(&config(), 0, 2)
}

/// Every `Request` variant, with proptest-drawn scalar fields.
fn request_strategy() -> impl Strategy<Value = Request> {
    let s = (any::<String>(), 0usize..64, any::<u64>(), any::<u64>());
    prop_oneof![
        any::<String>().prop_map(|agent| Request::Lease { agent }),
        s.clone().prop_map(|(agent, shard, epoch, fence)| Request::Heartbeat {
            agent,
            shard,
            epoch,
            fence
        }),
        s.clone().prop_map(|(agent, shard, epoch, fence)| Request::Complete {
            agent,
            shard,
            epoch,
            fence,
            meta: Box::new(meta()),
        }),
        (s.clone(), any::<String>()).prop_map(|((agent, shard, epoch, fence), reason)| {
            Request::Release { agent, shard, epoch, fence, reason }
        }),
        (s, any::<u32>()).prop_map(|((agent, shard, epoch, fence), crashes)| Request::Poison {
            agent,
            shard,
            epoch,
            fence,
            crashes
        }),
    ]
}

/// Every `Reply` variant, with proptest-drawn scalar fields.
fn reply_strategy() -> impl Strategy<Value = Reply> {
    prop_oneof![
        (0usize..64, 1usize..64, any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>())
            .prop_map(|(shard, n_shards, epoch, fence, heartbeat_ms, reference)| Reply::Grant {
                shard,
                n_shards,
                epoch,
                fence,
                heartbeat_ms,
                reference,
                config: Box::new(config()),
            }),
        any::<u64>().prop_map(|retry_ms| Reply::Wait { retry_ms }),
        Just(Reply::AllDone),
        Just(Reply::Drain),
        Just(Reply::Ok),
        any::<String>().prop_map(|reason| Reply::Fenced { reason }),
        any::<String>().prop_map(|reason| Reply::Error { reason }),
    ]
}

fn encode<T: serde::Serialize>(msg: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    write_message(&mut buf, msg).expect("encoding to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn any_request_roundtrips_bit_exactly(req in request_strategy()) {
        let buf = encode(&req);
        let back: Request = read_message(&mut buf.as_slice()).expect("intact frame decodes");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn any_reply_roundtrips_bit_exactly(reply in reply_strategy()) {
        let buf = encode(&reply);
        let back: Reply = read_message(&mut buf.as_slice()).expect("intact frame decodes");
        prop_assert_eq!(back, reply);
    }

    /// A hostile or confused peer can write anything into the socket;
    /// the decoder must answer with an error, never a panic. (A panic
    /// here fails the test by itself; the assert documents that the
    /// random stream essentially never forms a valid frame.)
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let req = read_message::<Request>(&mut bytes.as_slice());
        let reply = read_message::<Reply>(&mut bytes.as_slice());
        // Valid frames open with the version byte and a CRC-consistent
        // header; a random prefix passing all of that is ~2^-32.
        if bytes.first() != Some(&farm::proto::PROTO_VERSION) {
            prop_assert!(req.is_err() && reply.is_err());
        }
    }

    /// Tear a valid frame at every possible byte boundary: every prefix
    /// must be rejected (UnexpectedEof or CRC mismatch), because a torn
    /// TCP stream is exactly what a partition or truncation fault leaves
    /// behind.
    #[test]
    fn every_torn_prefix_of_a_valid_frame_is_rejected(req in request_strategy()) {
        let buf = encode(&req);
        for cut in 0..buf.len() {
            let torn = &buf[..cut];
            prop_assert!(
                read_message::<Request>(&mut &*torn).is_err(),
                "prefix of {} of {} bytes decoded",
                cut,
                buf.len()
            );
        }
    }

    /// Flip one bit anywhere in a valid frame: version check, length
    /// sanity, or CRC must catch it — a corrupted frame never decodes
    /// as if intact. (Flipping a length bit may also leave the reader
    /// starved; both are errors, neither is a wrong message.)
    #[test]
    fn any_single_bit_flip_is_rejected(
        req in request_strategy(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = encode(&req);
        let pos = pos.index(buf.len());
        buf[pos] ^= 1 << bit;
        // Longer than any length field can now claim, so a shrunk
        // length reads a short payload and fails CRC rather than Eof.
        buf.extend_from_slice(&[0u8; 8]);
        match read_message::<Request>(&mut buf.as_slice()) {
            Err(_) => {}
            Ok(back) => {
                // The only byte whose flip may legally still decode is
                // none: payload is CRC-guarded, header is structural.
                prop_assert!(false, "corrupt frame decoded: flipped byte {pos}, got {:?}", back.kind());
            }
        }
    }
}
