//! Raw bit-pattern helpers for IEEE-754 binary32 and binary64.
//!
//! These are used by the simulated vendor math libraries, which — like the
//! real `libdevice` and OCML — frequently operate on the raw encoding
//! (exponent extraction, mantissa shifting, sign stripping).

/// Number of mantissa (fraction) bits in binary64.
pub const F64_MANT_BITS: u32 = 52;
/// Number of mantissa (fraction) bits in binary32.
pub const F32_MANT_BITS: u32 = 23;
/// Exponent bias of binary64.
pub const F64_EXP_BIAS: i32 = 1023;
/// Exponent bias of binary32.
pub const F32_EXP_BIAS: i32 = 127;
/// Mask of the mantissa field of binary64.
pub const F64_MANT_MASK: u64 = (1u64 << F64_MANT_BITS) - 1;
/// Mask of the mantissa field of binary32.
pub const F32_MANT_MASK: u32 = (1u32 << F32_MANT_BITS) - 1;
/// Mask of the (biased) exponent field of binary64, in place.
pub const F64_EXP_MASK: u64 = 0x7FF0_0000_0000_0000;
/// Mask of the (biased) exponent field of binary32, in place.
pub const F32_EXP_MASK: u32 = 0x7F80_0000;
/// Sign bit of binary64.
pub const F64_SIGN_MASK: u64 = 0x8000_0000_0000_0000;
/// Sign bit of binary32.
pub const F32_SIGN_MASK: u32 = 0x8000_0000;

/// Extract the unbiased exponent of a finite nonzero `f64`.
///
/// For subnormals this returns the *encoded* minimum exponent
/// (`-1022`) rather than the mathematical exponent of the value.
#[inline]
pub fn exponent_f64(x: f64) -> i32 {
    let biased = ((x.to_bits() & F64_EXP_MASK) >> F64_MANT_BITS) as i32;
    if biased == 0 {
        1 - F64_EXP_BIAS // subnormal encoding
    } else {
        biased - F64_EXP_BIAS
    }
}

/// Extract the unbiased exponent of a finite nonzero `f32`.
#[inline]
pub fn exponent_f32(x: f32) -> i32 {
    let biased = ((x.to_bits() & F32_EXP_MASK) >> F32_MANT_BITS) as i32;
    if biased == 0 {
        1 - F32_EXP_BIAS
    } else {
        biased - F32_EXP_BIAS
    }
}

/// Mantissa field (without the implicit leading bit) of an `f64`.
#[inline]
pub fn mantissa_f64(x: f64) -> u64 {
    x.to_bits() & F64_MANT_MASK
}

/// Mantissa field (without the implicit leading bit) of an `f32`.
#[inline]
pub fn mantissa_f32(x: f32) -> u32 {
    x.to_bits() & F32_MANT_MASK
}

/// Full significand of a finite nonzero `f64`, including the implicit bit
/// for normal numbers (so the result is in `[2^52, 2^53)` for normals and
/// `[1, 2^52)` for subnormals).
#[inline]
pub fn significand_f64(x: f64) -> u64 {
    let m = mantissa_f64(x);
    if (x.to_bits() & F64_EXP_MASK) == 0 {
        m
    } else {
        m | (1u64 << F64_MANT_BITS)
    }
}

/// Full significand of a finite nonzero `f32` (see [`significand_f64`]).
#[inline]
pub fn significand_f32(x: f32) -> u32 {
    let m = mantissa_f32(x);
    if (x.to_bits() & F32_EXP_MASK) == 0 {
        m
    } else {
        m | (1u32 << F32_MANT_BITS)
    }
}

/// Copy the sign of `sign` onto the magnitude of `mag` (bitwise, exact,
/// NaN-safe) for `f64`.
#[inline]
pub fn copysign_bits_f64(mag: f64, sign: f64) -> f64 {
    f64::from_bits((mag.to_bits() & !F64_SIGN_MASK) | (sign.to_bits() & F64_SIGN_MASK))
}

/// Copy the sign of `sign` onto the magnitude of `mag` for `f32`.
#[inline]
pub fn copysign_bits_f32(mag: f32, sign: f32) -> f32 {
    f32::from_bits((mag.to_bits() & !F32_SIGN_MASK) | (sign.to_bits() & F32_SIGN_MASK))
}

/// True if the sign bit is set (including `-0.0` and negative NaNs).
#[inline]
pub fn sign_bit_f64(x: f64) -> bool {
    x.to_bits() & F64_SIGN_MASK != 0
}

/// True if the sign bit is set (including `-0.0` and negative NaNs).
#[inline]
pub fn sign_bit_f32(x: f32) -> bool {
    x.to_bits() & F32_SIGN_MASK != 0
}

/// Build an `f64` with the given unbiased exponent and a significand of 1.0,
/// i.e. compute `2^e` exactly, saturating to `Inf`/`0` outside the normal
/// range.
#[inline]
pub fn exp2i_f64(e: i32) -> f64 {
    if e > 1023 {
        f64::INFINITY
    } else if e < -1074 {
        0.0
    } else if e < -1022 {
        // subnormal power of two
        f64::from_bits(1u64 << (e + 1074) as u32)
    } else {
        f64::from_bits((((e + F64_EXP_BIAS) as u64) << F64_MANT_BITS) & F64_EXP_MASK)
    }
}

/// Build an `f32` equal to `2^e` exactly (see [`exp2i_f64`]).
#[inline]
pub fn exp2i_f32(e: i32) -> f32 {
    if e > 127 {
        f32::INFINITY
    } else if e < -149 {
        0.0
    } else if e < -126 {
        f32::from_bits(1u32 << (e + 149) as u32)
    } else {
        f32::from_bits((((e + F32_EXP_BIAS) as u32) << F32_MANT_BITS) & F32_EXP_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_one_is_zero() {
        assert_eq!(exponent_f64(1.0), 0);
        assert_eq!(exponent_f32(1.0f32), 0);
    }

    #[test]
    fn exponent_of_two_and_half() {
        assert_eq!(exponent_f64(2.0), 1);
        assert_eq!(exponent_f64(0.5), -1);
        assert_eq!(exponent_f32(8.0f32), 3);
    }

    #[test]
    fn exponent_of_subnormal_is_min() {
        assert_eq!(exponent_f64(f64::from_bits(1)), -1022);
        assert_eq!(exponent_f32(f32::from_bits(1)), -126);
    }

    #[test]
    fn significand_includes_implicit_bit_for_normals() {
        assert_eq!(significand_f64(1.0), 1u64 << 52);
        assert_eq!(significand_f64(1.5), (1u64 << 52) | (1u64 << 51));
        assert_eq!(significand_f32(1.0f32), 1u32 << 23);
    }

    #[test]
    fn significand_of_subnormal_has_no_implicit_bit() {
        assert_eq!(significand_f64(f64::from_bits(3)), 3);
        assert_eq!(significand_f32(f32::from_bits(7)), 7);
    }

    #[test]
    fn exp2i_matches_powi() {
        for e in -1022..=1023 {
            assert_eq!(exp2i_f64(e), 2.0f64.powi(e), "e={e}");
        }
        for e in -126..=127 {
            assert_eq!(exp2i_f32(e), 2.0f32.powi(e), "e={e}");
        }
    }

    #[test]
    fn exp2i_subnormal_range() {
        assert_eq!(exp2i_f64(-1074), f64::from_bits(1));
        assert_eq!(exp2i_f64(-1075), 0.0);
        assert_eq!(exp2i_f64(1024), f64::INFINITY);
        assert_eq!(exp2i_f32(-149), f32::from_bits(1));
        assert_eq!(exp2i_f32(-150), 0.0);
        assert_eq!(exp2i_f32(128), f32::INFINITY);
    }

    #[test]
    fn copysign_bits_handles_nan_and_zero() {
        assert!(sign_bit_f64(copysign_bits_f64(f64::NAN, -1.0)));
        assert_eq!(copysign_bits_f64(0.0, -2.0).to_bits(), (-0.0f64).to_bits());
        assert!(sign_bit_f32(copysign_bits_f32(1.0, -0.0)));
    }

    #[test]
    fn sign_bit_detects_negative_zero() {
        assert!(sign_bit_f64(-0.0));
        assert!(!sign_bit_f64(0.0));
        assert!(sign_bit_f32(-0.0f32));
        assert!(!sign_bit_f32(0.0f32));
    }
}
