//! Value classification.
//!
//! Two granularities are used throughout the workspace:
//!
//! * [`FpClass`] — the full IEEE-754 classification (NaN, Inf, Zero,
//!   Subnormal, Normal), used when analysing *why* results differ.
//! * [`Outcome`] — the paper's four-way outcome lattice (§IV-B): NaN, Inf,
//!   Zero, Number. "Number" is any non-zero finite real, including
//!   subnormals. Differential comparisons are performed on outcomes first
//!   and on exact values within the `Number` class.

use serde::{Deserialize, Serialize};

/// Full IEEE-754 class of a floating-point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpClass {
    /// Not-a-number (quiet or signalling), either sign.
    Nan,
    /// Positive or negative infinity.
    Infinite,
    /// Positive or negative zero.
    Zero,
    /// Non-zero number with magnitude below the smallest normal.
    Subnormal,
    /// A normal finite non-zero number.
    Normal,
}

impl FpClass {
    /// Classify an `f64`.
    pub fn of_f64(x: f64) -> Self {
        use std::num::FpCategory::*;
        match x.classify() {
            Nan => FpClass::Nan,
            Infinite => FpClass::Infinite,
            Zero => FpClass::Zero,
            Subnormal => FpClass::Subnormal,
            Normal => FpClass::Normal,
        }
    }

    /// Classify an `f32`.
    pub fn of_f32(x: f32) -> Self {
        use std::num::FpCategory::*;
        match x.classify() {
            Nan => FpClass::Nan,
            Infinite => FpClass::Infinite,
            Zero => FpClass::Zero,
            Subnormal => FpClass::Subnormal,
            Normal => FpClass::Normal,
        }
    }

    /// True for NaN, Inf and Subnormal — the "exceptional quantities" of
    /// §II-B1 that the testing campaign hunts for.
    pub fn is_exceptional(self) -> bool {
        matches!(self, FpClass::Nan | FpClass::Infinite | FpClass::Subnormal)
    }
}

/// The paper's four-way test outcome (§IV-B).
///
/// Ordering of the variants matches the row/column order of the adjacency
/// matrices in Tables VI, VIII and X: NaN, Inf, Zero, Num.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Outcome {
    /// Result was NaN (either sign).
    Nan,
    /// Result was ±Inf.
    Inf,
    /// Result was ±0.
    Zero,
    /// Result was a non-zero finite number (normal or subnormal).
    Num,
}

impl Outcome {
    /// All outcomes in adjacency-matrix order.
    pub const ALL: [Outcome; 4] = [Outcome::Nan, Outcome::Inf, Outcome::Zero, Outcome::Num];

    /// Classify an `f64` result.
    pub fn of_f64(x: f64) -> Self {
        match FpClass::of_f64(x) {
            FpClass::Nan => Outcome::Nan,
            FpClass::Infinite => Outcome::Inf,
            FpClass::Zero => Outcome::Zero,
            FpClass::Subnormal | FpClass::Normal => Outcome::Num,
        }
    }

    /// Classify an `f32` result.
    pub fn of_f32(x: f32) -> Self {
        match FpClass::of_f32(x) {
            FpClass::Nan => Outcome::Nan,
            FpClass::Infinite => Outcome::Inf,
            FpClass::Zero => Outcome::Zero,
            FpClass::Subnormal | FpClass::Normal => Outcome::Num,
        }
    }

    /// Short label matching the paper's table headers.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Nan => "NaN",
            Outcome::Inf => "Inf",
            Outcome::Zero => "Zero",
            Outcome::Num => "Num",
        }
    }

    /// Index into [`Outcome::ALL`].
    pub fn index(self) -> usize {
        match self {
            Outcome::Nan => 0,
            Outcome::Inf => 1,
            Outcome::Zero => 2,
            Outcome::Num => 3,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_all_f64_classes() {
        assert_eq!(FpClass::of_f64(f64::NAN), FpClass::Nan);
        assert_eq!(FpClass::of_f64(-f64::NAN), FpClass::Nan);
        assert_eq!(FpClass::of_f64(f64::INFINITY), FpClass::Infinite);
        assert_eq!(FpClass::of_f64(f64::NEG_INFINITY), FpClass::Infinite);
        assert_eq!(FpClass::of_f64(0.0), FpClass::Zero);
        assert_eq!(FpClass::of_f64(-0.0), FpClass::Zero);
        assert_eq!(FpClass::of_f64(1e-310), FpClass::Subnormal);
        assert_eq!(FpClass::of_f64(1.0), FpClass::Normal);
    }

    #[test]
    fn classify_covers_all_f32_classes() {
        assert_eq!(FpClass::of_f32(f32::NAN), FpClass::Nan);
        assert_eq!(FpClass::of_f32(f32::INFINITY), FpClass::Infinite);
        assert_eq!(FpClass::of_f32(-0.0f32), FpClass::Zero);
        assert_eq!(FpClass::of_f32(1e-40f32), FpClass::Subnormal);
        assert_eq!(FpClass::of_f32(-3.5f32), FpClass::Normal);
    }

    #[test]
    fn exceptional_quantities() {
        assert!(FpClass::Nan.is_exceptional());
        assert!(FpClass::Infinite.is_exceptional());
        assert!(FpClass::Subnormal.is_exceptional());
        assert!(!FpClass::Zero.is_exceptional());
        assert!(!FpClass::Normal.is_exceptional());
    }

    #[test]
    fn outcome_subnormal_counts_as_number() {
        assert_eq!(Outcome::of_f64(1e-310), Outcome::Num);
        assert_eq!(Outcome::of_f32(1e-41f32), Outcome::Num);
    }

    #[test]
    fn outcome_sign_is_ignored() {
        assert_eq!(Outcome::of_f64(-0.0), Outcome::Zero);
        assert_eq!(Outcome::of_f64(f64::NEG_INFINITY), Outcome::Inf);
        assert_eq!(Outcome::of_f64(-f64::NAN), Outcome::Nan);
    }

    #[test]
    fn outcome_index_roundtrip() {
        for (i, o) in Outcome::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
    }

    #[test]
    fn outcome_labels_match_paper() {
        assert_eq!(Outcome::Nan.label(), "NaN");
        assert_eq!(Outcome::Inf.label(), "Inf");
        assert_eq!(Outcome::Zero.label(), "Zero");
        assert_eq!(Outcome::Num.label(), "Num");
    }
}
