//! Double-double arithmetic: an unevaluated sum of two `f64`s giving a
//! ~106-bit significand (Dekker 1971, Knuth TAOCP §4.2.2, and the QD
//! library of Hida/Li/Bailey).
//!
//! This is the numeric substrate of the ground-truth reference executor
//! (ROADMAP item 5): every campaign kernel is re-evaluated over [`Dd`]
//! values with a *single* rounding to the kernel precision at the end, so
//! each vendor result gets an error-vs-truth score and a "who drifted"
//! verdict instead of only a pairwise diff.
//!
//! # Error-free primitives
//!
//! [`two_sum`] and [`two_prod`] are *exact*: the returned `(s, e)` pair
//! satisfies `s + e == a + b` (resp. `a * b`) as real numbers, with `s`
//! the correctly rounded result and `e` the rounding error. Everything
//! else is built from them; the proptests in this module verify the
//! identity in 128-bit integer arithmetic.
//!
//! # Accuracy contract
//!
//! Arithmetic (`+ − × ÷`, `sqrt`, fma) is accurate to the full ~106-bit
//! width. The transcendental entry points that the simulated vendor
//! libraries *disagree* on (`exp`/`log` families, `pow`, `fmod`, `ceil`,
//! hyperbolics, `cbrt`, `rsqrt`, `erf`, `tgamma`) are genuine
//! double-double kernels, comfortably below half an `f64` ULP after the
//! final rounding. Entry points where both vendors call the *identical*
//! host implementation (`sin`, `cos`, `atan2`, …) can never produce a
//! vendor discrepancy, so they use a derivative-corrected host call —
//! truth there carries the host library's own sub-ULP error, which is
//! irrelevant to drift verdicts.

/// Knuth's error-free addition: returns `(s, e)` with `s = fl(a + b)` and
/// `s + e == a + b` exactly (no assumption on the magnitudes of `a`, `b`).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Dekker's fast error-free addition, valid when `|a| >= |b|` (or either
/// is zero): returns `(s, e)` with `s = fl(a + b)` and `s + e == a + b`.
#[inline]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free multiplication via FMA: returns `(p, e)` with
/// `p = fl(a * b)` and `p + e == a * b` exactly (finite, non-overflowing
/// operands).
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// A double-double value: the unevaluated sum `hi + lo` with
/// `hi = fl(hi + lo)` (so `hi` alone is the value correctly rounded to
/// `f64`) and `|lo| ≤ ulp(hi)/2`. Non-finite values keep `lo == 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dd {
    /// Leading component: the value rounded to nearest `f64`.
    pub hi: f64,
    /// Trailing component: the residual beyond `hi`.
    pub lo: f64,
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// ln 2 to double-double precision (QD library value).
    pub const LN2: Dd = Dd { hi: 6.931_471_805_599_453e-1, lo: 2.319_046_813_846_299_6e-17 };
    /// π to double-double precision (QD library value).
    pub const PI: Dd = Dd { hi: 3.141_592_653_589_793, lo: 1.224_646_799_147_353_2e-16 };

    /// Lift an exact `f64`.
    #[inline]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Renormalize a raw `(hi, lo)` pair into canonical form.
    #[inline]
    fn renorm(hi: f64, lo: f64) -> Dd {
        if !hi.is_finite() || lo == 0.0 {
            // the lo == 0 early-out also preserves the sign of zero:
            // `-0.0 + 0.0` would round to `+0.0`
            return Dd { hi, lo: 0.0 };
        }
        let (s, e) = quick_two_sum(hi, lo);
        if s.is_finite() {
            Dd { hi: s, lo: e }
        } else {
            Dd { hi: s, lo: 0.0 }
        }
    }

    /// Round to the nearest `f64` (exactly `hi` by the canonical-form
    /// invariant).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi
    }

    /// Round to the nearest `f32` with a single rounding of the full
    /// 106-bit value — `hi as f32` alone can double-round when `hi` sits
    /// exactly on an `f32` rounding boundary and `lo` breaks the tie.
    pub fn to_f32(self) -> f32 {
        let r = self.hi as f32;
        if !r.is_finite() || self.lo == 0.0 {
            return r;
        }
        let rd = r as f64;
        if rd == self.hi {
            // hi is f32-exact and |lo| < ulp64(hi) can never reach the
            // next f32 midpoint
            return r;
        }
        // hi lies strictly between two f32 neighbours; the only case the
        // direct cast can get wrong is hi landing exactly on the midpoint
        // (round-to-even already settled it, but lo breaks the tie)
        let other =
            if self.hi > rd { crate::ulp::next_up_f32(r) } else { crate::ulp::next_down_f32(r) };
        let mid = (rd + other as f64) * 0.5; // exact: sum of two adjacent f32s
        if self.hi == mid && (self.lo > 0.0) == (self.hi > rd) {
            other
        } else {
            r
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.hi.is_nan()
    }

    /// True when the leading component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.hi.is_finite()
    }

    /// True for +0 or −0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.hi == 0.0
    }

    /// Negation (exact).
    #[inline]
    pub fn neg(self) -> Dd {
        Dd { hi: -self.hi, lo: -self.lo }
    }

    /// Magnitude (exact).
    #[inline]
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.hi.is_sign_negative()) {
            self.neg()
        } else {
            self
        }
    }

    /// Double-double addition (Knuth's accurate variant).
    pub fn add(self, b: Dd) -> Dd {
        if !self.hi.is_finite() || !b.hi.is_finite() {
            return Dd::from_f64(self.hi + b.hi);
        }
        if self.hi == 0.0 && b.hi == 0.0 {
            // IEEE zero-sign rules (−0 + −0 = −0) live in the hardware
            // add; the error-free path would launder the sign through
            // `quick_two_sum(−0.0, +0.0)` into +0.0
            return Dd::from_f64(self.hi + b.hi);
        }
        let (s1, e1) = two_sum(self.hi, b.hi);
        let (s2, e2) = two_sum(self.lo, b.lo);
        let (s, e) = quick_two_sum(s1, e1 + s2);
        Dd::renorm(s, e + e2)
    }

    /// Double-double subtraction.
    #[inline]
    pub fn sub(self, b: Dd) -> Dd {
        self.add(b.neg())
    }

    /// Double-double multiplication.
    pub fn mul(self, b: Dd) -> Dd {
        if !self.hi.is_finite() || !b.hi.is_finite() {
            return Dd::from_f64(self.hi * b.hi);
        }
        let (p, e) = two_prod(self.hi, b.hi);
        if !p.is_finite() {
            return Dd::from_f64(p);
        }
        Dd::renorm(p, e + (self.hi * b.lo + self.lo * b.hi))
    }

    /// Double-double division (three-term long division).
    pub fn div(self, b: Dd) -> Dd {
        if !self.hi.is_finite() || !b.hi.is_finite() || b.hi == 0.0 {
            return Dd::from_f64(self.hi / b.hi);
        }
        let q1 = self.hi / b.hi;
        if !q1.is_finite() {
            return Dd::from_f64(q1);
        }
        let r = self.sub(b.mul_f64(q1));
        let q2 = r.hi / b.hi;
        let r2 = r.sub(b.mul_f64(q2));
        let q3 = r2.hi / b.hi;
        let (s, e) = quick_two_sum(q1, q2);
        Dd::renorm(s, e + q3)
    }

    /// Multiply by a plain `f64`.
    pub fn mul_f64(self, b: f64) -> Dd {
        if !self.hi.is_finite() || !b.is_finite() {
            return Dd::from_f64(self.hi * b);
        }
        let (p, e) = two_prod(self.hi, b);
        if !p.is_finite() {
            return Dd::from_f64(p);
        }
        Dd::renorm(p, e + self.lo * b)
    }

    /// Multiply by an exact power of two (error-free).
    #[inline]
    fn mul_pwr2(self, b: f64) -> Dd {
        Dd { hi: self.hi * b, lo: self.lo * b }
    }

    /// Square (slightly cheaper than `mul(self)`).
    pub fn sqr(self) -> Dd {
        if !self.hi.is_finite() {
            return Dd::from_f64(self.hi * self.hi);
        }
        let (p, e) = two_prod(self.hi, self.hi);
        if !p.is_finite() {
            return Dd::from_f64(p);
        }
        Dd::renorm(p, e + 2.0 * self.hi * self.lo)
    }

    /// Fused multiply-add `self * b + c`, evaluated in double-double (no
    /// extra rounding versus `mul` + `add`).
    #[inline]
    pub fn mul_add(self, b: Dd, c: Dd) -> Dd {
        self.mul(b).add(c)
    }

    /// Total order on the represented values (NaN compares as `None`).
    pub fn cmp_val(self, b: Dd) -> Option<std::cmp::Ordering> {
        if self.is_nan() || b.is_nan() {
            return None;
        }
        match self.hi.partial_cmp(&b.hi) {
            Some(std::cmp::Ordering::Equal) => self.lo.partial_cmp(&b.lo),
            other => other,
        }
    }

    /// Truncation toward zero (exact).
    pub fn trunc(self) -> Dd {
        if !self.hi.is_finite() {
            return self;
        }
        let hi_t = self.hi.trunc();
        if hi_t != self.hi {
            // hi alone is non-integral: its truncation is the DD's
            // truncation unless lo pushes the value across the integer —
            // impossible because |lo| < ulp(hi)/2 < 1/2 whenever hi is
            // non-integral with |hi| < 2^53, and hi non-integral implies
            // |hi| < 2^52
            return Dd::from_f64(hi_t);
        }
        // hi is an integer; truncate lo in the direction of hi's sign
        let lo_t = if self.hi >= 0.0 {
            if self.lo < 0.0 && self.lo.trunc() != self.lo {
                self.lo.trunc() - 1.0
            } else {
                self.lo.trunc()
            }
        } else if self.lo > 0.0 && self.lo.trunc() != self.lo {
            self.lo.trunc() + 1.0
        } else {
            self.lo.trunc()
        };
        Dd::renorm(hi_t, lo_t)
    }

    /// Floor (exact).
    pub fn floor(self) -> Dd {
        if !self.hi.is_finite() {
            return self;
        }
        let hi_f = self.hi.floor();
        if hi_f != self.hi {
            return Dd::from_f64(hi_f);
        }
        Dd::renorm(hi_f, self.lo.floor())
    }

    /// Ceiling (exact). This is the ground truth for the paper's Fig. 5
    /// mechanism: `ceil(x) == 1` for every `0 < x ≤ 1`, with no
    /// tiny-argument flush.
    pub fn ceil(self) -> Dd {
        if !self.hi.is_finite() {
            return self;
        }
        let hi_c = self.hi.ceil();
        if hi_c != self.hi {
            return Dd::from_f64(hi_c);
        }
        Dd::renorm(hi_c, self.lo.ceil())
    }

    /// Round half away from zero (C `round` semantics, exact).
    pub fn round(self) -> Dd {
        if !self.hi.is_finite() {
            return self;
        }
        if self.hi < 0.0 {
            return self.neg().round().neg();
        }
        let f = self.floor();
        let frac = self.sub(f);
        match frac.cmp_val(Dd::from_f64(0.5)) {
            Some(std::cmp::Ordering::Less) => f,
            _ => f.add(Dd::ONE),
        }
    }

    /// Round half to even (C `rint` under the default mode, exact).
    pub fn round_ties_even(self) -> Dd {
        if !self.hi.is_finite() {
            return self;
        }
        let f = self.floor();
        let frac = self.sub(f);
        match frac.cmp_val(Dd::from_f64(0.5)) {
            Some(std::cmp::Ordering::Less) => f,
            Some(std::cmp::Ordering::Greater) => f.add(Dd::ONE),
            _ => {
                // exact tie: pick the even neighbour
                let even = f.div(Dd::from_f64(2.0)).trunc().mul_f64(2.0);
                if f.sub(even).is_zero() {
                    f
                } else {
                    f.add(Dd::ONE)
                }
            }
        }
    }

    /// Square root: one f64 seed plus a double-double Newton step
    /// (Karp/Markstein), full DD accuracy.
    pub fn sqrt(self) -> Dd {
        if self.is_zero() {
            return self; // preserves −0
        }
        if self.hi < 0.0 || self.hi.is_nan() {
            return Dd::from_f64(f64::NAN);
        }
        if self.hi.is_infinite() {
            return self;
        }
        let x = 1.0 / self.hi.sqrt();
        let ax = self.hi * x;
        let ax_dd = Dd::from_f64(ax);
        Dd::from_f64(ax).add(self.sub(ax_dd.sqr()).mul_f64(x * 0.5))
    }

    /// Reciprocal in double-double.
    #[inline]
    pub fn recip(self) -> Dd {
        Dd::ONE.div(self)
    }

    /// `fmod` with C library semantics: the exact remainder `a − trunc(a/b)·b`.
    ///
    /// For arguments with zero trailing words this reduces to the exact
    /// IEEE remainder (host `%` on `f64` is exact); the general case runs
    /// the reduction in double-double.
    pub fn fmod(self, b: Dd) -> Dd {
        if self.is_nan() || b.is_nan() || self.hi.is_infinite() || b.hi == 0.0 {
            return Dd::from_f64(f64::NAN);
        }
        if b.hi.is_infinite() || self.is_zero() {
            return self; // a mod ±inf = a; ±0 mod b = ±0
        }
        if self.lo == 0.0 && b.lo == 0.0 {
            // IEEE fmod on f64 is exact — no double-double needed
            return Dd::from_f64(self.hi % b.hi);
        }
        let q = self.div(b).trunc();
        let r = self.sub(q.mul(b));
        // guard against the quotient rounding across an integer boundary
        let ab = b.abs();
        let r = if r.abs().cmp_val(ab) != Some(std::cmp::Ordering::Less) {
            if r.hi > 0.0 {
                r.sub(ab)
            } else {
                r.add(ab)
            }
        } else {
            r
        };
        // fmod result carries the dividend's sign; a zero result does too
        if r.is_zero() && self.hi.is_sign_negative() != r.hi.is_sign_negative() {
            r.neg()
        } else {
            r
        }
    }

    /// Minimum with C `fmin` NaN semantics (NaN loses to a number).
    pub fn min(self, b: Dd) -> Dd {
        if self.is_nan() {
            return b;
        }
        if b.is_nan() {
            return self;
        }
        match self.cmp_val(b) {
            Some(std::cmp::Ordering::Greater) => b,
            _ => self,
        }
    }

    /// Maximum with C `fmax` NaN semantics.
    pub fn max(self, b: Dd) -> Dd {
        if self.is_nan() {
            return b;
        }
        if b.is_nan() {
            return self;
        }
        match self.cmp_val(b) {
            Some(std::cmp::Ordering::Less) => b,
            _ => self,
        }
    }

    /// Scale by 2^k (exact up to overflow/underflow of the components).
    pub fn ldexp(self, k: i32) -> Dd {
        // split the shift so a finite value never overflows an
        // intermediate when the final result is representable
        let half = k / 2;
        let rest = k - half;
        let s1 = pow2(half);
        let s2 = pow2(rest);
        Dd { hi: self.hi * s1 * s2, lo: self.lo * s1 * s2 }
    }
}

/// 2^k as f64 (saturating to 0 / +inf outside the exponent range).
fn pow2(k: i32) -> f64 {
    f64::powi(2.0, k)
}

// ---------------------------------------------------------------------------
// Transcendental kernels
// ---------------------------------------------------------------------------

impl Dd {
    /// e^x as a genuine double-double kernel: reduce against [`Dd::LN2`],
    /// a scaled Taylor core, nine squarings, and an exact 2^k scale.
    pub fn exp(self) -> Dd {
        if self.is_nan() {
            return self;
        }
        if self.hi >= 709.8 {
            return Dd::from_f64(f64::INFINITY);
        }
        if self.hi <= -745.2 {
            return Dd::ZERO;
        }
        if self.is_zero() {
            return Dd::ONE;
        }
        const INV_K: f64 = 1.0 / 512.0;
        let m = (self.hi / Dd::LN2.hi + 0.5).floor();
        let r = self.sub(Dd::LN2.mul_f64(m)).mul_pwr2(INV_K);
        // Taylor of e^r − 1 with |r| ≤ ln2/1024 ≈ 6.8e-4: converges to
        // 2^-110 relative in ~11 terms
        let mut term = r; // r^n / n!
        let mut sum = r;
        let mut n = 2.0f64;
        loop {
            term = term.mul(r).div(Dd::from_f64(n));
            sum = sum.add(term);
            if term.hi.abs() < 1e-40 || n > 24.0 {
                break;
            }
            n += 1.0;
        }
        // undo the 1/512 scale: (1+s) ← (1+s)² nine times, tracking s
        let mut s = sum;
        for _ in 0..9 {
            s = s.mul_pwr2(2.0).add(s.sqr());
        }
        s.add(Dd::ONE).ldexp(m as i32)
    }

    /// Natural log via Newton iteration on [`Dd::exp`]:
    /// `y ← y + x·e^(−y) − 1` doubles the correct digits per step.
    pub fn ln(self) -> Dd {
        if self.is_nan() {
            return self;
        }
        if self.is_zero() {
            return Dd::from_f64(f64::NEG_INFINITY);
        }
        if self.hi < 0.0 {
            return Dd::from_f64(f64::NAN);
        }
        if self.hi.is_infinite() {
            return self;
        }
        let mut y = Dd::from_f64(self.hi.ln());
        // two steps: f64 seed (53 bits) → 106 bits → saturated
        for _ in 0..2 {
            y = y.add(self.mul(y.neg().exp())).sub(Dd::ONE);
        }
        y
    }

    /// 2^x (via `exp(x · ln 2)`; the product is double-double so the
    /// reduction loses nothing).
    pub fn exp2(self) -> Dd {
        self.mul(Dd::LN2).exp()
    }

    /// log₂ via `ln(x) / ln 2`.
    pub fn log2(self) -> Dd {
        self.ln().div(Dd::LN2)
    }

    /// log₁₀ via `ln(x) / ln 10` (denominator computed in double-double).
    pub fn log10(self) -> Dd {
        self.ln().div(Dd::from_f64(10.0).ln())
    }

    /// e^x − 1 without cancellation: Taylor directly for small `x`, the
    /// full `exp` otherwise.
    pub fn expm1(self) -> Dd {
        if self.is_nan() || self.is_zero() {
            return self;
        }
        if self.hi.abs() < 0.25 {
            let mut term = self;
            let mut sum = self;
            let mut n = 2.0f64;
            while n <= 40.0 {
                term = term.mul(self).div(Dd::from_f64(n));
                sum = sum.add(term);
                if term.hi.abs() < sum.hi.abs() * 1e-35 {
                    break;
                }
                n += 1.0;
            }
            sum
        } else {
            self.exp().sub(Dd::ONE)
        }
    }

    /// ln(1 + x) without cancellation: the double-double sum `1 + x` is
    /// wide enough to keep tiny `x` intact before the log.
    pub fn ln_1p(self) -> Dd {
        if self.is_nan() || self.is_zero() {
            return self;
        }
        if self.hi.abs() < 1e-20 && self.hi.is_finite() {
            // ln(1+x) = x − x²/2 + …; beyond DD width the linear term is
            // the whole answer
            return self.sub(self.sqr().mul_pwr2(0.5));
        }
        Dd::ONE.add(self).ln()
    }

    /// Integer power by binary exponentiation (exact specials for
    /// negative bases).
    pub fn powi(self, n: i64) -> Dd {
        if n == 0 {
            return Dd::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        let mut e = n.unsigned_abs();
        let mut acc = Dd::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            e >>= 1;
            if e > 0 {
                base = base.sqr();
            }
        }
        acc
    }

    /// `x^y` with C `pow` special-case semantics; the general path is
    /// `exp(y · ln x)` in double-double, integer exponents use
    /// [`Dd::powi`].
    pub fn pow(self, y: Dd) -> Dd {
        let xf = self.hi;
        let yf = y.hi;
        // IEEE special cases first — delegate to the host pow, which
        // implements Annex F exactly for specials
        if self.is_nan()
            || y.is_nan()
            || xf == 0.0
            || !xf.is_finite()
            || !yf.is_finite()
            || yf == 0.0
        {
            return Dd::from_f64(xf.powf(yf));
        }
        // exact integer exponent (covers negative bases)
        if y.lo == 0.0 && yf.fract() == 0.0 && yf.abs() < 9.0e15 {
            return self.powi(yf as i64);
        }
        if xf < 0.0 {
            // negative base with non-integer exponent: NaN
            return Dd::from_f64(f64::NAN);
        }
        y.mul(self.ln()).exp()
    }

    /// 1/√x — truth for both vendor compositions (`1/sqrt(x)` vs
    /// `sqrt(1/x)`).
    pub fn rsqrt(self) -> Dd {
        if self.is_zero() {
            return Dd::from_f64(1.0 / self.hi.sqrt()); // ±0 → ±inf per 1/√±0
        }
        self.sqrt().recip()
    }

    /// Cube root: f64 seed plus one double-double Newton step.
    pub fn cbrt(self) -> Dd {
        if self.is_zero() || self.is_nan() || self.hi.is_infinite() {
            return Dd::from_f64(self.hi.cbrt());
        }
        let neg = self.hi < 0.0;
        let a = self.abs();
        let x = Dd::from_f64(a.hi.cbrt());
        // x ← x − (x³ − a) / (3x²)
        let x = x.sub(x.powi(3).sub(a).div(x.sqr().mul_f64(3.0)));
        if neg {
            x.neg()
        } else {
            x
        }
    }

    /// sinh via the exp kernel: `(e^x − e^−x)/2`, with the `expm1` form
    /// near zero to avoid cancellation.
    pub fn sinh(self) -> Dd {
        if self.is_nan() || self.is_zero() || self.hi.is_infinite() {
            return self;
        }
        if self.hi.abs() < 0.5 {
            // (expm1(x) − expm1(−x)) / 2 is cancellation-free
            let e = self.expm1();
            let em = self.neg().expm1();
            return e.sub(em).mul_pwr2(0.5);
        }
        let e = self.exp();
        e.sub(e.recip()).mul_pwr2(0.5)
    }

    /// cosh via the exp kernel: `(e^x + e^−x)/2`.
    pub fn cosh(self) -> Dd {
        if self.is_nan() {
            return self;
        }
        if self.hi.is_infinite() {
            return Dd::from_f64(f64::INFINITY);
        }
        let e = self.exp();
        e.add(e.recip()).mul_pwr2(0.5)
    }

    /// tanh via `expm1`: `t/(t + 2)` with `t = expm1(2x)`.
    pub fn tanh(self) -> Dd {
        if self.is_nan() || self.is_zero() {
            return self;
        }
        if self.hi > 20.0 {
            return Dd::ONE;
        }
        if self.hi < -20.0 {
            return Dd::ONE.neg();
        }
        let t = self.mul_pwr2(2.0).expm1();
        t.div(t.add(Dd::from_f64(2.0)))
    }

    /// asinh: `ln(x + √(x²+1))`, with the `ln_1p` form for small `x` and
    /// `ln 2x` for huge `x` (dodging `x²` overflow).
    pub fn asinh(self) -> Dd {
        if self.is_nan() || self.is_zero() || self.hi.is_infinite() {
            return self;
        }
        let neg = self.hi < 0.0;
        let a = self.abs();
        let mag = if a.hi > 1e154 {
            a.ln().add(Dd::LN2)
        } else {
            let t = a.sqr();
            a.add(t.div(Dd::ONE.add(t.add(Dd::ONE).sqrt()))).ln_1p()
        };
        if neg {
            mag.neg()
        } else {
            mag
        }
    }

    /// acosh: `ln(x + √(x²−1))` for `x ≥ 1`, NaN below.
    pub fn acosh(self) -> Dd {
        if self.is_nan() {
            return self;
        }
        match self.cmp_val(Dd::ONE) {
            Some(std::cmp::Ordering::Less) => Dd::from_f64(f64::NAN),
            Some(std::cmp::Ordering::Equal) => Dd::ZERO,
            _ => {
                if self.hi.is_infinite() || self.hi > 1e154 {
                    if self.hi.is_infinite() {
                        return self;
                    }
                    return self.ln().add(Dd::LN2);
                }
                self.add(self.sqr().sub(Dd::ONE).sqrt()).ln()
            }
        }
    }

    /// atanh: `½ ln((1+x)/(1−x))` for `|x| < 1`, via `ln_1p` so small
    /// arguments keep full precision.
    pub fn atanh(self) -> Dd {
        if self.is_nan() || self.is_zero() {
            return self;
        }
        let ax = self.abs();
        match ax.cmp_val(Dd::ONE) {
            Some(std::cmp::Ordering::Greater) => Dd::from_f64(f64::NAN),
            Some(std::cmp::Ordering::Equal) => {
                Dd::from_f64(if self.hi > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY })
            }
            _ => {
                let mag = ax.mul_pwr2(2.0).div(Dd::ONE.sub(ax)).ln_1p().mul_pwr2(0.5);
                if self.hi < 0.0 {
                    mag.neg()
                } else {
                    mag
                }
            }
        }
    }

    /// hypot: `√(x² + y²)` with component scaling against overflow.
    pub fn hypot(self, b: Dd) -> Dd {
        if self.hi.is_infinite() || b.hi.is_infinite() {
            return Dd::from_f64(f64::INFINITY);
        }
        if self.is_nan() || b.is_nan() {
            return Dd::from_f64(f64::NAN);
        }
        let a = self.abs();
        let b = b.abs();
        let m = a.hi.max(b.hi);
        if m == 0.0 {
            return Dd::ZERO;
        }
        // scale by an exact power of two so the squares stay finite
        let e = m.log2().floor() as i32;
        let a = a.ldexp(-e);
        let b = b.ldexp(-e);
        a.sqr().add(b.sqr()).sqrt().ldexp(e)
    }

    /// erf as a double-double kernel: Taylor series below `|x| ≤ 2`, the
    /// Gauss continued fraction on the tail — the same decomposition both
    /// vendor flavours use, but evaluated in 106-bit arithmetic so their
    /// last-ULP disagreements can be adjudicated.
    pub fn erf(self) -> Dd {
        if self.is_nan() || self.is_zero() {
            return self;
        }
        let neg = self.hi < 0.0;
        let x = self.abs();
        let mag = if x.hi <= 2.0 {
            erf_taylor_dd(x)
        } else if x.hi > 7.0 {
            Dd::ONE // erfc < 1e-22 even in DD terms after the final rounding
        } else {
            Dd::ONE.sub(erfc_cf_dd(x))
        };
        if neg {
            mag.neg()
        } else {
            mag
        }
    }

    /// tgamma as a double-double kernel: reflection below ½, recurrence
    /// shifting into `x ≥ 24`, then the Stirling series with Bernoulli
    /// corrections — accurate well past the 53 bits the vendor Lanczos
    /// variants fight over.
    pub fn tgamma(self) -> Dd {
        let x = self.hi;
        if self.is_nan() {
            return self;
        }
        if x == 0.0 {
            return Dd::from_f64(if x.is_sign_negative() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            });
        }
        if x < 0.0 && self.lo == 0.0 && x.fract() == 0.0 {
            return Dd::from_f64(f64::NAN); // poles at the negative integers
        }
        if x.is_infinite() {
            return Dd::from_f64(if x > 0.0 { x } else { f64::NAN });
        }
        if x > 180.0 {
            // Γ(171.7) already overflows f64; avoid huge Stirling sums
            return Dd::from_f64(f64::INFINITY);
        }
        if x < 0.5 {
            // reflection: Γ(x) = π / (sin(πx) · Γ(1−x))
            let s = sin_pi_dd(self);
            if s.is_zero() {
                return Dd::from_f64(f64::NAN);
            }
            return Dd::PI.div(s.mul(Dd::ONE.sub(self).tgamma()));
        }
        // shift up: Γ(x) = Γ(x+n) / (x (x+1) … (x+n−1))
        let mut shift = Dd::ONE;
        let mut z = self;
        while z.hi < 24.0 {
            shift = shift.mul(z);
            z = z.add(Dd::ONE);
        }
        stirling_dd(z).div(shift)
    }

    // -- derivative-corrected host calls ------------------------------------
    // Both simulated vendors call the *identical* host implementation for
    // these, so they can never disagree; truth only needs host-level
    // accuracy plus the first-order `lo` correction.

    /// sin with a first-order `lo` correction over the host call.
    pub fn sin(self) -> Dd {
        if self.lo == 0.0 {
            return Dd::from_f64(self.hi.sin());
        }
        Dd::from_f64(self.hi.sin()).add(Dd::from_f64(self.hi.cos()).mul_f64(self.lo))
    }

    /// cos with a first-order `lo` correction over the host call.
    pub fn cos(self) -> Dd {
        if self.lo == 0.0 {
            return Dd::from_f64(self.hi.cos());
        }
        Dd::from_f64(self.hi.cos()).sub(Dd::from_f64(self.hi.sin()).mul_f64(self.lo))
    }

    /// tan via `sin/cos` on the corrected components.
    pub fn tan(self) -> Dd {
        if self.lo == 0.0 {
            return Dd::from_f64(self.hi.tan());
        }
        self.sin().div(self.cos())
    }

    /// asin with the `1/√(1−x²)` derivative correction.
    pub fn asin(self) -> Dd {
        let d = (1.0 - self.hi * self.hi).sqrt();
        if self.lo == 0.0 || d == 0.0 || !d.is_finite() {
            return Dd::from_f64(self.hi.asin());
        }
        Dd::from_f64(self.hi.asin()).add(Dd::from_f64(self.lo / d))
    }

    /// acos with the `−1/√(1−x²)` derivative correction.
    pub fn acos(self) -> Dd {
        let d = (1.0 - self.hi * self.hi).sqrt();
        if self.lo == 0.0 || d == 0.0 || !d.is_finite() {
            return Dd::from_f64(self.hi.acos());
        }
        Dd::from_f64(self.hi.acos()).sub(Dd::from_f64(self.lo / d))
    }

    /// atan with the `1/(1+x²)` derivative correction.
    pub fn atan(self) -> Dd {
        let d = 1.0 + self.hi * self.hi;
        if self.lo == 0.0 || !d.is_finite() {
            return Dd::from_f64(self.hi.atan());
        }
        Dd::from_f64(self.hi.atan()).add(Dd::from_f64(self.lo / d))
    }

    /// atan2 on the leading components with the partial-derivative
    /// corrections.
    pub fn atan2(self, x: Dd) -> Dd {
        let y = self;
        let r2 = x.hi * x.hi + y.hi * y.hi;
        let base = Dd::from_f64(y.hi.atan2(x.hi));
        if r2 == 0.0 || !r2.is_finite() {
            return base;
        }
        base.add(Dd::from_f64((x.hi * y.lo - y.hi * x.lo) / r2))
    }
}

/// Taylor series of erf in double-double:
/// `2/√π · Σ (−1)ⁿ x^(2n+1) / (n! (2n+1))`.
fn erf_taylor_dd(x: Dd) -> Dd {
    let x2 = x.sqr();
    let mut term = x; // x^(2n+1) / n!
    let mut sum = x;
    for n in 1..120 {
        term = term.mul(x2).div(Dd::from_f64(-(n as f64)));
        let contrib = term.div(Dd::from_f64((2 * n + 1) as f64));
        sum = sum.add(contrib);
        if contrib.hi.abs() < sum.hi.abs() * 1e-35 {
            break;
        }
    }
    two_over_sqrt_pi().mul(sum)
}

/// Gauss continued fraction for erfc in double-double, valid for `x ≥ 2`:
/// `erfc(x) = e^{−x²}/√π · 1/(x + ½/(x + 1/(x + 3⁄2/(x + …))))`.
fn erfc_cf_dd(x: Dd) -> Dd {
    let mut f = Dd::ZERO;
    for k in (1..=160u32).rev() {
        f = Dd::from_f64(k as f64 * 0.5).div(x.add(f));
    }
    x.sqr().neg().exp().div(sqrt_pi()).div(x.add(f))
}

/// √π in double-double (derived, not a constant: π is the only trusted
/// literal).
fn sqrt_pi() -> Dd {
    Dd::PI.sqrt()
}

/// 2/√π in double-double.
fn two_over_sqrt_pi() -> Dd {
    Dd::from_f64(2.0).div(sqrt_pi())
}

/// sin(πx) in double-double via exact range reduction modulo 2 and the
/// Taylor series of sin around 0 (quarter-period reduced, so the argument
/// is at most π/4).
fn sin_pi_dd(x: Dd) -> Dd {
    // reduce x to r ∈ [−½, ½) with sin(πx) = ± sin(πr) — the reduction is
    // exact because floor/sub are exact in DD
    let two = Dd::from_f64(2.0);
    let r = x.sub(x.div(two).floor().mul(two)); // r ∈ [0, 2)
    let (r, sign) = match r.cmp_val(Dd::ONE) {
        Some(std::cmp::Ordering::Less) => (r, 1.0),
        _ => (r.sub(Dd::ONE), -1.0),
    };
    // r ∈ [0,1); fold to [0, ½]
    let r = match r.cmp_val(Dd::from_f64(0.5)) {
        Some(std::cmp::Ordering::Greater) => Dd::ONE.sub(r),
        _ => r,
    };
    // Taylor: sin(t), t = πr ≤ π/2 ≈ 1.57 — terms decay fast enough by
    // n ≈ 30 for 106 bits
    let t = Dd::PI.mul(r);
    let t2 = t.sqr();
    let mut term = t;
    let mut sum = t;
    let mut n = 1.0f64;
    while n < 40.0 {
        term = term.mul(t2).div(Dd::from_f64(-(2.0 * n) * (2.0 * n + 1.0)));
        sum = sum.add(term);
        if term.hi.abs() < 1e-40 {
            break;
        }
        n += 1.0;
    }
    sum.mul_f64(sign)
}

/// Stirling series for Γ(z), `z ≥ 24`:
/// `Γ(z) = √(2π/z) (z/e)^z exp(Σ B₂ₙ / (2n(2n−1) z^{2n−1}))`.
fn stirling_dd(z: Dd) -> Dd {
    // Bernoulli correction coefficients B₂ₙ/(2n(2n−1)) as exact rationals
    // evaluated in double-double
    const BERN: [(f64, f64); 8] = [
        (1.0, 12.0),        // B2/(2·1)   = 1/12
        (-1.0, 360.0),      // B4/(4·3)   = −1/360
        (1.0, 1260.0),      // B6/(6·5)   = 1/1260
        (-1.0, 1680.0),     // B8/(8·7)   = −1/1680
        (1.0, 1188.0),      // B10/(10·9) = 1/1188
        (-691.0, 360360.0), // B12/(12·11)
        (1.0, 156.0),       // B14/(14·13)
        (-3617.0, 122400.0), // B16/(16·15)
    ];
    let zinv = z.recip();
    let z2inv = zinv.sqr();
    let mut pow = zinv; // z^{−(2n−1)}
    let mut corr = Dd::ZERO;
    for &(num, den) in &BERN {
        corr = corr.add(Dd::from_f64(num).div(Dd::from_f64(den)).mul(pow));
        pow = pow.mul(z2inv);
    }
    // √(2π/z) · exp(z ln z − z + corr)
    let half_log = Dd::PI.mul_pwr2(2.0).div(z).sqrt();
    let body = z.mul(z.ln()).sub(z).add(corr).exp();
    half_log.mul(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::ulp_diff_f64;

    fn assert_close(got: Dd, want: f64, ulps: u64, what: &str) {
        let d = ulp_diff_f64(got.to_f64(), want).unwrap_or(u64::MAX);
        assert!(d <= ulps, "{what}: got {} want {want} ({d} ulp)", got.to_f64());
    }

    #[test]
    fn two_sum_known_error() {
        // 1 + 2^-60: the sum rounds to 1, the error is exactly 2^-60
        let (s, e) = two_sum(1.0, 2f64.powi(-60));
        assert_eq!(s, 1.0);
        assert_eq!(e, 2f64.powi(-60));
        // order must not matter
        let (s2, e2) = two_sum(2f64.powi(-60), 1.0);
        assert_eq!((s2, e2), (s, e));
    }

    #[test]
    fn two_prod_known_error() {
        // (1 + 2^-30)² = 1 + 2^-29 + 2^-60; the product rounds off 2^-60
        let x = 1.0 + 2f64.powi(-30);
        let (p, e) = two_prod(x, x);
        assert_eq!(p, 1.0 + 2f64.powi(-29));
        assert_eq!(e, 2f64.powi(-60));
    }

    #[test]
    fn dd_add_keeps_106_bits() {
        let a = Dd::from_f64(1.0);
        let b = Dd::from_f64(2f64.powi(-70));
        let s = a.add(b);
        assert_eq!(s.hi, 1.0);
        assert_eq!(s.lo, 2f64.powi(-70));
        // and the round trip back down loses it again, correctly rounded
        assert_eq!(s.to_f64(), 1.0);
    }

    #[test]
    fn dd_add_follows_ieee_zero_sign_rules() {
        let nz = Dd::from_f64(-0.0);
        let pz = Dd::ZERO;
        assert!(nz.add(nz).to_f64().is_sign_negative(), "-0 + -0 = -0");
        assert!(nz.add(pz).to_f64().is_sign_positive(), "-0 + +0 = +0");
        assert!(nz.sub(pz).to_f64().is_sign_negative(), "-0 - +0 = -0");
        assert!(pz.sub(pz).to_f64().is_sign_positive(), "+0 - +0 = +0");
        // exact cancellation of nonzero operands is +0 in round-to-nearest
        assert!(Dd::from_f64(1.5).sub(Dd::from_f64(1.5)).to_f64().is_sign_positive());
    }

    #[test]
    fn dd_mul_exactness() {
        // (1+2^-30)·(1−2^-30) = 1 − 2^-60 exactly
        let a = Dd::from_f64(1.0 + 2f64.powi(-30));
        let b = Dd::from_f64(1.0 - 2f64.powi(-30));
        let p = a.mul(b);
        let want = Dd::ONE.sub(Dd::from_f64(2f64.powi(-60)));
        assert_eq!(p, want);
    }

    #[test]
    fn dd_div_reconstructs() {
        let a = Dd::from_f64(355.0);
        let b = Dd::from_f64(113.0);
        let q = a.div(b);
        let back = q.mul(b);
        assert!((back.to_f64() - 355.0).abs() < 1e-13);
        assert!(back.sub(a).abs().to_f64() < 1e-29);
    }

    #[test]
    fn division_by_zero_and_nan_propagate() {
        assert_eq!(Dd::ONE.div(Dd::ZERO).to_f64(), f64::INFINITY);
        assert!(Dd::ZERO.div(Dd::ZERO).is_nan());
        assert!(Dd::from_f64(f64::NAN).add(Dd::ONE).is_nan());
        assert_eq!(Dd::from_f64(f64::INFINITY).mul(Dd::ONE).to_f64(), f64::INFINITY);
    }

    #[test]
    fn to_f32_single_rounds() {
        // hi exactly on an f32 midpoint, lo breaking the tie upward:
        // round-to-even of hi alone keeps the even neighbour, the true
        // value rounds up
        let r = 1.0f32;
        let up = crate::ulp::next_up_f32(r);
        let mid = (r as f64 + up as f64) * 0.5;
        let v = Dd { hi: mid, lo: 1e-30 };
        assert_eq!(v.to_f32(), up, "lo must break the tie upward");
        let v = Dd { hi: mid, lo: -1e-30 };
        assert_eq!(v.to_f32(), r, "lo must break the tie downward");
        assert_eq!(Dd { hi: mid, lo: 0.0 }.to_f32(), r, "exact tie rounds to even");
    }

    #[test]
    fn trunc_floor_ceil_are_exact() {
        let x = Dd::from_f64(2.5);
        assert_eq!(x.trunc().to_f64(), 2.0);
        assert_eq!(x.floor().to_f64(), 2.0);
        assert_eq!(x.ceil().to_f64(), 3.0);
        let y = Dd::from_f64(-2.5);
        assert_eq!(y.trunc().to_f64(), -2.0);
        assert_eq!(y.floor().to_f64(), -3.0);
        assert_eq!(y.ceil().to_f64(), -2.0);
        // the Fig. 5 mechanism: tiny positive values ceil to exactly 1
        assert_eq!(Dd::from_f64(1.5955e-125).ceil().to_f64(), 1.0);
        assert_eq!(Dd::from_f64(5e-324).ceil().to_f64(), 1.0);
        // integer hi with a negative lo: the true value is just below the
        // integer, so ceil is the integer and floor is one less
        let z = Dd { hi: 3.0, lo: -1e-20 };
        assert_eq!(z.ceil().to_f64(), 3.0);
        assert_eq!(z.floor().to_f64(), 2.0);
        assert_eq!(z.trunc().to_f64(), 2.0);
    }

    #[test]
    fn round_modes() {
        assert_eq!(Dd::from_f64(2.5).round().to_f64(), 3.0);
        assert_eq!(Dd::from_f64(-2.5).round().to_f64(), -3.0);
        assert_eq!(Dd::from_f64(2.5).round_ties_even().to_f64(), 2.0);
        assert_eq!(Dd::from_f64(3.5).round_ties_even().to_f64(), 4.0);
        // a tie broken by lo is no longer a tie
        assert_eq!((Dd { hi: 2.5, lo: 1e-20 }).round_ties_even().to_f64(), 3.0);
    }

    #[test]
    fn sqrt_full_precision() {
        let two = Dd::from_f64(2.0);
        let r = two.sqrt();
        // r² − 2 must vanish to ~1e-32
        assert!(r.sqr().sub(two).abs().to_f64() < 1e-31);
        assert_close(r, std::f64::consts::SQRT_2, 0, "sqrt(2)");
        assert!(Dd::from_f64(-1.0).sqrt().is_nan());
        assert_eq!(Dd::ZERO.sqrt().to_f64(), 0.0);
    }

    #[test]
    fn exp_log_roundtrip() {
        for &x in &[-50.0, -1.0, -1e-5, 0.3, 1.0, 2.0, 10.0, 300.0] {
            let e = Dd::from_f64(x).exp();
            let back = e.ln();
            assert!(
                back.sub(Dd::from_f64(x)).abs().to_f64() < 1e-28 * x.abs().max(1.0),
                "ln(exp({x})) = {}",
                back.to_f64()
            );
        }
        assert_close(Dd::ONE.exp(), std::f64::consts::E, 0, "e");
        assert_close(Dd::LN2.exp(), 2.0, 0, "exp(ln 2)");
        assert_close(Dd::from_f64(2.0).ln(), std::f64::consts::LN_2, 0, "ln 2");
        assert_eq!(Dd::from_f64(800.0).exp().to_f64(), f64::INFINITY);
        assert_eq!(Dd::from_f64(-800.0).exp().to_f64(), 0.0);
        assert_eq!(Dd::ZERO.ln().to_f64(), f64::NEG_INFINITY);
        assert!(Dd::from_f64(-1.0).ln().is_nan());
    }

    #[test]
    fn exp2_log2_log10_agree_with_host() {
        assert_close(Dd::from_f64(10.0).exp2(), 1024.0, 0, "2^10");
        assert_close(Dd::from_f64(1024.0).log2(), 10.0, 0, "log2 1024");
        assert_close(Dd::from_f64(1000.0).log10(), 3.0, 0, "log10 1000");
        assert_close(Dd::from_f64(0.7).exp2(), 0.7f64.exp2(), 1, "2^0.7");
        assert_close(Dd::from_f64(0.7).log2(), 0.7f64.log2(), 1, "log2 0.7");
    }

    #[test]
    fn expm1_log1p_cancellation_free() {
        let tiny = 1e-18;
        assert_close(Dd::from_f64(tiny).expm1(), tiny.exp_m1(), 0, "expm1 tiny");
        assert_close(Dd::from_f64(tiny).ln_1p(), tiny.ln_1p(), 0, "log1p tiny");
        assert_close(Dd::from_f64(0.4).expm1(), 0.4f64.exp_m1(), 1, "expm1 0.4");
        assert_close(Dd::from_f64(3.0).expm1(), 3.0f64.exp_m1(), 1, "expm1 3");
        assert_close(Dd::from_f64(-0.6).ln_1p(), (-0.6f64).ln_1p(), 1, "log1p −0.6");
        assert_eq!(Dd::from_f64(-1.0).ln_1p().to_f64(), f64::NEG_INFINITY);
    }

    #[test]
    fn pow_cases() {
        assert_close(Dd::from_f64(2.0).pow(Dd::from_f64(10.0)), 1024.0, 0, "2^10");
        assert_close(Dd::from_f64(-2.0).pow(Dd::from_f64(3.0)), -8.0, 0, "(−2)³");
        assert_close(Dd::from_f64(9.0).pow(Dd::from_f64(0.5)), 3.0, 0, "9^½");
        assert_close(
            Dd::from_f64(1.7).pow(Dd::from_f64(2.6)),
            1.7f64.powf(2.6),
            1,
            "1.7^2.6",
        );
        assert!(Dd::from_f64(-2.0).pow(Dd::from_f64(0.5)).is_nan());
        assert_eq!(Dd::ZERO.pow(Dd::ZERO).to_f64(), 1.0);
        assert_eq!(Dd::from_f64(2.0).pow(Dd::ZERO).to_f64(), 1.0);
    }

    #[test]
    fn fmod_matches_exact_host_semantics() {
        // lo == 0 both sides: must equal the (exact) host fmod bitwise
        for &(a, b) in &[
            (7.5, 2.0),
            (-7.5, 2.0),
            (1e300, 3.7),
            (1.5917195493481116e289, 1.5793e-307), // paper Fig. 4 operands
            (5.0, f64::INFINITY),
        ] {
            let got = Dd::from_f64(a).fmod(Dd::from_f64(b)).to_f64();
            let want = a % b;
            assert!(got.to_bits() == want.to_bits(), "fmod({a},{b}) = {got}, want {want}");
        }
        assert!(Dd::ONE.fmod(Dd::ZERO).is_nan());
        assert!(Dd::from_f64(f64::INFINITY).fmod(Dd::ONE).is_nan());
    }

    #[test]
    fn hyperbolics_match_host_within_ulps() {
        for &x in &[-3.0, -0.1, 1e-8, 0.4, 2.0, 15.0] {
            assert_close(Dd::from_f64(x).sinh(), x.sinh(), 1, "sinh");
            assert_close(Dd::from_f64(x).cosh(), x.cosh(), 1, "cosh");
            assert_close(Dd::from_f64(x).tanh(), x.tanh(), 1, "tanh");
            assert_close(Dd::from_f64(x).asinh(), x.asinh(), 1, "asinh");
        }
        for &x in &[1.0, 1.5, 20.0, 1e160] {
            assert_close(Dd::from_f64(x).acosh(), x.acosh(), 1, "acosh");
        }
        for &x in &[-0.9, 0.001, 0.5] {
            // host atanh itself carries up to ~2 ulp of error; the DD
            // value is the more trustworthy of the two
            assert_close(Dd::from_f64(x).atanh(), x.atanh(), 2, "atanh");
        }
        assert!(Dd::from_f64(0.5).acosh().is_nan());
        assert!(Dd::from_f64(1.5).atanh().is_nan());
    }

    #[test]
    fn cbrt_rsqrt_hypot() {
        assert_close(Dd::from_f64(27.0).cbrt(), 3.0, 0, "cbrt 27");
        assert_close(Dd::from_f64(-8.0).cbrt(), -2.0, 0, "cbrt −8");
        assert_close(Dd::from_f64(4.0).rsqrt(), 0.5, 0, "rsqrt 4");
        assert_eq!(Dd::ZERO.rsqrt().to_f64(), f64::INFINITY);
        assert_close(Dd::from_f64(3.0).hypot(Dd::from_f64(4.0)), 5.0, 0, "hypot 3 4");
        assert_close(
            Dd::from_f64(1e300).hypot(Dd::from_f64(1e300)),
            1e300 * std::f64::consts::SQRT_2,
            1,
            "hypot huge",
        );
    }

    #[test]
    fn erf_matches_published_values() {
        // same reference table the vendor flavours are tested against
        for &(x, want) in &[
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (1.5, 0.966_105_146_475_310_7),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
            (4.0, 0.999_999_984_582_742_1),
        ] {
            assert_close(Dd::from_f64(x).erf(), want, 1, "erf");
            assert_close(Dd::from_f64(-x).erf(), -want, 1, "erf odd");
        }
        assert_eq!(Dd::ZERO.erf().to_f64(), 0.0);
        assert_eq!(Dd::from_f64(10.0).erf().to_f64(), 1.0);
        assert!(Dd::from_f64(f64::NAN).erf().is_nan());
    }

    #[test]
    fn tgamma_matches_factorials_and_reflection() {
        for &(x, want) in
            &[(1.0, 1.0), (2.0, 1.0), (5.0, 24.0), (10.0, 362880.0), (21.0, 2.43290200817664e18)]
        {
            assert_close(Dd::from_f64(x).tgamma(), want, 1, "tgamma int");
        }
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_close(Dd::from_f64(0.5).tgamma(), sqrt_pi, 1, "Γ(½)");
        assert_close(Dd::from_f64(-0.5).tgamma(), -2.0 * sqrt_pi, 1, "Γ(−½)");
        assert!(Dd::from_f64(-2.0).tgamma().is_nan());
        assert_eq!(Dd::from_f64(0.0).tgamma().to_f64(), f64::INFINITY);
        assert_eq!(Dd::from_f64(200.0).tgamma().to_f64(), f64::INFINITY);
    }

    #[test]
    fn trig_derivative_correction_is_first_order() {
        // sin(x + d) ≈ sin x + d cos x: the corrected value must be closer
        // to the true sum than the uncorrected one
        let x = 1.0f64;
        let d = 1e-17;
        let v = Dd { hi: x, lo: d };
        let got = v.sin().to_f64();
        let naive = x.sin();
        let true_sum = (x + d).sin() + (x.cos() * d - ((x + d).sin() - x.sin())); // ≈ sin x + d cos x
        assert!((got - true_sum).abs() <= (naive - true_sum).abs());
    }

    #[test]
    fn comparisons_use_both_words() {
        let a = Dd { hi: 1.0, lo: 1e-20 };
        let b = Dd::ONE;
        assert_eq!(a.cmp_val(b), Some(std::cmp::Ordering::Greater));
        assert_eq!(b.cmp_val(a), Some(std::cmp::Ordering::Less));
        assert_eq!(b.cmp_val(Dd::ONE), Some(std::cmp::Ordering::Equal));
        assert_eq!(Dd::from_f64(f64::NAN).cmp_val(b), None);
    }

    #[test]
    fn min_max_fmin_fmax_semantics() {
        let nan = Dd::from_f64(f64::NAN);
        assert_eq!(nan.min(Dd::ONE), Dd::ONE);
        assert_eq!(Dd::ONE.min(nan), Dd::ONE);
        assert_eq!(Dd::ONE.max(Dd::from_f64(2.0)).to_f64(), 2.0);
    }

    #[test]
    fn ldexp_scales_exactly() {
        let x = Dd { hi: 1.5, lo: 1e-17 };
        let y = x.ldexp(10);
        assert_eq!(y.hi, 1.5 * 1024.0);
        assert_eq!(y.lo, 1e-17 * 1024.0);
        assert_eq!(x.ldexp(-1200).hi, 0.0); // underflow saturates
    }
}
