//! IEEE-754 exception events (Table II of the paper) and an accumulating
//! status-flag register.
//!
//! CPUs expose these events through FPU status registers and can raise
//! `SIGFPE`; NVIDIA GPUs expose none of them (§II-B). The simulated devices
//! in this workspace *do* track them — the interpreter in `gpucc` detects
//! each event from operand/result patterns, the way binary-instrumentation
//! tools such as GPU-FPX (ref \[12\] in the paper) reconstruct them.

use serde::{Deserialize, Serialize};

/// One of the five IEEE-754 exception events (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpException {
    /// Result was rounded (produced after rounding).
    Inexact,
    /// Result could not be represented as a normal number.
    Underflow,
    /// Result did not fit and became an infinity.
    Overflow,
    /// Division of a finite non-zero value by zero.
    DivideByZero,
    /// Operation on invalid operands produced a NaN.
    Invalid,
}

impl FpException {
    /// All five events, in the order of Table II.
    pub const ALL: [FpException; 5] = [
        FpException::Inexact,
        FpException::Underflow,
        FpException::Overflow,
        FpException::DivideByZero,
        FpException::Invalid,
    ];

    /// Human-readable description matching Table II.
    pub fn description(self) -> &'static str {
        match self {
            FpException::Inexact => "Result is produced after rounding",
            FpException::Underflow => "Result could not be represented as normal",
            FpException::Overflow => "Result did not fit and it is an infinity",
            FpException::DivideByZero => "Divide-by-zero operation",
            FpException::Invalid => "Operation operand is not a number (NaN)",
        }
    }

    #[inline]
    fn bit(self) -> u8 {
        match self {
            FpException::Inexact => 1 << 0,
            FpException::Underflow => 1 << 1,
            FpException::Overflow => 1 << 2,
            FpException::DivideByZero => 1 << 3,
            FpException::Invalid => 1 << 4,
        }
    }
}

impl std::fmt::Display for FpException {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FpException::Inexact => "Inexact",
            FpException::Underflow => "Underflow",
            FpException::Overflow => "Overflow",
            FpException::DivideByZero => "DivideByZero",
            FpException::Invalid => "Invalid",
        };
        f.write_str(s)
    }
}

/// Accumulating (sticky) exception status flags, like an FPU status word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionFlags(u8);

impl ExceptionFlags {
    /// Empty flag set.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise (set) one event. Sticky: never cleared by later operations.
    #[inline]
    pub fn raise(&mut self, e: FpException) {
        self.0 |= e.bit();
    }

    /// True if the given event has been raised.
    #[inline]
    pub fn is_set(self, e: FpException) -> bool {
        self.0 & e.bit() != 0
    }

    /// True if no event has been raised.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Merge another flag set into this one.
    #[inline]
    pub fn merge(&mut self, other: ExceptionFlags) {
        self.0 |= other.0;
    }

    /// Number of distinct events raised.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over the raised events in Table II order.
    pub fn iter(self) -> impl Iterator<Item = FpException> {
        FpException::ALL.into_iter().filter(move |e| self.is_set(*e))
    }
}

impl std::fmt::Display for ExceptionFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        let mut first = true;
        for e in self.iter() {
            if !first {
                f.write_str("|")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        Ok(())
    }
}

/// Detect the exception events implied by a binary arithmetic operation on
/// `f64` operands with result `r`.
///
/// This mirrors how hardware sets status flags: Invalid when a NaN is
/// produced from non-NaN operands (or by 0/0, Inf-Inf, 0*Inf), DivideByZero
/// for finite/0, Overflow when finite operands produce Inf, Underflow when
/// the result is subnormal, Inexact approximated as "result differs from an
/// exactly representable operand combination" — we set it whenever the
/// result is finite and the operation is not exact by construction, which is
/// the practical definition used by testing tools.
#[inline]
pub fn detect_binary_f64(op: ArithOp, a: f64, b: f64, r: f64) -> ExceptionFlags {
    let mut flags = ExceptionFlags::new();
    // A NaN result excludes every finite-result event (the only flag that
    // can accompany it, per the rules below, is Invalid itself), and an
    // infinite result excludes Underflow/Inexact — early returns keep the
    // common finite path short. This is the interpreter/vm per-op hot
    // path; the flag sets produced are identical to the historical
    // all-branches form for every input.
    if r.is_nan() {
        if !a.is_nan() && !b.is_nan() {
            flags.raise(FpException::Invalid);
        }
        return flags;
    }
    let div = matches!(op, ArithOp::Div);
    if div && b == 0.0 && a.is_finite() && a != 0.0 {
        flags.raise(FpException::DivideByZero);
    }
    if r.is_infinite() {
        if a.is_finite() && b.is_finite() && !(div && b == 0.0) {
            flags.raise(FpException::Overflow);
        }
        return flags;
    }
    if r != 0.0 && r.abs() < f64::MIN_POSITIVE {
        flags.raise(FpException::Underflow);
    }
    if !exact_binary_f64(op, a, b, r) {
        flags.raise(FpException::Inexact);
    }
    flags
}

/// Detect exception events for an `f32` binary operation (see
/// [`detect_binary_f64`]).
#[inline]
pub fn detect_binary_f32(op: ArithOp, a: f32, b: f32, r: f32) -> ExceptionFlags {
    let mut flags = ExceptionFlags::new();
    if r.is_nan() {
        if !a.is_nan() && !b.is_nan() {
            flags.raise(FpException::Invalid);
        }
        return flags;
    }
    let div = matches!(op, ArithOp::Div);
    if div && b == 0.0 && a.is_finite() && a != 0.0 {
        flags.raise(FpException::DivideByZero);
    }
    if r.is_infinite() {
        if a.is_finite() && b.is_finite() && !(div && b == 0.0) {
            flags.raise(FpException::Overflow);
        }
        return flags;
    }
    if r != 0.0 && r.abs() < f32::MIN_POSITIVE {
        flags.raise(FpException::Underflow);
    }
    if !exact_binary_f32(op, a, b, r) {
        flags.raise(FpException::Inexact);
    }
    flags
}

/// The four basic arithmetic operations, for exception detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Exactness check: recompute in wider precision and compare. For f64 we use
/// the residual test (a op b == r exactly when the inverse operation
/// round-trips); a pragmatic approximation sufficient for flag purposes.
#[inline]
fn exact_binary_f64(op: ArithOp, a: f64, b: f64, r: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return true; // exceptional operands: Inexact not meaningful
    }
    match op {
        // Sterbenz-style residual checks: for +/- the error is representable,
        // so the op was exact iff the residual is zero.
        ArithOp::Add => {
            let err = (a - (r - b)) + (b - (r - (r - b)));
            err == 0.0
        }
        ArithOp::Sub => {
            let nb = -b;
            let err = (a - (r - nb)) + (nb - (r - (r - nb)));
            err == 0.0
        }
        ArithOp::Mul => {
            // Integer fast path: for normal operands and a normal result
            // the product is exact iff the significand product's
            // significant bit count (bit length minus trailing zeros,
            // which multiply additively since odd parts stay odd) fits
            // in 53 bits. The magnitude guard keeps the fast path out of
            // the range where the residual check below would declare a
            // mathematically inexact product "exact" because the fma
            // residual (>= 2^(exp(r)-105)) itself underflows to zero —
            // inside the guard both criteria provably agree, so this is
            // a pure speedup, not a semantics change.
            if is_normal_f64(a) && is_normal_f64(b) && is_normal_f64(r) && r.abs() >= 1.0e-280 {
                let m = mantissa_f64(a) as u128 * mantissa_f64(b) as u128;
                128 - m.leading_zeros() - m.trailing_zeros() <= 53
            } else {
                r.mul_add(1.0, -(a * b)) == 0.0 && a.mul_add(b, -r) == 0.0
            }
        }
        ArithOp::Div => {
            if b == 0.0 {
                true
            } else {
                // exact iff r*b == a with no rounding
                r.mul_add(b, -a) == 0.0
            }
        }
    }
}

/// Significand with the implicit leading bit, for normal values.
#[inline]
fn mantissa_f64(x: f64) -> u64 {
    (x.to_bits() & ((1u64 << 52) - 1)) | (1u64 << 52)
}

/// Finite, non-zero, non-subnormal (exponent field neither 0 nor all-ones).
#[inline]
fn is_normal_f64(x: f64) -> bool {
    let e = (x.to_bits() >> 52) & 0x7FF;
    e != 0 && e != 0x7FF
}

#[inline]
fn exact_binary_f32(op: ArithOp, a: f32, b: f32, r: f32) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return true;
    }
    // widen to f64: every f32 op is exactly representable in f64 products/sums
    let (ad, bd) = (a as f64, b as f64);
    let exactd = match op {
        ArithOp::Add => ad + bd,
        ArithOp::Sub => ad - bd,
        ArithOp::Mul => ad * bd,
        ArithOp::Div => {
            if bd == 0.0 {
                return true;
            }
            ad / bd
        }
    };
    exactd == r as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_sticky_and_mergeable() {
        let mut f = ExceptionFlags::new();
        assert!(f.is_empty());
        f.raise(FpException::Overflow);
        f.raise(FpException::Overflow);
        assert_eq!(f.count(), 1);
        let mut g = ExceptionFlags::new();
        g.raise(FpException::Invalid);
        f.merge(g);
        assert!(f.is_set(FpException::Overflow));
        assert!(f.is_set(FpException::Invalid));
        assert_eq!(f.count(), 2);
    }

    #[test]
    fn divide_by_zero_detected() {
        let f = detect_binary_f64(ArithOp::Div, 1.0, 0.0, 1.0 / 0.0);
        assert!(f.is_set(FpException::DivideByZero));
        assert!(!f.is_set(FpException::Overflow));
    }

    #[test]
    #[allow(clippy::zero_divided_by_zero)] // producing NaN is the point
    fn zero_over_zero_is_invalid_not_dbz() {
        let f = detect_binary_f64(ArithOp::Div, 0.0, 0.0, 0.0 / 0.0);
        assert!(f.is_set(FpException::Invalid));
        assert!(!f.is_set(FpException::DivideByZero));
    }

    #[test]
    fn overflow_detected() {
        let a = f64::MAX;
        let f = detect_binary_f64(ArithOp::Mul, a, 2.0, a * 2.0);
        assert!(f.is_set(FpException::Overflow));
    }

    #[test]
    fn underflow_detected_for_subnormal_result() {
        let a = f64::MIN_POSITIVE;
        let r = a / 4.0;
        assert!(r > 0.0);
        let f = detect_binary_f64(ArithOp::Div, a, 4.0, r);
        assert!(f.is_set(FpException::Underflow));
    }

    #[test]
    fn exact_addition_raises_nothing() {
        let f = detect_binary_f64(ArithOp::Add, 1.0, 2.0, 3.0);
        assert!(f.is_empty(), "got {f}");
    }

    #[test]
    fn inexact_addition_detected() {
        let f = detect_binary_f64(ArithOp::Add, 1.0, 1e-30, 1.0 + 1e-30);
        assert!(f.is_set(FpException::Inexact));
    }

    #[test]
    fn inf_minus_inf_is_invalid() {
        let f = detect_binary_f64(ArithOp::Sub, f64::INFINITY, f64::INFINITY, f64::NAN);
        assert!(f.is_set(FpException::Invalid));
    }

    #[test]
    fn nan_operand_does_not_raise_invalid() {
        // propagation of an existing NaN is not a new Invalid event
        let f = detect_binary_f64(ArithOp::Add, f64::NAN, 1.0, f64::NAN);
        assert!(!f.is_set(FpException::Invalid));
    }

    #[test]
    fn f32_paths_mirror_f64() {
        let f = detect_binary_f32(ArithOp::Div, 1.0, 0.0, f32::INFINITY);
        assert!(f.is_set(FpException::DivideByZero));
        let f = detect_binary_f32(ArithOp::Mul, f32::MAX, 2.0, f32::INFINITY);
        assert!(f.is_set(FpException::Overflow));
        let f = detect_binary_f32(ArithOp::Add, 1.0, 1e-10, 1.0 + 1e-10);
        assert!(f.is_set(FpException::Inexact));
    }

    #[test]
    fn display_formats() {
        let mut f = ExceptionFlags::new();
        assert_eq!(f.to_string(), "(none)");
        f.raise(FpException::Inexact);
        f.raise(FpException::Invalid);
        assert_eq!(f.to_string(), "Inexact|Invalid");
    }

    #[test]
    fn descriptions_match_table_ii() {
        assert_eq!(FpException::Overflow.description(), "Result did not fit and it is an infinity");
        assert_eq!(FpException::ALL.len(), 5);
    }
}
