//! Flush-to-zero (FTZ) and denormals-are-zero (DAZ) semantics.
//!
//! GPUs commonly run FP32 pipelines with subnormal inputs and/or outputs
//! flushed to zero — on NVIDIA hardware `-ftz=true` is implied by
//! `--use_fast_math`; AMD's OCML fast paths flush as well but at different
//! points. The simulated devices apply these helpers around every
//! arithmetic operation according to their [`FtzMode`].

use serde::{Deserialize, Serialize};

/// Which flush behaviours an FP pipeline applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FtzMode {
    /// Flush subnormal *inputs* to zero before the operation (DAZ).
    pub daz: bool,
    /// Flush subnormal *results* to zero after the operation (FTZ).
    pub ftz: bool,
}

impl FtzMode {
    /// IEEE-compliant mode: subnormals preserved everywhere.
    pub const IEEE: FtzMode = FtzMode { daz: false, ftz: false };
    /// Full flush: both inputs and outputs flushed (NVIDIA `-ftz=true`).
    pub const FLUSH: FtzMode = FtzMode { daz: true, ftz: true };
    /// Output-only flush (some AMD fast paths).
    pub const FTZ_ONLY: FtzMode = FtzMode { daz: false, ftz: true };

    /// Apply the DAZ (input) rule to an `f64`.
    #[inline]
    pub fn daz_f64(self, x: f64) -> f64 {
        if self.daz && x.is_subnormal() {
            if x.is_sign_negative() {
                -0.0
            } else {
                0.0
            }
        } else {
            x
        }
    }

    /// Apply the FTZ (output) rule to an `f64`.
    #[inline]
    pub fn ftz_f64(self, x: f64) -> f64 {
        if self.ftz && x.is_subnormal() {
            if x.is_sign_negative() {
                -0.0
            } else {
                0.0
            }
        } else {
            x
        }
    }

    /// Apply the DAZ (input) rule to an `f32`.
    #[inline]
    pub fn daz_f32(self, x: f32) -> f32 {
        if self.daz && x.is_subnormal() {
            if x.is_sign_negative() {
                -0.0
            } else {
                0.0
            }
        } else {
            x
        }
    }

    /// Apply the FTZ (output) rule to an `f32`.
    #[inline]
    pub fn ftz_f32(self, x: f32) -> f32 {
        if self.ftz && x.is_subnormal() {
            if x.is_sign_negative() {
                -0.0
            } else {
                0.0
            }
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUB64: f64 = 1e-310;
    const SUB32: f32 = 1e-41;

    #[test]
    fn ieee_mode_preserves_subnormals() {
        let m = FtzMode::IEEE;
        assert_eq!(m.daz_f64(SUB64), SUB64);
        assert_eq!(m.ftz_f64(SUB64), SUB64);
        assert_eq!(m.daz_f32(SUB32), SUB32);
    }

    #[test]
    fn flush_mode_flushes_both_directions() {
        let m = FtzMode::FLUSH;
        assert_eq!(m.daz_f64(SUB64), 0.0);
        assert_eq!(m.ftz_f64(SUB64), 0.0);
        assert_eq!(m.daz_f32(SUB32), 0.0);
        assert_eq!(m.ftz_f32(SUB32), 0.0);
    }

    #[test]
    fn flush_preserves_sign_of_zero() {
        let m = FtzMode::FLUSH;
        assert!(m.ftz_f64(-SUB64).is_sign_negative());
        assert_eq!(m.ftz_f64(-SUB64), 0.0); // -0.0 == 0.0
        assert!(m.daz_f32(-SUB32).is_sign_negative());
    }

    #[test]
    fn ftz_only_mode_leaves_inputs_alone() {
        let m = FtzMode::FTZ_ONLY;
        assert_eq!(m.daz_f64(SUB64), SUB64);
        assert_eq!(m.ftz_f64(SUB64), 0.0);
    }

    #[test]
    fn normals_and_specials_untouched() {
        let m = FtzMode::FLUSH;
        assert_eq!(m.ftz_f64(1.0), 1.0);
        assert_eq!(m.ftz_f64(f64::MIN_POSITIVE), f64::MIN_POSITIVE);
        assert!(m.ftz_f64(f64::NAN).is_nan());
        assert_eq!(m.daz_f64(f64::INFINITY), f64::INFINITY);
        assert_eq!(m.ftz_f64(0.0), 0.0);
    }
}
