//! # fpcore — IEEE-754 floating-point substrate
//!
//! Shared floating-point machinery for the `gpu-numerics` workspace:
//!
//! * [`classify`] — value classification into the outcome lattice used by the
//!   paper (NaN / Inf / Zero / Number) plus the finer IEEE classes
//!   (subnormal / normal).
//! * [`ulp`] — unit-in-the-last-place distances and neighbour traversal.
//! * [`exceptions`] — the five IEEE-754 exception events of Table II and an
//!   accumulating status-flag register, mirroring what a CPU FPU exposes and
//!   what GPUs famously do *not*.
//! * [`traits`] — the [`traits::GpuFloat`] abstraction that lets
//!   the generator, compiler and simulator be generic over FP32 and FP64.
//! * [`bits`] — raw bit-pattern helpers.
//! * [`literal`] — `%.17g`-style formatting and the Varity literal format
//!   (`+1.5955E-125`), with exact round-trip parsing.
//! * [`ftz`] — flush-to-zero / denormals-are-zero semantics applied by the
//!   simulated devices.
//!
//! Everything in this crate is deterministic and platform-independent: all
//! arithmetic is performed in Rust's IEEE-754 `f32`/`f64`, which both
//! simulated devices build upon.

#![deny(missing_docs)]

pub mod bits;
pub mod classify;
pub mod dd;
pub mod exceptions;
pub mod ftz;
pub mod literal;
pub mod traits;
pub mod ulp;

pub use classify::{FpClass, Outcome};
pub use exceptions::{ExceptionFlags, FpException};
pub use traits::GpuFloat;
