//! Floating-point literal formatting and parsing.
//!
//! Two formats matter in this workspace:
//!
//! * **Output format** — Varity prints results with `printf("%.17g")` (FP64)
//!   / `%.9g`-equivalent shortest-exact for FP32. [`format_g17`] reproduces
//!   C's `%.17g` closely enough that the string round-trips to the exact
//!   bits, which is all the differential comparison needs.
//! * **Varity literal format** — generated source contains constants such as
//!   `+1.5955E-125` or `-1.7976E3` (always a sign, 4 fractional digits,
//!   upper-case `E`). [`format_varity`] emits it and [`parse_literal`]
//!   accepts it (plus ordinary Rust/C float syntax and the `f`/`F` suffix
//!   used in FP32 tests).

/// Format an `f64` the way `printf("%.17g\n", x)` does, up to trailing-zero
/// trimming. 17 significant digits guarantee exact round-tripping.
pub fn format_g17(x: f64) -> String {
    if x.is_nan() {
        return if x.is_sign_negative() { "-nan".into() } else { "nan".into() };
    }
    if x.is_infinite() {
        return if x < 0.0 { "-inf".into() } else { "inf".into() };
    }
    let s = format!("{x:.16e}");
    normalize_exp_format(&s, 17)
}

/// Format an `f32` with 9 significant digits (exact round-trip for binary32).
pub fn format_g9(x: f32) -> String {
    if x.is_nan() {
        return if x.is_sign_negative() { "-nan".into() } else { "nan".into() };
    }
    if x.is_infinite() {
        return if x < 0.0 { "-inf".into() } else { "inf".into() };
    }
    let s = format!("{x:.8e}");
    normalize_exp_format(&s, 9)
}

/// Convert Rust's `1.2345678901234567e5` into `%g`-style output: plain
/// decimal for moderate exponents, exponent form otherwise, with trailing
/// zeros trimmed.
fn normalize_exp_format(s: &str, sig_digits: i32) -> String {
    let (mant, exp) = s.split_once(['e', 'E']).expect("exp format");
    let exp: i32 = exp.parse().expect("exponent");
    // %g uses plain notation when -4 <= exp < precision
    if exp >= -4 && exp < sig_digits {
        let neg = mant.starts_with('-');
        let digits: String = mant.chars().filter(|c| c.is_ascii_digit()).collect();
        let digits = digits.trim_end_matches('0');
        let digits = if digits.is_empty() { "0" } else { digits };
        let mut out = String::new();
        if neg {
            out.push('-');
        }
        let point = exp + 1; // digits before the decimal point
        if point <= 0 {
            out.push_str("0.");
            for _ in 0..(-point) {
                out.push('0');
            }
            out.push_str(digits);
        } else if (point as usize) >= digits.len() {
            out.push_str(digits);
            for _ in 0..(point as usize - digits.len()) {
                out.push('0');
            }
        } else {
            out.push_str(&digits[..point as usize]);
            out.push('.');
            out.push_str(&digits[point as usize..]);
        }
        out
    } else {
        let mant = mant.trim_end_matches('0').trim_end_matches('.');
        let mant =
            if mant.is_empty() || mant == "-" { format!("{mant}0") } else { mant.to_string() };
        format!("{mant}e{exp:+03}")
    }
}

/// Format a constant in the Varity literal style: explicit sign, one integer
/// digit, four fractional digits, upper-case `E` exponent — e.g.
/// `+1.3065E-306`, `-1.7744E-2`.
pub fn format_varity(x: f64) -> String {
    if x == 0.0 {
        return if x.is_sign_negative() { "-0.0".into() } else { "+0.0".into() };
    }
    let s = format!("{:.4e}", x.abs());
    let (mant, exp) = s.split_once('e').expect("exp format");
    let sign = if x < 0.0 { '-' } else { '+' };
    let exp: i32 = exp.parse().expect("exponent");
    format!("{sign}{mant}E{exp}")
}

/// Format an FP32 constant in Varity style with the `F` suffix, e.g.
/// `+1.2345E7F`.
pub fn format_varity_f32(x: f32) -> String {
    if x == 0.0 {
        return if x.is_sign_negative() { "-0.0F".into() } else { "+0.0F".into() };
    }
    let s = format!("{:.4e}", x.abs());
    let (mant, exp) = s.split_once('e').expect("exp format");
    let sign = if x < 0.0 { '-' } else { '+' };
    let exp: i32 = exp.parse().expect("exponent");
    format!("{sign}{mant}E{exp}F")
}

/// Format an `f64` as a C99 hexadecimal float (`%a`): `0x1.91eb851eb851fp+1`.
///
/// Hex floats are the lossless, human-auditable encoding numerical
/// debugging tools exchange (every bit of the significand is visible);
/// the `isolate`/`reduce` reports use them when decimal output would hide
/// a last-ULP difference.
///
/// ```
/// use fpcore::literal::{format_hex_f64, parse_hex_f64};
/// assert_eq!(format_hex_f64(1.0), "0x1p+0");
/// assert_eq!(format_hex_f64(-1.5), "-0x1.8p+0");
/// let s = format_hex_f64(0.1);
/// assert_eq!(parse_hex_f64(&s), Some(0.1));
/// ```
pub fn format_hex_f64(x: f64) -> String {
    if x.is_nan() {
        return if x.is_sign_negative() { "-nan".into() } else { "nan".into() };
    }
    if x.is_infinite() {
        return if x < 0.0 { "-inf".into() } else { "inf".into() };
    }
    let sign = if x.is_sign_negative() { "-" } else { "" };
    if x == 0.0 {
        return format!("{sign}0x0p+0");
    }
    let bits = x.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    let mant = bits & crate::bits::F64_MANT_MASK;
    let (lead, exp, mant) = if biased == 0 {
        // subnormal: C prints with leading 0 and exponent -1022
        (0u64, -1022i32, mant)
    } else {
        (1, biased - 1023, mant)
    };
    let mut hex = format!("{mant:013x}");
    while hex.len() > 1 && hex.ends_with('0') {
        hex.pop();
    }
    if mant == 0 {
        format!("{sign}0x{lead}p{exp:+}")
    } else {
        format!("{sign}0x{lead}.{hex}p{exp:+}")
    }
}

/// Parse a C99 hexadecimal float (accepts what [`format_hex_f64`] emits).
pub fn parse_hex_f64(s: &str) -> Option<f64> {
    let s = s.trim();
    match s {
        "inf" | "+inf" => return Some(f64::INFINITY),
        "-inf" => return Some(f64::NEG_INFINITY),
        "nan" | "+nan" => return Some(f64::NAN),
        "-nan" => return Some(-f64::NAN),
        _ => {}
    }
    let (negative, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let s = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?;
    let (mant_str, exp_str) = s.split_once(['p', 'P'])?;
    let exp: i32 = exp_str.parse().ok()?;
    let (int_str, frac_str) = match mant_str.split_once('.') {
        Some((i, f)) => (i, f),
        None => (mant_str, ""),
    };
    let mut value = 0.0f64;
    for c in int_str.chars() {
        value = value * 16.0 + c.to_digit(16)? as f64;
    }
    let mut scale = 1.0 / 16.0;
    for c in frac_str.chars() {
        value += c.to_digit(16)? as f64 * scale;
        scale /= 16.0;
    }
    // apply the binary exponent with saturating ldexp semantics
    let mut result = value;
    let mut e = exp;
    while e > 500 {
        result *= 2f64.powi(500);
        e -= 500;
    }
    while e < -500 {
        result *= 2f64.powi(-500);
        e += 500;
    }
    result *= 2f64.powi(e);
    Some(if negative { -result } else { result })
}

/// Parse a floating-point literal in any of the accepted source forms:
/// Varity style (`+1.5955E-125`), C style (`1.5e-3`, `.5`, `1.`), with an
/// optional `f`/`F` suffix. Returns `None` on malformed input.
pub fn parse_literal(s: &str) -> Option<f64> {
    let s = s.trim();
    // Strip the FP32 suffix only after a digit or '.', so "inf" survives.
    let s = match s.strip_suffix(['f', 'F']) {
        Some(head) if head.ends_with(|c: char| c.is_ascii_digit() || c == '.') => head,
        _ => s,
    };
    if s.is_empty() {
        return None;
    }
    // Rust's parser accepts the same grammar once we normalise the case.
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "inf" | "+inf" | "infinity" | "+infinity" => return Some(f64::INFINITY),
        "-inf" | "-infinity" => return Some(f64::NEG_INFINITY),
        "nan" | "+nan" => return Some(f64::NAN),
        "-nan" => return Some(-f64::NAN),
        _ => {}
    }
    lower.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::excessive_precision)] // 17-digit samples are the point
    fn g17_roundtrips_exactly() {
        let samples = [
            0.1,
            -0.3,
            1.0 / 3.0,
            1e-309,
            f64::MAX,
            f64::MIN_POSITIVE,
            8.6551990944767196e-306,
            1.4424471839615771e-307,
        ];
        for &x in &samples {
            let s = format_g17(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn g17_special_values() {
        assert_eq!(format_g17(f64::NAN), "nan");
        assert_eq!(format_g17(-f64::NAN), "-nan");
        assert_eq!(format_g17(f64::INFINITY), "inf");
        assert_eq!(format_g17(f64::NEG_INFINITY), "-inf");
        assert_eq!(format_g17(0.0), "0");
        assert_eq!(format_g17(-0.0), "-0");
    }

    #[test]
    fn g17_plain_notation_for_moderate_exponents() {
        assert_eq!(format_g17(1.0), "1");
        assert_eq!(format_g17(1.5), "1.5");
        assert_eq!(format_g17(-42.0), "-42");
        assert_eq!(format_g17(0.25), "0.25");
    }

    #[test]
    fn g17_exponent_notation_for_extremes() {
        let s = format_g17(1e300);
        assert!(s.contains('e'), "{s}");
        let s = format_g17(1e-300);
        assert!(s.contains("e-300"), "{s}");
    }

    #[test]
    fn g9_roundtrips_f32() {
        let samples = [0.1f32, 1.0 / 3.0, f32::MAX, f32::MIN_POSITIVE, 1e-40];
        for &x in &samples {
            let s = format_g9(x);
            let back: f32 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn varity_format_examples_from_paper() {
        // Figure 2/4/5 literal style
        assert_eq!(format_varity(1.3305e12), "+1.3305E12");
        assert_eq!(format_varity(-1.7744e-2), "-1.7744E-2");
        assert_eq!(format_varity(1.5955e-125), "+1.5955E-125");
        assert_eq!(format_varity(0.0), "+0.0");
        assert_eq!(format_varity(-0.0), "-0.0");
    }

    #[test]
    fn varity_f32_suffix() {
        assert_eq!(format_varity_f32(1.5f32), "+1.5000E0F");
        assert_eq!(format_varity_f32(-0.0f32), "-0.0F");
    }

    #[test]
    fn parse_accepts_varity_and_c_styles() {
        assert_eq!(parse_literal("+1.5955E-125"), Some(1.5955e-125));
        assert_eq!(parse_literal("-1.7744E-2"), Some(-1.7744e-2));
        assert_eq!(parse_literal("1.23F"), Some(1.23));
        assert_eq!(parse_literal("-0.0"), Some(-0.0));
        assert_eq!(parse_literal("3"), Some(3.0));
        assert_eq!(parse_literal(""), None);
        assert_eq!(parse_literal("abc"), None);
    }

    #[test]
    fn parse_special_values() {
        assert_eq!(parse_literal("inf"), Some(f64::INFINITY));
        assert_eq!(parse_literal("-inf"), Some(f64::NEG_INFINITY));
        assert!(parse_literal("nan").unwrap().is_nan());
        assert!(parse_literal("-nan").unwrap().is_nan());
    }

    #[test]
    #[allow(clippy::excessive_precision)] // full-precision sample constants
    fn hex_float_roundtrips_every_class() {
        let samples = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            f64::MAX,
            f64::MIN_POSITIVE,
            1e-310,            // subnormal
            f64::from_bits(1), // min subnormal
            -2.2250738585072014e-308,
            8.6551990944767196e-306,
        ];
        for &x in &samples {
            let s = format_hex_f64(x);
            let back = parse_hex_f64(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:e} -> {s} -> {back:e}");
        }
    }

    #[test]
    fn hex_float_known_values() {
        assert_eq!(format_hex_f64(1.0), "0x1p+0");
        assert_eq!(format_hex_f64(2.0), "0x1p+1");
        assert_eq!(format_hex_f64(-1.5), "-0x1.8p+0");
        assert_eq!(format_hex_f64(0.0), "0x0p+0");
        assert_eq!(format_hex_f64(-0.0), "-0x0p+0");
        assert_eq!(format_hex_f64(f64::INFINITY), "inf");
        assert_eq!(format_hex_f64(f64::NAN), "nan");
    }

    #[test]
    fn hex_parse_rejects_garbage() {
        assert_eq!(parse_hex_f64(""), None);
        assert_eq!(parse_hex_f64("0x1.8"), None); // missing exponent
        assert_eq!(parse_hex_f64("1.8p+0"), None); // missing 0x
        assert_eq!(parse_hex_f64("0xz.8p+0"), None); // bad digit
    }

    #[test]
    #[allow(clippy::approx_constant)] // 3.14 is a literal test value, not π
    fn hex_parse_accepts_c_printf_variants() {
        // glibc prints e.g. 0x1.91eb851eb851fp+1 for 3.14
        assert_eq!(parse_hex_f64("0x1.91eb851eb851fp+1"), Some(3.14));
        assert_eq!(parse_hex_f64("0X1.8P1"), Some(3.0));
        assert_eq!(parse_hex_f64("0x1p-1074"), Some(f64::from_bits(1)));
    }

    #[test]
    fn varity_roundtrip_via_parse() {
        for &x in &[1.3305e12, -1.9289e305, 1.3065e-306, -1.5942e305] {
            let s = format_varity(x);
            let back = parse_literal(&s).unwrap();
            // 4 fractional digits: round-trip within relative 1e-4
            assert!((back - x).abs() <= x.abs() * 1e-4, "{x} -> {s} -> {back}");
        }
    }
}
