//! The [`GpuFloat`] abstraction over `f32` and `f64`.
//!
//! The paper tests FP32 and FP64 modes of the same pipeline (§III-C). To
//! avoid duplicating the generator, compiler and interpreter per precision,
//! every precision-dependent component in this workspace is generic over
//! `GpuFloat`.

use crate::classify::{FpClass, Outcome};
use crate::exceptions::{ArithOp, ExceptionFlags};
use crate::ftz::FtzMode;
use std::fmt::{Debug, Display};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A precision usable on the simulated devices: `f32` or `f64`.
pub trait GpuFloat:
    Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// The unsigned integer type with the same width as the float encoding.
    type Bits: Copy + Eq + std::hash::Hash + Debug;

    /// Precision name as used in the paper's tables.
    const PRECISION_NAME: &'static str;
    /// Positive infinity.
    const INFINITY: Self;
    /// A quiet NaN.
    const NAN: Self;
    /// Zero.
    const ZERO: Self;
    /// One.
    const ONE: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Largest finite value.
    const MAX: Self;

    /// Raw encoding bits.
    fn to_bits(self) -> Self::Bits;
    /// Value from raw encoding bits.
    fn from_bits(bits: Self::Bits) -> Self;
    /// Lossless widening to `f64` (exact for both precisions).
    fn to_f64(self) -> f64;
    /// Rounding conversion from `f64` (round-to-nearest-even).
    fn from_f64(x: f64) -> Self;

    /// IEEE class of the value.
    fn classify(self) -> FpClass;
    /// Paper outcome of the value.
    fn outcome(self) -> Outcome;
    /// True for NaN.
    fn is_nan(self) -> bool;
    /// True for finite values.
    fn is_finite(self) -> bool;
    /// True for subnormals.
    fn is_subnormal(self) -> bool;
    /// True when the sign bit is set.
    fn is_sign_negative(self) -> bool;

    /// Magnitude.
    fn abs(self) -> Self;
    /// Fused multiply-add: `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Square root (correctly rounded, hardware op on both vendors).
    fn sqrt(self) -> Self;
    /// Truncation toward zero.
    fn trunc(self) -> Self;

    /// Exact round-trip output formatting (`%.17g` / 9-digit).
    fn format_exact(self) -> String;
    /// Varity source-literal formatting.
    fn format_literal(self) -> String;

    /// Apply an [`FtzMode`] input flush.
    fn apply_daz(self, mode: FtzMode) -> Self;
    /// Apply an [`FtzMode`] output flush.
    fn apply_ftz(self, mode: FtzMode) -> Self;

    /// Detect the IEEE exceptions implied by `a op b = r`.
    fn detect_exceptions(op: ArithOp, a: Self, b: Self, r: Self) -> ExceptionFlags;

    /// ULP distance to another value (`None` if either is NaN).
    fn ulp_diff(self, other: Self) -> Option<u64>;

    /// Bitwise equality (distinguishes `-0.0` from `0.0` and NaN payloads).
    fn bit_eq(self, other: Self) -> bool;
}

impl GpuFloat for f64 {
    type Bits = u64;

    const PRECISION_NAME: &'static str = "FP64";
    const INFINITY: f64 = f64::INFINITY;
    const NAN: f64 = f64::NAN;
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const MIN_POSITIVE: f64 = f64::MIN_POSITIVE;
    const MAX: f64 = f64::MAX;

    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline]
    fn classify(self) -> FpClass {
        FpClass::of_f64(self)
    }
    #[inline]
    fn outcome(self) -> Outcome {
        Outcome::of_f64(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn is_subnormal(self) -> bool {
        f64::is_subnormal(self)
    }
    #[inline]
    fn is_sign_negative(self) -> bool {
        f64::is_sign_negative(self)
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn mul_add(self, a: f64, b: f64) -> f64 {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    #[inline]
    fn trunc(self) -> f64 {
        f64::trunc(self)
    }
    fn format_exact(self) -> String {
        crate::literal::format_g17(self)
    }
    fn format_literal(self) -> String {
        crate::literal::format_varity(self)
    }
    #[inline]
    fn apply_daz(self, mode: FtzMode) -> f64 {
        mode.daz_f64(self)
    }
    #[inline]
    fn apply_ftz(self, mode: FtzMode) -> f64 {
        mode.ftz_f64(self)
    }
    #[inline]
    fn detect_exceptions(op: ArithOp, a: f64, b: f64, r: f64) -> ExceptionFlags {
        crate::exceptions::detect_binary_f64(op, a, b, r)
    }
    #[inline]
    fn ulp_diff(self, other: f64) -> Option<u64> {
        crate::ulp::ulp_diff_f64(self, other)
    }
    #[inline]
    fn bit_eq(self, other: f64) -> bool {
        self.to_bits() == other.to_bits()
    }
}

impl GpuFloat for f32 {
    type Bits = u32;

    const PRECISION_NAME: &'static str = "FP32";
    const INFINITY: f32 = f32::INFINITY;
    const NAN: f32 = f32::NAN;
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    const MIN_POSITIVE: f32 = f32::MIN_POSITIVE;
    const MAX: f32 = f32::MAX;

    #[inline]
    fn to_bits(self) -> u32 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u32) -> f32 {
        f32::from_bits(bits)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    #[inline]
    fn classify(self) -> FpClass {
        FpClass::of_f32(self)
    }
    #[inline]
    fn outcome(self) -> Outcome {
        Outcome::of_f32(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn is_subnormal(self) -> bool {
        f32::is_subnormal(self)
    }
    #[inline]
    fn is_sign_negative(self) -> bool {
        f32::is_sign_negative(self)
    }
    #[inline]
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    #[inline]
    fn mul_add(self, a: f32, b: f32) -> f32 {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn sqrt(self) -> f32 {
        f32::sqrt(self)
    }
    #[inline]
    fn trunc(self) -> f32 {
        f32::trunc(self)
    }
    fn format_exact(self) -> String {
        crate::literal::format_g9(self)
    }
    fn format_literal(self) -> String {
        crate::literal::format_varity_f32(self)
    }
    #[inline]
    fn apply_daz(self, mode: FtzMode) -> f32 {
        mode.daz_f32(self)
    }
    #[inline]
    fn apply_ftz(self, mode: FtzMode) -> f32 {
        mode.ftz_f32(self)
    }
    #[inline]
    fn detect_exceptions(op: ArithOp, a: f32, b: f32, r: f32) -> ExceptionFlags {
        crate::exceptions::detect_binary_f32(op, a, b, r)
    }
    #[inline]
    fn ulp_diff(self, other: f32) -> Option<u64> {
        crate::ulp::ulp_diff_f32(self, other).map(u64::from)
    }
    #[inline]
    fn bit_eq(self, other: f32) -> bool {
        self.to_bits() == other.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: GpuFloat>(x: T) {
        assert!(T::from_bits(x.to_bits()).bit_eq(x));
    }

    #[test]
    fn bits_roundtrip_both_precisions() {
        generic_roundtrip(1.5f64);
        generic_roundtrip(-0.0f64);
        generic_roundtrip(f64::NAN);
        generic_roundtrip(1.5f32);
        generic_roundtrip(f32::NEG_INFINITY);
    }

    #[test]
    fn widening_is_exact_for_f32() {
        let x = 0.1f32;
        assert_eq!(f32::from_f64(x.to_f64()), x);
    }

    #[test]
    fn precision_names() {
        assert_eq!(<f64 as GpuFloat>::PRECISION_NAME, "FP64");
        assert_eq!(<f32 as GpuFloat>::PRECISION_NAME, "FP32");
    }

    #[test]
    fn generic_outcome_dispatch() {
        fn outcome_of<T: GpuFloat>(x: T) -> Outcome {
            x.outcome()
        }
        assert_eq!(outcome_of(f64::NAN), Outcome::Nan);
        assert_eq!(outcome_of(0.0f32), Outcome::Zero);
        assert_eq!(outcome_of(3.0f32), Outcome::Num);
    }

    #[test]
    fn bit_eq_distinguishes_zero_signs() {
        assert!(!(-0.0f64).bit_eq(0.0));
        assert!((-0.0f64).bit_eq(-0.0));
        assert!(!(-0.0f32).bit_eq(0.0f32));
    }

    #[test]
    fn generic_formatting() {
        fn fmt<T: GpuFloat>(x: T) -> String {
            x.format_exact()
        }
        assert_eq!(fmt(1.0f64), "1");
        assert_eq!(fmt(1.0f32), "1");
    }

    #[test]
    fn from_f64_rounds_for_f32() {
        // 1 + 2^-40 is not representable in f32; rounds to 1.0
        let x = 1.0 + 2f64.powi(-40);
        assert_eq!(f32::from_f64(x), 1.0f32);
    }

    #[test]
    fn ulp_diff_generic() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 3);
        assert_eq!(GpuFloat::ulp_diff(a, b), Some(3));
    }
}
