//! ULP (units in the last place) distances and neighbour traversal.
//!
//! The math-library benchmarks (`bench_mathlib`) quantify vendor divergence
//! as ULP distance between the NVIDIA-like and AMD-like implementations;
//! the test reducer uses neighbour traversal to shrink failure-inducing
//! inputs.

/// Map an `f64` onto a monotonically ordered signed integer lattice.
///
/// The mapping is the classic "bit twiddle": positive floats map to their
/// bit pattern, negative floats are mirrored, so that `lattice(a) <
/// lattice(b)` iff `a < b` for all non-NaN values, and adjacent floats map
/// to adjacent integers.
#[inline]
pub fn lattice_f64(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    if b < 0 {
        i64::MIN.wrapping_add(b.wrapping_neg())
    } else {
        b
    }
}

/// Map an `f32` onto the ordered integer lattice (see [`lattice_f64`]).
#[inline]
pub fn lattice_f32(x: f32) -> i32 {
    let b = x.to_bits() as i32;
    if b < 0 {
        i32::MIN.wrapping_add(b.wrapping_neg())
    } else {
        b
    }
}

/// ULP distance between two `f64` values.
///
/// ```
/// use fpcore::ulp::{next_up_f64, ulp_diff_f64};
///
/// assert_eq!(ulp_diff_f64(1.0, 1.0), Some(0));
/// assert_eq!(ulp_diff_f64(1.0, next_up_f64(1.0)), Some(1));
/// assert_eq!(ulp_diff_f64(f64::NAN, 1.0), None);
/// ```
///
/// Returns `None` if either value is NaN. Infinities participate (they sit
/// one step beyond the largest finite value on the lattice).
pub fn ulp_diff_f64(a: f64, b: f64) -> Option<u64> {
    if a.is_nan() || b.is_nan() {
        return None;
    }
    let (la, lb) = (lattice_f64(a), lattice_f64(b));
    Some(la.abs_diff(lb))
}

/// ULP distance between two `f32` values (see [`ulp_diff_f64`]).
pub fn ulp_diff_f32(a: f32, b: f32) -> Option<u32> {
    if a.is_nan() || b.is_nan() {
        return None;
    }
    let (la, lb) = (lattice_f32(a), lattice_f32(b));
    Some(la.abs_diff(lb))
}

/// The next representable `f64` above `x` (toward +Inf).
pub fn next_up_f64(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = if x == 0.0 {
        1 // smallest positive subnormal, regardless of zero sign
    } else if x > 0.0 {
        x.to_bits() + 1
    } else {
        x.to_bits() - 1
    };
    f64::from_bits(bits)
}

/// The next representable `f64` below `x` (toward −Inf).
pub fn next_down_f64(x: f64) -> f64 {
    -next_up_f64(-x)
}

/// The next representable `f32` above `x`.
pub fn next_up_f32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    let bits = if x == 0.0 {
        1
    } else if x > 0.0 {
        x.to_bits() + 1
    } else {
        x.to_bits() - 1
    };
    f32::from_bits(bits)
}

/// The next representable `f32` below `x`.
pub fn next_down_f32(x: f32) -> f32 {
    -next_up_f32(-x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_have_zero_ulp() {
        assert_eq!(ulp_diff_f64(1.5, 1.5), Some(0));
        assert_eq!(ulp_diff_f32(-2.5f32, -2.5f32), Some(0));
    }

    #[test]
    fn adjacent_values_have_one_ulp() {
        let x = 1.0f64;
        assert_eq!(ulp_diff_f64(x, next_up_f64(x)), Some(1));
        let y = -1.0f32;
        assert_eq!(ulp_diff_f32(y, next_down_f32(y)), Some(1));
    }

    #[test]
    fn ulp_across_zero() {
        // +min_subnormal and -min_subnormal are 2 apart (through ±0 collapsing
        // to a single lattice point is NOT done: ±0 are adjacent lattice points)
        let pos = f64::from_bits(1);
        let neg = -pos;
        let d = ulp_diff_f64(pos, neg).unwrap();
        assert!(d <= 3, "d={d}");
    }

    #[test]
    fn nan_yields_none() {
        assert_eq!(ulp_diff_f64(f64::NAN, 1.0), None);
        assert_eq!(ulp_diff_f32(1.0, f32::NAN), None);
    }

    #[test]
    fn lattice_is_monotone_on_samples() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-310,
            -0.0,
            0.0,
            1e-310,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(lattice_f64(w[0]) <= lattice_f64(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn next_up_crosses_subnormal_boundary() {
        let largest_sub = f64::from_bits((1u64 << 52) - 1);
        assert_eq!(next_up_f64(largest_sub), f64::MIN_POSITIVE);
        assert_eq!(next_down_f64(f64::MIN_POSITIVE), largest_sub);
    }

    #[test]
    fn next_up_from_zero_is_min_subnormal() {
        assert_eq!(next_up_f64(0.0), f64::from_bits(1));
        assert_eq!(next_up_f64(-0.0), f64::from_bits(1));
        assert_eq!(next_up_f32(0.0), f32::from_bits(1));
    }

    #[test]
    fn next_up_saturates_at_infinity() {
        assert_eq!(next_up_f64(f64::MAX), f64::INFINITY);
        assert_eq!(next_up_f64(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn roundtrip_up_down() {
        for &x in &[1.0f64, -3.5, 1e-308, 1e308, -0.0] {
            let up = next_up_f64(x);
            assert_eq!(next_down_f64(up), x, "x={x}");
        }
    }
}
