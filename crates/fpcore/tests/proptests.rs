//! Property-based tests for fpcore invariants.

use fpcore::classify::{FpClass, Outcome};
use fpcore::dd::{two_prod, two_sum, Dd};
use fpcore::exceptions::{detect_binary_f64, ArithOp, FpException};
use fpcore::ftz::FtzMode;
use fpcore::literal::{format_g17, format_g9, format_varity, parse_literal};
use fpcore::ulp::{lattice_f64, next_down_f64, next_up_f64, ulp_diff_f32, ulp_diff_f64};
use proptest::prelude::*;

/// Arbitrary finite or special f64s, biased toward extreme ranges the way
/// the campaign inputs are.
fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        any::<u64>().prop_map(f64::from_bits),
        (-400i32..400).prop_map(|e| 10f64.powi(e)),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
    ]
}

proptest! {
    #[test]
    fn g17_roundtrips_all_finite(x in any_f64()) {
        if x.is_finite() {
            let s = format_g17(x);
            let back: f64 = s.parse().unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn g9_roundtrips_all_finite_f32(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        if x.is_finite() {
            let s = format_g9(x);
            let back: f32 = s.parse().unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parse_accepts_own_varity_output(x in any_f64()) {
        if x.is_finite() {
            let s = format_varity(x);
            let back = parse_literal(&s).unwrap();
            if x == 0.0 {
                prop_assert_eq!(back, 0.0);
            } else {
                // 4 fractional digits => relative error <= 1e-4 (sub-extreme
                // exponents may round the boundary, so allow a hair more)
                prop_assert!((back - x).abs() <= x.abs() * 1.0001e-4,
                    "x={x} s={s} back={back}");
            }
        }
    }

    #[test]
    fn lattice_is_monotone(a in any_f64(), b in any_f64()) {
        if !a.is_nan() && !b.is_nan() && a < b {
            prop_assert!(lattice_f64(a) < lattice_f64(b));
        }
    }

    #[test]
    fn ulp_diff_is_symmetric(a in any_f64(), b in any_f64()) {
        prop_assert_eq!(ulp_diff_f64(a, b), ulp_diff_f64(b, a));
    }

    #[test]
    fn ulp_diff_zero_iff_same_lattice_point(a in any_f64()) {
        if !a.is_nan() {
            prop_assert_eq!(ulp_diff_f64(a, a), Some(0));
        } else {
            prop_assert_eq!(ulp_diff_f64(a, a), None);
        }
    }

    #[test]
    fn next_up_is_strictly_greater(x in any_f64()) {
        if x.is_finite() {
            let up = next_up_f64(x);
            prop_assert!(up > x, "x={x} up={up}");
            prop_assert_eq!(ulp_diff_f64(x, up), Some(1));
        }
    }

    #[test]
    fn next_down_inverts_next_up(x in any_f64()) {
        if x.is_finite() && x != f64::MAX {
            let up = next_up_f64(x);
            // == rather than bit_eq: ±0 collapse at the boundary
            prop_assert_eq!(next_down_f64(up), x);
        }
    }

    #[test]
    fn outcome_partition_is_total(x in any_f64()) {
        // every value lands in exactly one outcome
        let o = Outcome::of_f64(x);
        let c = FpClass::of_f64(x);
        match c {
            FpClass::Nan => prop_assert_eq!(o, Outcome::Nan),
            FpClass::Infinite => prop_assert_eq!(o, Outcome::Inf),
            FpClass::Zero => prop_assert_eq!(o, Outcome::Zero),
            FpClass::Subnormal | FpClass::Normal => prop_assert_eq!(o, Outcome::Num),
        }
    }

    #[test]
    fn ftz_output_is_never_subnormal(x in any_f64()) {
        let m = FtzMode::FLUSH;
        prop_assert!(!m.ftz_f64(x).is_subnormal());
        prop_assert!(!m.daz_f64(x).is_subnormal());
    }

    #[test]
    fn ftz_is_idempotent(x in any_f64()) {
        let m = FtzMode::FLUSH;
        let once = m.ftz_f64(x);
        let twice = m.ftz_f64(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn exact_ops_raise_no_inexact(a in -1000i64..1000, b in -1000i64..1000) {
        // small-integer arithmetic is exact in f64
        let (a, b) = (a as f64, b as f64);
        let f = detect_binary_f64(ArithOp::Add, a, b, a + b);
        prop_assert!(!f.is_set(FpException::Inexact));
        let f = detect_binary_f64(ArithOp::Mul, a, b, a * b);
        prop_assert!(!f.is_set(FpException::Inexact));
    }

    #[test]
    fn div_by_zero_always_flagged(a in any_f64()) {
        if a.is_finite() && a != 0.0 {
            let f = detect_binary_f64(ArithOp::Div, a, 0.0, a / 0.0);
            prop_assert!(f.is_set(FpException::DivideByZero));
        }
    }

    #[test]
    fn two_sum_error_is_exact(m1 in -(1i64 << 53)..(1i64 << 53),
                              m2 in -(1i64 << 53)..(1i64 << 53),
                              shift in 0u32..60) {
        // a and b are integers spanning up to 113 bits together, so the
        // exact identity a + b == s + e is checkable in i128: every value
        // involved (inputs, rounded sum, residual) is an integer.
        let a = m1 as f64;
        let b = (m2 as f64) * (1u64 << shift) as f64;
        let (s, e) = two_sum(a, b);
        let exact = m1 as i128 + ((m2 as i128) << shift);
        prop_assert_eq!(s as i128 + e as i128, exact, "a={} b={} s={} e={}", a, b, s, e);
        // s must be the correctly rounded sum
        prop_assert_eq!(s, a + b);
    }

    #[test]
    fn two_prod_error_is_exact(m1 in -(1i64 << 53)..(1i64 << 53),
                               m2 in -(1i64 << 53)..(1i64 << 53)) {
        // products of 53-bit integers fit in 106 bits: exact in i128
        let a = m1 as f64;
        let b = m2 as f64;
        let (p, e) = two_prod(a, b);
        let exact = m1 as i128 * m2 as i128;
        prop_assert_eq!(p as i128 + e as i128, exact, "a={} b={} p={} e={}", a, b, p, e);
        prop_assert_eq!(p, a * b);
    }

    #[test]
    fn dd_add_is_error_free_for_f64_pairs(a in any_f64(), b in any_f64()) {
        // lifting two exact f64s into Dd and adding loses nothing: the
        // leading word is the IEEE sum, and for finite non-overflowing
        // results hi + lo reconstructs a + b exactly (two_sum's identity)
        if a.is_finite() && b.is_finite() {
            let s = Dd::from_f64(a).add(Dd::from_f64(b));
            prop_assert_eq!(s.to_f64().to_bits(), (a + b).to_bits());
            if (a + b).is_finite() {
                let (ck_s, ck_e) = two_sum(a, b);
                prop_assert_eq!(s.hi.to_bits(), ck_s.to_bits());
                prop_assert_eq!(s.lo.to_bits(), ck_e.to_bits());
            }
        }
    }

    #[test]
    fn dd_mul_leading_word_is_ieee_product(a in any_f64(), b in any_f64()) {
        if a.is_finite() && b.is_finite() {
            let p = Dd::from_f64(a).mul(Dd::from_f64(b));
            prop_assert_eq!(p.to_f64().to_bits(), (a * b).to_bits());
        }
    }

    #[test]
    fn dd_to_f32_matches_direct_rounding_for_exact_values(bits in any::<u32>()) {
        // values already representable in f32 round-trip bit-exactly
        let x = f32::from_bits(bits);
        if !x.is_nan() {
            prop_assert_eq!(Dd::from_f64(x as f64).to_f32().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn f32_ulp_consistent_with_lattice(a in any::<u32>(), b in any::<u32>()) {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        if !x.is_nan() && !y.is_nan() {
            let d = ulp_diff_f32(x, y).unwrap();
            if d == 0 {
                // same lattice point: equal as reals (±0 collapse excepted)
                prop_assert!(x == y || (x == 0.0 && y == 0.0));
            }
        }
    }
}
