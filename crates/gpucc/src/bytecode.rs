//! Flat bytecode for the compiled execution tier (see [`crate::vm`]).
//!
//! [`lower`] turns a [`ResolvedKernel`] body into a single linear [`Code`]
//! object: straight-line value instructions over a contiguous, reused
//! register file, plus explicit branch/loop opcodes with pre-patched jump
//! targets. Lowering happens once per compiled kernel; the dispatch loop
//! in [`crate::vm`] then runs the op list with no tree walking and no
//! per-sequence allocation (the interpreter allocates a fresh value
//! vector per [`RSeq`] evaluation — exactly the overhead this tier
//! removes).
//!
//! Register allocation is a linear scan per instruction sequence: every
//! SSA temporary (operands only ever reference *earlier* instructions in
//! the same sequence) gets a register from a free list and returns to it
//! at its last use, so the register file stays as small as the widest
//! live range, not the longest sequence. Each value op carries its
//! precomputed issue-slot cost ([`crate::interp`]'s `rinst_cost` is
//! static in the instruction, precision and flags), so the executor adds
//! a constant instead of re-deriving the cost table per instruction.

use crate::ir::{CompileFlags, Operand};
use crate::resolve::{RInst, RNode, RSeq, RTarget, ResolvedKernel};
use gpusim::mathlib::MathFunc;
use progen::ast::{BinOp, CmpOp, Precision};

/// A value operand: a register or an immediate constant (converted to the
/// kernel precision when read, mirroring the interpreter).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Src {
    /// Register-file index.
    Reg(u32),
    /// Immediate constant.
    Const(f64),
}

/// Which fused multiply-add variant a [`Op::Fma`] encodes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FmaKind {
    /// `a*b + c`
    Fma,
    /// `a*b - c`
    Fms,
    /// `c - a*b`
    Fnma,
}

/// One bytecode operation.
///
/// Value-producing ops (everything with a `dst`) retire one budget step
/// each, exactly like one resolved instruction in the interpreter;
/// store/branch/loop ops only add cost. `cost` fields are precomputed
/// where the cost table varies with the operator or flags.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Load an immediate (cost 0).
    Const {
        /// Destination register.
        dst: u32,
        /// The constant.
        v: f64,
    },
    /// Read a float slot (cost 1).
    ReadVar {
        /// Destination register.
        dst: u32,
        /// Float slot.
        slot: u32,
    },
    /// Read an int slot promoted to the kernel precision (cost 1).
    ReadIntAsFloat {
        /// Destination register.
        dst: u32,
        /// Int slot.
        slot: u32,
    },
    /// Read `array[int_slot]` (cost 4).
    ReadArr {
        /// Destination register.
        dst: u32,
        /// Array slot.
        arr: u32,
        /// Index int slot.
        idx: u32,
    },
    /// Read `threadIdx.x` (cost 1).
    ReadThreadIdx {
        /// Destination register.
        dst: u32,
    },
    /// Negation — no DAZ/FTZ, no exception tracking (cost 1).
    Neg {
        /// Destination register.
        dst: u32,
        /// Operand.
        a: Src,
    },
    /// Binary arithmetic with DAZ/FTZ and exception detection.
    Bin {
        /// Destination register.
        dst: u32,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Precomputed issue-slot cost.
        cost: u8,
    },
    /// Fused multiply-add family with DAZ/FTZ.
    Fma {
        /// Destination register.
        dst: u32,
        /// Which fused variant.
        kind: FmaKind,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
        /// Third operand.
        c: Src,
        /// Precomputed issue-slot cost.
        cost: u8,
    },
    /// Approximate reciprocal — no DAZ on the operand, no FTZ on the
    /// result (cost 2).
    Rcp {
        /// Destination register.
        dst: u32,
        /// Operand.
        a: Src,
    },
    /// Math-library call (DAZ'd operands, FTZ'd result).
    Call {
        /// Destination register.
        dst: u32,
        /// Library function.
        f: MathFunc,
        /// First argument (absent arguments read as zero).
        a: Option<Src>,
        /// Second argument.
        b: Option<Src>,
        /// Precomputed issue-slot cost.
        cost: u8,
    },
    /// Store into a float slot (no cost, no step).
    StoreVar {
        /// Float slot.
        slot: u32,
        /// Value source.
        src: Src,
    },
    /// Store into `array[int_slot]` (cost 4, no step).
    StoreArr {
        /// Array slot.
        arr: u32,
        /// Index int slot.
        idx: u32,
        /// Value source.
        src: Src,
    },
    /// Compare and skip the body when false (cost 2, no step).
    Branch {
        /// Comparison operator.
        op: CmpOp,
        /// Left side.
        a: Src,
        /// Right side.
        b: Src,
        /// Jump target when the comparison is false.
        skip_to: u32,
    },
    /// Loop entry: read and clamp the bound, set the induction variable
    /// to 0, or jump past the loop without touching it when the trip
    /// count is zero.
    LoopInit {
        /// Induction int slot.
        var: u32,
        /// Bound int slot.
        bound: u32,
        /// Per-loop-site limit slot holding the clamped trip count.
        limit: u32,
        /// Jump target when the loop runs zero iterations.
        exit_to: u32,
    },
    /// Loop back-edge: advance the induction variable and jump to the
    /// body start while iterations remain.
    LoopBack {
        /// Induction int slot.
        var: u32,
        /// Limit slot written by the matching [`Op::LoopInit`].
        limit: u32,
        /// Jump target of the body start.
        back_to: u32,
    },
}

/// A lowered kernel body: the flat op list plus the scratch-file sizes
/// the executor must provision.
#[derive(Debug, Clone)]
pub(crate) struct Code {
    /// Operations in execution order.
    pub ops: Vec<Op>,
    /// Register-file size (peak live registers across all sequences).
    pub n_regs: usize,
    /// Loop-limit slots (one per `For` site).
    pub n_limits: usize,
}

/// Lower a resolved kernel body to bytecode.
pub(crate) fn lower(r: &ResolvedKernel, precision: Precision, flags: CompileFlags) -> Code {
    let mut l =
        Lowerer { ops: Vec::new(), free: Vec::new(), high: 0, n_limits: 0, precision, flags };
    l.lower_nodes(&r.body);
    Code { ops: l.ops, n_regs: l.high as usize, n_limits: l.n_limits }
}

struct Lowerer {
    ops: Vec<Op>,
    free: Vec<u32>,
    high: u32,
    n_limits: usize,
    precision: Precision,
    flags: CompileFlags,
}

impl Lowerer {
    fn alloc(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let r = self.high;
            self.high += 1;
            r
        })
    }

    fn release(&mut self, s: Src) {
        if let Src::Reg(r) = s {
            self.free.push(r);
        }
    }

    fn lower_nodes(&mut self, nodes: &[RNode]) {
        for node in nodes {
            match node {
                RNode::Store { target, seq } => {
                    let src = self.lower_seq(seq);
                    match *target {
                        RTarget::Var(slot) => {
                            self.ops.push(Op::StoreVar { slot: slot as u32, src })
                        }
                        RTarget::Arr(arr, idx) => {
                            self.ops.push(Op::StoreArr { arr: arr as u32, idx: idx as u32, src })
                        }
                    }
                    self.release(src);
                }
                RNode::If { lhs, op, rhs, body } => {
                    // The lhs result register stays pinned (not released)
                    // while the rhs sequence lowers, so the rhs cannot
                    // clobber it before the branch reads both.
                    let a = self.lower_seq(lhs);
                    let b = self.lower_seq(rhs);
                    let branch_at = self.ops.len();
                    self.ops.push(Op::Branch { op: *op, a, b, skip_to: 0 });
                    self.release(a);
                    self.release(b);
                    self.lower_nodes(body);
                    let after = self.ops.len() as u32;
                    if let Op::Branch { skip_to, .. } = &mut self.ops[branch_at] {
                        *skip_to = after;
                    }
                }
                RNode::For { var, bound, body } => {
                    let limit = self.n_limits as u32;
                    self.n_limits += 1;
                    let init_at = self.ops.len();
                    self.ops.push(Op::LoopInit {
                        var: *var as u32,
                        bound: *bound as u32,
                        limit,
                        exit_to: 0,
                    });
                    let body_at = self.ops.len() as u32;
                    self.lower_nodes(body);
                    self.ops.push(Op::LoopBack { var: *var as u32, limit, back_to: body_at });
                    let after = self.ops.len() as u32;
                    if let Op::LoopInit { exit_to, .. } = &mut self.ops[init_at] {
                        *exit_to = after;
                    }
                }
            }
        }
    }

    /// Lower one instruction sequence. Every temporary's register returns
    /// to the free list at its last use; the returned result source stays
    /// live until the caller `release`s it.
    fn lower_seq(&mut self, seq: &RSeq) -> Src {
        let n = seq.insts.len();
        // Last instruction index that reads each temporary (the sequence
        // result pins its temporary past the end).
        let mut last_use: Vec<Option<usize>> = vec![None; n];
        for (j, inst) in seq.insts.iter().enumerate() {
            for_each_operand(inst, |o| {
                if let Operand::Inst(i) = o {
                    last_use[i] = Some(j);
                }
            });
        }
        let result_inst = match seq.result {
            Operand::Inst(i) => Some(i),
            Operand::Const(_) => None,
        };

        let mut regs: Vec<u32> = vec![0; n];
        let mut freed: Vec<bool> = vec![false; n];
        for (j, inst) in seq.insts.iter().enumerate() {
            let src_of = |o: Operand, regs: &[u32]| -> Src {
                match o {
                    Operand::Const(c) => Src::Const(c),
                    Operand::Inst(i) => Src::Reg(regs[i]),
                }
            };
            // Free operands at their last use first, so the destination
            // can reuse an expiring operand's register (the executor reads
            // operands before writing the destination).
            for_each_operand(inst, |o| {
                if let Operand::Inst(i) = o {
                    if last_use[i] == Some(j) && result_inst != Some(i) && !freed[i] {
                        freed[i] = true;
                        self.free.push(regs[i]);
                    }
                }
            });
            let dst = self.alloc();
            regs[j] = dst;
            let op = match inst {
                RInst::Const(c) => Op::Const { dst, v: *c },
                RInst::ReadVar(slot) => Op::ReadVar { dst, slot: *slot as u32 },
                RInst::ReadIntAsFloat(slot) => Op::ReadIntAsFloat { dst, slot: *slot as u32 },
                RInst::ReadArr(arr, idx) => Op::ReadArr { dst, arr: *arr as u32, idx: *idx as u32 },
                RInst::ReadThreadIdx => Op::ReadThreadIdx { dst },
                RInst::Neg(a) => Op::Neg { dst, a: src_of(*a, &regs) },
                RInst::Bin(op, a, b) => Op::Bin {
                    dst,
                    op: *op,
                    a: src_of(*a, &regs),
                    b: src_of(*b, &regs),
                    cost: self.cost_of(inst),
                },
                RInst::Fma(a, b, c) => Op::Fma {
                    dst,
                    kind: FmaKind::Fma,
                    a: src_of(*a, &regs),
                    b: src_of(*b, &regs),
                    c: src_of(*c, &regs),
                    cost: self.cost_of(inst),
                },
                RInst::Fms(a, b, c) => Op::Fma {
                    dst,
                    kind: FmaKind::Fms,
                    a: src_of(*a, &regs),
                    b: src_of(*b, &regs),
                    c: src_of(*c, &regs),
                    cost: self.cost_of(inst),
                },
                RInst::Fnma(a, b, c) => Op::Fma {
                    dst,
                    kind: FmaKind::Fnma,
                    a: src_of(*a, &regs),
                    b: src_of(*b, &regs),
                    c: src_of(*c, &regs),
                    cost: self.cost_of(inst),
                },
                RInst::Rcp(a) => Op::Rcp { dst, a: src_of(*a, &regs) },
                RInst::Call(f, args) => Op::Call {
                    dst,
                    f: *f,
                    a: args.first().map(|o| src_of(*o, &regs)),
                    b: args.get(1).map(|o| src_of(*o, &regs)),
                    cost: self.cost_of(inst),
                },
            };
            self.ops.push(op);
            // An unused temporary (no later reader, not the result) still
            // executes — for step, cost and exception parity — but its
            // register is immediately reusable.
            if last_use[j].is_none() && result_inst != Some(j) {
                self.free.push(dst);
            }
        }

        let result = match seq.result {
            Operand::Const(c) => Src::Const(c),
            Operand::Inst(i) => Src::Reg(regs[i]),
        };
        #[cfg(feature = "vm-inject")]
        let result = crate::vm_inject::clobber_seq_result(result, n);
        result
    }

    fn cost_of(&self, inst: &RInst) -> u8 {
        let c = crate::interp::rinst_cost(inst, self.precision, self.flags);
        debug_assert!(c <= u8::MAX as u64);
        c as u8
    }
}

fn for_each_operand(inst: &RInst, mut f: impl FnMut(Operand)) {
    match inst {
        RInst::Const(_)
        | RInst::ReadVar(_)
        | RInst::ReadIntAsFloat(_)
        | RInst::ReadArr(..)
        | RInst::ReadThreadIdx => {}
        RInst::Neg(a) | RInst::Rcp(a) => f(*a),
        RInst::Bin(_, a, b) => {
            f(*a);
            f(*b);
        }
        RInst::Fma(a, b, c) | RInst::Fms(a, b, c) | RInst::Fnma(a, b, c) => {
            f(*a);
            f(*b);
            f(*c);
        }
        RInst::Call(_, args) => {
            for a in args {
                f(*a);
            }
        }
    }
}
