//! Deliberate interpreter faults for the fault-tolerance harness.
//!
//! The campaign runner in `crates/difftest` claims it can survive a
//! panicking test: isolate it, quarantine it, and keep going. That claim
//! needs negative tests, so this module lets a test *arm* seeded panics
//! inside the interpreter hot path — the worst-placed fault the runner
//! must contain, because it unwinds out of a rayon worker mid-campaign.
//!
//! Two safety layers keep the faults out of production, mirroring
//! [`crate::inject`]:
//!
//! 1. the module only exists under the `chaos` cargo feature (enabled by
//!    `difftest`'s chaos integration tests, never a default), and
//! 2. even when compiled in, injection is **disarmed by default** — a
//!    runtime [`arm_exec_panics`] call is required, so feature
//!    unification across a test build cannot silently activate it.
//!
//! The panic decision is a pure function of `(seed, program_id)`, so the
//! set of faulting tests is identical across rayon thread counts and
//! across a kill/resume boundary — which is what lets the chaos tests
//! assert exact quarantine sets and resume-equivalence while faults are
//! armed.
//!
//! Tests that arm injection must serialize themselves (the switch is a
//! global) and disarm in all exit paths; see
//! `crates/difftest/tests/chaos.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
static ONE_IN: AtomicU64 = AtomicU64::new(0);

/// Arm seeded interpreter panics: roughly one program in `one_in`
/// (deterministically chosen from `seed` and the program id) panics on
/// every execution attempt. `one_in == 0` disarms.
pub fn arm_exec_panics(seed: u64, one_in: u64) {
    SEED.store(seed, Ordering::SeqCst);
    ONE_IN.store(one_in, Ordering::SeqCst);
    ARMED.store(one_in != 0, Ordering::SeqCst);
}

/// Disarm injection (restores fault-free execution).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether injection is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::SeqCst)
}

/// Would the armed configuration panic this program? Pure and callable
/// from tests to predict the exact quarantine set.
pub fn would_panic(program_id: &str) -> bool {
    if !armed() {
        return false;
    }
    let one_in = ONE_IN.load(Ordering::SeqCst);
    if one_in == 0 {
        return false;
    }
    let h = splitmix64(SEED.load(Ordering::SeqCst) ^ fnv1a(program_id));
    h % one_in == 0
}

/// Interpreter hook: panic if this program is one of the armed victims.
pub(crate) fn maybe_panic(program_id: &str) {
    if would_panic(program_id) {
        panic!("chaos: injected interpreter fault for program `{program_id}`");
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_by_default_and_decision_is_deterministic() {
        disarm();
        assert!(!armed());
        assert!(!would_panic("prog_0"));
        arm_exec_panics(42, 3);
        assert!(armed());
        let first: Vec<bool> = (0..64).map(|i| would_panic(&format!("prog_{i}"))).collect();
        let second: Vec<bool> = (0..64).map(|i| would_panic(&format!("prog_{i}"))).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&b| b), "rate 1-in-3 should hit some of 64 programs");
        assert!(first.iter().any(|&b| !b), "rate 1-in-3 should miss some of 64 programs");
        disarm();
        assert!(!would_panic("prog_0"));
    }
}
