//! The operation-cost model behind simulated runtimes (paper Table I).
//!
//! Costs are in abstract "issue slots" loosely modeled on V100/MI250
//! throughput ratios: FP64 ALU ops are half-rate, division and accurate
//! math-library calls are expensive multi-instruction sequences, and the
//! fast-math intrinsics are the cheap SFU paths. A per-level overhead
//! multiplier stands in for register allocation / scheduling quality so
//! `-O0` binaries are slower even at equal operation counts.

use crate::ir::{CompileFlags, Inst};
use progen::ast::{BinOp, Precision};

/// Cost of executing one instruction, in issue slots.
pub fn inst_cost(inst: &Inst, prec: Precision, flags: CompileFlags) -> u64 {
    let f64x = prec == Precision::F64;
    match inst {
        Inst::Const(_) => 0,
        Inst::ReadVar(_) | Inst::ReadThreadIdx => 1,
        Inst::ReadArr(..) => 4, // memory access
        Inst::Neg(_) => 1,
        Inst::Bin(op, _, _) => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if f64x {
                    2
                } else {
                    1
                }
            }
            BinOp::Div => {
                if f64x {
                    16
                } else {
                    8
                }
            }
        },
        Inst::Fma(..) | Inst::Fms(..) | Inst::Fnma(..) => {
            if f64x {
                2
            } else {
                1
            }
        }
        Inst::Rcp(_) => 2, // SFU approximate reciprocal
        Inst::Call(f, _) => {
            let fast = flags.fast_math && f.has_fast_f32_variant() && !f64x;
            if fast {
                4
            } else if f64x {
                40
            } else {
                16
            }
        }
    }
}

/// Per-iteration loop overhead (counter update + branch).
pub const LOOP_OVERHEAD: u64 = 2;

/// Per-level codegen-quality multiplier, ×100 (O0 spills everything; O1+
/// allocate registers; O2/O3 schedule better).
pub const LEVEL_OVERHEAD_X100: [u64; 5] = [400, 150, 115, 100, 100];

/// Scale a raw slot count by the level multiplier.
pub fn scaled_cost(raw_slots: u64, opt_level_index: u8) -> u64 {
    let idx = (opt_level_index as usize).min(LEVEL_OVERHEAD_X100.len() - 1);
    raw_slots * LEVEL_OVERHEAD_X100[idx] / 100
}

/// Convert issue slots to simulated seconds (a nominal 1 GHz / IPC=1
/// single lane — only ratios matter for the tables).
pub fn slots_to_seconds(slots: u64) -> f64 {
    slots as f64 * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Operand;
    use gpusim::mathlib::MathFunc;

    const O0: CompileFlags = CompileFlags { fast_math: false, opt_level_index: 0 };
    const FM: CompileFlags = CompileFlags { fast_math: true, opt_level_index: 4 };

    #[test]
    fn fp64_ops_cost_double() {
        let add = Inst::Bin(BinOp::Add, Operand::Const(1.0), Operand::Const(2.0));
        assert_eq!(inst_cost(&add, Precision::F32, O0) * 2, inst_cost(&add, Precision::F64, O0));
    }

    #[test]
    fn division_is_expensive() {
        let div = Inst::Bin(BinOp::Div, Operand::Const(1.0), Operand::Const(2.0));
        let add = Inst::Bin(BinOp::Add, Operand::Const(1.0), Operand::Const(2.0));
        assert!(inst_cost(&div, Precision::F32, O0) >= 8 * inst_cost(&add, Precision::F32, O0));
    }

    #[test]
    fn fast_math_calls_are_cheaper_f32() {
        let call = Inst::Call(MathFunc::Sin, vec![Operand::Const(1.0)]);
        let slow = inst_cost(&call, Precision::F32, O0);
        let fast = inst_cost(&call, Precision::F32, FM);
        assert!(fast < slow, "fast={fast} slow={slow}");
        // FP64 has no fast intrinsics: cost unchanged
        assert_eq!(inst_cost(&call, Precision::F64, O0), inst_cost(&call, Precision::F64, FM));
    }

    #[test]
    fn recip_plus_mul_beats_division() {
        let div = Inst::Bin(BinOp::Div, Operand::Const(1.0), Operand::Const(2.0));
        let mul = Inst::Bin(BinOp::Mul, Operand::Const(1.0), Operand::Const(2.0));
        let rcp = Inst::Rcp(Operand::Const(2.0));
        let fused = inst_cost(&mul, Precision::F32, FM) + inst_cost(&rcp, Precision::F32, FM);
        assert!(fused < inst_cost(&div, Precision::F32, O0));
    }

    #[test]
    fn level_scaling_is_monotone_nonincreasing() {
        let raw = 1000;
        let mut prev = u64::MAX;
        for lvl in 0..5 {
            let s = scaled_cost(raw, lvl);
            assert!(s <= prev, "level {lvl}");
            prev = s;
        }
        assert_eq!(scaled_cost(raw, 0), 4000);
        assert_eq!(scaled_cost(raw, 3), 1000);
    }

    #[test]
    fn folded_constants_are_free() {
        assert_eq!(inst_cost(&Inst::Const(3.0), Precision::F64, O0), 0);
    }
}
