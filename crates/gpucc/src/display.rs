//! Human-readable IR listings (the `--emit-ir` debugging view).
//!
//! The listing shows each instruction with its destination register `%n`,
//! structured control flow with indentation, and the compilation flags —
//! the view used when diffing what the two pipelines did to the same
//! source:
//!
//! ```text
//! kernel varity_fp64_000007 [FP64, O3, fast-math=off]
//!   store comp:
//!     %0 = read comp
//!     %1 = read var_2
//!     %2 = fma %1, %1, %0
//!     -> %2
//! ```

use crate::ir::{Inst, InstSeq, KernelIr, Node, Operand, StoreTarget};
use std::fmt::Write as _;

/// Render a kernel as a readable listing.
pub fn render_ir(ir: &KernelIr) -> String {
    let mut out = String::new();
    let fm = if ir.flags.fast_math { "on" } else { "off" };
    let _ = writeln!(
        out,
        "kernel {} [{}, O-index {}, fast-math={fm}]",
        ir.program_id,
        ir.precision.label(),
        ir.flags.opt_level_index
    );
    render_nodes(&mut out, &ir.body, 1);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_nodes(out: &mut String, nodes: &[Node], level: usize) {
    for node in nodes {
        match node {
            Node::Store { target, seq } => {
                indent(out, level);
                let tgt = match target {
                    StoreTarget::Var(v) => v.clone(),
                    StoreTarget::Arr(a, i) => format!("{a}[{i}]"),
                };
                let _ = writeln!(out, "store {tgt}:");
                render_seq(out, seq, level + 1);
            }
            Node::If { lhs, op, rhs, body } => {
                indent(out, level);
                out.push_str("if:\n");
                indent(out, level + 1);
                out.push_str("lhs:\n");
                render_seq(out, lhs, level + 2);
                indent(out, level + 1);
                let _ = writeln!(out, "cmp {}", op.symbol());
                indent(out, level + 1);
                out.push_str("rhs:\n");
                render_seq(out, rhs, level + 2);
                indent(out, level + 1);
                out.push_str("then:\n");
                render_nodes(out, body, level + 2);
            }
            Node::For { var, bound, body } => {
                indent(out, level);
                let _ = writeln!(out, "for {var} in 0..{bound}:");
                render_nodes(out, body, level + 1);
            }
        }
    }
}

fn render_seq(out: &mut String, seq: &InstSeq, level: usize) {
    for (i, inst) in seq.insts.iter().enumerate() {
        indent(out, level);
        let _ = writeln!(out, "%{i} = {}", render_inst(inst));
    }
    indent(out, level);
    let _ = writeln!(out, "-> {}", render_operand(seq.result));
}

fn render_operand(o: Operand) -> String {
    match o {
        Operand::Inst(i) => format!("%{i}"),
        Operand::Const(c) => {
            if c.is_nan() {
                "const nan".into()
            } else {
                format!("const {c:e}")
            }
        }
    }
}

fn render_inst(inst: &Inst) -> String {
    match inst {
        Inst::ReadVar(v) => format!("read {v}"),
        Inst::ReadArr(a, i) => format!("read {a}[{i}]"),
        Inst::ReadThreadIdx => "read threadIdx.x".into(),
        Inst::Const(c) => render_operand(Operand::Const(*c)),
        Inst::Neg(a) => format!("neg {}", render_operand(*a)),
        Inst::Rcp(a) => format!("rcp.approx {}", render_operand(*a)),
        Inst::Bin(op, a, b) => format!(
            "{} {}, {}",
            match op {
                progen::ast::BinOp::Add => "add",
                progen::ast::BinOp::Sub => "sub",
                progen::ast::BinOp::Mul => "mul",
                progen::ast::BinOp::Div => "div",
            },
            render_operand(*a),
            render_operand(*b)
        ),
        Inst::Fma(a, b, c) => {
            format!("fma {}, {}, {}", render_operand(*a), render_operand(*b), render_operand(*c))
        }
        Inst::Fms(a, b, c) => {
            format!("fms {}, {}, {}", render_operand(*a), render_operand(*b), render_operand(*c))
        }
        Inst::Fnma(a, b, c) => {
            format!("fnma {}, {}, {}", render_operand(*a), render_operand(*b), render_operand(*c))
        }
        Inst::Call(f, args) => {
            let args: Vec<String> = args.iter().map(|a| render_operand(*a)).collect();
            format!("call {f}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, OptLevel, Toolchain};
    use progen::parser::parse_kernel;

    fn kernel(src: &str, opt: OptLevel, tc: Toolchain) -> KernelIr {
        let p = parse_kernel(src, "listing").unwrap();
        compile(&p, tc, opt, false)
    }

    const SRC: &str = "__global__ void compute(double comp, double var_2) {\n\
                       comp += var_2 * var_2;\n\
                       if (comp >= 1.0) { comp -= sqrt(var_2); } }";

    #[test]
    fn listing_contains_structure_and_registers() {
        let l = render_ir(&kernel(SRC, OptLevel::O0, Toolchain::Nvcc));
        assert!(l.contains("kernel listing [FP64"), "{l}");
        assert!(l.contains("store comp:"), "{l}");
        assert!(l.contains("%0 = read"), "{l}");
        assert!(l.contains("if:"), "{l}");
        assert!(l.contains("call sqrt(%0)"), "{l}");
    }

    #[test]
    fn o1_listing_shows_the_contraction() {
        let o0 = render_ir(&kernel(SRC, OptLevel::O0, Toolchain::Nvcc));
        let o1 = render_ir(&kernel(SRC, OptLevel::O1, Toolchain::Nvcc));
        assert!(o0.contains("mul "), "{o0}");
        assert!(!o0.contains("fma "), "{o0}");
        assert!(o1.contains("fma "), "{o1}");
    }

    #[test]
    fn hipcc_listing_shows_fms_fusion() {
        let src = "__global__ void compute(double comp, double var_2) {\n\
                   comp = (var_2 * var_2) - comp; }";
        let l = render_ir(&kernel(src, OptLevel::O1, Toolchain::Hipcc));
        assert!(l.contains("fms "), "{l}");
        let nv = render_ir(&kernel(src, OptLevel::O1, Toolchain::Nvcc));
        assert!(!nv.contains("fms "), "{nv}");
    }

    #[test]
    fn loops_render_with_bounds() {
        let src = "__global__ void compute(double comp, int var_1) {\n\
                   for (int i = 0; i < var_1; ++i) { comp += 1.0; } }";
        let l = render_ir(&kernel(src, OptLevel::O0, Toolchain::Nvcc));
        assert!(l.contains("for i in 0..var_1:"), "{l}");
    }

    #[test]
    fn nan_constants_render_readably() {
        let mut seq = InstSeq { insts: vec![], result: Operand::Const(f64::NAN) };
        let _ = seq.push(Inst::Const(f64::NAN));
        let mut out = String::new();
        render_seq(&mut out, &seq, 0);
        assert!(out.contains("const nan"), "{out}");
    }
}
