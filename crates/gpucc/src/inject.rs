//! Deliberately broken pass behaviour for oracle self-tests.
//!
//! The oracle subsystem (`crates/oracle`) claims it can catch a
//! non-value-preserving pass and attribute the violation to it. That claim
//! needs negative tests: this module lets a test *arm* one of three known
//! bugs, each breaking a different structural pass in a way that is
//! structurally safe (the IR stays executable) but numerically wrong.
//!
//! Two safety layers keep the bugs out of production:
//!
//! 1. the module only exists under the `oracle-inject` cargo feature
//!    (a dev-dependency of `crates/oracle`'s tests, never a default), and
//! 2. even when compiled in, every bug is **disarmed by default** — a
//!    runtime [`arm`] call is required, so feature unification across a
//!    test build cannot silently activate one.
//!
//! Tests that arm a bug must serialize themselves (the switch is a global)
//! and disarm in all exit paths; see `crates/oracle/tests/injection.rs`.

use std::sync::atomic::{AtomicU8, Ordering};

/// A deliberately injected pass bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// Nothing armed (the default).
    None,
    /// `const-fold` rounds every folded result through `f32`, so folding a
    /// double-precision constant expression no longer matches the runtime.
    ConstFoldF32Round,
    /// `cse` keys binary instructions on the operator alone, merging
    /// computations with different operands into the first occurrence.
    CseDegenerateKey,
    /// `dce` forwards every negation's uses to the negated operand before
    /// computing liveness, silently dropping the sign flip.
    DceDropNeg,
}

static ARMED: AtomicU8 = AtomicU8::new(0);

fn encode(bug: InjectedBug) -> u8 {
    match bug {
        InjectedBug::None => 0,
        InjectedBug::ConstFoldF32Round => 1,
        InjectedBug::CseDegenerateKey => 2,
        InjectedBug::DceDropNeg => 3,
    }
}

/// Arm one bug. Affects every subsequent compile in this process until
/// [`disarm`] is called.
pub fn arm(bug: InjectedBug) {
    ARMED.store(encode(bug), Ordering::SeqCst);
}

/// Disarm whatever is armed (restores correct pass behaviour).
pub fn disarm() {
    ARMED.store(0, Ordering::SeqCst);
}

/// The currently armed bug.
pub fn armed() -> InjectedBug {
    match ARMED.load(Ordering::SeqCst) {
        1 => InjectedBug::ConstFoldF32Round,
        2 => InjectedBug::CseDegenerateKey,
        3 => InjectedBug::DceDropNeg,
        _ => InjectedBug::None,
    }
}
