//! The kernel interpreter: executes compiled IR on a simulated device.
//!
//! This is the "run on the GPU" step of the pipeline. All basic arithmetic
//! uses Rust's IEEE-754 ops (both real GPUs are correctly rounded there);
//! math calls dispatch into the device's vendor library (accurate or fast
//! entry points, per the kernel's compile flags); the device's FTZ/DAZ
//! environment is applied around every operation; and the five IEEE
//! exception events of Table II are tracked the way a binary-
//! instrumentation tool (GPU-FPX, paper ref \[12\]) would reconstruct them.

use crate::cost;
use crate::ir::{KernelIr, Operand};
use crate::resolve::{
    resolve, ParamSlot, RInst, RNode, RSeq, RTarget, ResolveError, ResolvedKernel,
};
use fpcore::classify::Outcome;
use fpcore::exceptions::{ArithOp, ExceptionFlags, FpException};
use fpcore::ftz::FtzMode;
use fpcore::traits::GpuFloat;
use gpusim::fpenv::FpEnv;
use gpusim::mathlib::fast::nv_rcp_f32;
use gpusim::mathlib::MathFunc;
use gpusim::Device;
use progen::ast::{BinOp, CmpOp, Precision};
use progen::inputs::{InputSet, InputValue, ARRAY_LEN};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Default cap on executed instructions (guards hand-written programs;
/// the generated kernels execute a few hundred). Campaigns may override
/// it per run via [`ExecBudget`].
pub const STEP_LIMIT: u64 = 10_000_000;

/// How often (in executed instructions) the interpreter polls the
/// wall-clock deadline. Chosen so the `Instant::now` cost disappears
/// into the per-instruction work.
pub(crate) const DEADLINE_POLL_MASK: u64 = 0xFF;

/// Per-execution fuel budget: a hard instruction cap plus an optional
/// wall-clock deadline. The default reproduces the historical
/// [`STEP_LIMIT`]-only behaviour, so configs serialized before budgets
/// existed load (and behave) identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecBudget {
    /// Maximum instructions one execution may retire.
    #[serde(default = "default_max_steps")]
    pub max_steps: u64,
    /// Optional wall-clock cap in milliseconds (polled every few hundred
    /// instructions, so enforcement is approximate).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_wall_ms: Option<u64>,
}

fn default_max_steps() -> u64 {
    STEP_LIMIT
}

impl Default for ExecBudget {
    fn default() -> Self {
        ExecBudget { max_steps: STEP_LIMIT, max_wall_ms: None }
    }
}

impl ExecBudget {
    /// A budget capping instructions only.
    pub fn steps(max_steps: u64) -> Self {
        ExecBudget { max_steps, max_wall_ms: None }
    }
}

/// Execution errors (generated programs never hit these; parsed
/// hand-written sources can).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A variable was read before any value was bound to it.
    UnknownVar(String),
    /// An array access was out of bounds.
    OutOfBounds(String),
    /// The inputs do not match the kernel signature.
    BadInputs(String),
    /// The step budget was exhausted: carries the configured budget and
    /// the instructions retired when execution was cut off.
    StepLimit {
        /// The configured instruction budget.
        budget: u64,
        /// Instructions executed before the budget tripped.
        steps: u64,
    },
    /// The wall-clock budget was exhausted.
    Timeout {
        /// The configured wall-clock budget in milliseconds.
        budget_ms: u64,
        /// Instructions executed before the deadline passed.
        steps: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            ExecError::OutOfBounds(a) => write!(f, "array access out of bounds on `{a}`"),
            ExecError::BadInputs(m) => write!(f, "bad inputs: {m}"),
            ExecError::StepLimit { budget, steps } => {
                write!(f, "step budget exhausted: {steps} steps executed, budget {budget}")
            }
            ExecError::Timeout { budget_ms, steps } => {
                write!(f, "wall-clock budget exhausted: {budget_ms} ms, {steps} steps executed")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The kernel's printed result, at its native precision.
///
/// Equality is **bitwise** (NaN == NaN with the same payload; `-0.0 !=
/// 0.0`) — the comparison semantics differential testing needs.
#[derive(Debug, Clone, Copy)]
pub enum ExecValue {
    /// FP32 result.
    F32(f32),
    /// FP64 result.
    F64(f64),
}

impl PartialEq for ExecValue {
    fn eq(&self, other: &ExecValue) -> bool {
        self.bit_eq(other)
    }
}

impl Eq for ExecValue {}

impl ExecValue {
    /// The paper's outcome classification.
    pub fn outcome(&self) -> Outcome {
        match self {
            ExecValue::F32(v) => Outcome::of_f32(*v),
            ExecValue::F64(v) => Outcome::of_f64(*v),
        }
    }

    /// Exact round-trip formatting (`printf("%.17g")` analogue).
    pub fn format_exact(&self) -> String {
        match self {
            ExecValue::F32(v) => fpcore::literal::format_g9(*v),
            ExecValue::F64(v) => fpcore::literal::format_g17(*v),
        }
    }

    /// Bitwise equality (same precision required).
    pub fn bit_eq(&self, other: &ExecValue) -> bool {
        match (self, other) {
            (ExecValue::F32(a), ExecValue::F32(b)) => a.to_bits() == b.to_bits(),
            (ExecValue::F64(a), ExecValue::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }

    /// Widen to f64 (exact for both precisions).
    pub fn to_f64(&self) -> f64 {
        match self {
            ExecValue::F32(v) => *v as f64,
            ExecValue::F64(v) => *v,
        }
    }

    /// Raw bits, zero-extended to 64.
    pub fn bits(&self) -> u64 {
        match self {
            ExecValue::F32(v) => u64::from(v.to_bits()),
            ExecValue::F64(v) => v.to_bits(),
        }
    }
}

/// Result of one kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Final value of `comp` (what the kernel prints).
    pub value: ExecValue,
    /// Accumulated IEEE exception events.
    pub exceptions: ExceptionFlags,
    /// Raw cost in issue slots (unscaled; see [`cost::scaled_cost`]).
    pub cost_slots: u64,
    /// Instructions executed.
    pub steps: u64,
}

/// One store event in an execution trace: the value written by a `Store`
/// node (loops produce one event per iteration).
///
/// Because the optimization passes rewrite instruction *sequences* but
/// never add, remove or reorder `Store` nodes, the k-th event of one
/// compilation corresponds to the k-th event of any other compilation of
/// the same program — as long as control flow agrees. That alignment is
/// what `difftest`'s isolation module exploits to pinpoint the first
/// diverging statement (the paper's intermediate-value analysis, automated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Name of the stored variable (or the `array[i]` rendering).
    pub target: String,
    /// Raw bits of the stored value (width per kernel precision).
    pub bits: u64,
}

/// Execute a compiled kernel on a device with the given inputs.
pub fn execute(ir: &KernelIr, device: &Device, inputs: &InputSet) -> Result<ExecResult, ExecError> {
    match ir.precision {
        Precision::F64 => run::<f64>(ir, device, inputs, false).map(|(r, _)| r),
        Precision::F32 => run::<f32>(ir, device, inputs, false).map(|(r, _)| r),
    }
}

/// Execute a kernel over a 1-D thread block (SIMT extension): one
/// independent execution per thread with `threadIdx.x` bound, returning the
/// per-thread results in thread order. Threads see private copies of the
/// array parameters (the generated kernels have no cross-thread dataflow).
pub fn execute_grid(
    ir: &KernelIr,
    device: &Device,
    inputs: &InputSet,
    block_dim: u32,
) -> Result<Vec<ExecResult>, ExecError> {
    let kernel = prepare(ir)?;
    (0..block_dim)
        .map(|tid| match kernel.precision {
            Precision::F64 => {
                run_thread::<f64>(&kernel, device, inputs, false, tid).map(|(r, _)| r)
            }
            Precision::F32 => {
                run_thread::<f32>(&kernel, device, inputs, false, tid).map(|(r, _)| r)
            }
        })
        .collect()
}

/// Execute a kernel while recording every store (see [`TraceEvent`]).
pub fn execute_traced(
    ir: &KernelIr,
    device: &Device,
    inputs: &InputSet,
) -> Result<(ExecResult, Vec<TraceEvent>), ExecError> {
    let (r, t) = match ir.precision {
        Precision::F64 => run::<f64>(ir, device, inputs, true)?,
        Precision::F32 => run::<f32>(ir, device, inputs, true)?,
    };
    Ok((r, t))
}

/// Precision-specific device dispatch on top of [`GpuFloat`].
pub trait DeviceFloat: GpuFloat {
    /// Call a vendor math-library entry point.
    fn math_call(device: &Device, fast: bool, f: MathFunc, a: Self, b: Self) -> Self;
    /// Approximate reciprocal (only reachable on FP32 NVCC fast-math IR).
    fn rcp(x: Self) -> Self;
    /// This precision's FTZ mode within an environment.
    fn ftz_mode(env: &FpEnv) -> FtzMode;
}

impl DeviceFloat for f64 {
    fn math_call(device: &Device, fast: bool, f: MathFunc, a: f64, b: f64) -> f64 {
        if fast {
            device.mathlib().call_fast_f64(f, a, b)
        } else {
            device.mathlib().call_f64(f, a, b)
        }
    }
    fn rcp(x: f64) -> f64 {
        1.0 / x
    }
    fn ftz_mode(env: &FpEnv) -> FtzMode {
        env.ftz64
    }
}

impl DeviceFloat for f32 {
    fn math_call(device: &Device, fast: bool, f: MathFunc, a: f32, b: f32) -> f32 {
        if fast {
            device.mathlib().call_fast_f32(f, a, b)
        } else {
            device.mathlib().call_f32(f, a, b)
        }
    }
    fn rcp(x: f32) -> f32 {
        nv_rcp_f32(x)
    }
    fn ftz_mode(env: &FpEnv) -> FtzMode {
        env.ftz32
    }
}

fn run<T: DeviceFloat>(
    ir: &KernelIr,
    device: &Device,
    inputs: &InputSet,
    traced: bool,
) -> Result<(ExecResult, Vec<TraceEvent>), ExecError> {
    let kernel = prepare(ir)?;
    run_thread_budgeted::<T>(&kernel, device, inputs, traced, 0, ExecBudget::default())
}

/// A kernel prepared for execution: names resolved to dense slots (see
/// [`crate::resolve`]). Prepare once, execute many times — the campaign
/// runs every compiled kernel against several inputs.
#[derive(Debug, Clone)]
pub struct ExecutableKernel {
    /// The source IR's identity and compilation flags.
    pub program_id: String,
    /// Kernel precision.
    pub precision: Precision,
    /// Compilation flags (fast math, level).
    pub flags: crate::ir::CompileFlags,
    params: Vec<progen::ast::Param>,
    resolved: ResolvedKernel,
}

impl ExecutableKernel {
    /// The kernel's parameters in signature order (input binding).
    pub(crate) fn params(&self) -> &[progen::ast::Param] {
        &self.params
    }

    /// The resolved slot-addressed body (shared with the reference
    /// executor so all execution paths walk identical code).
    pub(crate) fn resolved_kernel(&self) -> &ResolvedKernel {
        &self.resolved
    }
}

/// Resolve a compiled kernel into its executable form.
pub fn prepare(ir: &KernelIr) -> Result<ExecutableKernel, ExecError> {
    let resolved = resolve(ir).map_err(|e| match e {
        ResolveError::UnknownName(n) => ExecError::UnknownVar(n),
        ResolveError::NoComp => ExecError::UnknownVar("comp".into()),
    })?;
    Ok(ExecutableKernel {
        program_id: ir.program_id.clone(),
        precision: ir.precision,
        flags: ir.flags,
        params: ir.params.clone(),
        resolved,
    })
}

/// Execute a prepared kernel (single thread, tid 0) under the default
/// budget.
pub fn execute_prepared(
    kernel: &ExecutableKernel,
    device: &Device,
    inputs: &InputSet,
) -> Result<ExecResult, ExecError> {
    execute_prepared_budgeted(kernel, device, inputs, ExecBudget::default())
}

/// Execute a prepared kernel (single thread, tid 0) under an explicit
/// fuel budget. A runaway execution returns
/// [`ExecError::StepLimit`] / [`ExecError::Timeout`] instead of hanging
/// the campaign worker.
pub fn execute_prepared_budgeted(
    kernel: &ExecutableKernel,
    device: &Device,
    inputs: &InputSet,
    budget: ExecBudget,
) -> Result<ExecResult, ExecError> {
    match kernel.precision {
        Precision::F64 => {
            run_thread_budgeted::<f64>(kernel, device, inputs, false, 0, budget).map(|(r, _)| r)
        }
        Precision::F32 => {
            run_thread_budgeted::<f32>(kernel, device, inputs, false, 0, budget).map(|(r, _)| r)
        }
    }
}

fn run_thread<T: DeviceFloat>(
    kernel: &ExecutableKernel,
    device: &Device,
    inputs: &InputSet,
    traced: bool,
    thread_idx: u32,
) -> Result<(ExecResult, Vec<TraceEvent>), ExecError> {
    run_thread_budgeted::<T>(kernel, device, inputs, traced, thread_idx, ExecBudget::default())
}

fn run_thread_budgeted<T: DeviceFloat>(
    kernel: &ExecutableKernel,
    device: &Device,
    inputs: &InputSet,
    traced: bool,
    thread_idx: u32,
    budget: ExecBudget,
) -> Result<(ExecResult, Vec<TraceEvent>), ExecError> {
    #[cfg(feature = "chaos")]
    crate::chaos::maybe_panic(&kernel.program_id);
    if inputs.values.len() != kernel.params.len() {
        return Err(ExecError::BadInputs(format!(
            "{} inputs for {} parameters",
            inputs.values.len(),
            kernel.params.len()
        )));
    }
    let env = device.fp_env(kernel.flags.fast_math);
    let r = &kernel.resolved;
    let mut m = Machine::<T> {
        device,
        kernel,
        ftz: T::ftz_mode(&env),
        scalars: vec![None; r.n_floats],
        ints: vec![None; r.n_ints],
        arrays: vec![Vec::new(); r.n_arrays],
        exceptions: ExceptionFlags::new(),
        cost: 0,
        steps: 0,
        math_calls: [0; MathFunc::COUNT],
        trace: if traced { Some(Vec::new()) } else { None },
        thread_idx,
        budget,
        deadline: budget
            .max_wall_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
    };
    for ((param, value), slot) in kernel.params.iter().zip(&inputs.values).zip(&r.param_slots) {
        match (slot, value) {
            (ParamSlot::Float(s), InputValue::Float(v)) => {
                m.scalars[*s] = Some(T::from_f64(*v));
            }
            (ParamSlot::Int(s), InputValue::Int(v)) => {
                m.ints[*s] = Some(*v);
            }
            (ParamSlot::Array(s), InputValue::ArrayFill(v)) => {
                m.arrays[*s] = vec![T::from_f64(*v); ARRAY_LEN];
            }
            (_, val) => {
                return Err(ExecError::BadInputs(format!(
                    "parameter {} of type {:?} got {val:?}",
                    param.name, param.ty
                )))
            }
        }
    }
    let exec_t = if obs::enabled() { Some(Instant::now()) } else { None };
    m.run_nodes(&r.body)?;
    // Flush the locally tallied telemetry once per execution — the hot
    // loop itself touches only the stack-local Machine fields.
    if obs::enabled() {
        obs::add("interp.execs", 1);
        obs::add("interp.ops", m.steps);
        if let Some(t) = exec_t {
            let ns = t.elapsed().as_nanos() as u64;
            obs::record("interp.execns", ns);
            obs::record("interp.nsperop", ns / m.steps.max(1));
            if obs::trace::active() {
                obs::trace::emit(
                    "interp.exec",
                    t,
                    ns,
                    vec![("program", kernel.program_id.as_str().into()), ("steps", m.steps.into())],
                );
            }
        }
        let vendor = device.kind.short();
        for (i, &n) in m.math_calls.iter().enumerate() {
            if n > 0 {
                let f = MathFunc::ALL[i];
                obs::add(&format!("interp.mathcall.{vendor}.{}", f.c_name()), n as u64);
            }
        }
        for e in m.exceptions.iter() {
            obs::add(&format!("interp.fpexc.{e}"), 1);
        }
    }
    let value = m.scalars[r.comp_slot].ok_or_else(|| ExecError::UnknownVar("comp".into()))?;
    Ok((
        ExecResult {
            value: wrap_value(value),
            exceptions: m.exceptions,
            cost_slots: m.cost,
            steps: m.steps,
        },
        m.trace.unwrap_or_default(),
    ))
}

pub(crate) fn wrap_value<T: DeviceFloat>(v: T) -> ExecValue {
    // T is f32 or f64; round-trip through bits width
    if std::mem::size_of::<T>() == 4 {
        ExecValue::F32(f32::from_f64_lossless(v))
    } else {
        ExecValue::F64(v.to_f64())
    }
}

/// Helper to recover the f32 payload without rounding (T is already f32).
trait F32Exact {
    fn from_f64_lossless<T: GpuFloat>(v: T) -> f32;
}

impl F32Exact for f32 {
    fn from_f64_lossless<T: GpuFloat>(v: T) -> f32 {
        // exact: v is an f32 in disguise, widening then narrowing is lossless
        v.to_f64() as f32
    }
}

struct Machine<'a, T: DeviceFloat> {
    device: &'a Device,
    kernel: &'a ExecutableKernel,
    ftz: FtzMode,
    scalars: Vec<Option<T>>,
    ints: Vec<Option<i64>>,
    arrays: Vec<Vec<T>>,
    exceptions: ExceptionFlags,
    cost: u64,
    steps: u64,
    math_calls: [u32; MathFunc::COUNT],
    trace: Option<Vec<TraceEvent>>,
    thread_idx: u32,
    budget: ExecBudget,
    deadline: Option<Instant>,
}

impl<'a, T: DeviceFloat> Machine<'a, T> {
    fn run_nodes(&mut self, nodes: &[RNode]) -> Result<(), ExecError> {
        for node in nodes {
            match node {
                RNode::Store { target, seq } => {
                    let v = self.eval_seq(seq)?;
                    match *target {
                        RTarget::Var(slot) => {
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEvent {
                                    target: self.kernel.resolved.float_names[slot].clone(),
                                    bits: wrap_value(v).bits(),
                                });
                            }
                            self.scalars[slot] = Some(v);
                        }
                        RTarget::Arr(arr, idx) => {
                            let i = self.index_value(idx)?;
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEvent {
                                    target: format!(
                                        "{}[{i}]",
                                        self.kernel.resolved.array_names[arr]
                                    ),
                                    bits: wrap_value(v).bits(),
                                });
                            }
                            let a = &mut self.arrays[arr];
                            *a.get_mut(i).ok_or_else(|| {
                                ExecError::OutOfBounds(
                                    self.kernel.resolved.array_names[arr].clone(),
                                )
                            })? = v;
                            self.cost += 4; // store
                        }
                    }
                }
                RNode::If { lhs, op, rhs, body } => {
                    let a = self.eval_seq(lhs)?;
                    let b = self.eval_seq(rhs)?;
                    self.cost += 2; // compare + branch
                    if compare(*op, a, b) {
                        self.run_nodes(body)?;
                    }
                }
                RNode::For { var, bound, body } => {
                    let n = self.ints[*bound]
                        .ok_or_else(|| ExecError::UnknownVar("loop bound".into()))?;
                    let n = n.clamp(0, ARRAY_LEN as i64);
                    for i in 0..n {
                        self.ints[*var] = Some(i);
                        self.cost += cost::LOOP_OVERHEAD;
                        self.run_nodes(body)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn index_value(&self, idx: usize) -> Result<usize, ExecError> {
        let i = self.ints[idx].ok_or_else(|| ExecError::UnknownVar("index".into()))?;
        usize::try_from(i).map_err(|_| ExecError::OutOfBounds("index".into()))
    }

    fn eval_seq(&mut self, seq: &RSeq) -> Result<T, ExecError> {
        let mut values: Vec<T> = Vec::with_capacity(seq.insts.len());
        for inst in &seq.insts {
            self.steps += 1;
            if self.steps > self.budget.max_steps {
                return Err(ExecError::StepLimit {
                    budget: self.budget.max_steps,
                    steps: self.steps,
                });
            }
            if self.steps & DEADLINE_POLL_MASK == 0 {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(ExecError::Timeout {
                            budget_ms: self.budget.max_wall_ms.unwrap_or(0),
                            steps: self.steps,
                        });
                    }
                }
            }
            self.cost += rinst_cost(inst, self.kernel.precision, self.kernel.flags);
            let resolve_op = |o: Operand, values: &[T]| -> T {
                match o {
                    Operand::Const(c) => T::from_f64(c),
                    Operand::Inst(i) => values[i],
                }
            };
            let v = match inst {
                RInst::Const(c) => T::from_f64(*c),
                RInst::ReadVar(slot) => self.scalars[*slot].ok_or_else(|| {
                    ExecError::UnknownVar(self.kernel.resolved.float_names[*slot].clone())
                })?,
                RInst::ReadIntAsFloat(slot) => {
                    let i = self.ints[*slot].ok_or_else(|| ExecError::UnknownVar("int".into()))?;
                    T::from_f64(i as f64)
                }
                RInst::ReadArr(arr, idx) => {
                    let i = self.index_value(*idx)?;
                    *self.arrays[*arr].get(i).ok_or_else(|| {
                        ExecError::OutOfBounds(self.kernel.resolved.array_names[*arr].clone())
                    })?
                }
                RInst::ReadThreadIdx => T::from_f64(f64::from(self.thread_idx)),
                RInst::Neg(a) => -resolve_op(*a, &values),
                RInst::Bin(op, a, b) => {
                    let x = resolve_op(*a, &values).apply_daz(self.ftz);
                    let y = resolve_op(*b, &values).apply_daz(self.ftz);
                    let (r, aop) = match op {
                        BinOp::Add => (x + y, ArithOp::Add),
                        BinOp::Sub => (x - y, ArithOp::Sub),
                        BinOp::Mul => (x * y, ArithOp::Mul),
                        BinOp::Div => (x / y, ArithOp::Div),
                    };
                    self.exceptions.merge(T::detect_exceptions(aop, x, y, r));
                    r.apply_ftz(self.ftz)
                }
                RInst::Fma(a, b, c) => {
                    let x = resolve_op(*a, &values).apply_daz(self.ftz);
                    let y = resolve_op(*b, &values).apply_daz(self.ftz);
                    let z = resolve_op(*c, &values).apply_daz(self.ftz);
                    let r = x.mul_add(y, z);
                    self.record_nonbin_exceptions(&[x, y, z], r);
                    r.apply_ftz(self.ftz)
                }
                RInst::Fms(a, b, c) => {
                    let x = resolve_op(*a, &values).apply_daz(self.ftz);
                    let y = resolve_op(*b, &values).apply_daz(self.ftz);
                    let z = resolve_op(*c, &values).apply_daz(self.ftz);
                    let r = x.mul_add(y, -z);
                    self.record_nonbin_exceptions(&[x, y, z], r);
                    r.apply_ftz(self.ftz)
                }
                RInst::Fnma(a, b, c) => {
                    let x = resolve_op(*a, &values).apply_daz(self.ftz);
                    let y = resolve_op(*b, &values).apply_daz(self.ftz);
                    let z = resolve_op(*c, &values).apply_daz(self.ftz);
                    let r = (-x).mul_add(y, z);
                    self.record_nonbin_exceptions(&[x, y, z], r);
                    r.apply_ftz(self.ftz)
                }
                RInst::Rcp(a) => {
                    let x = resolve_op(*a, &values);
                    let r = T::rcp(x);
                    self.record_nonbin_exceptions(&[x], r);
                    r
                }
                RInst::Call(f, args) => {
                    self.math_calls[f.index()] += 1;
                    let a = args
                        .first()
                        .map(|o| resolve_op(*o, &values).apply_daz(self.ftz))
                        .unwrap_or(T::ZERO);
                    let b = args
                        .get(1)
                        .map(|o| resolve_op(*o, &values).apply_daz(self.ftz))
                        .unwrap_or(T::ZERO);
                    let r = T::math_call(self.device, self.kernel.flags.fast_math, *f, a, b);
                    self.record_nonbin_exceptions(&[a, b], r);
                    r.apply_ftz(self.ftz)
                }
            };
            values.push(v);
        }
        Ok(match seq.result {
            Operand::Const(c) => T::from_f64(c),
            Operand::Inst(i) => values[i],
        })
    }

    /// Exception reconstruction for non-binary operations (FMA, calls,
    /// reciprocal): classify from operand/result patterns.
    fn record_nonbin_exceptions(&mut self, args: &[T], r: T) {
        nonbin_exceptions(args, r, &mut self.exceptions);
    }
}

/// Exception reconstruction for non-binary operations, shared by the
/// interpreter and the bytecode vm so both tiers classify identically.
pub(crate) fn nonbin_exceptions<T: GpuFloat>(args: &[T], r: T, exceptions: &mut ExceptionFlags) {
    let any_nan = args.iter().any(|a| a.is_nan());
    let all_finite = args.iter().all(|a| a.is_finite());
    if r.is_nan() && !any_nan {
        exceptions.raise(FpException::Invalid);
    }
    if !r.is_finite() && !r.is_nan() && all_finite {
        exceptions.raise(FpException::Overflow);
    }
    if r.is_subnormal() {
        exceptions.raise(FpException::Underflow);
    }
}

/// Cost of a resolved instruction (mirrors [`cost::inst_cost`]).
pub(crate) fn rinst_cost(inst: &RInst, prec: Precision, flags: crate::ir::CompileFlags) -> u64 {
    let f64x = prec == Precision::F64;
    match inst {
        RInst::Const(_) => 0,
        RInst::ReadVar(_) | RInst::ReadIntAsFloat(_) | RInst::ReadThreadIdx => 1,
        RInst::ReadArr(..) => 4,
        RInst::Neg(_) => 1,
        RInst::Bin(op, _, _) => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if f64x {
                    2
                } else {
                    1
                }
            }
            BinOp::Div => {
                if f64x {
                    16
                } else {
                    8
                }
            }
        },
        RInst::Fma(..) | RInst::Fms(..) | RInst::Fnma(..) => {
            if f64x {
                2
            } else {
                1
            }
        }
        RInst::Rcp(_) => 2,
        RInst::Call(f, _) => {
            let fast = flags.fast_math && f.has_fast_f32_variant() && !f64x;
            if fast {
                4
            } else if f64x {
                40
            } else {
                16
            }
        }
    }
}

/// IEEE comparison semantics: any comparison with NaN is false, except
/// `!=` which is true.
pub(crate) fn compare<T: GpuFloat>(op: CmpOp, a: T, b: T) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, OptLevel, Toolchain};
    use gpusim::DeviceKind;
    use progen::ast::*;
    use progen::inputs::generate_input;

    fn simple_program(body: Vec<Stmt>) -> Program {
        Program {
            id: "t".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body,
        }
    }

    fn inputs(comp: f64, n: i64, v2: f64) -> InputSet {
        InputSet {
            values: vec![InputValue::Float(comp), InputValue::Int(n), InputValue::Float(v2)],
        }
    }

    fn nv() -> Device {
        Device::new(DeviceKind::NvidiaLike)
    }

    fn amd() -> Device {
        Device::new(DeviceKind::AmdLike)
    }

    #[test]
    fn executes_straight_line_arithmetic() {
        let p = simple_program(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::bin(BinOp::Mul, Expr::Var("var_2".into()), Expr::Lit(2.0)),
        }]);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let r = execute(&ir, &nv(), &inputs(1.0, 1, 3.0)).unwrap();
        assert_eq!(r.value, ExecValue::F64(7.0));
        assert!(r.cost_slots > 0);
        assert!(r.steps > 0);
    }

    #[test]
    fn loops_iterate_bound_times() {
        // comp += var_2, n times
        let p = simple_program(vec![Stmt::For {
            var: "i".into(),
            bound: "var_1".into(),
            body: vec![Stmt::Assign {
                target: LValue::Var("comp".into()),
                op: AssignOp::AddAssign,
                value: Expr::Var("var_2".into()),
            }],
        }]);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let r = execute(&ir, &nv(), &inputs(0.0, 5, 1.5)).unwrap();
        assert_eq!(r.value, ExecValue::F64(7.5));
    }

    #[test]
    fn if_condition_gates_execution() {
        let body = vec![Stmt::If {
            cond: Cond { op: CmpOp::Gt, lhs: Expr::Var("comp".into()), rhs: Expr::Lit(0.0) },
            body: vec![Stmt::Assign {
                target: LValue::Var("comp".into()),
                op: AssignOp::MulAssign,
                value: Expr::Lit(10.0),
            }],
        }];
        let p = simple_program(body);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        assert_eq!(execute(&ir, &nv(), &inputs(2.0, 1, 0.0)).unwrap().value, ExecValue::F64(20.0));
        assert_eq!(execute(&ir, &nv(), &inputs(-2.0, 1, 0.0)).unwrap().value, ExecValue::F64(-2.0));
        // NaN: comparison false, branch skipped
        let nanr = execute(&ir, &nv(), &inputs(f64::NAN, 1, 0.0)).unwrap();
        assert_eq!(nanr.value.outcome(), Outcome::Nan);
    }

    #[test]
    fn division_by_zero_raises_flag_and_returns_inf() {
        let p = simple_program(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::bin(BinOp::Div, Expr::Lit(1.0), Expr::Var("var_2".into())),
        }]);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let r = execute(&ir, &nv(), &inputs(0.0, 1, 0.0)).unwrap();
        assert_eq!(r.value, ExecValue::F64(f64::INFINITY));
        assert!(r.exceptions.is_set(FpException::DivideByZero));
    }

    #[test]
    fn case_study_2_reproduces_inf_vs_num() {
        // Fig. 5: comp += tmp_1 / ceil(1.5955e-125)
        let p = Program {
            id: "fig5".into(),
            precision: Precision::F64,
            params: vec![Param { name: "comp".into(), ty: ParamType::Float }],
            body: vec![
                Stmt::DeclTmp { name: "tmp_1".into(), init: Expr::Lit(1.1147e-307) },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::bin(
                        BinOp::Div,
                        Expr::Var("tmp_1".into()),
                        Expr::Call(MathFunc::Ceil, vec![Expr::Lit(1.5955e-125)]),
                    ),
                },
            ],
        };
        let input = InputSet { values: vec![InputValue::Float(1.2374e-306)] };
        for opt in [OptLevel::O0, OptLevel::O3] {
            let nv_ir = compile(&p, Toolchain::Nvcc, opt, false);
            let amd_ir = compile(&p, Toolchain::Hipcc, opt, false);
            let rn = execute(&nv_ir, &nv(), &input).unwrap();
            let ra = execute(&amd_ir, &amd(), &input).unwrap();
            assert_eq!(rn.value.outcome(), Outcome::Inf, "{opt:?}");
            assert_eq!(ra.value.outcome(), Outcome::Num, "{opt:?}");
            // the paper reports hipcc printing 1.34887e-306
            let v = ra.value.to_f64();
            assert!((v - 1.34887e-306).abs() < 1e-310, "got {v:e}");
        }
    }

    #[test]
    fn fmod_case_study_1_diverges_between_devices() {
        // fmod(-1.7538E305 * (var_8/(0/var_9 - 1.3065E-306)), 1.5793E-307)
        let p = simple_program(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::Call(
                MathFunc::Fmod,
                vec![Expr::Lit(1.5917195493481116e289), Expr::Lit(1.5793e-307)],
            ),
        }]);
        let ir_nv = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let ir_amd = compile(&p, Toolchain::Hipcc, OptLevel::O0, false);
        let rn = execute(&ir_nv, &nv(), &inputs(0.0, 1, 0.0)).unwrap();
        let ra = execute(&ir_amd, &amd(), &inputs(0.0, 1, 0.0)).unwrap();
        assert_ne!(rn.value.bits(), ra.value.bits());
        assert_eq!(rn.value.outcome(), Outcome::Num);
        assert_eq!(ra.value.outcome(), Outcome::Num);
    }

    #[test]
    fn ftz_flushes_subnormals_only_under_fast_math_f32() {
        // comp = var_2 * 0.5 with subnormal-producing operands
        let mut p = simple_program(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::bin(BinOp::Mul, Expr::Var("var_2".into()), Expr::Lit(0.5)),
        }]);
        p.precision = Precision::F32;
        let sub = 2.0e-44f32; // subnormal f32
        let input = InputSet {
            values: vec![InputValue::Float(0.0), InputValue::Int(1), InputValue::Float(sub as f64)],
        };
        let o0 = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let r = execute(&o0, &nv(), &input).unwrap();
        assert_eq!(r.value.outcome(), Outcome::Num, "IEEE keeps the subnormal");
        let fm = compile(&p, Toolchain::Nvcc, OptLevel::O3Fm, false);
        let r = execute(&fm, &nv(), &input).unwrap();
        assert_eq!(r.value.outcome(), Outcome::Zero, "NV fast math flushes (DAZ)");
        // AMD fast math flushes results only; the input subnormal survives
        // DAZ but the product is subnormal too, so FTZ_ONLY also flushes it
        let fm_amd = compile(&p, Toolchain::Hipcc, OptLevel::O3Fm, false);
        let r = execute(&fm_amd, &amd(), &input).unwrap();
        assert_eq!(r.value.outcome(), Outcome::Zero);
    }

    #[test]
    fn arrays_fill_store_and_load() {
        let p = Program {
            id: "arr".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_5".into(), ty: ParamType::FloatArray },
            ],
            body: vec![Stmt::For {
                var: "i".into(),
                bound: "var_1".into(),
                body: vec![
                    Stmt::Assign {
                        target: LValue::Index("var_5".into(), "i".into()),
                        op: AssignOp::Set,
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::Index("var_5".into(), "i".into()),
                            Expr::Lit(1.0),
                        ),
                    },
                    Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::AddAssign,
                        value: Expr::Index("var_5".into(), "i".into()),
                    },
                ],
            }],
        };
        let input = InputSet {
            values: vec![InputValue::Float(0.0), InputValue::Int(3), InputValue::ArrayFill(10.0)],
        };
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let r = execute(&ir, &nv(), &input).unwrap();
        assert_eq!(r.value, ExecValue::F64(33.0)); // 3 × (10+1)
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let p = simple_program(vec![]);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let bad = InputSet { values: vec![InputValue::Float(0.0)] };
        assert!(matches!(execute(&ir, &nv(), &bad), Err(ExecError::BadInputs(_))));
    }

    #[test]
    fn optimization_reduces_cost_on_generated_programs() {
        use progen::gen::generate_program;
        use progen::grammar::GenConfig;
        let cfg = GenConfig::varity_default(Precision::F64);
        let mut cheaper = 0;
        let mut total = 0;
        for i in 0..30 {
            let p = generate_program(&cfg, 31, i);
            let input = generate_input(&p, 1, 0);
            let o0 = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
            let o3 = compile(&p, Toolchain::Nvcc, OptLevel::O3, false);
            let (Ok(r0), Ok(r3)) = (execute(&o0, &nv(), &input), execute(&o3, &nv(), &input))
            else {
                continue;
            };
            total += 1;
            if r3.cost_slots <= r0.cost_slots {
                cheaper += 1;
            }
        }
        assert!(total > 20);
        assert!(cheaper * 10 >= total * 9, "{cheaper}/{total} got cheaper");
    }

    #[test]
    fn same_compiler_same_device_is_deterministic() {
        use progen::gen::generate_program;
        use progen::grammar::GenConfig;
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, 37, 0);
        let input = generate_input(&p, 1, 0);
        let ir = compile(&p, Toolchain::Hipcc, OptLevel::O3Fm, false);
        let a = execute(&ir, &amd(), &input).unwrap();
        let b = execute(&ir, &amd(), &input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn step_budget_reports_budget_and_steps() {
        let p = simple_program(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::bin(BinOp::Mul, Expr::Var("var_2".into()), Expr::Lit(2.0)),
        }]);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let kernel = prepare(&ir).unwrap();
        let err =
            execute_prepared_budgeted(&kernel, &nv(), &inputs(1.0, 1, 3.0), ExecBudget::steps(1))
                .unwrap_err();
        match err {
            ExecError::StepLimit { budget, steps } => {
                assert_eq!(budget, 1);
                assert_eq!(steps, 2);
            }
            other => panic!("expected StepLimit, got {other:?}"),
        }
        // The same kernel under the default budget succeeds.
        assert!(execute_prepared(&kernel, &nv(), &inputs(1.0, 1, 3.0)).is_ok());
    }

    #[test]
    fn zero_wall_budget_times_out_long_loops() {
        // Nested 16×16 loops retire well over the 256-step poll interval.
        let body = vec![Stmt::For {
            var: "i".into(),
            bound: "var_1".into(),
            body: vec![Stmt::For {
                var: "j".into(),
                bound: "var_1".into(),
                body: vec![Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Lit(1.0)),
                }],
            }],
        }];
        let p = simple_program(body);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let kernel = prepare(&ir).unwrap();
        let budget = ExecBudget { max_steps: STEP_LIMIT, max_wall_ms: Some(0) };
        let err =
            execute_prepared_budgeted(&kernel, &nv(), &inputs(0.0, 16, 1.0), budget).unwrap_err();
        match err {
            ExecError::Timeout { budget_ms, steps } => {
                assert_eq!(budget_ms, 0);
                assert!(steps >= 256);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn budget_serde_defaults_preserve_old_behaviour() {
        let b: ExecBudget = serde_json::from_str("{}").unwrap();
        assert_eq!(b, ExecBudget::default());
        assert_eq!(b.max_steps, STEP_LIMIT);
        assert!(b.max_wall_ms.is_none());
        let json = serde_json::to_string(&ExecBudget::default()).unwrap();
        assert!(!json.contains("max_wall_ms"), "default budget stays compact: {json}");
    }

    #[test]
    fn comparison_semantics_with_nan() {
        assert!(!compare(CmpOp::Lt, f64::NAN, 1.0));
        assert!(!compare(CmpOp::Eq, f64::NAN, f64::NAN));
        assert!(compare(CmpOp::Ne, f64::NAN, 1.0));
        assert!(!compare(CmpOp::Ge, 1.0, f64::NAN));
    }
}
