//! The kernel IR.
//!
//! An [`InstSeq`] is a three-address instruction list: each instruction
//! produces one value, and operands refer to earlier instructions by index
//! or to immediate constants. Control flow stays structured ([`Node`]),
//! mirroring the source kernels, which are reducible by construction.

use gpusim::mathlib::MathFunc;
use progen::ast::{BinOp, CmpOp, Param, Precision};
use serde::{Deserialize, Serialize};

/// An instruction operand: an earlier instruction's value or an immediate.
///
/// Constant equality is **bitwise** (folding can produce NaN constants,
/// which must still compare equal to themselves so identical pipelines
/// produce equal IR).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Operand {
    /// Value of the instruction at this index in the same sequence.
    Inst(usize),
    /// Immediate constant (stored in f64; rounded to the kernel precision
    /// when the kernel was lowered).
    Const(f64),
}

impl PartialEq for Operand {
    fn eq(&self, other: &Operand) -> bool {
        match (self, other) {
            (Operand::Inst(a), Operand::Inst(b)) => a == b,
            (Operand::Const(a), Operand::Const(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Operand {}

/// One IR instruction. The destination register is the instruction's own
/// index within its sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Inst {
    /// Read a scalar variable (parameter, temporary, or `comp`).
    ReadVar(String),
    /// Read `array[loop_var]`.
    ReadArr(String, String),
    /// Read `threadIdx.x` promoted to the kernel precision.
    ReadThreadIdx,
    /// Binary arithmetic.
    Bin(BinOp, Operand, Operand),
    /// Negation.
    Neg(Operand),
    /// Fused multiply-add `a*b + c` (one rounding) — produced by the FMA
    /// contraction pass; never present at O0.
    Fma(Operand, Operand, Operand),
    /// Fused multiply-subtract `a*b - c` (one rounding) — the hipcc-like
    /// contraction pass forms these; the nvcc-like one does not, which is
    /// one of the O0 → O1 divergence mechanisms.
    Fms(Operand, Operand, Operand),
    /// Fused negate-multiply-add `c - a*b` (one rounding) — also formed
    /// only by the hipcc-like contraction (the `comp -= x*y` pattern).
    Fnma(Operand, Operand, Operand),
    /// Approximate reciprocal (NVCC fast-math reciprocal substitution).
    Rcp(Operand),
    /// Math library call. Which implementation runs (accurate vs fast
    /// vendor intrinsic) is decided at execution time from
    /// [`CompileFlags::fast_math`].
    Call(MathFunc, Vec<Operand>),
    /// A constant produced by folding (kept as an instruction so operand
    /// indices stay stable until DCE renumbers).
    Const(f64),
}

impl PartialEq for Inst {
    fn eq(&self, other: &Inst) -> bool {
        use Inst::*;
        match (self, other) {
            (ReadVar(a), ReadVar(b)) => a == b,
            (ReadArr(a, i), ReadArr(b, j)) => a == b && i == j,
            (ReadThreadIdx, ReadThreadIdx) => true,
            (Bin(o1, a1, b1), Bin(o2, a2, b2)) => o1 == o2 && a1 == a2 && b1 == b2,
            (Neg(a), Neg(b)) | (Rcp(a), Rcp(b)) => a == b,
            (Fma(a1, b1, c1), Fma(a2, b2, c2))
            | (Fms(a1, b1, c1), Fms(a2, b2, c2))
            | (Fnma(a1, b1, c1), Fnma(a2, b2, c2)) => a1 == a2 && b1 == b2 && c1 == c2,
            (Call(f1, a1), Call(f2, a2)) => f1 == f2 && a1 == a2,
            // bitwise, like Operand::Const (NaN == NaN)
            (Const(a), Const(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Inst {}

impl Inst {
    /// Operands referenced by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Inst::ReadVar(_) | Inst::ReadArr(..) | Inst::ReadThreadIdx | Inst::Const(_) => {
                vec![]
            }
            Inst::Neg(a) | Inst::Rcp(a) => vec![*a],
            Inst::Bin(_, a, b) => vec![*a, *b],
            Inst::Fma(a, b, c) | Inst::Fms(a, b, c) | Inst::Fnma(a, b, c) => vec![*a, *b, *c],
            Inst::Call(_, args) => args.clone(),
        }
    }

    /// Rewrite operand references through `f`.
    pub fn map_operands(&mut self, f: impl Fn(Operand) -> Operand) {
        match self {
            Inst::ReadVar(_) | Inst::ReadArr(..) | Inst::ReadThreadIdx | Inst::Const(_) => {}
            Inst::Neg(a) | Inst::Rcp(a) => *a = f(*a),
            Inst::Bin(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Inst::Fma(a, b, c) | Inst::Fms(a, b, c) | Inst::Fnma(a, b, c) => {
                *a = f(*a);
                *b = f(*b);
                *c = f(*c);
            }
            Inst::Call(_, args) => {
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }
}

/// A straight-line instruction sequence computing one value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstSeq {
    /// Instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The sequence's result.
    pub result: Operand,
}

impl InstSeq {
    /// A sequence that yields a constant without executing anything.
    pub fn constant(v: f64) -> Self {
        InstSeq { insts: vec![], result: Operand::Const(v) }
    }

    /// Append an instruction and return an operand referring to it.
    pub fn push(&mut self, inst: Inst) -> Operand {
        self.insts.push(inst);
        Operand::Inst(self.insts.len() - 1)
    }
}

/// Where a computed value is stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreTarget {
    /// Scalar variable.
    Var(String),
    /// `array[loop_var]`.
    Arr(String, String),
}

/// A structured IR node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Evaluate `seq` and store its result (covers declarations and all
    /// assignment forms; compound assignments were expanded in lowering).
    Store {
        /// Destination.
        target: StoreTarget,
        /// Value computation.
        seq: InstSeq,
    },
    /// Structured conditional: evaluate both sides, compare, maybe run body.
    If {
        /// Left comparison operand.
        lhs: InstSeq,
        /// Comparison operator.
        op: CmpOp,
        /// Right comparison operand.
        rhs: InstSeq,
        /// Then-branch.
        body: Vec<Node>,
    },
    /// Counted loop from 0 to the value of the `int` parameter `bound`.
    For {
        /// Induction variable name.
        var: String,
        /// Bounding parameter name.
        bound: String,
        /// Loop body.
        body: Vec<Node>,
    },
}

/// Flags recording how a kernel was compiled (they affect execution).
/// Defaults to the `-O0`, no-fast-math configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileFlags {
    /// Fast-math: vendor fast intrinsics + vendor FTZ mode at execution.
    pub fast_math: bool,
    /// Effective optimization level (for the cost model).
    pub opt_level_index: u8,
}

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelIr {
    /// Program identifier this kernel was compiled from.
    pub program_id: String,
    /// Kernel precision.
    pub precision: Precision,
    /// Parameters (shared with the AST).
    pub params: Vec<Param>,
    /// Structured body.
    pub body: Vec<Node>,
    /// Compilation flags.
    pub flags: CompileFlags,
}

impl KernelIr {
    /// Visit every instruction sequence mutably (the pass driver).
    pub fn for_each_seq_mut(&mut self, f: &mut impl FnMut(&mut InstSeq)) {
        fn walk(nodes: &mut [Node], f: &mut impl FnMut(&mut InstSeq)) {
            for n in nodes {
                match n {
                    Node::Store { seq, .. } => f(seq),
                    Node::If { lhs, rhs, body, .. } => {
                        f(lhs);
                        f(rhs);
                        walk(body, f);
                    }
                    Node::For { body, .. } => walk(body, f),
                }
            }
        }
        walk(&mut self.body, f);
    }

    /// Total instruction count across all sequences (static size).
    pub fn inst_count(&self) -> usize {
        let mut n = 0;
        let mut clone = self.clone();
        clone.for_each_seq_mut(&mut |seq| n += seq.insts.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_returns_reference_to_new_inst() {
        let mut seq = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = seq.push(Inst::ReadVar("x".into()));
        let b = seq.push(Inst::Neg(a));
        assert_eq!(a, Operand::Inst(0));
        assert_eq!(b, Operand::Inst(1));
        assert_eq!(seq.insts.len(), 2);
    }

    #[test]
    fn operands_enumerates_all() {
        let i = Inst::Fma(Operand::Inst(0), Operand::Const(2.0), Operand::Inst(1));
        assert_eq!(i.operands().len(), 3);
        let c = Inst::Call(MathFunc::Pow, vec![Operand::Inst(0), Operand::Inst(1)]);
        assert_eq!(c.operands().len(), 2);
        assert!(Inst::ReadVar("x".into()).operands().is_empty());
    }

    #[test]
    fn map_operands_rewrites_everything() {
        let mut i = Inst::Bin(BinOp::Add, Operand::Inst(0), Operand::Inst(1));
        i.map_operands(|o| match o {
            Operand::Inst(k) => Operand::Inst(k + 10),
            c => c,
        });
        assert_eq!(i, Inst::Bin(BinOp::Add, Operand::Inst(10), Operand::Inst(11)));
    }

    #[test]
    fn for_each_seq_visits_nested_sequences() {
        let mk = || InstSeq::constant(1.0);
        let mut ir = KernelIr {
            program_id: "t".into(),
            precision: Precision::F64,
            params: vec![],
            body: vec![
                Node::Store { target: StoreTarget::Var("comp".into()), seq: mk() },
                Node::If {
                    lhs: mk(),
                    op: CmpOp::Lt,
                    rhs: mk(),
                    body: vec![Node::For {
                        var: "i".into(),
                        bound: "var_1".into(),
                        body: vec![Node::Store {
                            target: StoreTarget::Arr("a".into(), "i".into()),
                            seq: mk(),
                        }],
                    }],
                },
            ],
            flags: CompileFlags::default(),
        };
        let mut count = 0;
        ir.for_each_seq_mut(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn constant_seq_has_no_insts() {
        let s = InstSeq::constant(2.5);
        assert!(s.insts.is_empty());
        assert_eq!(s.result, Operand::Const(2.5));
    }
}
