//! # gpucc — the simulated GPU compilers (`nvcc`-like and `hipcc`-like)
//!
//! A small but real optimizing compiler for the Varity kernel language:
//!
//! * [`ir`] — a register-based instruction IR inside structured control
//!   flow. Expressions become three-address instruction sequences;
//!   `if`/`for` stay structured (the kernels Varity emits are reducible by
//!   construction).
//! * [`lower`] — AST → IR lowering (compound assignments are expanded, so
//!   passes see the full data flow).
//! * [`passes`] — the optimization passes: constant folding, FMA
//!   contraction, value numbering (CSE), dead-code elimination, and the
//!   fast-math set (reassociation, reciprocal substitution,
//!   finite-math-only simplification).
//! * [`pipeline`] — which passes run for `{nvcc, hipcc} × {O0..O3, O3_FM}`.
//!   The two toolchains differ exactly where the real ones do: FMA
//!   association preference, and the fast-math sets (`-ffast-math` vs
//!   `-DHIP_FAST_MATH`, which omits finite-math-only — paper §III-D).
//! * [`interp`] — executes compiled IR against a `gpusim::Device`,
//!   tracking IEEE exception flags and an operation-cost estimate. It is
//!   the vendor-faithful executor both campaign sides run on.
//! * [`vm`] — the compiled execution tier: IR lowered once to a flat,
//!   register-allocated bytecode and run by a dispatch loop, proved
//!   bit-identical to [`interp`] by a differential test battery and an
//!   [`vm::ExecTier::Differential`] runtime mode.
//! * [`refexec`] — the extended-precision ground-truth executor: the
//!   same resolved IR evaluated over `fpcore::dd` double-double values
//!   with a single final rounding, providing the campaign's third
//!   (`reference`) side and the "who drifted" verdicts.
//! * [`cost`] — the per-instruction cost model behind the simulated
//!   runtimes of the paper's Table I.

#![deny(missing_docs)]

mod bytecode;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod cost;
pub mod display;
#[cfg(feature = "oracle-inject")]
pub mod inject;
pub mod interp;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod pipeline;
pub mod refexec;
pub mod resolve;
pub mod vm;
#[cfg(feature = "vm-inject")]
pub mod vm_inject;

pub use interp::{execute, ExecBudget, ExecError, ExecResult};
pub use ir::KernelIr;
pub use pipeline::{compile, compile_traced, OptLevel, PassTrace, Toolchain};
pub use vm::ExecTier;
