//! AST → IR lowering.
//!
//! Compound assignments are expanded (`comp += e` becomes
//! `comp = comp + e` with an explicit `ReadVar(comp)`), so the optimization
//! passes see the complete data flow of every statement. FP32 kernels get
//! their literals rounded to `f32` here (the same rounding the real
//! front-ends perform on `1.23F` tokens).

use crate::ir::*;
use progen::ast::{self, AssignOp, BinOp, Expr, Precision, Program, Stmt};

/// Lower a program to unoptimized IR (what `-O0` codegen emits).
pub fn lower(program: &Program) -> KernelIr {
    KernelIr {
        program_id: program.id.clone(),
        precision: program.precision,
        params: program.params.clone(),
        body: lower_stmts(&program.body, program.precision),
        flags: CompileFlags::default(),
    }
}

fn lower_stmts(stmts: &[Stmt], prec: Precision) -> Vec<Node> {
    stmts.iter().map(|s| lower_stmt(s, prec)).collect()
}

fn lower_stmt(stmt: &Stmt, prec: Precision) -> Node {
    match stmt {
        Stmt::DeclTmp { name, init } => {
            let mut seq = InstSeq { insts: vec![], result: Operand::Const(0.0) };
            seq.result = lower_expr(init, &mut seq, prec);
            Node::Store { target: StoreTarget::Var(name.clone()), seq }
        }
        Stmt::Assign { target, op, value } => {
            let mut seq = InstSeq { insts: vec![], result: Operand::Const(0.0) };
            let rhs = lower_expr(value, &mut seq, prec);
            let result = match op {
                AssignOp::Set => rhs,
                AssignOp::AddAssign
                | AssignOp::SubAssign
                | AssignOp::MulAssign
                | AssignOp::DivAssign => {
                    let current = match target {
                        ast::LValue::Var(v) => seq.push(Inst::ReadVar(v.clone())),
                        ast::LValue::Index(a, i) => seq.push(Inst::ReadArr(a.clone(), i.clone())),
                    };
                    let bin = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        AssignOp::MulAssign => BinOp::Mul,
                        AssignOp::DivAssign => BinOp::Div,
                        AssignOp::Set => unreachable!(),
                    };
                    seq.push(Inst::Bin(bin, current, rhs))
                }
            };
            seq.result = result;
            let target = match target {
                ast::LValue::Var(v) => StoreTarget::Var(v.clone()),
                ast::LValue::Index(a, i) => StoreTarget::Arr(a.clone(), i.clone()),
            };
            Node::Store { target, seq }
        }
        Stmt::If { cond, body } => {
            let mut lhs = InstSeq { insts: vec![], result: Operand::Const(0.0) };
            lhs.result = lower_expr(&cond.lhs, &mut lhs, prec);
            let mut rhs = InstSeq { insts: vec![], result: Operand::Const(0.0) };
            rhs.result = lower_expr(&cond.rhs, &mut rhs, prec);
            Node::If { lhs, op: cond.op, rhs, body: lower_stmts(body, prec) }
        }
        Stmt::For { var, bound, body } => {
            Node::For { var: var.clone(), bound: bound.clone(), body: lower_stmts(body, prec) }
        }
    }
}

fn lower_expr(e: &Expr, seq: &mut InstSeq, prec: Precision) -> Operand {
    match e {
        Expr::Lit(v) => Operand::Const(round_const(*v, prec)),
        Expr::Var(name) => seq.push(Inst::ReadVar(name.clone())),
        Expr::ThreadIdx => seq.push(Inst::ReadThreadIdx),
        Expr::Index(a, i) => seq.push(Inst::ReadArr(a.clone(), i.clone())),
        Expr::Neg(inner) => {
            let x = lower_expr(inner, seq, prec);
            seq.push(Inst::Neg(x))
        }
        Expr::Bin(op, l, r) => {
            let a = lower_expr(l, seq, prec);
            let b = lower_expr(r, seq, prec);
            seq.push(Inst::Bin(*op, a, b))
        }
        Expr::Call(f, args) => {
            let ops: Vec<Operand> = args.iter().map(|a| lower_expr(a, seq, prec)).collect();
            seq.push(Inst::Call(*f, ops))
        }
    }
}

/// Round a literal to the kernel precision (front-end semantics of `F`
/// suffixes).
pub fn round_const(v: f64, prec: Precision) -> f64 {
    match prec {
        Precision::F64 => v,
        Precision::F32 => v as f32 as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::mathlib::MathFunc;
    use progen::ast::{CmpOp, Cond, LValue, Param, ParamType};

    fn prog(body: Vec<Stmt>) -> Program {
        Program {
            id: "t".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body,
        }
    }

    #[test]
    fn compound_assign_expands_to_read_modify_write() {
        let p = prog(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::Lit(1.5),
        }]);
        let ir = lower(&p);
        match &ir.body[0] {
            Node::Store { target: StoreTarget::Var(v), seq } => {
                assert_eq!(v, "comp");
                assert_eq!(seq.insts[0], Inst::ReadVar("comp".into()));
                assert_eq!(
                    seq.insts[1],
                    Inst::Bin(BinOp::Add, Operand::Inst(0), Operand::Const(1.5))
                );
                assert_eq!(seq.result, Operand::Inst(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_assignment_has_no_read() {
        let p = prog(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::Var("var_2".into()),
        }]);
        let ir = lower(&p);
        match &ir.body[0] {
            Node::Store { seq, .. } => {
                assert_eq!(seq.insts, vec![Inst::ReadVar("var_2".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_expression_lowers_in_order() {
        // comp = cos(var_2 + 1.0) / var_2
        let p = prog(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::bin(
                BinOp::Div,
                Expr::Call(
                    MathFunc::Cos,
                    vec![Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Lit(1.0))],
                ),
                Expr::Var("var_2".into()),
            ),
        }]);
        let ir = lower(&p);
        match &ir.body[0] {
            Node::Store { seq, .. } => {
                // var_2 is read twice at O0 (no CSE yet)
                assert_eq!(seq.insts.len(), 5);
                assert!(matches!(seq.insts[0], Inst::ReadVar(_)));
                assert!(matches!(seq.insts[1], Inst::Bin(BinOp::Add, _, _)));
                assert!(matches!(seq.insts[2], Inst::Call(MathFunc::Cos, _)));
                assert!(matches!(seq.insts[3], Inst::ReadVar(_)));
                assert!(matches!(seq.insts[4], Inst::Bin(BinOp::Div, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_lowers_both_sides() {
        let p = prog(vec![Stmt::If {
            cond: Cond { op: CmpOp::Ge, lhs: Expr::Var("comp".into()), rhs: Expr::Lit(0.0) },
            body: vec![Stmt::Assign {
                target: LValue::Var("comp".into()),
                op: AssignOp::SubAssign,
                value: Expr::Lit(1.0),
            }],
        }]);
        let ir = lower(&p);
        match &ir.body[0] {
            Node::If { lhs, op, rhs, body } => {
                assert_eq!(*op, CmpOp::Ge);
                assert_eq!(lhs.insts.len(), 1);
                assert!(rhs.insts.is_empty());
                assert_eq!(rhs.result, Operand::Const(0.0));
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fp32_literals_round_at_lowering() {
        let mut p = prog(vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::Set,
            value: Expr::Lit(0.1),
        }]);
        p.precision = Precision::F32;
        let ir = lower(&p);
        match &ir.body[0] {
            Node::Store { seq, .. } => {
                assert_eq!(seq.result, Operand::Const(0.1f32 as f64));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn o0_lowering_has_default_flags() {
        let p = prog(vec![]);
        let ir = lower(&p);
        assert!(!ir.flags.fast_math);
        assert_eq!(ir.flags.opt_level_index, 0);
    }
}
