//! Constant folding.
//!
//! Folds arithmetic whose operands are all constants, at the kernel's
//! precision, using IEEE semantics — both toolchains fold identically, so
//! folding itself never diverges. Math calls are *not* folded (folding
//! them with the compiler's host libm is a known source of host/device
//! divergence the paper's campaign does not target). A second-order effect
//! is intentional: folded operations bypass the runtime FTZ environment,
//! so under fast math a folded subexpression can keep a subnormal that the
//! unfolded code would have flushed.

use super::SeqPass;
use crate::ir::{Inst, InstSeq, Operand};
use progen::ast::{BinOp, Precision};

/// The constant-folding pass.
pub struct ConstFold;

impl SeqPass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    #[allow(clippy::needless_range_loop)] // `values` grows inside the loop
    fn run(&self, seq: &mut InstSeq, prec: Precision) -> u64 {
        // one forward walk suffices: operands always reference earlier
        // instructions, which were already visited
        let mut fired = 0u64;
        let mut values: Vec<Option<f64>> = Vec::with_capacity(seq.insts.len());
        for idx in 0..seq.insts.len() {
            // resolve operands through already-folded instructions
            let resolve = |o: Operand, values: &[Option<f64>]| -> Option<f64> {
                match o {
                    Operand::Const(c) => Some(c),
                    Operand::Inst(i) => values[i],
                }
            };
            let inst = seq.insts[idx].clone();
            let folded = match &inst {
                Inst::Const(c) => Some(*c),
                Inst::Bin(op, a, b) => match (resolve(*a, &values), resolve(*b, &values)) {
                    (Some(x), Some(y)) => Some(fold_bin(*op, x, y, prec)),
                    _ => None,
                },
                Inst::Neg(a) => resolve(*a, &values).map(|x| -x),
                Inst::Fma(a, b, c) => {
                    match (resolve(*a, &values), resolve(*b, &values), resolve(*c, &values)) {
                        (Some(x), Some(y), Some(z)) => Some(fold_fma(x, y, z, prec)),
                        _ => None,
                    }
                }
                Inst::Fnma(a, b, c) => {
                    match (resolve(*a, &values), resolve(*b, &values), resolve(*c, &values)) {
                        (Some(x), Some(y), Some(z)) => Some(fold_fma(-x, y, z, prec)),
                        _ => None,
                    }
                }
                Inst::Fms(a, b, c) => {
                    match (resolve(*a, &values), resolve(*b, &values), resolve(*c, &values)) {
                        (Some(x), Some(y), Some(z)) => Some(fold_fma(x, y, -z, prec)),
                        _ => None,
                    }
                }
                // never folded: value depends on the device
                Inst::Call(..)
                | Inst::Rcp(_)
                | Inst::ReadVar(_)
                | Inst::ReadArr(..)
                | Inst::ReadThreadIdx => None,
            };
            let folded = folded.map(inject_fold_bug);
            if let Some(v) = folded {
                if !matches!(inst, Inst::Const(_)) {
                    fired += 1;
                }
                seq.insts[idx] = Inst::Const(v);
            }
            values.push(folded);
        }
        // propagate folded values into operand slots so DCE can drop the
        // Const instructions entirely
        for idx in 0..seq.insts.len() {
            if let Some(v) = values[idx] {
                super::forward_uses(seq, idx, Operand::Const(v));
            }
        }
        fired
    }
}

/// Oracle self-test hook: with the `oracle-inject` feature compiled in
/// AND [`crate::inject::InjectedBug::ConstFoldF32Round`] armed, folded
/// values lose precision through `f32`. Identity otherwise.
#[cfg(feature = "oracle-inject")]
fn inject_fold_bug(v: f64) -> f64 {
    if crate::inject::armed() == crate::inject::InjectedBug::ConstFoldF32Round {
        v as f32 as f64
    } else {
        v
    }
}

#[cfg(not(feature = "oracle-inject"))]
#[inline(always)]
fn inject_fold_bug(v: f64) -> f64 {
    v
}

/// Fold one binary operation at the given precision.
pub fn fold_bin(op: BinOp, x: f64, y: f64, prec: Precision) -> f64 {
    match prec {
        Precision::F64 => match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
        },
        Precision::F32 => {
            let (a, b) = (x as f32, y as f32);
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
            };
            r as f64
        }
    }
}

fn fold_fma(x: f64, y: f64, z: f64, prec: Precision) -> f64 {
    match prec {
        Precision::F64 => x.mul_add(y, z),
        Precision::F32 => (x as f32).mul_add(y as f32, z as f32) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::round_const;
    use gpusim::mathlib::MathFunc;

    fn run(seq: &mut InstSeq, prec: Precision) {
        ConstFold.run(seq, prec);
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = s.push(Inst::Bin(BinOp::Add, Operand::Const(1.5), Operand::Const(2.5)));
        s.result = a;
        run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(4.0));
        assert_eq!(s.insts[0], Inst::Const(4.0));
    }

    #[test]
    fn folds_transitively() {
        // (1+2) * (3+4) -> 21
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = s.push(Inst::Bin(BinOp::Add, Operand::Const(1.0), Operand::Const(2.0)));
        let b = s.push(Inst::Bin(BinOp::Add, Operand::Const(3.0), Operand::Const(4.0)));
        s.result = s.push(Inst::Bin(BinOp::Mul, a, b));
        run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(21.0));
    }

    #[test]
    fn does_not_fold_variables_or_calls() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let c = s.push(Inst::Call(MathFunc::Cos, vec![Operand::Const(0.0)]));
        s.result = s.push(Inst::Bin(BinOp::Add, x, c));
        run(&mut s, Precision::F64);
        assert!(matches!(s.insts[1], Inst::Call(..)), "calls must not fold");
        assert!(matches!(s.insts[2], Inst::Bin(..)));
    }

    #[test]
    fn folds_at_f32_precision_for_fp32_kernels() {
        // 0.1 + 0.2 rounds differently in f32 and f64
        let (a, b) = (round_const(0.1, Precision::F32), round_const(0.2, Precision::F32));
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        s.result = s.push(Inst::Bin(BinOp::Add, Operand::Const(a), Operand::Const(b)));
        run(&mut s, Precision::F32);
        let expected = (0.1f32 + 0.2f32) as f64;
        assert_eq!(s.result, Operand::Const(expected));
        assert_ne!(expected, 0.1f64 + 0.2f64);
    }

    #[test]
    fn folding_respects_ieee_specials() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        s.result = s.push(Inst::Bin(BinOp::Div, Operand::Const(1.0), Operand::Const(0.0)));
        run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(f64::INFINITY));

        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        s.result = s.push(Inst::Bin(
            BinOp::Sub,
            Operand::Const(f64::INFINITY),
            Operand::Const(f64::INFINITY),
        ));
        run(&mut s, Precision::F64);
        match s.result {
            Operand::Const(v) => assert!(v.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn folds_negation_and_fma() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let n = s.push(Inst::Neg(Operand::Const(3.0)));
        s.result = s.push(Inst::Fma(n, Operand::Const(2.0), Operand::Const(1.0)));
        run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(-5.0));
    }
}
